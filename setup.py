"""Build shim: packaging metadata plus the optional compiled engine kernel.

``python setup.py build_ext --inplace`` (or an editable install) compiles
``repro.net.kernel._ckernel`` — the C fast path for the packet engine's
enqueue/serialize/dispatch hot trio (see ``src/repro/net/kernel``). The
extension is declared *optional*: when no C compiler is available (or
``REPRO_NO_CKERNEL`` is set) the build degrades to the pure-Python engine
instead of failing, and the runtime seam (``REPRO_KERNEL``) falls back
with a warning rather than an error.

The kernel is a hand-written CPython extension rather than a mypyc
build: mypyc (and Cython) are not part of the pinned offline toolchain,
and the hot methods manipulate the engine's ``__slots__`` layout and
heap entries directly, which a hand-written extension can do with zero
per-event allocation.
"""

import os

from setuptools import Extension, setup

ext_modules = []
if not os.environ.get("REPRO_NO_CKERNEL"):
    ext_modules.append(
        Extension(
            "repro.net.kernel._ckernel",
            sources=["src/repro/net/kernel/_ckernel.c"],
            optional=True,  # build failure -> pure-Python engine, not error
        )
    )

setup(
    name="repro-opera",
    version="0.6.0",
    package_dir={"": "src"},
    packages=[
        "repro",
        "repro.analysis",
        "repro.core",
        "repro.distrib",
        "repro.experiments",
        "repro.fluid",
        "repro.net",
        "repro.net.kernel",
        "repro.scenarios",
        "repro.topologies",
        "repro.workloads",
    ],
    ext_modules=ext_modules,
)
