"""Shim so editable installs work offline (no wheel/bdist_wheel available).

All project metadata lives in pyproject.toml; this file only exists so that
``pip install -e . --no-use-pep517 --no-build-isolation`` can fall back to
``setup.py develop`` in environments without network access.
"""

from setuptools import setup

setup()
