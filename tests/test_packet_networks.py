"""Integration tests: the four simulated networks deliver traffic correctly."""

import pytest

from repro.core.topology import OperaNetwork
from repro.net import (
    ClosSimNetwork,
    ExpanderSimNetwork,
    OperaSimNetwork,
    RotorNetSimNetwork,
)
from repro.topologies import ExpanderTopology, FoldedClos, RotorNetTopology

MS = 1_000_000_000  # picoseconds


@pytest.fixture(scope="module")
def opera_sim():
    net = OperaNetwork(k=8, n_racks=8, seed=0)
    return OperaSimNetwork(net)


def fresh_opera(seed=0, **kwargs):
    return OperaSimNetwork(OperaNetwork(k=8, n_racks=8, seed=seed), **kwargs)


class TestOperaLowLatency:
    def test_single_flow_delivers_exactly_once(self):
        sim = fresh_opera()
        rec = sim.start_low_latency_flow(0, 30, 20_000)
        sim.run(5 * MS)
        assert rec.complete
        assert rec.delivered_bytes == 20_000

    def test_fct_well_under_slice(self):
        sim = fresh_opera()
        rec = sim.start_low_latency_flow(0, 30, 1_436)
        sim.run(1 * MS)
        # One MTU across a few hops: tens of microseconds at most.
        assert rec.complete
        assert rec.fct_ps < sim.network.timing.epsilon_ps

    def test_rack_local_flow(self):
        sim = fresh_opera()
        rec = sim.start_low_latency_flow(0, 1, 10_000)
        sim.run(1 * MS)
        assert rec.complete

    def test_many_flows_all_complete(self):
        sim = fresh_opera()
        recs = [
            sim.start_low_latency_flow(src, (src + 9) % 32, 5_000, start_ps=src * 1000)
            for src in range(32)
        ]
        sim.run(10 * MS)
        assert all(r.complete for r in recs)
        assert sim.stats.completion_fraction() == 1.0

    def test_flows_spanning_slice_boundaries(self):
        """Flows started near a reconfiguration still complete (stamping)."""
        sim = fresh_opera()
        slice_ps = sim.network.timing.slice_ps
        recs = [
            sim.start_low_latency_flow(
                0, 30, 30_000, start_ps=s * slice_ps - 2_000_000
            )
            for s in range(1, 6)
        ]
        sim.run(20 * MS)
        assert all(r.complete for r in recs)


class TestOperaBulk:
    def test_bulk_waits_for_direct_circuit(self):
        sim = fresh_opera()
        rec = sim.start_bulk_flow(0, 30, 100_000)
        sim.run(20 * MS)
        assert rec.complete
        assert rec.delivered_bytes == 100_000

    def test_bulk_completion_within_cycles(self):
        sim = fresh_opera()
        cycle = sim.network.timing.cycle_ps
        rec = sim.start_bulk_flow(0, 30, 500_000)
        sim.run(30 * MS)
        assert rec.complete
        # 500 KB needs ~0.4 ms of circuit time; direct slices appear within
        # a few cycles.
        assert rec.fct_ps < 4 * cycle

    def test_vlb_helps_skewed_bulk(self):
        with_vlb = fresh_opera()
        rec_a = with_vlb.start_bulk_flow(0, 30, 2_000_000)
        with_vlb.run(60 * MS)
        without = fresh_opera(enable_vlb=False)
        rec_b = without.start_bulk_flow(0, 30, 2_000_000)
        without.run(60 * MS)
        assert rec_a.complete and rec_b.complete
        assert rec_a.fct_ps <= rec_b.fct_ps
        assert with_vlb.agents[0].vlb_bytes_sent > 0

    def test_mixed_bulk_and_low_latency(self):
        sim = fresh_opera()
        bulk = sim.start_bulk_flow(0, 30, 400_000)
        lls = [
            sim.start_low_latency_flow(1, 29, 3_000, start_ps=i * 100_000)
            for i in range(20)
        ]
        sim.run(30 * MS)
        assert bulk.complete
        assert all(r.complete for r in lls)

    def test_bulk_conservation_all_to_all(self):
        sim = fresh_opera()
        n = len(sim.hosts)
        recs = []
        for src in range(0, n, 4):
            for dst in range(1, n, 7):
                if src // 4 != dst // 4:
                    recs.append(sim.start_bulk_flow(src, dst, 50_000))
        sim.run(50 * MS)
        for rec in recs:
            assert rec.complete, f"flow {rec.flow_id} incomplete"
            assert rec.delivered_bytes == 50_000


class TestExpanderSim:
    @pytest.fixture(scope="class")
    def sim(self):
        topo = ExpanderTopology(8, 4, 4, seed=0)
        sim = ExpanderSimNetwork(topo)
        return sim

    def test_delivery(self, sim):
        rec = sim.start_low_latency_flow(0, 30, 50_000)
        sim.run(sim.sim.now + 5 * MS)
        assert rec.complete and rec.delivered_bytes == 50_000

    def test_congestion_trims_but_recovers(self):
        topo = ExpanderTopology(8, 4, 4, seed=0)
        sim = ExpanderSimNetwork(topo)
        # Incast: 8 senders to one host.
        recs = [
            sim.start_low_latency_flow(src, 31, 60_000)
            for src in range(0, 16, 2)
        ]
        sim.run(20 * MS)
        assert all(r.complete for r in recs)
        trims = sum(
            p.stats.trimmed
            for ports in sim.uplink_ports
            for p in ports.values()
        ) + sum(p.stats.trimmed for p in sim.host_ports.values())
        retx = sum(r.retransmissions for r in recs)
        assert trims == 0 or retx >= 0  # trims recovered via NACK/retx


class TestClosSim:
    @pytest.fixture(scope="class")
    def sim(self):
        return ClosSimNetwork(FoldedClos(4, 1))

    def test_same_pod_delivery(self, sim):
        rec = sim.start_low_latency_flow(0, 3, 20_000)
        sim.run(sim.sim.now + 5 * MS)
        assert rec.complete

    def test_cross_pod_delivery(self, sim):
        rec = sim.start_low_latency_flow(0, 15, 20_000)
        sim.run(sim.sim.now + 5 * MS)
        assert rec.complete

    def test_oversubscribed_clos(self):
        sim = ClosSimNetwork(FoldedClos(8, 3))
        recs = [
            sim.start_low_latency_flow(src, (src + 30) % sim.clos.n_hosts, 30_000)
            for src in range(0, 30, 3)
        ]
        sim.run(20 * MS)
        assert all(r.complete for r in recs)


class TestRotorNetSim:
    def test_hybrid_low_latency_fast(self):
        sim = RotorNetSimNetwork(RotorNetTopology(8, 4, 4, hybrid=True, seed=0))
        rec = sim.start_low_latency_flow(0, 30, 10_000)
        sim.run(5 * MS)
        assert rec.complete
        assert rec.fct_ps < 100_000_000  # < 100 us through the fabric

    def test_non_hybrid_low_latency_slow(self):
        hybrid = RotorNetSimNetwork(RotorNetTopology(8, 4, 4, hybrid=True, seed=0))
        fast = hybrid.start_low_latency_flow(0, 30, 10_000)
        hybrid.run(30 * MS)
        rotor_only = RotorNetSimNetwork(
            RotorNetTopology(8, 4, 4, hybrid=False, seed=0)
        )
        slow = rotor_only.start_low_latency_flow(0, 30, 10_000)
        rotor_only.run(30 * MS)
        assert fast.complete and slow.complete
        # Paper Fig 7c: short flows pay orders of magnitude without a
        # packet fabric (bounded by the scaled-down cycle here).
        assert slow.fct_ps > 5 * fast.fct_ps

    def test_bulk_delivery(self):
        sim = RotorNetSimNetwork(RotorNetTopology(8, 4, 4, hybrid=False, seed=0))
        recs = [sim.start_bulk_flow(h, (h + 13) % 32, 80_000) for h in range(8)]
        sim.run(40 * MS)
        assert all(r.complete for r in recs)
        assert all(r.delivered_bytes == 80_000 for r in recs)


class TestStatsCollector:
    def test_throughput_series(self, opera_sim):
        sim = fresh_opera()
        for src in range(4):
            sim.start_bulk_flow(src, src + 28, 200_000)
        sim.run(20 * MS)
        series = sim.stats.throughput_series(n_hosts=32)
        assert series
        assert all(0.0 <= v <= 1.0 for _t, v in series)
        total = sim.stats.total_delivered_bytes()
        assert total == 4 * 200_000

    def test_percentiles(self):
        sim = fresh_opera()
        recs = [
            sim.start_low_latency_flow(src, (src + 5) % 32, 2_000)
            for src in range(16)
        ]
        sim.run(10 * MS)
        p50 = sim.stats.fct_percentile_us(50)
        p99 = sim.stats.fct_percentile_us(99)
        assert p50 is not None and p99 is not None
        assert p99 >= p50 > 0
