"""Tests for per-slice routing (paper section 3.4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.faults import FailureSet
from repro.core.routing import (
    UNREACHABLE,
    OperaRouting,
    SliceRoutes,
    build_adjacency,
)
from repro.core.schedule import OperaSchedule


@pytest.fixture(scope="module")
def sched():
    return OperaSchedule(16, 4, seed=0)


@pytest.fixture(scope="module")
def routing(sched):
    return OperaRouting(sched)


class TestAdjacency:
    def test_down_switch_excluded(self, sched):
        for s in range(sched.cycle_slices):
            adj = build_adjacency(sched, s)
            down = set(sched.down_switches(s))
            for rack in range(sched.n_racks):
                for _peer, switch in adj[rack]:
                    assert switch not in down

    def test_symmetric(self, sched):
        adj = build_adjacency(sched, 0)
        for rack, edges in enumerate(adj):
            for peer, switch in edges:
                assert (rack, switch) in adj[peer]

    def test_failed_switch_removed(self, sched):
        failures = FailureSet(switches=frozenset({1}))
        adj = build_adjacency(sched, 0, failures)
        for edges in adj:
            assert all(switch != 1 for _peer, switch in edges)

    def test_failed_link_removed(self, sched):
        adj_ok = build_adjacency(sched, 0)
        target = None
        for rack, edges in enumerate(adj_ok):
            if edges:
                target = (rack, edges[0][1])
                break
        failures = FailureSet(links=frozenset({target}))
        adj = build_adjacency(sched, 0, failures)
        rack, switch = target
        assert all(w != switch for _p, w in adj[rack])

    def test_failed_rack_isolated(self, sched):
        failures = FailureSet(racks=frozenset({2}))
        adj = build_adjacency(sched, 0, failures)
        assert adj[2] == []
        for edges in adj:
            assert all(peer != 2 for peer, _w in edges)


class TestSliceRoutes:
    def test_self_distance_zero(self, routing):
        routes = routing.routes(0)
        for rack in range(routes.n):
            assert routes.dist[rack][rack] == 0

    def test_connected_at_16_racks(self, routing, sched):
        for s in range(sched.cycle_slices):
            assert routing.routes(s).reachable_pairs() == 16 * 15

    def test_distance_symmetric(self, routing):
        routes = routing.routes(3)
        for a in range(routes.n):
            for b in range(routes.n):
                assert routes.dist[a][b] == routes.dist[b][a]

    def test_next_hop_decreases_distance(self, routing):
        routes = routing.routes(1)
        for src in range(routes.n):
            for dst in range(routes.n):
                if src == dst:
                    continue
                for peer, _switch in routes.next_hops(src, dst):
                    assert routes.dist[peer][dst] == routes.dist[src][dst] - 1

    def test_shortest_path_valid(self, routing):
        routes = routing.routes(2)
        adj = {
            (rack, peer)
            for rack, edges in enumerate(routes.adjacency)
            for peer, _switch in edges
        }
        for src, dst in [(0, 15), (3, 9), (14, 1)]:
            path = routes.shortest_path(src, dst)
            assert path is not None
            assert path[0] == src and path[-1] == dst
            assert len(path) - 1 == routes.dist[src][dst]
            for a, b in zip(path, path[1:]):
                assert (a, b) in adj

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_salted_next_hop_still_shortest(self, salt):
        sched = OperaSchedule(16, 4, seed=2)
        routes = OperaRouting(sched).routes(0)
        hop = routes.next_hop(0, 9, salt=salt)
        assert hop is not None
        peer, _switch = hop
        assert routes.dist[peer][9] == routes.dist[0][9] - 1

    def test_no_next_hop_to_self(self, routing):
        assert routing.routes(0).next_hops(4, 4) == []

    def test_disconnected_pair(self):
        # All switches failed: nothing is reachable.
        sched = OperaSchedule(8, 4, seed=0)
        failures = FailureSet(switches=frozenset(range(4)))
        routes = SliceRoutes.for_slice(sched, 0, failures)
        assert routes.dist[0][1] == UNREACHABLE
        assert routes.next_hops(0, 1) == []
        assert routes.shortest_path(0, 1) is None


class TestOperaRouting:
    def test_cache_returns_same_object(self, routing):
        assert routing.routes(5) is routing.routes(5)

    def test_slice_wraps_modulo_cycle(self, routing, sched):
        assert routing.routes(0) is routing.routes(sched.cycle_slices)

    def test_histogram_totals(self, routing, sched):
        hist = routing.path_length_histogram()
        expected = sched.cycle_slices * 16 * 15
        assert sum(hist.values()) == expected

    def test_histogram_has_direct_paths(self, routing):
        hist = routing.path_length_histogram()
        assert hist.get(1, 0) > 0


class TestPathLengthShape:
    """Figure 4 sanity at reference scale (one shared expensive fixture)."""

    @pytest.fixture(scope="class")
    def reference_routing(self):
        sched = OperaSchedule(108, 6, seed=0)
        return OperaRouting(sched)

    def test_every_slice_connected(self, reference_routing):
        for s in (0, 17, 53, 99):
            assert reference_routing.routes(s).reachable_pairs() == 108 * 107

    def test_path_lengths_match_figure4(self, reference_routing):
        counts = {}
        for s in (0, 17, 53, 99):
            for h, c in reference_routing.routes(s).path_length_counts().items():
                counts[h] = counts.get(h, 0) + c
        total = sum(counts.values())
        # Direct neighbours: 5 per rack in a 108-rack slice -> ~4.6%.
        assert 0.03 < counts.get(1, 0) / total < 0.06
        # The bulk of pairs are 3-4 hops; almost everything within 5.
        within5 = sum(c for h, c in counts.items() if h <= 5) / total
        assert within5 > 0.99
