"""Differential tests for the compiled engine kernel (``REPRO_KERNEL``).

The kernel contract is that the compiled fast path is *invisible*: a run
under ``REPRO_KERNEL=c`` must be bit-identical to the pure-Python oracle
(``REPRO_KERNEL=py``) — same timestamps, tie-breaks, FCT rows, hop and
drop counts, ``events_processed`` and ``pending`` — across every other
engine axis (scheduler x coalesce x executor). These tests extend the
PR 2/PR 5 differential pattern with the kernel axis: random event
cascades, full packet workloads on every network kind compared
observable-by-observable, scenario Runner rows (including a distributed
smoke run whose spawned workers inherit the kernel selection), and the
seam mechanics themselves (env parsing, graceful fallback when the
compiled module is absent).
"""

import random
import warnings

import pytest

from repro.net import kernel as kernel_mod
from repro.net.kernel import compiled_available, engine_classes, kernel_default

from test_coalescing import COMBOS, packet_workload

requires_c = pytest.mark.skipif(
    not compiled_available(),
    reason="compiled kernel (_ckernel) not built in this environment",
)

NETWORK_KINDS = ["opera", "expander", "clos", "rotornet", "rotornet-hybrid"]


def kernel_workload(kernel, scheduler, coalesce, kind="opera", seed=11, monkeypatch=None):
    """packet_workload with the kernel axis pinned via the env seam."""
    import os

    saved = os.environ.get("REPRO_KERNEL")
    os.environ["REPRO_KERNEL"] = kernel
    try:
        return packet_workload(scheduler, coalesce, kind=kind, seed=seed)
    finally:
        if saved is None:
            os.environ.pop("REPRO_KERNEL", None)
        else:
            os.environ["REPRO_KERNEL"] = saved


class TestKernelSeam:
    def test_known_kernels(self):
        assert kernel_mod.KERNELS == ("py", "c")

    def test_env_default_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert kernel_default() == "auto"
        monkeypatch.setenv("REPRO_KERNEL", "py")
        assert kernel_default() == "py"
        monkeypatch.setenv("REPRO_KERNEL", "turbo")
        with pytest.raises(ValueError, match="turbo"):
            kernel_default()

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="pypy"):
            engine_classes("pypy")

    def test_py_classes_are_the_plain_engine(self):
        from repro.net.link import Port
        from repro.net.ndp import NdpSink, NdpSource, PullPacer
        from repro.net.node import Host, SwitchNode
        from repro.net.sim import Simulator

        classes = engine_classes("py")
        assert classes.name == "py"
        assert classes.Simulator is Simulator
        assert classes.Port is Port
        assert classes.Host is Host
        assert classes.SwitchNode is SwitchNode
        assert classes.NdpSource is NdpSource
        assert classes.NdpSink is NdpSink
        assert classes.PullPacer is PullPacer

    @requires_c
    def test_c_classes_subclass_the_python_engine(self):
        py = engine_classes("py")
        ck = engine_classes("c")
        assert ck.name == "c"
        for field in ("Simulator", "Port", "Host", "SwitchNode",
                      "NdpSource", "NdpSink", "PullPacer"):
            c_cls, py_cls = getattr(ck, field), getattr(py, field)
            assert c_cls is not py_cls
            assert issubclass(c_cls, py_cls)
            # One data layout, two method implementations.
            assert c_cls.__slots__ == ()

    @requires_c
    def test_auto_prefers_compiled(self):
        assert engine_classes("auto").name == "c"

    def test_missing_compiled_module_degrades_with_warning(self, monkeypatch):
        # REPRO_KERNEL=c without the extension must *run* (pure-Python
        # classes), warning once — a build problem never fails a sim.
        monkeypatch.setattr(kernel_mod, "_COMPILED", False)
        monkeypatch.setattr(kernel_mod, "_WARNED", False)
        with pytest.warns(RuntimeWarning, match="falling back"):
            classes = engine_classes("c")
        assert classes.name == "py"
        # Second resolution is silent (one-time warning) and still works.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert engine_classes("c").name == "py"
            assert engine_classes("auto").name == "py"


def kernel_cascade(kernel, scheduler, coalesce, seed):
    """Seeded self-scheduling storm on the selected kernel's Simulator."""
    sim_cls = engine_classes(kernel).Simulator
    sim = sim_cls(scheduler=scheduler, coalesce=coalesce)
    rng = random.Random(seed)
    trace = []

    def fire(tag):
        trace.append((sim.now, tag))
        k = rng.choices((0, 1, 2, 3), weights=(5, 3, 2, 1))[0]
        entries = []
        for i in range(k):
            delay = rng.choice(
                (0, rng.randrange(1, 80_000), rng.randrange(1, 5_000_000_000))
            )
            entries.append((sim.now + delay, fire, (f"{tag}.{i}",)))
        sim.at_many(entries)

    for i in range(40):
        sim.at(rng.randrange(0, 50_000_000), fire, str(i))
    for chunk in (
        dict(until_ps=100_000_000, max_events=500),
        dict(until_ps=2_000_000_000),
        dict(max_events=3_000),
        dict(),
    ):
        sim.run(**chunk)
    return tuple(trace), sim.now, sim.events_processed, sim.pending


@requires_c
class TestKernelCascades:
    @pytest.mark.parametrize("seed", range(10))
    def test_cascades_identical_across_kernel_and_combos(self, seed):
        baseline = kernel_cascade("py", "heap", False, seed)
        for scheduler, coalesce in COMBOS:
            assert kernel_cascade("c", scheduler, coalesce, seed) == baseline, (
                scheduler,
                coalesce,
            )

    def test_compiled_run_loop_is_exercised(self):
        # The c cascade must actually run through CKSimulator.run — pin
        # that the resolved class is the compiled subclass, not a silent
        # fallback.
        sim_cls = engine_classes("c").Simulator
        assert sim_cls.__name__ == "CKSimulator"
        assert sim_cls.run is not engine_classes("py").Simulator.run


@requires_c
class TestKernelPacketDifferential:
    """Full packet workloads: c == py observable-by-observable."""

    OBSERVABLES = ("events", "final_now", "pending", "fcts", "port_stats", "drops")

    @pytest.mark.parametrize("kind", NETWORK_KINDS)
    def test_every_network_kind_bit_identical(self, kind):
        py = kernel_workload("py", "heap", True, kind=kind)
        ck = kernel_workload("c", "heap", True, kind=kind)
        for key in self.OBSERVABLES:
            assert ck[key] == py[key], (kind, key)
        # The runs do real work (the differential is not vacuous).
        assert py["events"] > 1_000 and py["fcts"]

    def test_opera_bit_identical_across_scheduler_and_coalesce(self):
        baseline = kernel_workload("py", "heap", False)
        for scheduler, coalesce in COMBOS:
            run = kernel_workload("c", scheduler, coalesce)
            for key in self.OBSERVABLES:
                assert run[key] == baseline[key], (scheduler, coalesce, key)

    def test_retransmission_path_is_exercised_and_identical(self):
        # Higher load on the small fabric forces trims -> NACK -> rtx, so
        # the kernel's NACK/PULL handlers are differentially covered.
        py = kernel_workload("py", "heap", True, kind="clos", seed=5)
        ck = kernel_workload("c", "heap", True, kind="clos", seed=5)
        assert py["fcts"] == ck["fcts"]
        assert any(rtx for _fid, _fct, _b, rtx in py["fcts"]) or any(
            t for *_s, t in [(s[2],) for s in py["port_stats"].values()]
        )


class TestKernelRunnerDifferential:
    """REPRO_KERNEL=py == c through the scenario Runner."""

    OVERRIDES = {
        "loads": (0.02, 0.05),
        "networks": ("opera", "rotornet"),
        "duration_ms": 0.4,
        "scale": "ci",
    }

    @requires_c
    def test_fig07_rows_identical_across_kernels(self, monkeypatch):
        from repro.scenarios import Runner

        monkeypatch.setenv("REPRO_KERNEL", "py")
        py = Runner(cache=None).execute("fig07", **self.OVERRIDES)
        monkeypatch.setenv("REPRO_KERNEL", "c")
        ck = Runner(cache=None).execute("fig07", **self.OVERRIDES)
        assert py == ck

    @requires_c
    def test_fig09_rows_identical_across_kernels(self, monkeypatch):
        from repro.scenarios import Runner

        overrides = {
            "loads": (0.02,),
            "networks": ("opera", "clos"),
            "duration_ms": 0.4,
            "scale": "ci",
        }
        monkeypatch.setenv("REPRO_KERNEL", "py")
        py = Runner(cache=None).execute("fig09", **overrides)
        monkeypatch.setenv("REPRO_KERNEL", "c")
        ck = Runner(cache=None).execute("fig09", **overrides)
        assert py == ck

    @requires_c
    def test_distributed_smoke_under_c_kernel(self, monkeypatch, tmp_path):
        # Spawned workers inherit REPRO_KERNEL from the environment; a
        # distributed c-kernel run must match the in-process py oracle.
        from repro.scenarios import ResultCache, Runner

        tiny = {
            "loads": (0.02,),
            "networks": ("opera",),
            "duration_ms": 0.4,
            "scale": "ci",
        }
        monkeypatch.setenv("REPRO_KERNEL", "py")
        plain = Runner(cache=None).execute("fig07", **tiny)
        monkeypatch.setenv("REPRO_KERNEL", "c")
        dist = Runner(
            cache=ResultCache(tmp_path), executor="distributed", workers=2
        ).run(names=["fig07"], overrides=tiny)[0]
        assert dist.value == plain
