"""Unit and property tests for K_n factorizations (paper section 3.3)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matchings import (
    FactorizationError,
    identity_matching,
    is_involution,
    matching_edges,
    random_factorization,
    relabel_matching,
    round_robin_factorization,
    verify_factorization,
)

even_n = st.integers(min_value=1, max_value=20).map(lambda k: 2 * k)


class TestRoundRobin:
    def test_small_exact(self):
        factors = round_robin_factorization(4)
        assert len(factors) == 4
        verify_factorization(factors, 4)

    def test_rejects_odd(self):
        with pytest.raises(ValueError):
            round_robin_factorization(7)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            round_robin_factorization(0)

    def test_two_racks(self):
        factors = round_robin_factorization(2)
        verify_factorization(factors, 2)

    @given(even_n)
    @settings(max_examples=20, deadline=None)
    def test_valid_factorization(self, n):
        verify_factorization(round_robin_factorization(n), n)

    @given(even_n)
    @settings(max_examples=20, deadline=None)
    def test_contains_identity_exactly_once(self, n):
        factors = round_robin_factorization(n)
        ident = identity_matching(n)
        assert factors.count(ident) == 1

    @given(even_n)
    @settings(max_examples=20, deadline=None)
    def test_proper_factors_are_perfect_matchings(self, n):
        for factor in round_robin_factorization(n)[:-1]:
            assert all(factor[i] != i for i in range(n))
            assert is_involution(factor)


class TestRandomFactorization:
    @given(even_n, st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=15, deadline=None)
    def test_valid(self, n, seed):
        factors = random_factorization(n, random.Random(seed))
        verify_factorization(factors, n)

    def test_deterministic_given_seed(self):
        a = random_factorization(16, random.Random(42))
        b = random_factorization(16, random.Random(42))
        assert a == b

    def test_different_seeds_differ(self):
        a = random_factorization(16, random.Random(1))
        b = random_factorization(16, random.Random(2))
        assert a != b

    def test_reference_scale(self):
        factors = random_factorization(108, random.Random(0))
        verify_factorization(factors, 108)

    def test_rejects_odd(self):
        with pytest.raises(ValueError):
            random_factorization(9)


class TestHelpers:
    def test_identity_is_involution(self):
        assert is_involution(identity_matching(6))

    def test_non_permutation_rejected(self):
        assert not is_involution((0, 0, 1))

    def test_non_involution_rejected(self):
        assert not is_involution((1, 2, 0))  # a 3-cycle

    def test_out_of_range_rejected(self):
        assert not is_involution((5, 0, 1))

    def test_matching_edges_skips_loops(self):
        edges = list(matching_edges((1, 0, 2)))
        assert edges == [(0, 1)]

    def test_matching_edges_with_loops(self):
        edges = list(matching_edges((1, 0, 2), include_loops=True))
        assert edges == [(0, 1), (2, 2)]

    @given(even_n, st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=15, deadline=None)
    def test_relabel_preserves_involution(self, n, seed):
        rng = random.Random(seed)
        factors = round_robin_factorization(n)
        sigma = list(range(n))
        rng.shuffle(sigma)
        for factor in factors:
            assert is_involution(relabel_matching(factor, sigma))

    def test_relabel_connects_images(self):
        matching = (1, 0, 3, 2)
        sigma = (2, 3, 0, 1)
        out = relabel_matching(matching, sigma)
        # 0-1 in the original means sigma[0]=2 pairs with sigma[1]=3.
        assert out[2] == 3 and out[3] == 2


class TestVerifyFactorization:
    def test_detects_wrong_count(self):
        factors = round_robin_factorization(6)[:-1]
        with pytest.raises(FactorizationError, match="expected 6"):
            verify_factorization(factors, 6)

    def test_detects_duplicate_coverage(self):
        factors = round_robin_factorization(6)
        factors[1] = factors[0]
        with pytest.raises(FactorizationError, match="covered more than once"):
            verify_factorization(factors, 6)

    def test_detects_non_involution(self):
        factors = [list(f) for f in round_robin_factorization(4)]
        factors[0] = [1, 2, 3, 0]
        with pytest.raises(FactorizationError, match="not an involution"):
            verify_factorization(factors, 4)

    def test_detects_wrong_size(self):
        factors = [f + (0,) for f in round_robin_factorization(4)]
        with pytest.raises(FactorizationError, match="size"):
            verify_factorization(factors, 4)
