"""Unit tests for the scenario registry, encoder, cache, and runner."""

import dataclasses
import json
import logging

import pytest

from repro.scenarios import (
    EncodeError,
    Param,
    ResultCache,
    Runner,
    ScenarioError,
    ScenarioExecutionError,
    all_scenarios,
    canonical_json,
    content_hash,
    derive_seed,
    get,
    scenario,
    select,
    to_jsonable,
)
from repro.scenarios import registry as registry_mod


def _exploding_formatter(value):
    """Module-level formatter target for the formatter-crash test."""
    raise KeyError("missing column")


@pytest.fixture
def scratch_registry():
    """Allow tests to register throwaway scenarios without leaking them."""
    before = dict(registry_mod._REGISTRY)
    yield registry_mod._REGISTRY
    registry_mod._REGISTRY.clear()
    registry_mod._REGISTRY.update(before)


class TestParamCoercion:
    def test_scalars(self):
        assert Param("k", 12).coerce("8") == 8
        assert Param("load", 0.5).coerce("0.25") == 0.25
        assert Param("name", "opera").coerce("clos") == "clos"
        assert Param("flag", False).coerce("true") is True
        assert Param("flag", True).coerce("0") is False

    def test_tuples_take_comma_lists(self):
        assert Param("loads", (0.1, 0.2)).coerce("0.3,0.4") == (0.3, 0.4)
        assert Param("radices", (12, 24)).coerce("8") == (8,)
        assert Param("nets", ("opera",)).coerce("clos,opera") == ("clos", "opera")

    def test_none_default_best_effort(self):
        param = Param("n_slices", None)
        assert param.coerce("27") == 27
        assert param.coerce("none") is None
        assert param.coerce("1.5") == 1.5

    def test_bad_values_raise_scenario_error(self):
        with pytest.raises(ScenarioError, match="n_racks"):
            Param("n_racks", 108).coerce("many")
        with pytest.raises(ScenarioError, match="flag"):
            Param("flag", True).coerce("maybe")


class TestRegistry:
    def test_builtin_scenarios_registered(self):
        names = {sc.name for sc in all_scenarios()}
        assert {"fig04", "fig07", "fig16", "fig18", "table1", "table2"} <= names
        assert {
            "ablation_grouping",
            "ablation_guard_bands",
            "ablation_vlb",
        } <= names
        assert "fig11_dynamic" in names
        assert len(names) == 20

    def test_schema_from_signature_with_registry_defaults(self):
        sc = get("fig04")
        assert sc.params["k"].default == 12
        # The registry default (27) intentionally diverges from the
        # function's own default (None = all slices).
        assert sc.params["n_slices"].default == 27

    def test_select_by_name_glob_and_tag(self):
        assert [sc.name for sc in select(names=["fig04"])] == ["fig04"]
        assert {sc.name for sc in select(names=["table*"])} == {"table1", "table2"}
        analysis = {sc.name for sc in select(tags=["analysis"])}
        assert "fig04" in analysis and "fig07" not in analysis
        with pytest.raises(ScenarioError, match="unknown scenario"):
            select(names=["fig99"])
        with pytest.raises(ScenarioError, match="unknown tag"):
            select(tags=["nope"])

    def test_decorator_registers_and_validates(self, scratch_registry):
        @scenario("tiny", tags=("analysis",), cost="cheap", title="tiny demo")
        def run(x: int = 2, y: int = 3):
            return {"product": x * y}

        sc = get("tiny")
        assert sc.description == "tiny demo"
        assert sc.bind({"x": "5"}) == {"x": 5, "y": 3}
        with pytest.raises(ScenarioError, match="no parameter"):
            sc.bind({"z": 1})
        assert sc.format(run()) == [repr({"product": 6})]  # no format_rows

    def test_decorator_rejects_undefaulted_params(self, scratch_registry):
        with pytest.raises(ValueError, match="fully defaulted"):
            @scenario("bad")
            def run(x):  # pragma: no cover - registration fails
                return x

    def test_decorator_rejects_unknown_cost_and_defaults(self, scratch_registry):
        with pytest.raises(ValueError, match="cost hint"):
            scenario("bad", cost="enormous")
        with pytest.raises(ValueError, match="unknown"):
            @scenario("bad2", defaults={"zz": 1})
            def run(x: int = 1):  # pragma: no cover
                return x


class TestEncode:
    def test_dataclass_and_odd_keys(self):
        @dataclasses.dataclass
        class Point:
            x: int
            tags: tuple

        value = {"pt": Point(1, ("a", "b")), "hist": {3: 4, 5: 6}}
        encoded = to_jsonable(value)
        assert encoded == {
            "pt": {"x": 1, "tags": ["a", "b"]},
            "hist": {"__pairs__": [[3, 4], [5, 6]]},
        }
        json.dumps(encoded)  # actually JSON-encodable

    def test_unencodable_raises(self):
        with pytest.raises(EncodeError):
            to_jsonable(object())

    def test_canonical_json_is_stable(self):
        a = canonical_json({"b": 1, "a": (1, 2)})
        b = canonical_json({"a": [1, 2], "b": 1})
        assert a == b
        assert content_hash({"b": 1, "a": (1, 2)}) == content_hash(
            {"a": [1, 2], "b": 1}
        )


class TestResultCache:
    def test_roundtrip_and_keying(self, tmp_path):
        cache = ResultCache(tmp_path)
        doc = {"rows": ["r1"], "payload": {"v": 1}}
        cache.put("fig06", {"n_racks": 108}, doc)
        assert cache.get("fig06", {"n_racks": 108}) == doc
        assert cache.get("fig06", {"n_racks": 216}) is None
        assert cache.path("fig06", {"n_racks": 108}).parent.name == "fig06"

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("fig06", {}, {"rows": []})
        cache.path("fig06", {}).write_text("{not json")
        assert cache.get("fig06", {}) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("fig06", {}, {"rows": []})
        cache.put("table1", {}, {"rows": []})
        assert cache.clear("fig06") == 1
        assert cache.get("fig06", {}) is None
        assert cache.get("table1", {}) is not None
        assert cache.clear() == 1

    def test_env_var_location(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        assert ResultCache().root == tmp_path / "envcache"

    def test_run_file_stats_and_gc(self, tmp_path):
        import os
        import time

        from repro.scenarios.cache import STALE_RUN_FILE_S

        cache = ResultCache(tmp_path)
        assert cache.run_file_stats() == {}
        (tmp_path / "_journal").mkdir()
        (tmp_path / "_trace").mkdir()
        fresh = tmp_path / "_journal" / "fresh.jsonl"
        stale = tmp_path / "_trace" / "stale.jsonl"
        fresh.write_text('{"ev": "start"}\n')
        stale.write_text('{"ev": "start"}\n')
        old = time.time() - STALE_RUN_FILE_S - 24 * 3600
        os.utime(stale, (old, old))
        stats = cache.run_file_stats()
        assert stats["_journal"]["files"] == 1
        assert stats["_trace"]["oldest_age_s"] > STALE_RUN_FILE_S
        # Age-bounded GC takes only the stale file; unbounded takes all.
        assert cache.gc_run_files(STALE_RUN_FILE_S) == 1
        assert fresh.exists() and not stale.exists()
        assert cache.gc_run_files() == 1
        assert not fresh.exists()

    def test_scenario_scoped_clear_gcs_stale_run_files(self, tmp_path):
        import os
        import time

        from repro.scenarios.cache import STALE_RUN_FILE_S

        cache = ResultCache(tmp_path)
        cache.put("fig06", {}, {"rows": []})
        (tmp_path / "_journal").mkdir()
        stale = tmp_path / "_journal" / "old-run.jsonl"
        fresh = tmp_path / "_journal" / "live-run.jsonl"
        stale.write_text("{}\n")
        fresh.write_text("{}\n")
        old = time.time() - STALE_RUN_FILE_S - 24 * 3600
        os.utime(stale, (old, old))
        # Scenario-scoped: the entry goes by name, run files only by age
        # (a fresh journal may belong to someone else's live run).
        assert cache.clear("fig06") == 2
        assert not stale.exists() and fresh.exists()
        # Root-wide clear removes run files regardless of age.
        assert cache.clear() == 1
        assert not fresh.exists()


class TestRunner:
    def test_in_process_run_keeps_raw_value(self):
        res = Runner(cache=None).run(names=["fig06"])[0]
        assert res.cached is False
        assert isinstance(res.value, dict) and res.value["cycle_slices"] == 108
        assert any("cycle" in row for row in res.rows)

    def test_cache_hit_and_no_cache_refresh(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = Runner(cache=cache).run(names=["fig06"])[0]
        second = Runner(cache=cache).run(names=["fig06"])[0]
        assert (first.cached, second.cached) == (False, True)
        assert second.rows == first.rows and second.payload == first.payload
        # --no-cache semantics: reads skipped, result still stored.
        third = Runner(cache=cache, use_cache=False).run(names=["fig06"])[0]
        assert third.cached is False

    def test_worker_pool_matches_in_process(self, tmp_path):
        serial = Runner(cache=None).run(names=["fig06", "table2"])
        pooled = Runner(workers=2, cache=ResultCache(tmp_path)).run(
            names=["fig06", "table2"]
        )
        assert [r.name for r in pooled] == ["fig06", "table2"]  # input order
        for s, p in zip(serial, pooled):
            assert p.rows == s.rows and p.payload == s.payload
        # The pooled run populated the cache for both scenarios.
        warm = Runner(workers=2, cache=ResultCache(tmp_path)).run(
            names=["fig06", "table2"]
        )
        assert all(r.cached for r in warm)

    def test_overrides_apply_loosely_across_selection(self):
        results = Runner(cache=None).run(
            names=["fig06", "table2"], overrides={"n_racks": "216"}
        )
        by_name = {r.name: r for r in results}
        assert by_name["fig06"].params["n_racks"] == 216
        assert "n_racks" not in by_name["table2"].params
        with pytest.raises(ScenarioError, match="no selected scenario"):
            Runner(cache=None).run(names=["fig06"], overrides={"bogus": "1"})

    def test_base_seed_derives_stable_per_scenario_seeds(self):
        jobs = Runner(cache=None, base_seed=42).resolve(names=["fig04", "fig16"])
        seeds = {job.scenario.name: job.params["seed"] for job in jobs}
        assert seeds["fig04"] == derive_seed(42, "fig04")
        assert seeds["fig16"] == derive_seed(42, "fig16")
        assert seeds["fig04"] != seeds["fig16"]
        # An explicit override beats derivation.
        jobs = Runner(cache=None, base_seed=42).resolve(
            names=["fig04"], overrides={"seed": "5"}
        )
        assert jobs[0].params["seed"] == 5

    def test_sweep_runs_the_grid(self, tmp_path):
        results = Runner(cache=ResultCache(tmp_path)).sweep(
            "fig06", {"n_racks": [108, 216], "n_switches": [6]}
        )
        assert [(r.params["n_racks"], r.params["n_switches"]) for r in results] == [
            (108, 6),
            (216, 6),
        ]
        assert results[0].value["cycle_slices"] != results[1].value["cycle_slices"]

    def test_execute_validates_and_returns_raw(self):
        data = Runner().execute("fig06", n_racks=216)
        assert data["cycle_slices"] == 216
        with pytest.raises(ScenarioError):
            Runner().execute("fig06", bogus=1)

    def test_failures_carry_scenario_context(self, scratch_registry):
        @scenario("boom", title="always raises")
        def run():
            raise RuntimeError("kaboom")

        with pytest.raises(ScenarioExecutionError, match="boom") as err:
            Runner(cache=None).run(names=["boom"])
        assert "kaboom" in err.value.worker_traceback

    def test_scenario_failure_is_logged_with_label(
        self, scratch_registry, caplog
    ):
        # Trapped scenario exceptions become error docs, but never
        # silently: the runner logs a warning carrying the unit label and
        # the real traceback even when no caller inspects the doc.
        @scenario("boomlog", title="always raises")
        def run():
            raise RuntimeError("kaboom")

        with caplog.at_level(logging.WARNING, logger="repro.scenarios.runner"):
            with pytest.raises(ScenarioExecutionError):
                Runner(cache=None).run(names=["boomlog"])
        records = [
            r for r in caplog.records if "boomlog" in r.getMessage()
        ]
        assert records, "scenario failure was swallowed without a log line"
        assert records[0].exc_info is not None
        assert "kaboom" in str(records[0].exc_info[1])

    def test_cell_failure_is_logged_with_cell_label(self, tmp_path, caplog):
        # Cell failures log scenario *and* cell key (the unit label).
        from repro.scenarios.runner import _execute_cell

        with caplog.at_level(logging.WARNING, logger="repro.scenarios.runner"):
            doc, value = _execute_cell("fig07", "bogus@1.0", {"no_such": 1})
        assert value is None and "error" in doc
        msgs = [r.getMessage() for r in caplog.records]
        assert any("fig07" in m and "bogus@1.0" in m for m in msgs)

    def test_formatter_crash_is_a_scenario_failure(self, scratch_registry):
        # Formatters run inside the execution guard: a formatter bug must
        # surface as ScenarioExecutionError with context, not escape raw.
        @scenario("badfmt", title="formatter raises",
                  formatter="_exploding_formatter")
        def run(x: int = 1):
            return x

        with pytest.raises(ScenarioExecutionError, match="badfmt") as err:
            Runner(cache=None).run(names=["badfmt"])
        assert "missing column" in err.value.worker_traceback

    def test_missing_formatter_falls_back_to_repr(self, scratch_registry):
        @scenario("nofmt", title="no formatter in module",
                  formatter="_no_such_function")
        def run(x: int = 1):
            return x

        assert Runner(cache=None).run(names=["nofmt"])[0].rows == ["1"]

    def test_one_failure_does_not_discard_batch_caching(
        self, scratch_registry, tmp_path
    ):
        calls = {"good": 0}

        @scenario("good", title="succeeds")
        def good():
            calls["good"] += 1
            return {"ok": True}

        @scenario("bad", title="fails")
        def bad():
            raise RuntimeError("nope")

        cache = ResultCache(tmp_path)
        with pytest.raises(ScenarioExecutionError, match="bad"):
            Runner(cache=cache).run(names=["good", "bad"])
        # The success was cached despite the batch failure...
        assert calls["good"] == 1
        res = Runner(cache=cache).run(names=["good"])[0]
        assert res.cached is True
        assert calls["good"] == 1  # ...so it is not recomputed.
