"""Distributed cell executor: wire framing, coordinator leasing and
failure recovery, and Runner-level differential equivalence.

The load-bearing guarantees:

* a distributed run (coordinator + TCP workers) produces results
  bit-identical to the in-process/pooled/sharded paths — same seeds, same
  executor functions, same merge;
* killing a worker mid-sweep re-leases its units to surviving workers and
  the final payload is unchanged;
* auto-spawned local workers that die are respawned while leased work
  remains.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.distrib import Coordinator, parse_address, spawn_local_worker
from repro.distrib.protocol import (
    FrameReader,
    ProtocolError,
    encode_frame,
    recv_msg,
    send_msg,
)
from repro.distrib.worker import KILLED_EXIT
from repro.scenarios import Progress, ResultCache, Runner
from repro.scenarios.runner import _execute, _execute_cell

#: Same tiny fig07 configuration the sharding tests pin (4 packet cells).
TINY_FIG07 = {
    "loads": (0.02, 0.05),
    "networks": ("opera", "rotornet"),
    "duration_ms": 0.4,
    "scale": "ci",
}

SRC_ROOT = str(Path(__file__).resolve().parents[1] / "src")


def _worker_env(**extra: str) -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_ROOT + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.update(extra)
    return env


def _spawn_worker(port: int, **extra_env: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro.distrib.worker", f"127.0.0.1:{port}"],
        env=_worker_env(**extra_env),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def _reap(*procs: subprocess.Popen) -> None:
    for p in procs:
        if p.poll() is None:
            p.terminate()
    for p in procs:
        try:
            p.wait(timeout=10)
        except subprocess.TimeoutExpired:
            p.kill()


# ----------------------------------------------------------------- protocol


class TestProtocol:
    def test_frame_roundtrip_through_reader(self):
        msgs = [
            {"type": "hello", "worker": "w", "pid": 1},
            {"type": "lease", "uid": 0, "params": {"x": (1, 2)}},
            {"type": "result", "uid": 2**40, "doc": {"v": 0.1}},
        ]
        import json

        wire = b"".join(encode_frame(m) for m in msgs)
        reader = FrameReader()
        decoded = []
        # One byte at a time: a frame split across arbitrary TCP segment
        # boundaries must decode identically to one that arrived whole.
        for i in range(len(wire)):
            decoded.extend(reader.feed(wire[i:i + 1]))
        assert decoded == [json.loads(json.dumps(m)) for m in msgs]

    def test_many_frames_in_one_chunk(self):
        msgs = [{"type": "heartbeat", "n": i} for i in range(5)]
        reader = FrameReader()
        assert list(reader.feed(b"".join(encode_frame(m) for m in msgs))) == msgs

    def test_non_utf8_safe_strings_survive(self):
        # Lone surrogates (os.fsdecode artifacts) and control characters
        # must cross the ASCII-JSON wire unchanged.
        tricky = {"type": "result", "s": "𐏿", "c": "\x00\x1f", "u": "π"}
        reader = FrameReader()
        (decoded,) = reader.feed(encode_frame(tricky))
        assert decoded == tricky

    def test_numeric_fidelity(self):
        msg = {"type": "x", "big": 2**80 + 1, "f": [0.1, 1e308, 5e-324]}
        reader = FrameReader()
        (decoded,) = reader.feed(encode_frame(msg))
        assert decoded["big"] == 2**80 + 1
        assert decoded["f"] == [0.1, 1e308, 5e-324]

    def test_oversized_header_rejected(self):
        import struct

        reader = FrameReader()
        with pytest.raises(ProtocolError, match="exceeds"):
            list(reader.feed(struct.pack(">I", 1 << 31)))

    def test_non_object_message_rejected(self):
        import json
        import struct

        body = json.dumps([1, 2]).encode()
        reader = FrameReader()
        with pytest.raises(ProtocolError, match="JSON object"):
            list(reader.feed(struct.pack(">I", len(body)) + body))

    def test_socket_send_recv_roundtrip(self):
        a, b = socket.socketpair()
        try:
            send_msg(a, {"type": "ready"})
            send_msg(a, {"type": "lease", "uid": 1})
            assert recv_msg(b) == {"type": "ready"}
            assert recv_msg(b) == {"type": "lease", "uid": 1}
            a.close()
            assert recv_msg(b) is None  # clean EOF
        finally:
            b.close()

    def test_truncated_length_prefix_is_a_protocol_error(self):
        # A peer that dies two bytes into the 4-byte header must not
        # impersonate an orderly shutdown: EOF mid-frame raises, EOF at a
        # frame boundary (tested above) returns None.
        a, b = socket.socketpair()
        try:
            a.sendall(encode_frame({"type": "ready"})[:2])
            a.close()
            with pytest.raises(ProtocolError, match="closed mid-frame"):
                recv_msg(b)
        finally:
            b.close()

    def test_eof_mid_body_is_a_protocol_error(self):
        a, b = socket.socketpair()
        try:
            frame = encode_frame({"type": "result", "uid": 1})
            a.sendall(frame[: len(frame) // 2])  # header + part of the body
            a.close()
            with pytest.raises(ProtocolError, match="closed mid-frame"):
                recv_msg(b)
        finally:
            b.close()

    def test_partial_writes_reassemble(self):
        # A sender dribbling one byte at a time (worst-case segmentation)
        # must decode identically to a frame that arrived whole.
        a, b = socket.socketpair()
        result = {}

        def _recv():
            result["msg"] = recv_msg(b)

        thread = threading.Thread(target=_recv)
        thread.start()
        try:
            msg = {"type": "lease", "uid": 7, "params": {"x": [1, 2]}}
            for byte in encode_frame(msg):
                a.sendall(bytes([byte]))
                time.sleep(0.001)
            thread.join(timeout=10)
            assert not thread.is_alive()
            assert result["msg"] == msg
        finally:
            a.close()
            b.close()

    def test_parse_address(self):
        assert parse_address("10.0.0.1:7077") == ("10.0.0.1", 7077)
        assert parse_address(("h", 1)) == ("h", 1)
        with pytest.raises(ValueError):
            parse_address("7077")


# -------------------------------------------------------------- coordinator


def _cheap_units() -> list[dict]:
    """Two fast analysis units (no packet simulation)."""
    from repro.scenarios import get
    from repro.scenarios.encode import to_portable

    units = []
    for uid, name in enumerate(("fig06", "table1")):
        params = get(name).bind({})
        units.append(
            {
                "uid": uid,
                "kind": "scenario",
                "name": name,
                "cell_key": None,
                "params": to_portable(params),
            }
        )
    return units


class _FakeWorker:
    """A scripted raw-socket worker for deterministic failure injection.

    Connects immediately (the coordinator's listen backlog holds the
    connection until ``run()`` starts accepting), announces ready, and on
    its first lease either drops the connection (``mode="die"``) or holds
    the lease silently without results or heartbeats (``mode="stall"``) —
    the two failure shapes the coordinator must recover from.
    """

    def __init__(self, port: int, mode: str):
        assert mode in ("die", "stall")
        self.mode = mode
        self.port = port
        self.lease = None
        self._release = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()

    def _run(self) -> None:
        sock = socket.create_connection(("127.0.0.1", self.port), timeout=10)
        try:
            send_msg(sock, {"type": "hello", "worker": "fake", "pid": 0})
            send_msg(sock, {"type": "ready"})
            sock.settimeout(30)
            msg = recv_msg(sock)
            if msg and msg.get("type") == "lease":
                self.lease = msg
                if self.mode == "stall":
                    self._release.wait(30)
        finally:
            sock.close()

    def stop(self) -> None:
        self._release.set()
        self.thread.join(timeout=10)


class TestCoordinator:
    def test_leases_execute_and_match_local_docs(self):
        coord = Coordinator()
        worker = _spawn_worker(coord.address[1])
        try:
            got = {uid: doc for uid, doc, _w in coord.run(_cheap_units())}
        finally:
            coord.close()
            _reap(worker)
        assert set(got) == {0, 1}
        from repro.scenarios import get

        for uid, name in enumerate(("fig06", "table1")):
            local_doc, _ = _execute(name, get(name).bind({}))
            assert got[uid]["rows"] == local_doc["rows"]
            assert got[uid]["payload"] == local_doc["payload"]

    def test_dead_worker_unit_is_released_to_survivor(self):
        # The fake is the only worker connected when leasing starts, so it
        # is guaranteed a lease — which it takes to its grave.
        coord = Coordinator()
        fake = _FakeWorker(coord.address[1], mode="die")
        real = _spawn_worker(coord.address[1])
        try:
            got = {uid: doc for uid, doc, _w in coord.run(_cheap_units())}
        finally:
            fake.stop()
            coord.close()
            _reap(real)
        assert set(got) == {0, 1}
        assert coord.releases >= 1
        assert fake.lease is not None
        assert all("rows" in doc for doc in got.values())

    def test_stalled_worker_times_out_and_releases(self):
        # The fake takes a lease and then goes silent (no result, no
        # heartbeat): the coordinator must declare it stalled after
        # lease_timeout and re-lease its unit.
        coord = Coordinator(lease_timeout=1.0)
        fake = _FakeWorker(coord.address[1], mode="stall")
        real = _spawn_worker(coord.address[1])
        try:
            got = {uid: doc for uid, doc, _w in coord.run(_cheap_units())}
        finally:
            fake.stop()
            coord.close()
            _reap(real)
        assert set(got) == {0, 1}
        assert coord.releases >= 1
        assert fake.lease is not None

    def test_idle_worker_survives_past_connect_timeout(self):
        # Regression: create_connection's 5s timeout must not persist as
        # a recv timeout — a worker idling with no lease (queue drained,
        # long tail unit elsewhere) has to block indefinitely, not die.
        coord = Coordinator()
        worker = _spawn_worker(coord.address[1])
        try:
            time.sleep(6.5)  # longer than the dial timeout
            assert worker.poll() is None, "idle worker died while waiting"
            got = list(coord.run(_cheap_units()[:1]))
        finally:
            coord.close()
            _reap(worker)
        assert len(got) == 1 and "rows" in got[0][1]

    def test_poison_unit_fails_after_release_bound(self):
        # A unit that kills every worker it touches must come back as an
        # error document after max_releases, not consume the fleet forever.
        coord = Coordinator(max_releases=3)
        fakes = [
            _FakeWorker(coord.address[1], mode="die") for _ in range(3)
        ]
        try:
            ((uid, doc, _w),) = list(coord.run(_cheap_units()[:1]))
        finally:
            for fake in fakes:
                fake.stop()
            coord.close()
        assert uid == 0
        assert "lost its worker 3 times" in doc["error"]
        assert coord.releases == 3

    def test_unknown_scenario_is_an_error_doc_not_a_dead_worker(self):
        # Version skew: a unit the worker's checkout can't resolve must
        # produce an error document and leave the worker serving.
        units = _cheap_units()[:1]
        units.insert(
            0,
            {"uid": 99, "kind": "scenario", "name": "no_such_scenario",
             "cell_key": None, "params": {}},
        )
        coord = Coordinator()
        worker = _spawn_worker(coord.address[1])
        try:
            got = {uid: doc for uid, doc, _w in coord.run(units)}
        finally:
            coord.close()
            _reap(worker)
        assert "unknown scenario" in got[99]["error"]
        assert "rows" in got[0]  # same worker went on to finish real work

    def test_run_starts_before_workers_connect(self):
        # Results stream even when the only worker dials in late.
        coord = Coordinator()
        port = coord.address[1]
        worker_holder: list[subprocess.Popen] = []

        def _late_spawn() -> None:
            time.sleep(0.5)
            worker_holder.append(_spawn_worker(port))

        threading.Thread(target=_late_spawn, daemon=True).start()
        try:
            got = list(coord.run(_cheap_units()))
        finally:
            coord.close()
            _reap(*worker_holder)
        assert len(got) == 2


# -------------------------------------------------- runner: differential


class TestRunnerDistributed:
    def test_distributed_matches_in_process_bitwise(self, tmp_path):
        """Acceptance: distributed == in-process, including cells/caching."""
        plain = Runner(cache=None).execute("fig07", **TINY_FIG07)
        seen: list[Progress] = []
        dist = Runner(
            cache=ResultCache(tmp_path),
            executor="distributed",
            workers=2,
            progress=seen.append,
        ).run(names=["fig07"], overrides=TINY_FIG07)[0]
        assert dist.cells == (4, 0, 4)
        assert dist.value == plain
        serial = Runner(cache=None).run(names=["fig07"], overrides=TINY_FIG07)[0]
        assert dist.payload == serial.payload
        assert dist.rows == serial.rows
        # Progress accounts for remotely completed units: every unit is
        # counted and attributed to a named worker.
        assert [p.done for p in seen] == [1, 2, 3, 4]
        assert all(p.total == 4 for p in seen)
        assert all(p.worker for p in seen)

    def test_distributed_cells_resume_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = Runner(
            cache=cache, executor="distributed", workers=2
        ).run(names=["fig07"], overrides=TINY_FIG07)[0]
        # Drop the merged doc and one cell; a *local* run must resume from
        # the distributed run's cells (shared cache vocabulary).
        from repro.scenarios import get

        sc = get("fig07")
        params = sc.bind(TINY_FIG07)
        cache.path("fig07", params).unlink()
        plan = sc.shard_plan(**params)
        cache.cell_path("fig07", plan[0].key, plan[0].params).unlink()
        second = Runner(cache=cache).run(names=["fig07"], overrides=TINY_FIG07)[0]
        assert second.cells == (1, 3, 4)
        assert second.payload == first.payload

    def test_killed_worker_mid_sweep_recovers_identically(self, tmp_path):
        """Acceptance: kill a worker mid-sweep; its leased cells re-run and
        the merged payload is bit-identical."""
        plain = Runner(cache=None).execute("fig07", **TINY_FIG07)
        port = _free_port()
        # The flaky worker dies the instant it is leased a cell
        # (REPRO_WORKER_MAX_UNITS=0 -> os._exit holding the lease). It is
        # the only worker until it is confirmed dead, so it *must* be
        # leased — no race with the healthy worker.
        flaky = _spawn_worker(port, REPRO_WORKER_MAX_UNITS="0")
        healthy = None
        holder: list = []

        def _run() -> None:
            holder.append(
                Runner(
                    cache=ResultCache(tmp_path),
                    executor="distributed",
                    workers=0,
                    listen=("127.0.0.1", port),
                ).run(names=["fig07"], overrides=TINY_FIG07)[0]
            )

        thread = threading.Thread(target=_run, daemon=True)
        thread.start()
        try:
            assert flaky.wait(timeout=60) == KILLED_EXIT  # died mid-lease
            healthy = _spawn_worker(port)
            thread.join(timeout=120)
            assert not thread.is_alive()
        finally:
            _reap(*([flaky] + ([healthy] if healthy else [])))
        res = holder[0]
        assert res.cells == (4, 0, 4)
        assert res.value == plain

    def test_dead_autospawned_workers_are_respawned(self, tmp_path, monkeypatch):
        # Every auto-spawned worker dies after one completed unit, so
        # draining 4 cells requires the watchdog to keep respawning.
        monkeypatch.setenv("REPRO_WORKER_MAX_UNITS", "1")
        plain = Runner(cache=None).execute("fig07", **TINY_FIG07)
        res = Runner(
            cache=ResultCache(tmp_path),
            executor="distributed",
            workers=2,
            max_respawns=8,
        ).run(names=["fig07"], overrides=TINY_FIG07)[0]
        assert res.cells == (4, 0, 4)
        assert res.value == plain

    def test_exhausted_respawn_budget_raises_instead_of_hanging(
        self, tmp_path, monkeypatch
    ):
        # Workers die on their first lease and the budget only covers one
        # replacement: the run must fail loudly, never spin forever.
        monkeypatch.setenv("REPRO_WORKER_MAX_UNITS", "0")
        with pytest.raises(RuntimeError, match="respawn budget"):
            Runner(
                cache=ResultCache(tmp_path),
                executor="distributed",
                workers=1,
                max_respawns=1,
            ).run(names=["fig07"], overrides=TINY_FIG07)

    def test_distributed_without_reachable_workers_is_rejected(self):
        with pytest.raises(ValueError, match="listen"):
            Runner(executor="distributed", workers=0)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            Runner(executor="cloud")


# ----------------------------------------------------------- CLI integration


class TestCliDistributed:
    def test_run_alias_distributed_workers(self, tmp_path, monkeypatch, capsys):
        """The acceptance command shape: ``repro run fig07_datamining
        --executor distributed --workers 2``."""
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        args = [
            "run", "fig07_datamining", "--executor", "distributed",
            "--workers", "2", "--set", "duration_ms=0.4",
            "--set", "networks=opera,rotornet", "--set", "loads=0.02,0.05",
            "--set", "scale=ci", "--no-progress",
        ]
        assert main(args) == 0
        dist_out = capsys.readouterr().out
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache2"))
        assert main([
            "run", "fig07", "--set", "duration_ms=0.4",
            "--set", "networks=opera,rotornet", "--set", "loads=0.02,0.05",
            "--set", "scale=ci", "--no-progress",
        ]) == 0
        local_out = capsys.readouterr().out
        strip = lambda text: [
            line for line in text.splitlines() if not line.startswith("===")
        ]
        assert strip(dist_out) == strip(local_out)

    def test_spawn_local_worker_helper(self):
        # The helper must point the child at loopback when the coordinator
        # listens on a wildcard address.
        coord = Coordinator(host="0.0.0.0")
        proc = spawn_local_worker(coord.address)
        try:
            got = list(coord.run(_cheap_units()))
        finally:
            coord.close()
            _reap(proc)
        assert len(got) == 2
