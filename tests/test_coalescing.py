"""Differential tests for the event-coalescing engine.

The coalescing contract is that packing an ``at_many`` block into train
entries is *invisible*: timestamps, dispatch order, tie-breaks, the clock
trajectory, ``events_processed`` and ``pending`` are bit-identical to the
uncoalesced one-entry-per-event path, under both schedulers, through
horizon cuts, event budgets and preemption re-pushes. These tests pin
that with random bulk-scheduling cascades, with full packet workloads
compared observable-by-observable, with train-specific engine corner
cases, and with the scenario Runner (coalescing off vs on must produce
byte-identical FCT rows; the existing distributed/pooled differential
suites then extend the chain to every executor).
"""

import random

import pytest

from repro.experiments.fctsim import MS, build_network, run_fct_experiment
from repro.net.sim import Simulator
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.distributions import DATAMINING

COMBOS = [
    ("heap", False),
    ("heap", True),
    ("wheel", False),
    ("wheel", True),
]


def bulk_cascade(scheduler: str, coalesce: bool, seed: int, snapshots=None):
    """Seeded self-scheduling storm built on ``at_many`` bursts.

    Mixes same-timestamp entries (tie-producing), sub-gap delays (train-
    forming), and far-future delays (overflow/rotation exercising), and
    drains in chunks with event budgets so trains get cut and resumed.
    Returns every observable.
    """
    sim = Simulator(scheduler=scheduler, coalesce=coalesce)
    rng = random.Random(seed)
    trace = []

    def fire(tag):
        trace.append((sim.now, tag))
        # Subcritical branching (mean < 1) so every cascade dies out.
        k = rng.choices((0, 1, 2, 3), weights=(5, 3, 2, 1))[0]
        entries = []
        for i in range(k):
            delay = rng.choice(
                (
                    0,
                    rng.randrange(1, 80_000),
                    rng.randrange(1, 2_000_000),
                    rng.randrange(1, 5_000_000_000),
                )
            )
            entries.append((sim.now + delay, fire, (f"{tag}.{i}",)))
        sim.at_many(entries)

    for i in range(40):
        sim.at(rng.randrange(0, 50_000_000), fire, str(i))
    for chunk in (
        dict(until_ps=100_000_000, max_events=500),
        dict(until_ps=2_000_000_000),
        dict(max_events=50),
        dict(max_events=3_000),
        dict(),
    ):
        sim.run(**chunk)
        if snapshots is not None:
            snapshots.append((sim.now, sim.events_processed, sim.pending))
    return tuple(trace), sim.now, sim.events_processed, sim.pending, sim


class TestDifferentialCascades:
    @pytest.mark.parametrize("seed", range(15))
    def test_all_combos_trace_identically(self, seed):
        baseline = bulk_cascade("heap", False, seed)[:4]
        for scheduler, coalesce in COMBOS[1:]:
            assert bulk_cascade(scheduler, coalesce, seed)[:4] == baseline

    def test_cascades_form_and_resume_trains(self):
        # The coalescing path must actually be exercised: trains form,
        # some get preempted/cut and re-pushed, and events still count
        # per element.
        total_trains = total_repushes = 0
        for seed in range(15):
            *_state, sim = bulk_cascade("heap", True, seed)
            total_trains += sim.trains_formed
            total_repushes += sim.train_repushes
            # Every popped train dispatches at least one element through
            # the train loop (a preempted single-element remainder is
            # downgraded to a plain entry, so 2x is not guaranteed).
            assert sim.train_events >= sim.trains_formed
        assert total_trains > 50
        assert total_repushes > 0

    def test_coalescing_never_increases_pushes(self):
        for seed in range(15):
            off = bulk_cascade("heap", False, seed)[4]
            on = bulk_cascade("heap", True, seed)[4]
            assert on.sched_pushes <= off.sched_pushes

    @pytest.mark.parametrize("seed", range(10))
    def test_pending_and_events_processed_agree_at_every_chunk(self, seed):
        # Satellite contract: the accounting observables agree between
        # coalesced and uncoalesced runs at every chunk boundary — a
        # budget may expire mid-train, and `pending` must keep counting
        # deliverable elements, not scheduler entries.
        snaps = {}
        for scheduler, coalesce in COMBOS:
            snapshots = []
            bulk_cascade(scheduler, coalesce, seed, snapshots)
            snaps[(scheduler, coalesce)] = snapshots
        baseline = snaps[("heap", False)]
        for combo, snapshots in snaps.items():
            assert snapshots == baseline, combo


class TestTrainMechanics:
    def test_at_many_ties_dispatch_in_list_order(self):
        for coalesce in (False, True):
            sim = Simulator(coalesce=coalesce)
            seen = []
            sim.at_many([(5, seen.append, ("a",)), (5, seen.append, ("b",))])
            sim.at(5, seen.append, "c")
            sim.run()
            assert seen == ["a", "b", "c"], f"coalesce={coalesce}"

    def test_at_many_unsorted_input_dispatches_by_time(self):
        sim = Simulator(coalesce=True, coalesce_gap_ps=1 << 40)
        seen = []
        sim.at_many([(30, seen.append, (3,)), (10, seen.append, (1,)), (20, seen.append, (2,))])
        assert sim.pending == 3
        assert sim.trains_formed == 1
        sim.run()
        assert seen == [1, 2, 3]
        assert sim.events_processed == 3

    def test_empty_and_single_entry_bulk(self):
        sim = Simulator(coalesce=True)
        seen = []
        sim.at_many([])
        sim.at_many([(7, seen.append, ("x",))])
        assert sim.trains_formed == 0
        sim.run()
        assert seen == ["x"]

    def test_gap_split_forms_separate_groups(self):
        sim = Simulator(coalesce=True, coalesce_gap_ps=100)
        sink = []
        sim.at_many(
            [
                (0, sink.append, (0,)),
                (50, sink.append, (1,)),  # same group (gap 50)
                (10_000, sink.append, (2,)),  # split (gap 9950 > 100)
                (10_050, sink.append, (3,)),
            ]
        )
        assert sim.trains_formed == 2
        assert sim.pending == 4
        sim.run()
        assert sink == [0, 1, 2, 3]

    def test_preempting_event_interleaves_exactly(self):
        # A single at() landing between two train elements must dispatch
        # between them (forcing a re-push), exactly as uncoalesced.
        for coalesce in (False, True):
            sim = Simulator(coalesce=coalesce, coalesce_gap_ps=1 << 40)
            seen = []
            sim.at_many([(10, seen.append, ("t0",)), (1000, seen.append, ("t1",))])
            sim.at(500, seen.append, "mid")
            sim.run()
            assert seen == ["t0", "mid", "t1"]
            if coalesce:
                assert sim.train_repushes == 1

    def test_budget_cuts_train_and_resumes(self):
        sim = Simulator(coalesce=True, coalesce_gap_ps=1 << 40)
        seen = []
        sim.at_many([(10, seen.append, (1,)), (20, seen.append, (2,)), (30, seen.append, (3,))])
        assert sim.run(until_ps=500, max_events=2) == 2
        assert seen == [1, 2]
        assert sim.now == 20  # behind the horizon by design
        assert sim.pending == 1
        assert sim.run(until_ps=500) == 1
        assert seen == [1, 2, 3]
        assert sim.now == 500

    def test_horizon_cuts_train_and_resumes(self):
        for scheduler in ("heap", "wheel"):
            sim = Simulator(scheduler=scheduler, coalesce=True, coalesce_gap_ps=1 << 40)
            seen = []
            sim.at_many([(10, seen.append, (1,)), (2_000, seen.append, (2,))])
            assert sim.run(until_ps=100) == 1
            assert sim.now == 100 and sim.pending == 1
            sim.run()
            assert seen == [1, 2] and sim.now == 2_000

    def test_wheel_budget_cut_of_tied_train_repushes_cleanly(self):
        # Regression: a budget-cut train re-pushed under its original
        # (time, seq) can tie its own consumed entry in the wheel's ready
        # list; the insertion must compare on (time, seq) only — a
        # full-tuple comparison falls through to the (unorderable)
        # callback objects and raised TypeError.
        sim = Simulator(scheduler="wheel", coalesce=True, coalesce_gap_ps=1 << 40)
        seen = []
        sim.at(5_000_000, seen.append, "far")
        sim.at_many([(0, seen.append, ("a",)), (0, seen.append, ("b",))])
        assert sim.run(max_events=1) == 1
        assert seen == ["a"] and sim.pending == 2
        sim.run()
        assert seen == ["a", "b", "far"]

    def test_pending_is_exact_inside_a_running_train(self):
        # Regression: `pending` must count deliverable events exactly as
        # the uncoalesced engine would *during* a train element's
        # callback, not only at chunk boundaries.
        views = {}
        for coalesce in (False, True):
            sim = Simulator(coalesce=coalesce, coalesce_gap_ps=1 << 40)
            seen = []
            probe = lambda s=sim, out=seen: out.append(s.pending)
            sim.at_many([(5, probe, ()), (5, probe, ()), (5, probe, ())])
            sim.run()
            views[coalesce] = seen
        assert views[True] == views[False] == [2, 1, 0]

    def test_budget_exhausted_on_last_train_element_does_not_advance(self):
        # The engine's budget-on-last-event clock contract, hit mid-train.
        for scheduler in ("heap", "wheel"):
            sim = Simulator(scheduler=scheduler, coalesce=True, coalesce_gap_ps=1 << 40)
            sim.at_many([(10, lambda: None, ()), (20, lambda: None, ())])
            assert sim.run(until_ps=500, max_events=2) == 2
            assert sim.now == 20, scheduler
            assert sim.run(until_ps=500, max_events=5) == 0
            assert sim.now == 500


class TestSchedulingErrors:
    def test_past_at_names_callback_and_scheduler(self):
        sim = Simulator(scheduler="heap")
        sim.run(until_ps=100)

        def my_callback():
            pass  # pragma: no cover - never runs

        with pytest.raises(ValueError) as err:
            sim.at(50, my_callback)
        message = str(err.value)
        assert "my_callback" in message
        assert "'heap'" in message
        assert "50 < now=100" in message

    def test_past_after_names_callback_and_scheduler(self):
        sim = Simulator(scheduler="wheel")
        with pytest.raises(ValueError, match=r"append.*'wheel'"):
            sim.after(-1, [].append)

    def test_past_at_many_names_offending_entry(self):
        for coalesce in (False, True):
            sim = Simulator(coalesce=coalesce)
            sim.run(until_ps=100)

            def late():
                pass  # pragma: no cover - never runs

            with pytest.raises(ValueError, match="late"):
                sim.at_many([(200, lambda: None, ()), (50, late, ())])

    def test_qualname_fallback_for_odd_callables(self):
        from functools import partial

        sim = Simulator()
        sim.run(until_ps=10)
        with pytest.raises(ValueError, match="partial"):
            sim.at(5, partial(print, "x"))


def packet_workload(scheduler: str, coalesce: bool, kind: str = "opera", seed: int = 11):
    """A small mixed fig07-style run; returns the full observable state."""
    import os

    saved = {
        key: os.environ.get(key) for key in ("REPRO_SCHEDULER", "REPRO_COALESCE")
    }
    os.environ["REPRO_SCHEDULER"] = scheduler
    os.environ["REPRO_COALESCE"] = "1" if coalesce else "0"
    try:
        net = build_network(kind, k=8, n_racks=8, seed=seed)
        arrivals = PoissonArrivals(
            DATAMINING.truncated(500_000),
            load=0.15,
            n_hosts=len(net.hosts),
            hosts_per_rack=4,
            seed=seed,
        )
        threshold = getattr(
            getattr(net, "network", None), "bulk_threshold_bytes", 1 << 62
        )
        for flow in arrivals.flows(duration_ps=int(1.0 * MS)):
            if flow.size_bytes >= threshold:
                net.start_bulk_flow(
                    flow.src_host, flow.dst_host, flow.size_bytes, flow.time_ps
                )
            else:
                net.start_low_latency_flow(
                    flow.src_host, flow.dst_host, flow.size_bytes, flow.time_ps
                )
        net.run(until_ps=int(5.0 * MS))
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    ports = {}
    for host in net.hosts:
        ports[f"nic{host.host_id}"] = host.nic
    ports.update({f"down{h}": p for h, p in getattr(net, "host_ports", {}).items()})
    for i, group in enumerate(getattr(net, "uplink_ports", [])):
        ports.update({f"up{i}.{w}": p for w, p in group.items()})
    return {
        "events": net.sim.events_processed,
        "final_now": net.sim.now,
        "pending": net.sim.pending,
        "fcts": [
            (fid, rec.fct_ps, rec.delivered_bytes, rec.retransmissions)
            for fid, rec in sorted(net.stats.flows.items())
        ],
        "port_stats": {
            name: (
                p.stats.sent_packets,
                p.stats.sent_bytes,
                p.stats.trimmed,
                p.stats.dropped_control,
                p.stats.dropped_bulk,
                p.stats.undeliverable,
            )
            for name, p in ports.items()
        },
        "drops": [tor.drops for tor in getattr(net, "tors", [])],
        "trains": net.sim.trains_formed,
    }


class TestPacketWorkloadDifferential:
    def test_opera_bit_identical_across_all_combos(self):
        baseline = packet_workload("heap", False)
        for scheduler, coalesce in COMBOS[1:]:
            run = packet_workload(scheduler, coalesce)
            for key in ("events", "final_now", "pending", "fcts", "port_stats", "drops"):
                assert run[key] == baseline[key], (scheduler, coalesce, key)

    def test_coalesced_run_actually_forms_trains(self):
        assert packet_workload("heap", True)["trains"] > 100

    def test_fct_harness_coalesce_param(self):
        # run_fct_experiment(coalesce=...) pins identical buckets both ways.
        kwargs = dict(
            distribution=DATAMINING,
            load=0.05,
            duration_ms=0.4,
            k=8,
            n_racks=8,
            seed=3,
        )
        on = run_fct_experiment("rotornet-hybrid", coalesce=True, **kwargs)
        off = run_fct_experiment("rotornet-hybrid", coalesce=False, **kwargs)
        assert on == off
        assert on.n_flows > 0


class TestRunnerDifferential:
    """Coalescing off == on through the scenario Runner.

    The existing sharding/distributed suites pin pooled == distributed ==
    in-process under the ambient (coalesced) default; this differential
    closes the loop: legacy == coalesced in-process, hence legacy equals
    every executor's output.
    """

    OVERRIDES = {
        "loads": (0.02, 0.05),
        "networks": ("opera", "rotornet"),
        "duration_ms": 0.4,
        "scale": "ci",
    }

    def test_fig07_rows_identical_with_coalescing_off(self, monkeypatch):
        from repro.scenarios import Runner

        monkeypatch.delenv("REPRO_COALESCE", raising=False)
        on = Runner(cache=None).execute("fig07", **self.OVERRIDES)
        monkeypatch.setenv("REPRO_COALESCE", "0")
        off = Runner(cache=None).execute("fig07", **self.OVERRIDES)
        assert on == off

    @pytest.mark.parametrize(
        "name,overrides",
        [
            (
                "fig09",
                {
                    "loads": (0.02,),
                    "networks": ("opera", "clos"),
                    "duration_ms": 0.4,
                    "scale": "ci",
                },
            ),
            (
                "ablation_vlb",
                {
                    "fluid_racks": 12,
                    "fluid_demand_bytes": 2e6,
                    "packet_flow_bytes": 200_000,
                },
            ),
        ],
    )
    def test_packet_scenarios_identical_with_coalescing_off(
        self, monkeypatch, name, overrides
    ):
        from repro.scenarios import Runner

        monkeypatch.delenv("REPRO_COALESCE", raising=False)
        on = Runner(cache=None).execute(name, **overrides)
        monkeypatch.setenv("REPRO_COALESCE", "0")
        off = Runner(cache=None).execute(name, **overrides)
        assert on == off
