"""Tests for Opera's time constants (paper section 4.1, Figure 6, App. B)."""

import pytest

from repro.core.timing import (
    PS_PER_US,
    TimingParams,
    serialization_ps,
    worst_case_epsilon_ps,
)


class TestSerialization:
    def test_mtu_at_10g(self):
        assert serialization_ps(1500) == 1_200_000  # 1.2 us exactly

    def test_header_at_10g(self):
        assert serialization_ps(64) == 51_200  # 51.2 ns exactly

    def test_other_rate(self):
        assert serialization_ps(1500, rate_bps=40_000_000_000) == 300_000


class TestEpsilon:
    def test_paper_parameters_give_about_100us(self):
        eps = worst_case_epsilon_ps()
        assert 90 * PS_PER_US <= eps <= 110 * PS_PER_US

    def test_scales_with_hops(self):
        assert worst_case_epsilon_ps(worst_path_hops=10) == 2 * worst_case_epsilon_ps(
            worst_path_hops=5
        )


class TestReferenceDesign:
    """The k=12, 108-rack constants quoted throughout section 4."""

    @pytest.fixture()
    def timing(self):
        return TimingParams(n_racks=108, n_switches=6)

    def test_slice_duration(self, timing):
        assert timing.slice_ps == 100 * PS_PER_US

    def test_cycle_slices(self, timing):
        assert timing.cycle_slices == 108

    def test_cycle_time_matches_paper(self, timing):
        # Paper: "a cycle time of 10.7 ms" (we get 10.8 with round numbers).
        assert abs(timing.cycle_ps / 1e9 - 10.8) < 0.2

    def test_duty_cycle_98_percent(self, timing):
        assert abs(timing.duty_cycle - 0.983) < 0.002

    def test_inter_reconfiguration_about_6_epsilon(self, timing):
        # Paper: "The inter-reconfiguration period on a single switch is
        # about 6 epsilon".
        assert timing.holding_ps == 6 * timing.slice_ps

    def test_bulk_threshold_about_15MB(self, timing):
        # 10 Gb/s * 10.8 ms = 13.5 MB; the paper rounds to 15 MB.
        assert 12e6 < timing.bulk_threshold_bytes < 16e6


class TestGuardBands:
    def test_guard_costs_1_percent_per_us_low_latency(self):
        timing = TimingParams(
            n_racks=108, n_switches=6, guard_ps=1 * PS_PER_US
        )
        assert abs((1 - timing.low_latency_capacity_factor) - 0.01) < 1e-9

    def test_guard_costs_point2_percent_per_us_bulk(self):
        timing = TimingParams(
            n_racks=108, n_switches=6, guard_ps=1 * PS_PER_US
        )
        assert abs((1 - timing.bulk_capacity_factor) - 0.00167) < 2e-4

    def test_zero_guard_full_capacity(self):
        timing = TimingParams(n_racks=108, n_switches=6)
        assert timing.low_latency_capacity_factor == 1.0
        assert timing.bulk_capacity_factor == 1.0

    def test_oversized_guard_rejected(self):
        with pytest.raises(ValueError):
            TimingParams(
                n_racks=108, n_switches=6, guard_ps=60 * PS_PER_US
            )


class TestGrouping:
    """Appendix B: grouped reconfiguration shortens the cycle."""

    def test_group_shortens_cycle(self):
        ungrouped = TimingParams(n_racks=3072, n_switches=32)
        grouped = TimingParams(n_racks=3072, n_switches=32, group_size=8)
        assert grouped.cycle_slices * 4 == ungrouped.cycle_slices

    def test_figure14_factor_of_6(self):
        """k=12 -> k=64 with groups of ~6 raises cycle time ~6x (App. B)."""
        reference = TimingParams(n_racks=108, n_switches=6)
        large = TimingParams(n_racks=3072, n_switches=32, group_size=8)
        ratio = large.relative_cycle_time(reference)
        assert 4 < ratio < 8

    def test_figure14_quadratic_without_groups(self):
        reference = TimingParams(n_racks=108, n_switches=6)
        large = TimingParams(n_racks=3072, n_switches=32)
        assert abs(large.relative_cycle_time(reference) - 3072 / 108) < 1e-9

    def test_invalid_group(self):
        with pytest.raises(ValueError):
            TimingParams(n_racks=108, n_switches=6, group_size=4)

    def test_indivisible_racks(self):
        with pytest.raises(ValueError):
            TimingParams(n_racks=100, n_switches=6)
