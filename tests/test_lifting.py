"""Tests for graph lifting (paper section 3.3)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lifting import lift_factorization, lifted_random_factorization
from repro.core.matchings import (
    round_robin_factorization,
    verify_factorization,
)

even_n = st.integers(min_value=1, max_value=12).map(lambda k: 2 * k)


class TestLift:
    @given(even_n)
    @settings(max_examples=12, deadline=None)
    def test_deterministic_lift_is_valid(self, n):
        base = round_robin_factorization(n)
        lifted = lift_factorization(base)
        verify_factorization(lifted, 2 * n)

    @given(even_n, st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=12, deadline=None)
    def test_random_lift_is_valid(self, n, seed):
        base = round_robin_factorization(n)
        lifted = lift_factorization(base, random.Random(seed))
        verify_factorization(lifted, 2 * n)

    def test_double_lift(self):
        base = round_robin_factorization(6)
        lifted = lift_factorization(lift_factorization(base, random.Random(0)))
        verify_factorization(lifted, 24)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            lift_factorization([])

    def test_lift_count(self):
        base = round_robin_factorization(8)
        assert len(lift_factorization(base)) == 16


class TestLiftedRandomFactorization:
    def test_small_falls_back_to_direct(self):
        factors = lifted_random_factorization(10, random.Random(0))
        verify_factorization(factors, 10)

    def test_large_uses_lifting(self):
        # 1024 = 512 * 2: one lift from the default 512 threshold.
        factors = lifted_random_factorization(1024, random.Random(0), base_threshold=512)
        verify_factorization(factors, 1024)

    def test_threshold_forces_lifting(self):
        factors = lifted_random_factorization(48, random.Random(0), base_threshold=16)
        verify_factorization(factors, 48)

    def test_odd_quotient_backs_off(self):
        # 24 = 6 * 4 with threshold 5: would want base 3 (odd), backs off to 6.
        factors = lifted_random_factorization(24, random.Random(0), base_threshold=5)
        verify_factorization(factors, 24)

    def test_rejects_odd(self):
        with pytest.raises(ValueError):
            lifted_random_factorization(9)

    def test_deterministic(self):
        a = lifted_random_factorization(64, random.Random(5), base_threshold=16)
        b = lifted_random_factorization(64, random.Random(5), base_threshold=16)
        assert a == b
