"""Property tests for the Opera schedule and matching factorization.

The three invariants the scenario runner leans on (ISSUE 1):

* every topology slice instantiates perfect matchings — each up switch's
  matching is an involution permutation of the racks,
* guard bands never overlap adjacent slices (2 * guard < slice), and
* the union of matchings over one full cycle covers every unordered rack
  pair, each seen in exactly ``group_size - 1`` slices.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lifting import lifted_random_factorization
from repro.core.matchings import (
    is_involution,
    matching_edges,
    verify_factorization,
)
from repro.core.schedule import OperaSchedule
from repro.core.timing import PS_PER_US, TimingParams


def schedule_shapes():
    """Valid (n_racks, n_switches) pairs small enough for exhaustive walks."""
    return st.sampled_from(
        [(8, 4), (12, 4), (12, 6), (16, 4), (20, 5), (24, 6), (30, 6)]
    )


class TestSlicesArePerfectMatchings:
    @given(schedule_shapes(), st.integers(min_value=0, max_value=50))
    @settings(max_examples=12, deadline=None)
    def test_every_active_matching_is_an_involution_permutation(self, shape, seed):
        n, u = shape
        sched = OperaSchedule(n, u, seed=seed)
        for s in range(sched.cycle_slices):
            for w, matching in sched.active_matchings(s).items():
                assert len(matching) == n
                assert sorted(matching) == list(range(n))  # permutation
                assert is_involution(matching)  # symmetric pairing
                assert not sched.is_down(w, s)

    @given(schedule_shapes(), st.integers(min_value=0, max_value=50))
    @settings(max_examples=12, deadline=None)
    def test_slice_degree_matches_up_switch_count(self, shape, seed):
        """Each rack has one circuit per up switch, minus idle self-loops."""
        n, u = shape
        sched = OperaSchedule(n, u, seed=seed)
        for s in range(0, sched.cycle_slices, max(1, sched.cycle_slices // 6)):
            up = sched.up_switches(s)
            adj = sched.slice_adjacency(s)
            for rack in range(n):
                loops = sum(
                    1 for w in up if sched.matching_of(w, s)[rack] == rack
                )
                assert len(adj[rack]) == len(up) - loops

    @given(
        st.sampled_from([8, 12, 16, 20, 24, 30]),
        st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=15, deadline=None)
    def test_lifted_factorization_is_exact_cover_of_involutions(self, n, seed):
        factors = lifted_random_factorization(n, random.Random(seed))
        assert len(factors) == n
        assert all(is_involution(f) for f in factors)
        verify_factorization(factors, n)  # disjoint + exact edge cover


class TestGuardBands:
    @given(
        st.integers(min_value=1, max_value=200 * PS_PER_US),
        st.integers(min_value=0, max_value=50 * PS_PER_US),
        st.integers(min_value=0, max_value=150 * PS_PER_US),
    )
    @settings(max_examples=60, deadline=None)
    def test_guard_windows_never_overlap_adjacent_slices(
        self, epsilon_ps, reconfiguration_ps, guard_ps
    ):
        """Either construction rejects the guard, or windows are disjoint.

        The guard window around reconfiguration boundary ``i`` is
        ``[i * slice - guard, i * slice + guard]``; adjacent boundaries are
        one slice apart, so disjointness is exactly ``2 * guard < slice``.
        """
        try:
            timing = TimingParams(
                n_racks=108,
                n_switches=6,
                epsilon_ps=epsilon_ps,
                reconfiguration_ps=reconfiguration_ps,
                guard_ps=guard_ps,
            )
        except ValueError:
            # Construction must only refuse guards that would overlap (or
            # degenerate epsilon); never reject a harmless guard.
            assert 2 * guard_ps >= epsilon_ps + reconfiguration_ps
            return
        slice_ps = timing.slice_ps
        windows = [
            (i * slice_ps - timing.guard_ps, i * slice_ps + timing.guard_ps)
            for i in range(1, 4)
        ]
        for (a_lo, a_hi), (b_lo, b_hi) in zip(windows, windows[1:]):
            assert a_hi < b_lo  # a full-rate gap remains inside each slice
        # Guards consume capacity but must never consume all of it.
        assert 0.0 < timing.low_latency_capacity_factor <= 1.0
        assert 0.0 < timing.bulk_capacity_factor <= 1.0

    def test_overlapping_guard_rejected(self):
        with pytest.raises(ValueError, match="guard band"):
            TimingParams(
                n_racks=108,
                n_switches=6,
                epsilon_ps=90 * PS_PER_US,
                reconfiguration_ps=10 * PS_PER_US,
                guard_ps=50 * PS_PER_US,  # 2 * 50 us >= 100 us slice
            )


class TestCycleCoverage:
    @given(schedule_shapes(), st.integers(min_value=0, max_value=50))
    @settings(max_examples=10, deadline=None)
    def test_union_over_cycle_covers_all_rack_pairs(self, shape, seed):
        n, u = shape
        sched = OperaSchedule(n, u, seed=seed)
        seen: dict[tuple[int, int], int] = {}
        for s in range(sched.cycle_slices):
            for matching in sched.active_matchings(s).values():
                for edge in matching_edges(matching):
                    seen[edge] = seen.get(edge, 0) + 1
        all_pairs = {(a, b) for a in range(n) for b in range(a + 1, n)}
        assert set(seen) == all_pairs
        # Each pair's owning switch shows it group_size slices per cycle,
        # one of which is the switch's own down slice.
        assert set(seen.values()) == {sched.group_size - 1}
