"""Regenerate the golden fixtures in ``tests/golden/`` (deliberate use only).

Run after an *intended* output change::

    PYTHONPATH=src python tests/regen_golden.py

and commit the diff alongside the change that caused it.
"""

import json
from pathlib import Path

from repro.scenarios import Runner

#: Single source of truth for the fixture set — tests/test_golden.py
#: imports these so the regenerator and the assertions cannot drift.
GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_NAMES = ("fig04", "table1", "table2")


def golden_document(result) -> dict:
    """The exact JSON document a fixture freezes for one ScenarioResult."""
    return {
        "scenario": result.name,
        "params": result.params,
        "rows": result.rows,
        "payload": result.payload,
    }


def main() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    runner = Runner(cache=None)
    for name in GOLDEN_NAMES:
        doc = golden_document(runner.run(names=[name])[0])
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
