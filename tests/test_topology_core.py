"""Tests for the OperaNetwork deployment object and forwarding/state models."""

import pytest

from repro.core.forwarding import ForwardingPipeline, TrafficClass, classify_flow
from repro.core.state import TOFINO_RULE_CAPACITY, ruleset_size, table1_rows
from repro.core.topology import OperaNetwork, default_rack_count


class TestDefaultRackCount:
    def test_reference_sizes(self):
        assert default_rack_count(12) == 108
        assert default_rack_count(24) == 432
        assert default_rack_count(64) == 3072

    def test_divisibility(self):
        for k in (8, 12, 16, 20, 24, 32, 48):
            n = default_rack_count(k)
            assert n % 2 == 0
            assert n % (k // 2) == 0

    def test_rejects_odd_radix(self):
        with pytest.raises(ValueError):
            default_rack_count(13)


class TestOperaNetwork:
    @pytest.fixture(scope="class")
    def net(self):
        return OperaNetwork(k=8, n_racks=16, seed=0)

    def test_reference_648(self):
        net = OperaNetwork.reference_648()
        assert net.n_hosts == 648
        assert net.n_racks == 108
        assert net.n_switches == 6
        assert net.hosts_per_rack == 6

    def test_host_rack_mapping(self, net):
        assert net.hosts_per_rack == 4
        assert net.host_rack(0) == 0
        assert net.host_rack(4) == 1
        assert net.host_rack(net.n_hosts - 1) == net.n_racks - 1

    def test_rack_hosts_roundtrip(self, net):
        for rack in range(net.n_racks):
            for host in net.rack_hosts(rack):
                assert net.host_rack(host) == rack

    def test_host_out_of_range(self, net):
        with pytest.raises(ValueError):
            net.host_rack(net.n_hosts)

    def test_rack_out_of_range(self, net):
        with pytest.raises(ValueError):
            net.rack_hosts(net.n_racks)

    def test_slice_at_time(self, net):
        slice_ps = net.timing.slice_ps
        assert net.slice_at(0) == 0
        assert net.slice_at(slice_ps - 1) == 0
        assert net.slice_at(slice_ps) == 1
        assert net.slice_at(net.timing.cycle_ps) == 0

    def test_slice_start_inverse(self, net):
        for s in range(net.schedule.cycle_slices):
            assert net.slice_at(net.slice_start_ps(s)) == s

    def test_invalid_shapes(self):
        with pytest.raises(ValueError):
            OperaNetwork(k=7)
        with pytest.raises(ValueError):
            OperaNetwork(k=8, n_racks=15)
        with pytest.raises(ValueError):
            OperaNetwork(k=12, n_racks=100)  # not divisible by u=6


class TestClassification:
    def test_below_threshold_is_low_latency(self):
        assert classify_flow(10_000, 15_000_000) is TrafficClass.LOW_LATENCY

    def test_at_threshold_is_bulk(self):
        assert classify_flow(15_000_000, 15_000_000) is TrafficClass.BULK

    def test_tag_overrides_size(self):
        assert (
            classify_flow(100, 15_000_000, tagged=TrafficClass.BULK)
            is TrafficClass.BULK
        )

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            classify_flow(-1, 100)

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            classify_flow(10, 0)


class TestForwardingPipeline:
    @pytest.fixture(scope="class")
    def pipe(self):
        net = OperaNetwork(k=8, n_racks=16, seed=0)
        return ForwardingPipeline.for_schedule(net.schedule)

    def test_stamp_wraps(self, pipe):
        cycle = pipe.schedule.cycle_slices
        assert pipe.stamp(cycle + 3) == 3

    def test_low_latency_hop_progresses(self, pipe):
        routes = pipe.routing.routes(0)
        hop = pipe.low_latency_next_hop(0, 9, 0)
        assert hop is not None
        peer, _switch = hop
        assert routes.dist[peer][9] < routes.dist[0][9]

    def test_no_hop_at_destination(self, pipe):
        assert pipe.low_latency_next_hop(5, 5, 0) is None

    def test_path_reaches_destination(self, pipe):
        path = pipe.low_latency_path(2, 13, 4)
        assert path is not None
        assert path[0] == 2 and path[-1] == 13

    def test_bulk_direct_switch_agrees_with_schedule(self, pipe):
        sched = pipe.schedule
        for s in range(sched.cycle_slices):
            w = pipe.bulk_direct_switch(0, 1, s)
            assert w == sched.direct_switch(0, 1, s)

    def test_bulk_wait_reaches_zero(self, pipe):
        sched = pipe.schedule
        hits = [
            s
            for s in range(sched.cycle_slices)
            if pipe.bulk_wait_slices(0, 7, s) == 0
        ]
        assert hits == list(sched.direct_slices(0, 7))


class TestRoutingState:
    def test_table1_exact_counts(self):
        expected = {
            108: (12_096, 0.7),
            252: (65_268, 3.8),
            520: (276_120, 16.2),
            768: (600_576, 35.3),
            1008: (1_032_192, 60.7),
            1200: (1_461_600, 85.9),
        }
        for row in table1_rows():
            entries, util_pct = expected[row.n_racks]
            assert row.entries == entries
            assert round(100 * row.utilization, 1) == util_pct

    def test_ruleset_monotone_in_racks(self):
        sizes = [ruleset_size(n, 6).entries for n in (50, 100, 200, 400)]
        assert sizes == sorted(sizes)

    def test_capacity_positive(self):
        assert TOFINO_RULE_CAPACITY > 1_000_000

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            ruleset_size(1, 6)
        with pytest.raises(ValueError):
            ruleset_size(108, 1)
