"""Cross-module property-based tests on Opera's structural invariants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.faults import FailureSet
from repro.core.forwarding import ForwardingPipeline
from repro.core.routing import OperaRouting, build_adjacency
from repro.core.schedule import OperaSchedule
from repro.core.timing import TimingParams


def schedule_shapes():
    """Valid (n_racks, n_switches) pairs with u >= 4 for expander slices."""
    return st.sampled_from(
        [(8, 4), (16, 4), (20, 5), (24, 4), (24, 6), (32, 4), (36, 6)]
    )


class TestScheduleInvariants:
    @given(schedule_shapes(), st.integers(min_value=0, max_value=50))
    @settings(max_examples=12, deadline=None)
    def test_direct_circuits_per_cycle(self, shape, seed):
        """Every pair is directly connected group_size - 1 slices/cycle."""
        n, u = shape
        sched = OperaSchedule(n, u, seed=seed)
        rng = random.Random(seed)
        for _ in range(5):
            a, b = rng.sample(range(n), 2)
            assert len(sched.direct_slices(a, b)) == sched.group_size - 1

    @given(schedule_shapes(), st.integers(min_value=0, max_value=50))
    @settings(max_examples=10, deadline=None)
    def test_matchings_disjoint_within_slice(self, shape, seed):
        """No two switches implement the same circuit simultaneously."""
        n, u = shape
        sched = OperaSchedule(n, u, seed=seed)
        for s in range(min(sched.cycle_slices, 8)):
            seen = set()
            for w in range(u):
                matching = sched.matching_of(w, s)
                for a in range(n):
                    b = matching[a]
                    if a < b:
                        assert (a, b) not in seen
                        seen.add((a, b))

    @given(schedule_shapes(), st.integers(min_value=0, max_value=20))
    @settings(max_examples=10, deadline=None)
    def test_every_slice_is_connected_expander(self, shape, seed):
        n, u = shape
        sched = OperaSchedule(n, u, seed=seed)
        routing = OperaRouting(sched)
        for s in range(sched.cycle_slices):
            assert routing.routes(s).reachable_pairs() == n * (n - 1)


class TestRoutingInvariants:
    @given(
        schedule_shapes(),
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=12, deadline=None)
    def test_stamped_paths_are_loop_free(self, shape, seed, salt):
        """Following next hops for a fixed stamp always terminates."""
        n, u = shape
        sched = OperaSchedule(n, u, seed=seed)
        pipe = ForwardingPipeline.for_schedule(sched)
        rng = random.Random(seed + salt)
        stamp = rng.randrange(sched.cycle_slices)
        src, dst = rng.sample(range(n), 2)
        node = src
        visited = {src}
        for _hop in range(n):
            hop = pipe.low_latency_next_hop(node, dst, stamp, salt=salt)
            if hop is None:
                break
            node = hop[0]
            assert node not in visited or node == dst
            visited.add(node)
            if node == dst:
                break
        assert node == dst

    @given(schedule_shapes(), st.integers(min_value=0, max_value=20))
    @settings(max_examples=8, deadline=None)
    def test_failure_routing_is_subgraph(self, shape, seed):
        """Routes under failures only use surviving circuits."""
        n, u = shape
        sched = OperaSchedule(n, u, seed=seed)
        failures = FailureSet.random_links(n, u, 0.1, random.Random(seed))
        adj = build_adjacency(sched, 0, failures)
        for rack, edges in enumerate(adj):
            for peer, switch in edges:
                assert failures.circuit_ok(rack, peer, switch)


class TestTimingInvariants:
    @given(
        schedule_shapes(),
        st.integers(min_value=10, max_value=200),
        st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=20, deadline=None)
    def test_cycle_is_product_of_parts(self, shape, eps_us, r_us):
        n, u = shape
        timing = TimingParams(
            n_racks=n,
            n_switches=u,
            epsilon_ps=eps_us * 1_000_000,
            reconfiguration_ps=r_us * 1_000_000,
        )
        assert timing.cycle_ps == timing.cycle_slices * timing.slice_ps
        assert 0 < timing.duty_cycle < 1
        assert timing.bulk_threshold_bytes > 0

    @given(st.integers(min_value=1, max_value=40))
    @settings(max_examples=20, deadline=None)
    def test_guard_band_coefficients(self, guard_us):
        """1%/us low-latency, ~0.17%/us bulk for the reference design."""
        timing = TimingParams(
            n_racks=108, n_switches=6, guard_ps=guard_us * 1_000_000
        )
        assert (1 - timing.low_latency_capacity_factor) == pytest.approx(
            0.01 * guard_us
        )
        assert (1 - timing.bulk_capacity_factor) == pytest.approx(
            guard_us / 600, rel=1e-9
        )
