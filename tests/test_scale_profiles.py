"""The REPRO_SCALE profile wiring: fctsim presets, scenario params, env.

``fig07``/``fig09`` accept ``scale: ci | default | paper`` and the Runner
substitutes the ``REPRO_SCALE`` environment profile at bind time (so cache
keys always record the *effective* profile). Explicit ``--set scale=...``
overrides beat the environment.
"""

import pytest

from repro.experiments.fctsim import SCALE_PROFILES, resolve_scale
from repro.scenarios import Runner, get


class TestProfiles:
    def test_known_profiles(self):
        assert set(SCALE_PROFILES) == {"ci", "default", "paper"}
        for name in SCALE_PROFILES:
            k, n_racks, duration_factor = resolve_scale(name)
            assert k % 2 == 0 and n_racks > 0 and duration_factor > 0

    def test_default_raised_beyond_ci(self):
        _k_ci, racks_ci, _f_ci = resolve_scale("ci")
        _k_def, racks_def, _f_def = resolve_scale("default")
        k_paper, racks_paper, _f = resolve_scale("paper")
        assert racks_def > racks_ci or _f_def > _f_ci
        # Paper profile is the 648-host k=12 reference deployment.
        assert (k_paper, racks_paper) == (12, 108)
        assert racks_paper * (k_paper // 2) == 648

    def test_unknown_profile_raises_with_known_list(self):
        with pytest.raises(ValueError, match="paper"):
            resolve_scale("huge")


class TestScenarioWiring:
    def test_fig07_and_fig09_expose_scale(self):
        for name in ("fig07", "fig09"):
            sc = get(name)
            assert sc.accepts("scale")
            assert sc.params["scale"].default == "default"

    def test_env_profile_injected_at_bind_time(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "ci")
        jobs = Runner().resolve(names=["fig07"])
        assert jobs[0].params["scale"] == "ci"

    def test_explicit_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "ci")
        jobs = Runner().resolve(names=["fig07"], overrides={"scale": "paper"})
        assert jobs[0].params["scale"] == "paper"

    def test_no_env_keeps_schema_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        jobs = Runner().resolve(names=["fig07"])
        assert jobs[0].params["scale"] == "default"

    def test_scale_blind_scenarios_unaffected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        jobs = Runner().resolve(names=["fig04"])
        assert "scale" not in jobs[0].params

    def test_ci_profile_runs_fast_and_small(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "ci")
        results = Runner().execute(
            "fig07", loads=(0.05,), networks=("opera",), duration_ms=2.0
        )
        assert len(results) == 1
        # ci quarters the arrival horizon at the old 8-rack shape.
        assert results[0].n_flows < 60


class TestAblationRegistration:
    def test_ablations_registered_with_tags_and_params(self):
        grouping = get("ablation_grouping")
        assert "ablation" in grouping.tags
        assert grouping.accepts("groups") and grouping.accepts("seed")
        guard = get("ablation_guard_bands")
        assert "ablation" in guard.tags and guard.accepts("guards_us")
        vlb = get("ablation_vlb")
        assert "ablation" in vlb.tags and vlb.accepts("packet_flow_bytes")

    def test_ablation_grouping_runs_through_runner(self):
        rows = Runner().execute("ablation_grouping", groups=(12, 6))
        assert [r["group"] for r in rows] == [12, 6]
        assert rows[1]["cycle_ms"] < rows[0]["cycle_ms"]
