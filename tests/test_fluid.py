"""Tests for the fluid simulators (Figures 8 and 10 substrate)."""

import numpy as np
import pytest

from repro.core.schedule import OperaSchedule
from repro.core.timing import TimingParams
from repro.fluid import RotorFluidSimulation, static_shuffle_run
from repro.topologies.rotornet import RotorNetSchedule


@pytest.fixture(scope="module")
def small_setup():
    sched = OperaSchedule(24, 6, seed=0)
    timing = TimingParams(n_racks=24, n_switches=6)
    return sched, timing


def make_sim(sched, timing, **kwargs):
    return RotorFluidSimulation(sched, timing, hosts_per_rack=3, **kwargs)


class TestRotorFluid:
    def test_conservation(self, small_setup):
        sched, timing = small_setup
        sim = make_sim(sched, timing)
        sim.add_all_to_all(50_000)
        result = sim.run(max_slices=3000)
        assert result.all_complete
        assert result.delivered_bytes == pytest.approx(result.offered_bytes, rel=1e-9)

    def test_diagonal_rejected(self, small_setup):
        sched, timing = small_setup
        sim = make_sim(sched, timing)
        demand = np.eye(24) * 100
        with pytest.raises(ValueError):
            sim.add_demand(demand)

    def test_shape_mismatch_rejected(self, small_setup):
        sched, timing = small_setup
        sim = make_sim(sched, timing)
        with pytest.raises(ValueError):
            sim.add_demand(np.zeros((4, 4)))

    def test_throughput_bounded(self, small_setup):
        sched, timing = small_setup
        sim = make_sim(sched, timing)
        sim.add_all_to_all(100_000)
        result = sim.run(max_slices=5000)
        for _t, v in result.throughput_series:
            assert 0.0 <= v <= 1.001

    def test_uniform_throughput_near_duty_bound(self, small_setup):
        """All-to-all rides direct circuits: plateau ~ (u-1)/u * duty.

        Uses the 1:1-provisioned shape (d = u = 6) the bound assumes.
        """
        sched, timing = small_setup
        sim = RotorFluidSimulation(sched, timing, hosts_per_rack=6)
        sim.add_all_to_all(200_000)
        result = sim.run(max_slices=8000)
        mid = [v for t, v in result.throughput_series[: result.slices_run // 2]]
        plateau = float(np.mean(mid))
        bound = (5 / 6) * timing.duty_cycle
        assert 0.8 * bound < plateau <= bound * 1.02

    def test_hot_pair_uses_vlb(self, small_setup):
        sched, timing = small_setup
        demand = np.zeros((24, 24))
        demand[0][1] = 30e6
        with_vlb = make_sim(sched, timing)
        with_vlb.add_demand(demand.copy())
        res_vlb = with_vlb.run(max_slices=8000)
        without = make_sim(sched, timing, enable_vlb=False)
        without.add_demand(demand.copy())
        res_novlb = without.run(max_slices=8000)
        t_vlb = res_vlb.pair_completion_ms[(0, 1)]
        t_novlb = res_novlb.pair_completion_ms[(0, 1)]
        assert t_vlb is not None and t_novlb is not None
        assert t_vlb < t_novlb / 2  # VLB multiplies the hot pair's capacity

    def test_background_load_slows_bulk(self, small_setup):
        sched, timing = small_setup
        free = make_sim(sched, timing)
        free.add_all_to_all(50_000)
        loaded = make_sim(sched, timing, background_ll_load=0.10)
        loaded.add_all_to_all(50_000)
        t_free = free.run(max_slices=5000).completion_percentile_ms(99)
        t_loaded = loaded.run(max_slices=5000).completion_percentile_ms(99)
        assert t_free is not None and t_loaded is not None
        assert t_loaded > t_free

    def test_rotornet_schedule_supported(self):
        sched = RotorNetSchedule(24, 6, seed=0)
        timing = TimingParams(n_racks=24, n_switches=6)
        sim = RotorFluidSimulation(sched, timing, hosts_per_rack=3)
        sim.add_all_to_all(50_000)
        result = sim.run(max_slices=4000)
        assert result.all_complete

    def test_unfinished_at_horizon(self, small_setup):
        sched, timing = small_setup
        sim = make_sim(sched, timing)
        sim.add_all_to_all(10_000_000)
        result = sim.run(max_slices=10)
        assert not result.all_complete
        assert result.completion_percentile_ms(99) is None


class TestStaticShuffle:
    def test_conservation(self):
        result = static_shuffle_run(
            throughput=1 / 3,
            n_racks=24,
            hosts_per_rack=3,
            bytes_per_host_pair=50_000,
        )
        assert result.delivered_bytes == pytest.approx(result.offered_bytes)
        assert result.all_complete

    def test_lower_throughput_takes_longer(self):
        fast = static_shuffle_run(0.5, 24, 3, 50_000)
        slow = static_shuffle_run(0.25, 24, 3, 50_000)
        assert (
            slow.completion_percentile_ms(99) > fast.completion_percentile_ms(99)
        )

    def test_plateau_height(self):
        result = static_shuffle_run(0.4, 24, 3, 500_000, startup_ms=1.0)
        mid = [v for t, v in result.throughput_series if t > 2.0][:50]
        assert np.mean(mid) == pytest.approx(0.4, rel=0.05)

    def test_invalid_throughput(self):
        with pytest.raises(ValueError):
            static_shuffle_run(0.0, 24, 3, 1000)
