"""Golden regression tests: frozen scenario outputs vs the live runner.

``tests/golden/<name>.json`` freezes the registry defaults' exact output
(rows + canonical JSON payload) for three cheap scenarios. The runner must
reproduce them bit-for-bit live, through a cold cache write, and through a
warm cache read — any drift in the experiment code, the parameter schema,
the encoder, or the cache layer fails here first.

Regenerate deliberately (after an intended change) with::

    PYTHONPATH=src python tests/regen_golden.py
"""

import json

import pytest
from regen_golden import GOLDEN_DIR, GOLDEN_NAMES

from repro.scenarios import ResultCache, Runner


def load_golden(name):
    with (GOLDEN_DIR / f"{name}.json").open() as fh:
        return json.load(fh)


def test_every_fixture_on_disk_is_in_the_golden_set():
    """A fixture the regenerator no longer produces must not linger."""
    on_disk = {p.stem for p in GOLDEN_DIR.glob("*.json")}
    assert on_disk == set(GOLDEN_NAMES)


@pytest.mark.parametrize("name", GOLDEN_NAMES)
class TestGoldenOutputs:
    def test_cache_off_reproduces_fixture(self, name):
        golden = load_golden(name)
        res = Runner(cache=None).run(names=[name])[0]
        assert res.cached is False
        assert res.rows == golden["rows"]
        assert res.payload == golden["payload"]

    def test_cache_on_reproduces_fixture_cold_and_warm(self, name, tmp_path):
        golden = load_golden(name)
        runner = Runner(cache=ResultCache(tmp_path))
        cold = runner.run(names=[name])[0]
        warm = runner.run(names=[name])[0]
        assert (cold.cached, warm.cached) == (False, True)
        for res in (cold, warm):
            assert res.rows == golden["rows"]
            assert res.payload == golden["payload"]
        # The cache round-trips the exact parameter binding too.
        assert warm.params == cold.params

    def test_fixture_params_match_current_schema(self, name):
        """A schema-default change must be a conscious fixture regeneration."""
        golden = load_golden(name)
        res = Runner(cache=None).resolve(names=[name])[0]
        assert json.loads(json.dumps(res.params)) == golden["params"]
