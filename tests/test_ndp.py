"""Focused tests for the NDP transport mechanics (section 4.2.1)."""

import pytest

from repro.net import ExpanderSimNetwork
from repro.net.ndp import DEFAULT_INITIAL_WINDOW, NdpSource
from repro.net.packet import HEADER_BYTES, MTU_BYTES, PacketKind, Priority
from repro.net.stats import FlowRecord
from repro.topologies import ExpanderTopology

MS = 1_000_000_000


def tiny_network():
    return ExpanderSimNetwork(ExpanderTopology(8, 4, 2, seed=0))


class TestPacketization:
    def _source(self, size):
        sim = tiny_network()
        record = FlowRecord(
            flow_id=999,
            src_host=0,
            dst_host=15,
            size_bytes=size,
            traffic_class="low_latency",
            start_ps=0,
        )
        return NdpSource(sim.sim, sim.hosts[0], record)

    def test_packet_count(self):
        payload = MTU_BYTES - HEADER_BYTES
        assert self._source(payload).n_packets == 1
        assert self._source(payload + 1).n_packets == 2
        assert self._source(10 * payload).n_packets == 10

    def test_last_packet_short(self):
        src = self._source(2000)
        payload = MTU_BYTES - HEADER_BYTES
        assert src.packet_bytes(0) == MTU_BYTES
        assert src.packet_bytes(1) == HEADER_BYTES + (2000 - payload)

    def test_payload_sums_to_flow(self):
        src = self._source(5_000)
        total = sum(src.payload_bytes(s) for s in range(src.n_packets))
        assert total == 5_000

    def test_minimum_one_packet(self):
        assert self._source(1).n_packets == 1


class TestZeroRtt:
    def test_initial_window_sent_immediately(self):
        sim = tiny_network()
        rec = sim.start_low_latency_flow(0, 15, 100 * (MTU_BYTES - HEADER_BYTES))
        # Run only a hair past flow start: the initial burst is in flight.
        sim.run(1_300_000)  # ~ one MTU serialization
        sent = sim.hosts[0].nic.stats.sent_packets
        assert sent >= 1
        sim.run(50 * MS)
        assert rec.complete

    def test_short_flow_needs_no_pulls(self):
        """Flows within the initial window finish in ~one one-way delay."""
        sim = tiny_network()
        size = (DEFAULT_INITIAL_WINDOW - 2) * (MTU_BYTES - HEADER_BYTES)
        rec = sim.start_low_latency_flow(0, 15, size)
        sim.run(5 * MS)
        assert rec.complete
        # Serialization of the window + a few hops; generously < 50 us.
        assert rec.fct_ps < 50_000_000


class TestTrimmingRecovery:
    def test_incast_completes_with_retransmissions(self):
        sim = tiny_network()
        # 7 senders, one receiver: receiver downlink must trim.
        recs = [
            sim.start_low_latency_flow(src, 15, 40_000) for src in range(2, 9)
        ]
        sim.run(60 * MS)
        assert all(r.complete for r in recs)
        for rec in recs:
            assert rec.delivered_bytes == 40_000

    def test_no_duplicate_delivery(self):
        sim = tiny_network()
        recs = [
            sim.start_low_latency_flow(src, 15, 30_000) for src in range(2, 10)
        ]
        sim.run(60 * MS)
        for rec in recs:
            # delivered counts unique payload bytes only
            assert rec.delivered_bytes == 30_000

    def test_trims_happen_under_incast(self):
        sim = tiny_network()
        for src in range(2, 10):
            sim.start_low_latency_flow(src, 15, 60_000)
        sim.run(60 * MS)
        trimmed = sim.host_ports[15].stats.trimmed
        assert trimmed > 0, "expected trimming on the receiver downlink"

    def test_control_packets_not_trimmed(self):
        sim = tiny_network()
        for src in range(2, 10):
            sim.start_low_latency_flow(src, 15, 60_000)
        sim.run(60 * MS)
        # Headers/ACKs/PULLs may be *dropped* when control queues overflow
        # but never trimmed (trimming applies to data only).
        for ports in sim.uplink_ports:
            for port in ports.values():
                assert port.stats.trimmed >= 0  # smoke: counter exists

    def test_fairness_roughly_equal(self):
        sim = tiny_network()
        recs = [
            sim.start_low_latency_flow(src, 15, 120_000) for src in range(2, 8)
        ]
        sim.run(100 * MS)
        fcts = [r.fct_ps for r in recs]
        assert max(fcts) < 5 * min(fcts)
