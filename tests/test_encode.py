"""Portable-encoding edge cases the distributed wire protocol exercises.

Cell values travel ``to_portable -> json.dumps -> TCP -> json.loads ->
from_portable``; these tests pin the corners of that path: nested
tuple-keyed dicts, empty dataclasses, numeric fidelity at the extremes of
float/int range, and strings that are not UTF-8-clean.
"""

import json
import math
from dataclasses import dataclass, field

import pytest

from repro.scenarios import EncodeError, from_portable, to_portable


def wire_roundtrip(value):
    """Exactly what the coordinator/worker protocol does to a value."""
    text = json.dumps(to_portable(value), separators=(",", ":"), ensure_ascii=True)
    return from_portable(json.loads(text))


@dataclass
class EmptyResult:
    """A result type with no fields (decoded by import path)."""


@dataclass
class NestedResult:
    label: str
    table: dict = field(default_factory=dict)


class TestNestedTupleKeyedDicts:
    def test_tuple_keyed_dict_nested_in_values(self):
        value = {
            "outer": {
                (0, 10_000): {"inner": {(1, 2): (None, 3.5)}},
                (10_000, 100_000): [((1,), (2,))],
            }
        }
        assert wire_roundtrip(value) == value

    def test_tuple_keys_recover_as_tuples(self):
        decoded = wire_roundtrip({(1, "a"): 1, (2, "b"): 2})
        assert set(decoded) == {(1, "a"), (2, "b")}
        assert all(isinstance(k, tuple) for k in decoded)

    def test_tuple_keyed_dict_inside_dataclass(self):
        value = NestedResult(
            label="x", table={(0, 1): {"deep": ((1, 2), [3, (4,)])}}
        )
        decoded = wire_roundtrip(value)
        assert isinstance(decoded, NestedResult)
        assert decoded == value
        assert isinstance(decoded.table[(0, 1)]["deep"][1][1], tuple)

    def test_marker_key_collision_nested(self):
        # Data that *looks* like encoding structure must stay data, at
        # any nesting depth.
        value = {"a": [{"__pairs__": 1, "__tuple__": [2]}]}
        assert wire_roundtrip(value) == value


class TestEmptyDataclasses:
    def test_empty_dataclass_roundtrips(self):
        decoded = wire_roundtrip(EmptyResult())
        assert isinstance(decoded, EmptyResult)
        assert decoded == EmptyResult()

    def test_empty_dataclass_in_containers(self):
        value = {"results": [EmptyResult(), (EmptyResult(),)]}
        decoded = wire_roundtrip(value)
        assert decoded == value
        assert isinstance(decoded["results"][1], tuple)


class TestNumericFidelity:
    def test_large_ints_are_exact(self):
        for value in (2**62, 2**80 + 1, -(2**100), (1 << 62) - 1):
            assert wire_roundtrip(value) == value
            assert isinstance(wire_roundtrip(value), int)

    def test_float_bit_fidelity(self):
        for value in (0.1, 1 / 3, 1e308, 5e-324, 2.2250738585072014e-308):
            decoded = wire_roundtrip(value)
            assert math.copysign(1, decoded) == math.copysign(1, value)
            assert decoded.hex() == value.hex()  # bit-exact, not approx

    def test_negative_zero_sign_survives(self):
        decoded = wire_roundtrip(-0.0)
        assert decoded == 0.0 and math.copysign(1, decoded) == -1.0

    def test_bool_stays_bool(self):
        decoded = wire_roundtrip({"flags": (True, False, 1, 0)})
        assert decoded["flags"] == (True, False, 1, 0)
        assert isinstance(decoded["flags"][0], bool)
        assert not isinstance(decoded["flags"][2], bool)

    def test_mixed_numeric_buckets(self):
        # The FctResult shape: tuple-keyed buckets of optional floats.
        buckets = {(0, 10_000): (None, 0.1 + 0.2), (10_000, 1 << 62): (1e-9, None)}
        assert wire_roundtrip(buckets) == buckets


class TestNonUtf8SafeStrings:
    def test_lone_surrogates_survive(self):
        # os.fsdecode of undecodable filenames yields lone surrogates;
        # such a string cannot be UTF-8 encoded, but the ASCII-escaped
        # JSON wire must carry it anyway.
        tricky = "bad-\udcff-name"
        with pytest.raises(UnicodeEncodeError):
            tricky.encode("utf-8")
        assert wire_roundtrip(tricky) == tricky

    def test_control_characters_survive(self):
        value = {"s": "\x00\x01\x1f\x7f", "nl": "a\r\nb\tc"}
        assert wire_roundtrip(value) == value

    def test_non_ascii_text_survives(self):
        value = ["π ≈ 3.14159", "数据中心", "🛰", "\N{COMBINING ACUTE ACCENT}e"]
        assert wire_roundtrip(value) == value

    def test_surrogate_keys_and_nested_placement(self):
        value = {"\ud800key": ("\udfff", {("\ud800", 1): "v"})}
        assert wire_roundtrip(value) == value


class TestErrorsStayErrors:
    def test_unportable_value_raises_before_the_wire(self):
        with pytest.raises(EncodeError):
            to_portable(object())

    def test_decoder_rejects_non_dataclass_paths(self):
        with pytest.raises(EncodeError):
            from_portable({"__dataclass__": "subprocess:Popen", "fields": {}})
