"""Tests for the experiment-runner CLI."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig08", "table1", "fig12"):
            assert name in out

    def test_registry_covers_all_paper_artifacts(self):
        expected = {
            "fig01", "fig04", "fig06", "fig07", "fig08", "fig09", "fig10",
            "fig11", "fig12", "fig13", "fig14", "fig16", "fig17", "fig18",
            "table1", "table2",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "12,096" in out

    def test_run_fig06(self, capsys):
        assert main(["fig06"]) == 0
        assert "cycle_ms" in capsys.readouterr().out

    def test_run_fig14(self, capsys):
        assert main(["fig14"]) == 0
        assert "rel-cycle" in capsys.readouterr().out
