"""Tests for the scenario-runner CLI (list / run / sweep / cache /
worker + legacy spelling) and the progress stream's formatting."""

import pytest

from repro.cli import _progress_printer, main
from repro.scenarios import Progress, all_scenarios


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Never let CLI tests read or write the user's real result cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


class TestList:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig08", "table1", "fig12"):
            assert name in out
        assert "tags:" in out

    def test_list_tag_filter(self, capsys):
        assert main(["list", "--tag", "packet"]) == 0
        out = capsys.readouterr().out
        assert "fig07" in out and "fig13" in out
        assert "table1" not in out

    def test_registry_covers_all_paper_artifacts(self):
        expected = {
            "fig01", "fig04", "fig06", "fig07", "fig08", "fig09", "fig10",
            "fig11", "fig11_dynamic", "fig12", "fig13", "fig14", "fig16",
            "fig17", "fig18",
            "table1", "table2",
            "ablation_grouping", "ablation_guard_bands", "ablation_vlb",
        }
        assert {sc.name for sc in all_scenarios()} == expected


class TestRun:
    def test_unknown_scenario(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        assert "12,096" in capsys.readouterr().out

    def test_run_fig06_with_override(self, capsys):
        assert main(["run", "fig06", "--set", "n_racks=216"]) == 0
        out = capsys.readouterr().out
        assert "cycle_ms" in out
        assert "'n_racks': 216" in out

    def test_run_by_tag(self, capsys):
        assert main(["run", "--tag", "timing", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "fig06" in out and "fig14" in out

    def test_second_run_hits_cache(self, capsys):
        assert main(["run", "fig06", "--quiet"]) == 0
        assert "[cached]" not in capsys.readouterr().out
        assert main(["run", "fig06", "--quiet"]) == 0
        assert "[cached]" in capsys.readouterr().out

    def test_no_cache_skips_reads(self, capsys):
        assert main(["run", "fig06", "--quiet"]) == 0
        capsys.readouterr()
        assert main(["run", "fig06", "--quiet", "--no-cache"]) == 0
        assert "[cached]" not in capsys.readouterr().out

    def test_empty_selection_errors(self, capsys):
        assert main(["run"]) == 2
        assert "nothing selected" in capsys.readouterr().err

    def test_bad_override_errors(self, capsys):
        assert main(["run", "fig06", "--set", "bogus=1"]) == 2
        assert "bogus" in capsys.readouterr().err


class TestSweep:
    def test_sweep_grid(self, capsys):
        assert main(
            ["sweep", "fig06", "--set", "n_racks=108,216", "--quiet"]
        ) == 0
        out = capsys.readouterr().out
        assert "'n_racks': 108" in out and "'n_racks': 216" in out

    def test_sweep_requires_set(self, capsys):
        assert main(["sweep", "fig06"]) == 2
        assert "--set" in capsys.readouterr().err


class TestCacheCommand:
    def test_stats_empty(self, capsys):
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "cache root:" in out and "(empty)" in out

    def test_stats_and_ls_after_a_run(self, capsys):
        assert main(["run", "fig06", "--quiet"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "fig06" in out and "1 result(s)" in out and "total" in out
        assert main(["cache", "ls", "fig06"]) == 0
        out = capsys.readouterr().out
        assert "result" in out and "merged" in out

    def test_ls_requires_scenario(self, capsys):
        assert main(["cache", "ls"]) == 2
        assert "scenario" in capsys.readouterr().err

    def test_clear_scenario_then_all(self, capsys):
        assert main(["run", "fig06", "--quiet"]) == 0
        capsys.readouterr()
        assert main(["cache", "clear", "fig06"]) == 0
        assert "removed 1 cache entry" in capsys.readouterr().out
        assert main(["cache", "clear"]) == 0
        assert "removed 0" in capsys.readouterr().out
        # The next run is a miss again.
        assert main(["run", "fig06", "--quiet"]) == 0
        assert "[cached]" not in capsys.readouterr().out

    def test_cache_dir_disabled_errors(self, capsys):
        assert main(["cache", "stats", "--cache-dir", ""]) == 2

    def test_stats_ages_run_files(self, tmp_path, monkeypatch, capsys):
        import os
        import time

        from repro.scenarios.cache import STALE_RUN_FILE_S

        root = tmp_path / "cache"
        (root / "_journal").mkdir(parents=True)
        stale = root / "_journal" / "dead-run.jsonl"
        stale.write_text('{"ev": "start"}\n')
        old = time.time() - STALE_RUN_FILE_S - 24 * 3600
        os.utime(stale, (old, old))
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "_journal" in out and "1 journal(s)" in out
        assert "oldest 8.0d" in out and "stale" in out
        # A scenario-scoped clear collects it (age-based GC).
        assert main(["cache", "clear", "fig06"]) == 0
        capsys.readouterr()
        assert not stale.exists()
        assert main(["cache", "stats"]) == 0
        assert "_journal" not in capsys.readouterr().out


class TestExecutorOptions:
    def test_distributed_without_workers_or_listen_errors(self, capsys):
        assert main(
            ["run", "fig06", "--executor", "distributed", "--workers", "0"]
        ) == 2
        assert "listen" in capsys.readouterr().err

    def test_malformed_listen_is_a_clean_error(self, capsys):
        # Rejected at Runner construction, not a traceback mid-run.
        assert main(["run", "fig06", "--listen", "nonsense"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_alias_selects_exactly_and_by_glob(self):
        from repro.scenarios import select

        assert [sc.name for sc in select(names=["fig07_datamining"])] == ["fig07"]
        assert [sc.name for sc in select(names=["fig09_web*"])] == ["fig09"]

    def test_worker_bad_address_errors(self, capsys):
        assert main(["worker", "nonsense"]) == 1
        assert "worker error" in capsys.readouterr().err

    def test_worker_unreachable_coordinator_errors(self, capsys):
        assert main(
            ["worker", "127.0.0.1:1", "--connect-timeout", "0.2"]
        ) == 1
        assert "worker error" in capsys.readouterr().err


class TestProgressPrinter:
    def _event(self, **kw):
        base = dict(
            done=1, total=4, label="fig07:opera@0.1", duration_s=1.25,
            eta_s=10.0, failed=False, worker=None,
        )
        base.update(kw)
        return Progress(**base)

    def test_plain_line(self, capsys):
        _progress_printer(self._event())
        err = capsys.readouterr().err
        assert "[1/4] fig07:opera@0.1 (1.2s) — eta 10s" in err

    def test_worker_attribution(self, capsys):
        # Units completed by remote workers are attributed in the stream.
        _progress_printer(self._event(worker="host-42"))
        assert "@host-42" in capsys.readouterr().err

    def test_unknown_eta_is_omitted(self, capsys):
        # A zero-duration first unit yields eta_s=None; the line must not
        # print a bogus instant estimate.
        _progress_printer(self._event(eta_s=None, duration_s=0.0))
        err = capsys.readouterr().err
        assert "eta" not in err and "(0.0s)" in err

    def test_non_finite_eta_guarded(self, capsys):
        _progress_printer(self._event(eta_s=float("inf")))
        assert "eta ?" in capsys.readouterr().err

    def test_final_unit_has_no_eta(self, capsys):
        _progress_printer(self._event(done=4, total=4, eta_s=0.0))
        assert "eta" not in capsys.readouterr().err

    def test_line_is_one_atomic_write(self, monkeypatch):
        # Multiple worker processes share the parent's stderr pipe;
        # print() writes the text and the newline separately, so two
        # concurrent printers can tear each other's lines. The printer
        # must emit each line (newline included) as ONE write() call —
        # single writes under PIPE_BUF are atomic on POSIX pipes.
        calls = []

        class Recorder:
            def write(self, text):
                calls.append(text)

            def flush(self):
                pass

        monkeypatch.setattr("sys.stderr", Recorder())
        _progress_printer(self._event())
        assert len(calls) == 1
        assert calls[0].endswith("\n")
        assert "[1/4] fig07:opera@0.1" in calls[0]


class TestLegacySpelling:
    def test_bare_experiment_name(self, capsys):
        assert main(["table1"]) == 0
        assert "12,096" in capsys.readouterr().out

    def test_legacy_k_flag(self, capsys):
        assert main(["fig06"]) == 0
        assert "cycle_ms" in capsys.readouterr().out
        assert main(["fig04", "--k", "12", "--quiet"]) == 0
        assert "'k': 12" in capsys.readouterr().out

    def test_legacy_unknown_name(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown scenario" in capsys.readouterr().err
