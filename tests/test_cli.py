"""Tests for the scenario-runner CLI (list / run / sweep + legacy spelling)."""

import pytest

from repro.cli import main
from repro.scenarios import all_scenarios


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Never let CLI tests read or write the user's real result cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


class TestList:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig08", "table1", "fig12"):
            assert name in out
        assert "tags:" in out

    def test_list_tag_filter(self, capsys):
        assert main(["list", "--tag", "packet"]) == 0
        out = capsys.readouterr().out
        assert "fig07" in out and "fig13" in out
        assert "table1" not in out

    def test_registry_covers_all_paper_artifacts(self):
        expected = {
            "fig01", "fig04", "fig06", "fig07", "fig08", "fig09", "fig10",
            "fig11", "fig12", "fig13", "fig14", "fig16", "fig17", "fig18",
            "table1", "table2",
            "ablation_grouping", "ablation_guard_bands", "ablation_vlb",
        }
        assert {sc.name for sc in all_scenarios()} == expected


class TestRun:
    def test_unknown_scenario(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        assert "12,096" in capsys.readouterr().out

    def test_run_fig06_with_override(self, capsys):
        assert main(["run", "fig06", "--set", "n_racks=216"]) == 0
        out = capsys.readouterr().out
        assert "cycle_ms" in out
        assert "'n_racks': 216" in out

    def test_run_by_tag(self, capsys):
        assert main(["run", "--tag", "timing", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "fig06" in out and "fig14" in out

    def test_second_run_hits_cache(self, capsys):
        assert main(["run", "fig06", "--quiet"]) == 0
        assert "[cached]" not in capsys.readouterr().out
        assert main(["run", "fig06", "--quiet"]) == 0
        assert "[cached]" in capsys.readouterr().out

    def test_no_cache_skips_reads(self, capsys):
        assert main(["run", "fig06", "--quiet"]) == 0
        capsys.readouterr()
        assert main(["run", "fig06", "--quiet", "--no-cache"]) == 0
        assert "[cached]" not in capsys.readouterr().out

    def test_empty_selection_errors(self, capsys):
        assert main(["run"]) == 2
        assert "nothing selected" in capsys.readouterr().err

    def test_bad_override_errors(self, capsys):
        assert main(["run", "fig06", "--set", "bogus=1"]) == 2
        assert "bogus" in capsys.readouterr().err


class TestSweep:
    def test_sweep_grid(self, capsys):
        assert main(
            ["sweep", "fig06", "--set", "n_racks=108,216", "--quiet"]
        ) == 0
        out = capsys.readouterr().out
        assert "'n_racks': 108" in out and "'n_racks': 216" in out

    def test_sweep_requires_set(self, capsys):
        assert main(["sweep", "fig06"]) == 2
        assert "--set" in capsys.readouterr().err


class TestLegacySpelling:
    def test_bare_experiment_name(self, capsys):
        assert main(["table1"]) == 0
        assert "12,096" in capsys.readouterr().out

    def test_legacy_k_flag(self, capsys):
        assert main(["fig06"]) == 0
        assert "cycle_ms" in capsys.readouterr().out
        assert main(["fig04", "--k", "12", "--quiet"]) == 0
        assert "'k': 12" in capsys.readouterr().out

    def test_legacy_unknown_name(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown scenario" in capsys.readouterr().err
