"""Tests for workload distributions, arrivals and traffic patterns."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.distributions import (
    ALL_WORKLOADS,
    DATAMINING,
    HADOOP,
    WEBSEARCH,
    FlowSizeDistribution,
)
from repro.workloads.patterns import (
    all_to_all_matrix,
    hot_rack_matrix,
    permutation_flows,
    permutation_matrix,
    shuffle_flows,
    skew_matrix,
)


class TestDistributions:
    def test_registry(self):
        assert set(ALL_WORKLOADS) == {"datamining", "websearch", "hadoop"}

    @pytest.mark.parametrize("dist", [DATAMINING, WEBSEARCH, HADOOP])
    def test_cdf_monotone(self, dist):
        xs = [dist.points[0][0] * (1.6**i) for i in range(30)]
        vals = [dist.cdf(x) for x in xs]
        assert vals == sorted(vals)
        assert vals[-1] <= 1.0

    @pytest.mark.parametrize("dist", [DATAMINING, WEBSEARCH, HADOOP])
    def test_quantile_inverts_cdf(self, dist):
        for q in (0.05, 0.25, 0.5, 0.75, 0.95):
            x = dist.quantile(q)
            assert abs(dist.cdf(x) - q) < 0.02

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_samples_in_range(self, seed):
        rng = random.Random(seed)
        for dist in (DATAMINING, WEBSEARCH, HADOOP):
            size = dist.sample(rng)
            assert dist.points[0][0] <= size <= dist.points[-1][0]

    def test_datamining_spans_paper_range(self):
        # "flows in this workload range in size from 100 bytes to 1 GB"
        assert DATAMINING.points[0][0] == 100
        assert DATAMINING.points[-1][0] == 1_000_000_000

    def test_datamining_mostly_bulk_bytes(self):
        # Figure 1 bottom: the vast majority of datamining bytes are in
        # flows above Opera's 15 MB threshold.
        assert DATAMINING.bulk_byte_fraction(15_000_000) > 0.75

    def test_websearch_all_below_threshold(self):
        # Section 5.3: Websearch has no flows above 15 MB -> worst case.
        assert WEBSEARCH.bulk_byte_fraction(15_000_000) == pytest.approx(0.0)
        assert WEBSEARCH.cdf(15_000_000) == 1.0

    def test_hadoop_median_small(self):
        assert HADOOP.quantile(0.5) < 10_000

    def test_mean_positive_and_ordered(self):
        # Datamining's heavy tail dominates the other workloads' means.
        assert DATAMINING.mean_bytes() > WEBSEARCH.mean_bytes() > 0

    def test_byte_cdf_bounds(self):
        for dist in (DATAMINING, WEBSEARCH, HADOOP):
            assert dist.byte_cdf(dist.points[0][0]) == pytest.approx(0.0, abs=1e-6)
            assert dist.byte_cdf(dist.points[-1][0]) == pytest.approx(1.0)

    def test_invalid_cdf_rejected(self):
        with pytest.raises(ValueError):
            FlowSizeDistribution("bad", ((100, 0.5), (200, 1.0)))
        with pytest.raises(ValueError):
            FlowSizeDistribution("bad", ((200, 0.0), (100, 1.0)))
        with pytest.raises(ValueError):
            FlowSizeDistribution("bad", ((100, 0.0),))


class TestPoissonArrivals:
    def test_rate_matches_load(self):
        gen = PoissonArrivals(WEBSEARCH, load=0.1, n_hosts=64, seed=1)
        # offered bits/s = load * hosts * rate
        expected = 0.1 * 64 * 10_000_000_000
        assert gen.flows_per_second * 8 * WEBSEARCH.mean_bytes() == pytest.approx(
            expected
        )

    def test_flows_sorted_and_bounded(self):
        gen = PoissonArrivals(WEBSEARCH, load=0.2, n_hosts=64, seed=2)
        flows = list(gen.flows(duration_ps=10**9))
        assert flows, "expected arrivals within 1 ms at 20% load"
        times = [f.time_ps for f in flows]
        assert times == sorted(times)
        assert all(t < 10**9 for t in times)

    def test_interrack_only(self):
        gen = PoissonArrivals(
            WEBSEARCH, load=0.5, n_hosts=64, hosts_per_rack=4, seed=3
        )
        for f in gen.flows(duration_ps=10**8):
            assert f.src_host // 4 != f.dst_host // 4

    def test_empirical_rate(self):
        gen = PoissonArrivals(HADOOP, load=0.3, n_hosts=32, seed=4)
        flows = list(gen.flows(duration_ps=10**10))  # 10 ms
        expected = gen.flows_per_second * 0.01
        assert flows and abs(len(flows) - expected) < 5 * expected**0.5 + 5

    def test_invalid_load(self):
        with pytest.raises(ValueError):
            PoissonArrivals(WEBSEARCH, load=0, n_hosts=4)


class TestPatterns:
    def test_all_to_all_row_sums(self):
        demand = all_to_all_matrix(10, 6)
        assert np.allclose(demand.sum(axis=1), 6.0)
        assert np.allclose(np.diag(demand), 0.0)

    def test_permutation_bijective(self):
        demand = permutation_matrix(12, 4, random.Random(0))
        assert np.allclose(demand.sum(axis=1), 4.0)
        assert np.allclose(demand.sum(axis=0), 4.0)
        assert np.allclose(np.diag(demand), 0.0)

    def test_hot_rack(self):
        demand = hot_rack_matrix(8, 6, src=2, dst=5)
        assert demand[2][5] == 6.0
        assert demand.sum() == 6.0

    def test_hot_rack_rejects_self(self):
        with pytest.raises(ValueError):
            hot_rack_matrix(8, 6, src=1, dst=1)

    def test_skew_only_active(self):
        demand = skew_matrix(20, 4, 0.2, random.Random(0))
        senders = set(np.nonzero(demand.sum(axis=1))[0])
        receivers = set(np.nonzero(demand.sum(axis=0))[0])
        assert len(senders) == 4  # 20% of 20 racks
        assert receivers <= senders
        assert np.allclose(demand.sum(), 4 * 4)

    def test_skew_full_fraction_is_permutation_like(self):
        demand = skew_matrix(10, 4, 1.0, random.Random(1))
        assert np.allclose(demand.sum(axis=1), 4.0)

    def test_skew_invalid_fraction(self):
        with pytest.raises(ValueError):
            skew_matrix(10, 4, 0.0)

    def test_shuffle_flows_complete(self):
        flows = shuffle_flows(6, 1000)
        assert len(flows) == 30
        assert all(size == 1000 for _s, _d, size in flows)
        assert all(s != d for s, d, _b in flows)

    def test_permutation_flows_rack_disjoint(self):
        flows = permutation_flows(24, 4, 5000, random.Random(0))
        assert len(flows) == 24
        dsts = {d for _s, d, _b in flows}
        assert len(dsts) == 24  # bijection
        for s, d, _b in flows:
            assert s // 4 != d // 4
