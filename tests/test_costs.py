"""Tests for the cost-normalization model (Appendix A, Table 2)."""

import pytest

from repro.analysis.costs import (
    OPERA_PORT_COSTS,
    STATIC_PORT_COSTS,
    alpha_estimate,
    clos_hosts,
    clos_oversubscription_for_alpha,
    cost_equivalent_networks,
    expander_racks_for_hosts,
    expander_uplinks_for_alpha,
    port_cost,
)


class TestTable2:
    def test_static_port_cost(self):
        assert port_cost(STATIC_PORT_COSTS) == pytest.approx(215.0)

    def test_opera_port_cost(self):
        assert port_cost(OPERA_PORT_COSTS) == pytest.approx(275.0)

    def test_alpha_about_1_3(self):
        assert alpha_estimate() == pytest.approx(1.28, abs=0.03)


class TestAppendixA:
    def test_clos_oversubscription(self):
        # alpha = 2(T-1)/F with T=3: alpha=1.3 -> F ~= 3 (the 3:1 Clos).
        assert clos_oversubscription_for_alpha(1.3) == pytest.approx(3.08, abs=0.01)
        assert clos_oversubscription_for_alpha(4.0) == pytest.approx(1.0)

    def test_clos_hosts_648(self):
        # H = (4F/(F+1))(k/2)^3: F=3 exactly, k=12 -> 648 hosts.
        assert clos_hosts(12, 4 / 3.0) == pytest.approx(648.0)

    def test_expander_u7(self):
        assert expander_uplinks_for_alpha(12, 1.3) == 7

    def test_expander_650_hosts(self):
        assert expander_racks_for_hosts(12, 1.3, 648) == 130

    def test_expander_u_monotone_in_alpha(self):
        us = [expander_uplinks_for_alpha(24, a) for a in (1.0, 1.3, 1.7, 2.0)]
        assert us == sorted(us)
        assert us[0] == 12  # alpha=1: u = d = k/2

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            clos_oversubscription_for_alpha(0)
        with pytest.raises(ValueError):
            expander_uplinks_for_alpha(12, -1)


class TestEquivalentTrio:
    def test_paper_reference(self):
        eq = cost_equivalent_networks(12, 1.3)
        assert eq.n_hosts == 648
        assert eq.opera_racks == 108
        assert eq.opera_uplinks == 6
        assert eq.expander_racks == 130
        assert eq.expander_uplinks == 7
        assert eq.expander_hosts_per_rack == 5
        assert eq.clos_oversubscription == pytest.approx(3.08, abs=0.01)

    def test_k24(self):
        eq = cost_equivalent_networks(24, 1.3)
        assert eq.opera_racks == 432
        assert eq.n_hosts == 5184
        assert eq.expander_uplinks == 14
