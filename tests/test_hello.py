"""Tests for the hello failure-detection protocol (section 3.6.2)."""

import random

import pytest

from repro.core.faults import FailureSet
from repro.core.hello import (
    DeadCircuit,
    HelloProtocol,
    slices_to_full_knowledge,
)
from repro.core.schedule import OperaSchedule


@pytest.fixture(scope="module")
def sched():
    return OperaSchedule(16, 4, seed=0)


class TestGroundTruth:
    def test_no_failures_no_dead_circuits(self, sched):
        protocol = HelloProtocol(sched, FailureSet.none())
        assert protocol.all_dead_circuits() == set()
        assert protocol.fully_informed()

    def test_failed_link_kills_its_circuits(self, sched):
        failures = FailureSet(links=frozenset({(0, 1)}))
        protocol = HelloProtocol(sched, failures)
        dead = protocol.all_dead_circuits()
        assert dead
        assert all(c.switch == 1 and (c.rack_a == 0 or c.rack_b == 0) for c in dead)

    def test_failed_switch_kills_everything_on_it(self, sched):
        failures = FailureSet(switches=frozenset({2}))
        protocol = HelloProtocol(sched, failures)
        dead = protocol.all_dead_circuits()
        assert dead
        assert {c.switch for c in dead} == {2}


class TestDetectionAndGossip:
    def test_endpoints_detect_first(self, sched):
        failures = FailureSet(links=frozenset({(3, 0)}))
        protocol = HelloProtocol(sched, failures)
        protocol.run_cycles(1)
        # Rack 3 has seen every one of its dead circuits fail.
        assert any(3 in (c.rack_a, c.rack_b) for c in protocol.knowledge[3])

    def test_two_cycle_bound_link_failures(self, sched):
        rng = random.Random(1)
        failures = FailureSet.random_links(16, 4, 0.05, rng)
        steps = slices_to_full_knowledge(sched, failures)
        assert steps is not None
        assert steps <= 2 * sched.cycle_slices

    def test_two_cycle_bound_switch_failure(self, sched):
        steps = slices_to_full_knowledge(
            sched, FailureSet(switches=frozenset({1}))
        )
        assert steps is not None
        assert steps <= 2 * sched.cycle_slices

    def test_two_cycle_bound_rack_failures(self, sched):
        rng = random.Random(3)
        failures = FailureSet.random_racks(16, 0.12, rng)
        steps = slices_to_full_knowledge(sched, failures)
        assert steps is not None
        assert steps <= 2 * sched.cycle_slices

    def test_reference_scale_two_cycle_bound(self):
        sched = OperaSchedule(48, 6, seed=0)
        rng = random.Random(5)
        failures = FailureSet.random_links(48, 6, 0.04, rng)
        steps = slices_to_full_knowledge(sched, failures)
        assert steps is not None
        assert steps <= 2 * sched.cycle_slices

    def test_deficit_monotone(self, sched):
        failures = FailureSet.random_links(16, 4, 0.1, random.Random(2))
        protocol = HelloProtocol(sched, failures)
        deficits = []
        for _ in range(2 * sched.cycle_slices):
            protocol.step()
            deficits.append(protocol.knowledge_deficit())
        assert deficits == sorted(deficits, reverse=True)
        assert deficits[-1] == 0

    def test_failed_racks_learn_nothing(self, sched):
        failures = FailureSet(racks=frozenset({5}))
        protocol = HelloProtocol(sched, failures)
        protocol.run_cycles(2)
        assert protocol.knowledge[5] == set()

    def test_dead_circuit_ordering(self):
        a = DeadCircuit(0, 1, 2)
        b = DeadCircuit(0, 2, 1)
        assert a < b
