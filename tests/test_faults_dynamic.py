"""Dynamic failure injection: the fail -> detect -> reroute -> recover loop.

Three contracts are pinned here:

* **Recovery** — a mid-run component failure blackholes in-flight traffic
  (light stops arriving), the hello window delays rerouting, and the NDP
  timeout clock plus RotorLB re-offloading then recover every affected
  flow that is physically recoverable: goodput dips, nothing wedges.
* **Invisibility** — an armed-but-empty failure subsystem is bitwise
  identical to an uninstalled one, and ``REPRO_KERNEL=py`` == ``c`` under
  *active* failures, across scheduler x coalesce combos (the PR 2/5/6
  differential chain extended with the failure axis).
* **Differential reachability** — the packet engine's observed steady-state
  reachability under a failure set matches the static analysis exactly:
  a pair completes iff :meth:`OperaRouting.any_slice_reachable` says some
  topology slice connects it; all-slice-partitioned pairs are classified
  unrecoverable, never left wedged.
"""

import random

import pytest

from repro.core.faults import FailureEvent, FailureSet, FailureSchedule
from repro.core.routing import OperaRouting
from repro.core.topology import OperaNetwork
from repro.net.builders import OperaSimNetwork
from repro.net.kernel import compiled_available
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.distributions import DATAMINING

from test_coalescing import COMBOS

requires_c = pytest.mark.skipif(
    not compiled_available(),
    reason="compiled kernel (_ckernel) not built in this environment",
)

MS = 1_000_000_000


def build_net(seed: int = 0) -> OperaSimNetwork:
    return OperaSimNetwork(OperaNetwork(k=8, n_racks=8, seed=seed))


def fault_workload(
    schedule: FailureSchedule | None,
    kernel: str = "py",
    scheduler: str = "heap",
    coalesce: bool = True,
    seed: int = 7,
    load: float = 0.12,
    duration_ms: float = 1.0,
    horizon_ms: float = 16.0,
):
    """A small mixed workload with optional failure arming; returns every
    observable (the armed-but-empty and py-vs-c differentials compare
    these dicts wholesale)."""
    import os

    saved = {
        key: os.environ.get(key)
        for key in ("REPRO_KERNEL", "REPRO_SCHEDULER", "REPRO_COALESCE")
    }
    os.environ["REPRO_KERNEL"] = kernel
    os.environ["REPRO_SCHEDULER"] = scheduler
    os.environ["REPRO_COALESCE"] = "1" if coalesce else "0"
    try:
        net = build_net(seed=11)
        injector = (
            None if schedule is None else net.install_failures(schedule)
        )
        arrivals = PoissonArrivals(
            DATAMINING.truncated(500_000),
            load=load,
            n_hosts=len(net.hosts),
            hosts_per_rack=net.network.hosts_per_rack,
            seed=seed,
        )
        threshold = net.network.bulk_threshold_bytes
        for flow in arrivals.flows(duration_ps=int(duration_ms * MS)):
            if flow.size_bytes >= threshold:
                net.start_bulk_flow(
                    flow.src_host, flow.dst_host, flow.size_bytes, flow.time_ps
                )
            else:
                net.start_low_latency_flow(
                    flow.src_host, flow.dst_host, flow.size_bytes, flow.time_ps
                )
        net.run(until_ps=int(horizon_ms * MS))
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    stats = net.stats
    return {
        "events": net.sim.events_processed,
        "final_now": net.sim.now,
        "pending": net.sim.pending,
        "fcts": [
            (fid, rec.fct_ps, rec.delivered_bytes, rec.retransmissions)
            for fid, rec in sorted(stats.flows.items())
        ],
        "blackholed_packets": stats.total_blackholed_packets(),
        "blackholed_bytes": stats.blackholed_bytes,
        "affected": tuple(sorted(stats.affected_flows)),
        "unrecoverable": tuple(sorted(stats.unrecoverable_flows)),
        "rtx": (
            0
            if injector is None
            else injector.ndp.timeout_retransmits + injector.ndp.replayed_pulls
        ),
        "net": net,
        "injector": injector,
    }


def observables(run: dict) -> dict:
    return {k: v for k, v in run.items() if k not in ("net", "injector")}


# ---------------------------------------------------------------------------
# Satellite: loud validation of failure draws and schedules
# ---------------------------------------------------------------------------


class TestValidation:
    @pytest.mark.parametrize("fraction", [-0.1, 1.5, 2.0])
    def test_fraction_out_of_range_names_the_argument(self, fraction):
        rng = random.Random(0)
        for draw in (
            lambda: FailureSet.random_links(8, 4, fraction, rng),
            lambda: FailureSet.random_racks(8, fraction, rng),
            lambda: FailureSet.random_switches(4, fraction, rng),
        ):
            with pytest.raises(ValueError, match="fraction"):
                draw()

    def test_unknown_component_rejected(self):
        with pytest.raises(ValueError, match="hosts"):
            FailureSchedule.random(8, 4, "hosts", 0.1, 0, random.Random(0))

    def test_repair_must_follow_fail(self):
        fs = FailureSet(links=frozenset({(0, 1)}))
        with pytest.raises(ValueError, match="repair_at_ps"):
            FailureSchedule.fail_set(fs, at_ps=100, repair_at_ps=100)

    def test_event_field_validation(self):
        with pytest.raises(ValueError, match="component"):
            FailureEvent(0, "fiber", (0, 1))
        with pytest.raises(ValueError, match="action"):
            FailureEvent(0, "link", (0, 1), "wobble")
        with pytest.raises(ValueError, match="pair"):
            FailureEvent(0, "link", 3)
        with pytest.raises(ValueError, match="int"):
            FailureEvent(0, "rack", (1, 2))
        with pytest.raises(ValueError, match=">= 0"):
            FailureEvent(-5, "rack", 1)

    def test_schedule_validate_rejects_out_of_network_targets(self):
        sched = FailureSchedule((FailureEvent(0, "rack", 99),))
        with pytest.raises(ValueError, match="99"):
            sched.validate(8, 4)

    def test_install_failures_validates_against_the_network(self):
        net = build_net()
        bad = FailureSchedule((FailureEvent(0, "switch", 77),))
        with pytest.raises(ValueError, match="77"):
            net.install_failures(bad)

    def test_install_twice_rejected(self):
        net = build_net()
        net.install_failures(FailureSchedule.empty())
        with pytest.raises(RuntimeError, match="installed"):
            net.install_failures(FailureSchedule.empty())

    def test_install_mid_run_rejected(self):
        net = build_net()
        net.run(until_ps=2 * net.slice_ps)
        with pytest.raises(RuntimeError, match="pristine"):
            net.install_failures(FailureSchedule.empty())


class TestScheduleBasics:
    def test_events_sorted_regardless_of_construction_order(self):
        late = FailureEvent(500, "rack", 1)
        early = FailureEvent(100, "link", (0, 2))
        sched = FailureSchedule((late, early))
        assert [e.time_ps for e in sched] == [100, 500]

    def test_failure_set_at_folds_fail_and_repair(self):
        fs = FailureSet(links=frozenset({(1, 2)}), switches=frozenset({3}))
        sched = FailureSchedule.fail_set(fs, at_ps=1_000, repair_at_ps=9_000)
        assert sched.failure_set_at(0).empty
        assert sched.failure_set_at(1_000) == fs
        assert sched.failure_set_at(8_999) == fs
        assert sched.failure_set_at(9_000).empty
        assert sched.final_failure_set().empty
        assert len(sched) == 4 and not sched.empty_schedule

    def test_random_draw_matches_static_draw(self):
        # The dynamic schedule's single-epoch draw is the same seeded draw
        # fig11's static analysis uses: identical rng -> identical set.
        static = FailureSet.random_links(8, 4, 0.25, random.Random(42))
        sched = FailureSchedule.random(
            8, 4, "link", 0.25, 700, random.Random(42)
        )
        assert sched.final_failure_set() == static
        assert all(e.time_ps == 700 for e in sched)


# ---------------------------------------------------------------------------
# Tentpole: mid-run failure dips goodput, detection reroutes, NDP recovers
# ---------------------------------------------------------------------------


class TestDynamicRecovery:
    INJECT_PS = int(0.5 * MS)

    def _link_schedule(self, net, fraction=0.25, seed=3):
        return FailureSchedule.random(
            net.network.n_racks,
            net.network.n_switches,
            "link",
            fraction,
            self.INJECT_PS,
            random.Random(seed),
        )

    def test_link_failure_dips_goodput_and_recovers_every_flow(self):
        baseline = fault_workload(FailureSchedule.empty())
        run = fault_workload(self._link_schedule(build_net(seed=11)))
        stats = run["net"].stats
        injector = run["injector"]
        # The failure actually bit: packets were physically lost.
        assert run["blackholed_packets"] > 0
        assert run["affected"]
        # Detection lands after the hello window but within two cycles.
        applied, detected, _event = injector.log[0]
        cycle_ps = run["net"].slice_ps * run["net"].network.schedule.cycle_slices
        assert applied < detected <= applied + 2 * cycle_ps + run["net"].slice_ps
        # Goodput dips while stale routes blackhole traffic.
        window = 2 * stats.throughput_bin_ps
        base_stats = baseline["net"].stats
        assert stats.delivered_bytes_between(
            self.INJECT_PS, self.INJECT_PS + window
        ) < base_stats.delivered_bytes_between(
            self.INJECT_PS, self.INJECT_PS + window
        )
        # ... and the recovery layer recovers *everything* recoverable:
        # no affected flow is left incomplete without a classification.
        wedged = [
            fid
            for fid in stats.affected_flows - stats.unrecoverable_flows
            if not stats.flows[fid].complete
        ]
        assert wedged == []
        recovery = stats.recovery_time_ps(self.INJECT_PS)
        assert recovery is not None and recovery > 0
        assert run["rtx"] > 0

    def test_every_component_kind_recovers(self):
        for component in ("link", "rack", "switch"):
            net_probe = build_net(seed=11)
            sched = FailureSchedule.random(
                net_probe.network.n_racks,
                net_probe.network.n_switches,
                component,
                0.25,
                self.INJECT_PS,
                random.Random(5),
            )
            run = fault_workload(sched)
            stats = run["net"].stats
            wedged = [
                fid
                for fid in stats.affected_flows - stats.unrecoverable_flows
                if not stats.flows[fid].complete
            ]
            assert wedged == [], component
            assert stats.recovery_time_ps(self.INJECT_PS) is not None, component

    def test_slice_parking_defers_routeless_packets(self):
        # Under a heavy link draw some slices lose every surviving path
        # for some pair; the ToR parks those packets one slice instead of
        # dropping them (losses would cost a full timeout round-trip).
        run = fault_workload(
            self._link_schedule(build_net(seed=11), fraction=0.4)
        )
        ctx = run["net"]._fault_cell[0]
        assert ctx.slice_parks > 0
        stats = run["net"].stats
        wedged = [
            fid
            for fid in stats.affected_flows - stats.unrecoverable_flows
            if not stats.flows[fid].complete
        ]
        assert wedged == []

    def test_isolated_rack_is_written_off_not_wedged(self):
        # Every uplink of rack 3 fails: the rack is alive but unreachable
        # in every slice. Flows into it must be classified unrecoverable
        # (stopping the NDP retry loop), and live pairs stay unaffected.
        net = build_net()
        n_sw = net.network.n_switches
        fs = FailureSet(links=frozenset((3, w) for w in range(n_sw)))
        injector = net.install_failures(
            FailureSchedule.fail_set(fs, at_ps=1_000_000)
        )
        hpr = net.network.hosts_per_rack
        net.start_low_latency_flow(0, 3 * hpr, 200_000, 6 * MS)
        net.start_low_latency_flow(1, 5 * hpr, 200_000, 6 * MS)
        net.run(until_ps=40 * MS)
        stats = net.stats
        dead, live = stats.flows[1], stats.flows[2]
        assert not dead.complete and dead.flow_id in stats.unrecoverable_flows
        assert live.complete and live.flow_id not in stats.affected_flows
        # The retry clock drained: written-off flows are not re-probed.
        assert not injector.ndp._pending and not injector.ndp._armed

    def test_ci_scale_stranded_relay_is_reshipped(self):
        # Regression: the forced-relay pass used to run inside _fill_vlb's
        # local-backlog loop, which early-returns once no offloadable
        # backlog remains — so a capable spare circuit appearing *after*
        # that return never shipped stranded relay traffic, wedging one
        # bulk flow forever in the ci-scale links@25% cell. The pass now
        # covers every spare circuit before the backlog loop.
        from repro.experiments.fig11_dynamic import run_cell, shards

        cell = next(
            c
            for c in shards(fractions=(0.25,), scale="ci")
            if c.key.startswith("links")
        )
        row = run_cell(**cell.params)
        assert row.wedged == 0
        assert row.completed == row.n_flows

    def test_dead_tor_relay_data_is_unrecoverable(self):
        net_probe = build_net(seed=11)
        sched = FailureSchedule.random(
            net_probe.network.n_racks,
            0,
            "rack",
            0.25,
            self.INJECT_PS,
            random.Random(9),
        )
        run = fault_workload(sched)
        stats = run["net"].stats
        dead_racks = sched.final_failure_set().racks
        assert dead_racks
        hpr = run["net"].network.hosts_per_rack
        for rec in stats.flows.values():
            if rec.complete:
                continue
            endpoint_dead = (
                rec.src_host // hpr in dead_racks
                or rec.dst_host // hpr in dead_racks
            )
            # Every incomplete flow is explained: dead endpoint or
            # payload destroyed inside a dead ToR's relay queues.
            assert rec.flow_id in stats.unrecoverable_flows
            if not endpoint_dead:
                assert rec.flow_id in run["injector"]._lost_data_flows


# ---------------------------------------------------------------------------
# Invisibility: armed-but-empty == uninstalled; py == c under failures
# ---------------------------------------------------------------------------


class TestArmedButEmptyIdentity:
    def test_bitwise_identical_across_scheduler_and_coalesce(self):
        baseline = observables(fault_workload(None, scheduler="heap", coalesce=False))
        for scheduler, coalesce in COMBOS:
            armed = observables(
                fault_workload(
                    FailureSchedule.empty(),
                    scheduler=scheduler,
                    coalesce=coalesce,
                )
            )
            assert armed == baseline, (scheduler, coalesce)

    @requires_c
    def test_bitwise_identical_under_compiled_kernel(self):
        plain = observables(fault_workload(None, kernel="c"))
        armed = observables(fault_workload(FailureSchedule.empty(), kernel="c"))
        assert armed == plain


@requires_c
class TestKernelIdentityUnderFailures:
    def _schedule(self):
        return FailureSchedule.random(
            8, 4, "link", 0.25, int(0.5 * MS), random.Random(3)
        )

    def test_py_c_bitwise_under_active_failures(self):
        py = observables(fault_workload(self._schedule(), kernel="py"))
        ck = observables(fault_workload(self._schedule(), kernel="c"))
        assert ck == py
        assert py["blackholed_packets"] > 0  # the differential is not vacuous

    def test_py_c_bitwise_across_combos(self):
        baseline = observables(
            fault_workload(self._schedule(), kernel="py", scheduler="heap", coalesce=False)
        )
        for scheduler, coalesce in COMBOS:
            run = observables(
                fault_workload(
                    self._schedule(),
                    kernel="c",
                    scheduler=scheduler,
                    coalesce=coalesce,
                )
            )
            assert run == baseline, (scheduler, coalesce)


# ---------------------------------------------------------------------------
# Satellite: packet-engine reachability == static analysis reachability
# ---------------------------------------------------------------------------


class TestDifferentialReachability:
    def test_steady_state_completion_matches_any_slice_reachable(self):
        # A draw guaranteed to partition rack 3 (every uplink dead) plus a
        # random sprinkle of other dead fibers; one LL flow per rack pair,
        # started after detection settles. The engine must complete
        # exactly the statically reachable pairs and write off the rest.
        net = build_net()
        n_racks = net.network.n_racks
        n_sw = net.network.n_switches
        rng = random.Random(17)
        fs = FailureSet(
            links=frozenset((3, w) for w in range(n_sw))
        ).union(FailureSet.random_links(n_racks, n_sw, 0.2, rng))
        net.install_failures(FailureSchedule.fail_set(fs, at_ps=1_000_000))
        routing = OperaRouting(net.network.schedule, fs)

        hpr = net.network.hosts_per_rack
        flow_pairs = {}
        fid = 0
        for src in range(n_racks):
            for dst in range(n_racks):
                if src == dst:
                    continue
                fid += 1
                flow_pairs[fid] = (src, dst)
                net.start_low_latency_flow(
                    src * hpr, dst * hpr, 60_000, 6 * MS
                )
        net.run(until_ps=120 * MS)

        stats = net.stats
        for flow_id, (src, dst) in flow_pairs.items():
            rec = stats.flows[flow_id]
            reachable = routing.any_slice_reachable(src, dst)
            assert rec.complete == reachable, (src, dst)
            if not reachable:
                assert flow_id in stats.unrecoverable_flows, (src, dst)
        # The run is differential in both directions.
        assert any(
            not routing.any_slice_reachable(s, d)
            for s, d in flow_pairs.values()
        )
        assert any(
            routing.any_slice_reachable(s, d) for s, d in flow_pairs.values()
        )

    def test_partitioned_fraction_consistent_with_static_report(self):
        # The all-slice-partitioned pairs the engine writes off are a
        # subset of the static report's any-slice-disconnected pairs.
        from repro.analysis.failures import opera_failure_report

        net = build_net()
        n_racks = net.network.n_racks
        n_sw = net.network.n_switches
        fs = FailureSet(
            links=frozenset((3, w) for w in range(n_sw))
        ).union(FailureSet.random_links(n_racks, n_sw, 0.2, random.Random(17)))
        routing = OperaRouting(net.network.schedule, fs)
        report = opera_failure_report(net.network.schedule, fs)
        pairs = [
            (a, b)
            for a in range(n_racks)
            for b in range(a + 1, n_racks)
            if a not in fs.racks and b not in fs.racks
        ]
        partitioned = sum(
            1 for a, b in pairs if not routing.any_slice_reachable(a, b)
        )
        assert partitioned > 0
        assert partitioned / len(pairs) <= report.any_slice_loss + 1e-12
