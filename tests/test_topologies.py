"""Tests for the baseline topologies (folded Clos, expander, RotorNet)."""

import pytest

from repro.topologies.expander import ExpanderTopology, sample_disjoint_matchings
from repro.topologies.folded_clos import FoldedClos
from repro.topologies.rotornet import RotorNetSchedule, RotorNetTopology

import random


class TestSampleDisjointMatchings:
    def test_disjoint_and_perfect(self):
        ms = sample_disjoint_matchings(20, 5, random.Random(0))
        assert len(ms) == 5
        seen = set()
        for m in ms:
            for v in range(20):
                assert m[m[v]] == v and m[v] != v
                edge = (min(v, m[v]), max(v, m[v]))
                seen.add((ms.index(m), edge))
        edges = {e for _i, e in seen}
        assert len(edges) == 5 * 10

    def test_rejects_odd(self):
        with pytest.raises(ValueError):
            sample_disjoint_matchings(9, 3, random.Random(0))

    def test_rejects_too_many(self):
        with pytest.raises(ValueError):
            sample_disjoint_matchings(4, 4, random.Random(0))


class TestExpander:
    @pytest.fixture(scope="class")
    def paper_expander(self):
        """The 650-host u=7 expander of the paper's comparison."""
        return ExpanderTopology(130, 7, 5, seed=0)

    def test_shape(self, paper_expander):
        assert paper_expander.n_hosts == 650
        assert paper_expander.k == 12

    def test_regular(self, paper_expander):
        for edges in paper_expander.adjacency:
            assert len(edges) == 7

    def test_connected(self, paper_expander):
        assert paper_expander.routes.reachable_pairs() == 130 * 129

    def test_path_lengths_short(self, paper_expander):
        # Figure 4: the u=7 expander's paths are almost all <= 4 hops.
        dist = paper_expander.path_length_counts()
        total = sum(dist.values())
        assert sum(c for h, c in dist.items() if h <= 4) / total > 0.99
        assert 2.0 < paper_expander.average_path_length() < 3.5

    def test_host_rack(self, paper_expander):
        assert paper_expander.host_rack(0) == 0
        assert paper_expander.host_rack(649) == 129
        with pytest.raises(ValueError):
            paper_expander.host_rack(650)

    def test_rejects_low_degree(self):
        with pytest.raises(ValueError):
            ExpanderTopology(10, 2, 4)

    def test_deterministic(self):
        a = ExpanderTopology(20, 4, 4, seed=3)
        b = ExpanderTopology(20, 4, 4, seed=3)
        assert a.matchings == b.matchings


class TestFoldedClos:
    @pytest.fixture(scope="class")
    def clos(self):
        """The paper's 648-host 3:1 folded Clos."""
        return FoldedClos(12, 3)

    def test_shape_matches_paper(self, clos):
        assert clos.n_hosts == 648
        assert clos.hosts_per_rack == 9
        assert clos.tor_uplinks == 3
        assert clos.n_racks == 72
        assert clos.n_pods == 12

    def test_full_fat_tree(self):
        ft = FoldedClos(4, 1)
        assert ft.n_hosts == 16  # classic k=4 fat tree
        assert ft.tor_uplinks == 2

    def test_port_counts_respected(self, clos):
        # Aggregation switches: tors_per_pod down + cores_per_group up = k.
        assert clos.tors_per_pod + clos.cores_per_group == clos.k
        # Core switches: one port per pod <= k.
        assert clos.n_pods <= clos.k

    def test_core_wiring_bidirectional(self, clos):
        for agg in range(clos.n_aggs):
            for core in clos.agg_core_links(agg):
                assert agg in clos.core_agg_links(core)

    def test_rack_distance(self, clos):
        assert clos.rack_distance(0, 0) == 0
        assert clos.rack_distance(0, 1) == 2  # same pod
        assert clos.rack_distance(0, clos.tors_per_pod) == 4  # cross pod

    def test_path_histogram_total(self, clos):
        counts = clos.path_length_counts()
        assert sum(counts.values()) == clos.n_racks * (clos.n_racks - 1)

    def test_ecmp_path_counts(self, clos):
        assert clos.ecmp_paths(0, 1) == clos.aggs_per_pod
        assert (
            clos.ecmp_paths(0, clos.tors_per_pod)
            == clos.aggs_per_pod * clos.cores_per_group
        )

    def test_bisection(self, clos):
        assert clos.bisection_fraction == pytest.approx(1 / 3)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            FoldedClos(13, 3)
        with pytest.raises(ValueError):
            FoldedClos(12, 4)  # F+1=5 does not divide 12
        with pytest.raises(ValueError):
            FoldedClos(12, 3, n_pods=13)


class TestRotorNet:
    @pytest.fixture(scope="class")
    def sched(self):
        return RotorNetSchedule(16, 4, seed=0)

    def test_cycle_is_racks_over_switches(self, sched):
        assert sched.cycle_slices == 4

    def test_all_switches_active_every_slice(self, sched):
        for s in range(sched.cycle_slices):
            for rack in range(16):
                neighbors = sched.neighbors(rack, s)
                # all four uplinks live (minus any identity assignment)
                assert len(neighbors) >= 3

    def test_cycle_covers_all_pairs(self, sched):
        sched.verify_cycle_connectivity()

    def test_direct_slices_nonempty(self, sched):
        for a, b in [(0, 1), (3, 9), (14, 2)]:
            assert len(sched.direct_slices(a, b)) >= 1

    def test_direct_slices_rejects_self(self, sched):
        with pytest.raises(ValueError):
            sched.direct_slices(1, 1)

    def test_topology_wrapper(self):
        net = RotorNetTopology(16, 4, 4, hybrid=False, seed=0)
        assert net.n_hosts == 64
        assert net.packet_uplinks_per_rack == 0
        assert net.cost_factor == 1.0

    def test_hybrid_costs_more(self):
        hybrid = RotorNetTopology(20, 5, 5, hybrid=True, seed=0)
        assert hybrid.packet_uplinks_per_rack == 1
        # Paper: ~1.33x for the 6-uplink reference design (5 rotor + 1 pkt).
        assert 1.2 < hybrid.cost_factor < 1.4

    def test_indivisible(self):
        with pytest.raises(ValueError):
            RotorNetSchedule(10, 4)
