"""Chaos harness: seeded fault injection, journaled crash-resume, and
quarantine/degradation across the sweep stack.

The contract under test, end to end:

* the ``REPRO_CHAOS`` grammar parses strictly and round-trips;
* a given ``(seed, role)`` pair replays the identical fault-decision
  sequence — chaos runs are experiments, not dice rolls;
* frame-seam faults surface as the failure shapes the recovery machinery
  already handles (drop -> torn connection, corrupt -> ProtocolError);
* the write-ahead journal survives torn tails and reconstructs a crashed
  run's outstanding/quarantined state;
* the cache quarantines corrupt entries as ``*.corrupt`` misses;
* ``policy="degraded"`` quarantines poison units with tracebacks instead
  of wedging the sweep, while ``"strict"`` keeps the historical raise;
* executor degradation ``distributed -> pool -> local`` warns once and
  changes nothing but parallelism;
* the house invariant: a chaos run that completes — including one that
  crashes the coordinator and resumes from the journal — is bitwise
  identical to the fault-free in-process run.
"""

from __future__ import annotations

import hashlib
import json
import random
import socket
import threading
import time
import warnings

import pytest

from repro.distrib import Coordinator
import repro.distrib as distrib_pkg
from repro.distrib.chaos import (
    ChaosConfig,
    ChaosCrash,
    ChaosError,
    ChaosInjector,
    backoff_delays,
    injector,
    mangle_frame,
    parse_chaos,
)
from repro.distrib.journal import RunJournal, journal_path, load_journal
from repro.distrib.protocol import (
    ProtocolError,
    encode_frame,
    recv_msg,
    send_msg,
)
from repro.distrib.worker import _connect
from repro.scenarios import (
    ResultCache,
    Runner,
    ScenarioExecutionError,
    scenario,
)
from repro.scenarios import registry as registry_mod
from repro.scenarios import runner as runner_mod

#: Same tiny fig07 configuration the distrib/sharding tests pin (4 cells).
TINY_FIG07 = {
    "loads": (0.02, 0.05),
    "networks": ("opera", "rotornet"),
    "duration_ms": 0.4,
    "scale": "ci",
}


@pytest.fixture
def scratch_registry():
    """Allow tests to register throwaway scenarios without leaking them."""
    registry_mod.load_builtin()  # snapshot *after* the lazy builtin import
    before = dict(registry_mod._REGISTRY)
    yield registry_mod._REGISTRY
    registry_mod._REGISTRY.clear()
    registry_mod._REGISTRY.update(before)


@pytest.fixture
def fresh_degrade_warnings():
    """Reset the one-time degradation-warning dedup between tests."""
    runner_mod._DEGRADE_WARNED.clear()
    yield
    runner_mod._DEGRADE_WARNED.clear()


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


# ------------------------------------------------------------------ grammar


class TestChaosGrammar:
    def test_full_spec_round_trips(self):
        spec = (
            "seed=7,kill_worker=0.2,drop_frame=0.1,corrupt_frame=0.05,"
            "delay_ms=1:5,stall_heartbeat=0.3,crash_coordinator=after_4"
        )
        cfg = parse_chaos(spec)
        assert cfg.seed == 7
        assert cfg.kill_worker == 0.2
        assert cfg.drop_frame == 0.1
        assert cfg.corrupt_frame == 0.05
        assert cfg.stall_heartbeat == 0.3
        assert cfg.delay_ms == (1.0, 5.0)
        assert cfg.crash_coordinator == 4
        assert parse_chaos(cfg.to_spec()) == cfg

    def test_defaults_are_no_fault(self):
        cfg = parse_chaos("seed=3")
        assert cfg == ChaosConfig(seed=3)
        assert cfg.delay_ms is None and cfg.crash_coordinator is None

    def test_crash_coordinator_spellings(self):
        assert parse_chaos("crash_coordinator=after_3").crash_coordinator == 3
        assert parse_chaos("crash_coordinator=3").crash_coordinator == 3

    def test_single_delay_bound_means_fixed(self):
        assert parse_chaos("delay_ms=2").delay_ms == (2.0, 2.0)

    def test_rejections(self):
        with pytest.raises(ChaosError, match="unknown chaos key"):
            parse_chaos("kill_wrker=0.5")
        with pytest.raises(ChaosError, match=r"\[0, 1\]"):
            parse_chaos("drop_frame=1.5")
        with pytest.raises(ChaosError, match="probability"):
            parse_chaos("kill_worker=lots")
        with pytest.raises(ChaosError, match="key=value"):
            parse_chaos("seed")
        with pytest.raises(ChaosError, match="integer"):
            parse_chaos("seed=x")
        with pytest.raises(ChaosError, match="0 <= a <= b"):
            parse_chaos("delay_ms=5:1")
        with pytest.raises(ChaosError, match=">= 1"):
            parse_chaos("crash_coordinator=0")
        with pytest.raises(ChaosError, match="after_K"):
            parse_chaos("crash_coordinator=soon")


# -------------------------------------------------------------- determinism


class TestDeterminism:
    def test_decision_stream_is_pinned_by_seed_and_role(self):
        """The stream derivation is part of the reproducibility contract:
        sha256(f"{seed}:{role}")[:8] seeds the rng, one uniform draw per
        decide() regardless of which fault kind is consulted."""
        cfg = ChaosConfig(seed=11, kill_worker=0.5, drop_frame=0.5)
        inj = ChaosInjector(cfg, role="worker-0")
        got = [inj.decide("kill_worker") for _ in range(20)]

        digest = hashlib.sha256(b"11:worker-0").digest()
        ref = random.Random(int.from_bytes(digest[:8], "big"))
        assert got == [ref.random() < 0.5 for _ in range(20)]

        # A different kind with the same probability consumes the same
        # stream: one draw per decide, kind-independent.
        inj2 = ChaosInjector(cfg, role="worker-0")
        assert [inj2.decide("drop_frame") for _ in range(20)] == got

    def test_roles_and_seeds_partition_streams(self):
        def stream(role, seed):
            inj = ChaosInjector(ChaosConfig(seed=seed), role)
            return [inj._rng.random() for _ in range(32)]

        assert stream("worker-0", 1) != stream("worker-1", 1)
        assert stream("worker-0", 1) != stream("worker-0", 2)
        assert stream("worker-0", 1) == stream("worker-0", 1)

    def test_armed_but_quiet_never_fires_but_still_draws(self):
        inj = ChaosInjector(ChaosConfig(seed=5))
        assert not any(inj.decide("kill_worker") for _ in range(64))
        # The draws were consumed: the stream position advanced exactly 64.
        digest = hashlib.sha256(b"5:main").digest()
        ref = random.Random(int.from_bytes(digest[:8], "big"))
        for _ in range(64):
            ref.random()
        assert inj._rng.random() == ref.random()

    def test_env_injector_caches_per_spec_and_role(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        assert injector() is None
        monkeypatch.setenv("REPRO_CHAOS", "seed=9")
        first = injector()
        assert first is not None and first.config.seed == 9
        assert injector() is first  # the fault stream must be continuous
        monkeypatch.setenv("REPRO_CHAOS", "seed=10")
        second = injector()
        assert second is not first and second.config.seed == 10
        monkeypatch.setenv("REPRO_CHAOS_ROLE", "worker-3")
        assert injector().role == "worker-3"


# ------------------------------------------------------------------ backoff


class TestBackoff:
    def test_seeded_schedule_is_reproducible(self):
        a = list(backoff_delays(total=5.0, rng=random.Random(42)))
        b = list(backoff_delays(total=5.0, rng=random.Random(42)))
        assert a == b and len(a) > 0

    def test_bounds(self):
        delays = list(
            backoff_delays(base=0.05, cap=2.0, total=30.0, rng=random.Random(7))
        )
        assert sum(delays) <= 30.0
        assert all(d <= 2.0 for d in delays)
        # Equal jitter: never less than half the base, so retries always
        # make progress instead of hammering at zero delay.
        assert all(d >= 0.025 for d in delays)
        # The first delay is drawn from the un-doubled first step.
        assert delays[0] <= 0.05

    def test_growth_reaches_cap(self):
        delays = list(
            backoff_delays(base=0.5, cap=2.0, total=60.0, rng=random.Random(0))
        )
        assert max(delays) > 1.0  # the doubled steps actually grew

    def test_zero_budget_yields_nothing(self):
        assert list(backoff_delays(total=0.0, rng=random.Random(1))) == []


# -------------------------------------------------------------- frame chaos


class TestFrameChaos:
    def test_drop_tears_connection_and_peer_sees_eof(self):
        inj = ChaosInjector(ChaosConfig(drop_frame=1.0))
        a, b = socket.socketpair()
        try:
            with pytest.raises(OSError, match="chaos: frame dropped"):
                mangle_frame(inj, encode_frame({"type": "ready"}), a)
            assert recv_msg(b) is None  # the peer observes a closed link
        finally:
            b.close()

    def test_corrupt_flips_one_body_byte_past_header(self):
        inj = ChaosInjector(ChaosConfig(corrupt_frame=1.0))
        frame = encode_frame({"type": "result", "uid": 3})
        a, b = socket.socketpair()
        try:
            mangled = mangle_frame(inj, frame, a)
            assert mangled[:4] == frame[:4]  # length prefix stays valid
            assert len(mangled) == len(frame)
            diff = [i for i in range(len(frame)) if mangled[i] != frame[i]]
            assert len(diff) == 1 and diff[0] >= 4
            a.sendall(mangled)
            with pytest.raises(ProtocolError, match="undecodable frame"):
                recv_msg(b)
        finally:
            a.close()
            b.close()

    def test_armed_but_quiet_frames_pass_unchanged(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "seed=1")
        a, b = socket.socketpair()
        try:
            msg = {"type": "lease", "uid": 1, "params": {"x": 2}}
            send_msg(a, msg)
            assert recv_msg(b) == msg
        finally:
            a.close()
            b.close()

    def test_corruption_through_the_send_seam(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "seed=1,corrupt_frame=1")
        a, b = socket.socketpair()
        try:
            send_msg(a, {"type": "heartbeat"})
            with pytest.raises(ProtocolError):
                recv_msg(b)
        finally:
            a.close()
            b.close()

    def test_delay_preserves_payload(self):
        inj = ChaosInjector(ChaosConfig(delay_ms=(1.0, 2.0)))
        frame = encode_frame({"type": "ready"})
        a, b = socket.socketpair()
        try:
            assert mangle_frame(inj, frame, a) == frame
        finally:
            a.close()
            b.close()


# ------------------------------------------------------------ worker dialing


class TestWorkerConnect:
    def test_exhausted_backoff_names_the_address(self):
        port = _free_port()  # nothing listening there
        started = time.monotonic()
        with pytest.raises(OSError, match=rf"127\.0\.0\.1:{port}"):
            _connect(("127.0.0.1", port), 0.5)
        # The budget is the time bound: a refused dial must not take the
        # old fixed-sleep forever, nor spin without sleeping.
        assert time.monotonic() - started < 5.0


# ------------------------------------------------------------------ journal


class TestJournal:
    def test_roundtrip_and_outstanding(self, tmp_path):
        path = journal_path(tmp_path, "runkey")
        with RunJournal(path) as j:
            j.start("runkey", 3)
            j.grant("k1", 0, "w0")
            j.grant("k2", 1, "w1")
            j.grant("k3", 2, "w0")
            j.complete("k1", 0, True)
            j.quarantine("k3", "fig07[x]", "Traceback ...")
            j.crash("chaos: boom")
        state = load_journal(path)
        assert state is not None
        assert state.run_key == "runkey" and state.units == 3
        assert state.completed == {"k1"}
        assert state.quarantined == {
            "k3": {"label": "fig07[x]", "error": "Traceback ..."}
        }
        assert state.outstanding == {"k2"}
        assert state.crashed and not state.ended

    def test_torn_tail_is_skipped(self, tmp_path):
        path = journal_path(tmp_path, "r")
        with RunJournal(path) as j:
            j.start("r", 1)
            j.grant("k1", 0, "w0")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"ev":"complete","jk')  # the writer died mid-append
        state = load_journal(path)
        assert state is not None
        assert state.granted == {"k1": "w0"}
        assert state.completed == set()

    def test_absent_or_empty_is_none(self, tmp_path):
        assert load_journal(tmp_path / "nope.jsonl") is None
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert load_journal(empty) is None

    def test_resume_appends_fresh_run_truncates(self, tmp_path):
        path = journal_path(tmp_path, "r")
        with RunJournal(path) as j:
            j.start("r", 2)
            j.grant("k1", 0, "w0")
        with RunJournal(path, resume=True) as j:
            j.complete("k1", 0, True)
            j.end()
        state = load_journal(path)
        assert state.completed == {"k1"} and state.ended
        with RunJournal(path) as j:  # resume=False: a fresh history
            j.start("r", 2)
        state = load_journal(path)
        assert state.granted == {} and not state.ended

    def test_events_without_jkey_are_not_recorded(self, tmp_path):
        path = journal_path(tmp_path, "r")
        with RunJournal(path) as j:
            j.start("r", 1)
            j.grant(None, 0, "w0")
            j.complete(None, 0, True)
            j.quarantine(None, "label", "err")
        state = load_journal(path)
        assert state.granted == {} and state.completed == set()
        assert state.quarantined == {}


# ------------------------------------------------------- cache quarantine


class TestCacheQuarantine:
    def test_truncated_entry_becomes_corrupt_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put("fig06", {"k": 1}, {"rows": ["r"], "x": 1})
        path.write_text('{"rows": ["r"')  # torn mid-write
        assert cache.get("fig06", {"k": 1}) is None
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()
        # The slot is reusable: the sweep recomputes and re-caches.
        cache.put("fig06", {"k": 1}, {"rows": ["r"], "x": 1})
        assert cache.get("fig06", {"k": 1}) == {"rows": ["r"], "x": 1}

    def test_non_utf8_bytes_are_quarantined_not_fatal(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put("fig06", {"k": 1}, {"rows": []})
        path.write_bytes(b"\xff\xfe\x00garbage")
        assert cache.get("fig06", {"k": 1}) is None
        assert path.with_name(path.name + ".corrupt").exists()

    def test_non_object_document_is_corrupt(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put("fig06", {"k": 1}, {"rows": []})
        path.write_text("[1, 2, 3]")  # valid JSON, not a cache entry
        assert cache.get("fig06", {"k": 1}) is None

    def test_cell_entries_quarantine_too(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put_cell("fig07", "opera@0.1", {"s": 1}, {"value": 2})
        path.write_text("{nope")
        assert cache.get_cell("fig07", "opera@0.1", {"s": 1}) is None
        assert path.with_name(path.name + ".corrupt").exists()

    def test_stats_count_quarantined_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put("fig06", {"k": 1}, {"rows": []})
        path.write_text("{")
        cache.get("fig06", {"k": 1})
        cache.put("fig06", {"k": 2}, {"rows": []})
        stats = cache.stats()
        assert stats["fig06"]["corrupt"] == 1
        assert stats["fig06"]["results"] == 1

    def test_clear_removes_corrupt_and_journals(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put("fig06", {"k": 1}, {"rows": []})
        path.write_text("{")
        cache.get("fig06", {"k": 1})
        with RunJournal(journal_path(tmp_path, "r")) as j:
            j.start("r", 1)
        assert cache.clear() == 2  # the .corrupt file and the journal
        assert list(tmp_path.rglob("*.corrupt")) == []
        assert list(tmp_path.rglob("*.jsonl")) == []

    def test_cli_stats_report_corrupt_counts(self, tmp_path, capsys):
        from repro.cli import main

        cache = ResultCache(tmp_path)
        path = cache.put("fig06", {"k": 1}, {"rows": []})
        path.write_text("{")
        cache.get("fig06", {"k": 1})
        assert main(["cache", "--cache-dir", str(tmp_path), "stats"]) == 0
        captured = capsys.readouterr()
        assert "1 corrupt!" in captured.out
        assert "quarantined as *.corrupt" in captured.err


# ------------------------------------------- quarantine policy (Runner)


def _twocell_shards(n: int = 2, poison: str = "b"):
    from repro.scenarios.sharding import Cell

    return [Cell(key=k, params={"k": k, "poison": poison}) for k in ("a", "b")[:n]]


def _twocell_cell(k: str = "a", poison: str = "b"):
    if k == poison:
        raise ValueError(f"cell {k} is poison")
    return {"k": k}


def _twocell_merge(values, n: int = 2, poison: str = "b"):
    return {"cells": [v["k"] for v in values]}


def _twocell_format(value):
    return [" ".join(value["cells"])]


class TestQuarantinePolicy:
    def _register(self):
        @scenario(
            "twocell",
            shards="_twocell_shards",
            cell="_twocell_cell",
            merge="_twocell_merge",
            formatter="_twocell_format",
        )
        def twocell(n: int = 2, poison: str = "b"):
            values = [_twocell_cell(**c.params) for c in _twocell_shards(n, poison)]
            return _twocell_merge(values, n, poison)

    def test_strict_policy_raises_after_drain(self, scratch_registry, tmp_path):
        self._register()
        with pytest.raises(ScenarioExecutionError, match="twocell"):
            Runner(cache=ResultCache(tmp_path)).run(names=["twocell"])

    def test_degraded_policy_quarantines_poison_cell(
        self, scratch_registry, tmp_path
    ):
        self._register()
        cache = ResultCache(tmp_path)
        (res,) = Runner(cache=cache, policy="degraded").run(names=["twocell"])
        assert res.quarantined is not None
        ((rec),) = res.quarantined
        assert rec["label"] == "twocell:b"
        assert "cell b is poison" in rec["error"]  # full traceback travels
        assert any(r.startswith("[degraded] twocell") for r in res.rows)
        assert any("[quarantined] twocell:b" in r for r in res.rows)
        # A partial merge must never be cached as the real result.
        params = registry_mod.get("twocell").bind({})
        assert cache.get("twocell", params) is None
        # The healthy sibling cell completed and was cached as usual.
        assert cache.get_cell("twocell", "a", {"k": "a", "poison": "b"}) is not None

    def test_degraded_policy_quarantines_whole_scenario_failure(
        self, scratch_registry, tmp_path
    ):
        @scenario("boom")
        def boom(x: int = 1):
            raise RuntimeError("scenario exploded")

        (res,) = Runner(cache=ResultCache(tmp_path), policy="degraded").run(
            names=["boom"]
        )
        assert res.quarantined and res.quarantined[0]["label"] == "boom"
        assert "scenario exploded" in res.quarantined[0]["error"]
        assert res.rows == [
            runner_mod.quarantine_row("boom", res.quarantined[0]["error"])
        ]

    def test_degraded_run_heals_once_poison_is_fixed(
        self, scratch_registry, tmp_path
    ):
        self._register()
        cache = ResultCache(tmp_path)
        Runner(cache=cache, policy="degraded").run(names=["twocell"])
        (res,) = Runner(cache=cache, policy="degraded").run(
            names=["twocell"], overrides={"poison": "none"}
        )
        assert res.quarantined is None
        assert res.rows == ["a b"]

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            Runner(policy="yolo")


class _DyingWorker:
    """Scripted raw-socket worker: takes one lease to its grave."""

    def __init__(self, port: int):
        self.thread = threading.Thread(target=self._run, args=(port,), daemon=True)
        self.thread.start()

    def _run(self, port: int) -> None:
        sock = socket.create_connection(("127.0.0.1", port), timeout=10)
        try:
            send_msg(sock, {"type": "hello", "worker": "dying", "pid": 0})
            send_msg(sock, {"type": "ready"})
            sock.settimeout(30)
            recv_msg(sock)  # the lease
        finally:
            sock.close()


class TestCoordinatorPoisonDoc:
    def test_poison_doc_is_marked_quarantined_with_workers(self):
        from repro.scenarios import get
        from repro.scenarios.encode import to_portable

        unit = {
            "uid": 0,
            "kind": "scenario",
            "name": "fig06",
            "cell_key": None,
            "params": to_portable(get("fig06").bind({})),
            "jkey": "jk-fig06",
        }
        coord = Coordinator(max_releases=2)
        _DyingWorker(coord.address[1])
        _DyingWorker(coord.address[1])
        try:
            ((uid, doc, _w),) = list(coord.run([unit]))
        finally:
            coord.close()
        assert uid == 0
        assert doc["quarantined"] is True
        assert "lost its worker 2 times" in doc["error"]
        assert doc["workers"] and doc["workers"] == sorted(doc["workers"])


# ------------------------------------------------------- executor degradation


class TestExecutorDegradation:
    def test_distributed_degrades_to_local_with_one_warning(
        self, fresh_degrade_warnings, monkeypatch
    ):
        def _no_bind(*args, **kwargs):
            raise OSError("listen socket: address in use")

        monkeypatch.setattr(distrib_pkg, "Coordinator", _no_bind)
        plain = Runner(cache=None).run(names=["fig06"])[0]
        with pytest.warns(RuntimeWarning, match="degrading to 'local'"):
            degraded = Runner(
                cache=None, executor="distributed", workers=1
            ).run(names=["fig06"])[0]
        assert degraded.rows == plain.rows
        assert degraded.payload == plain.payload
        # One-time: an identical later degradation stays quiet.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            Runner(cache=None, executor="distributed", workers=1).run(
                names=["fig06"]
            )
        assert [w for w in caught if issubclass(w.category, RuntimeWarning)] == []

    def test_pool_degrades_to_local(self, fresh_degrade_warnings, monkeypatch):
        def _no_fork(*args, **kwargs):
            raise OSError("fork: resource temporarily unavailable")

        monkeypatch.setattr(runner_mod.multiprocessing, "Pool", _no_fork)
        plain = Runner(cache=None).run(names=["fig06", "table1"])
        with pytest.warns(RuntimeWarning, match="'pool' unavailable"):
            degraded = Runner(cache=None, workers=2).run(names=["fig06", "table1"])
        assert [r.rows for r in degraded] == [r.rows for r in plain]

    def test_full_chain_distributed_pool_local(
        self, fresh_degrade_warnings, monkeypatch
    ):
        def _boom(*args, **kwargs):
            raise OSError("nope")

        monkeypatch.setattr(distrib_pkg, "Coordinator", _boom)
        monkeypatch.setattr(runner_mod.multiprocessing, "Pool", _boom)
        plain = Runner(cache=None).run(names=["fig06", "table1"])
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            degraded = Runner(
                cache=None, executor="distributed", workers=2
            ).run(names=["fig06", "table1"])
        messages = [
            str(w.message)
            for w in caught
            if issubclass(w.category, RuntimeWarning)
        ]
        assert any("'distributed' unavailable" in m for m in messages)
        assert any("degrading to 'local'" in m for m in messages)
        assert [r.rows for r in degraded] == [r.rows for r in plain]


# ------------------------------------------------- acceptance differentials


class TestChaosAcceptance:
    def test_chaos_sweep_is_bitwise_identical(self, tmp_path, monkeypatch):
        """The house invariant: kills, drops and corruption change nothing
        about the merged rows — only how much recovery ran."""
        plain = Runner(cache=None).run(names=["fig07"], overrides=TINY_FIG07)[0]
        monkeypatch.setenv(
            "REPRO_CHAOS",
            "seed=3,kill_worker=0.25,drop_frame=0.1,corrupt_frame=0.1",
        )
        chaotic = Runner(
            cache=ResultCache(tmp_path),
            executor="distributed",
            workers=2,
            lease_timeout=6.0,
            max_respawns=64,
            # Generous poison bound: at kill_worker=0.25 a legitimate cell
            # can easily lose several workers in a row; the bound exists
            # to catch units that *always* kill, not unlucky ones.
            max_cell_attempts=12,
        ).run(names=["fig07"], overrides=TINY_FIG07)[0]
        assert chaotic.rows == plain.rows
        assert chaotic.payload == plain.payload

    def test_coordinator_crash_resumes_from_journal(self, tmp_path, monkeypatch):
        """crash_coordinator=after_2 kills the run after two completed
        cells; the same command with resume_journal=True disarms the crash,
        restores the completed cells from cache, and converges bitwise."""
        plain = Runner(cache=None).run(names=["fig07"], overrides=TINY_FIG07)[0]
        monkeypatch.setenv("REPRO_CHAOS", "seed=1,crash_coordinator=after_2")
        cache = ResultCache(tmp_path)
        with pytest.raises(ChaosCrash, match="after 2 completed"):
            Runner(
                cache=cache,
                executor="distributed",
                workers=2,
                lease_timeout=10.0,
            ).run(names=["fig07"], overrides=TINY_FIG07)
        (jfile,) = (tmp_path / "_journal").glob("*.jsonl")
        state = load_journal(jfile)
        assert state is not None and state.crashed and not state.ended
        resumed = Runner(
            cache=cache,
            executor="distributed",
            workers=2,
            lease_timeout=10.0,
            resume_journal=True,
        ).run(names=["fig07"], overrides=TINY_FIG07)[0]
        assert resumed.rows == plain.rows
        assert resumed.payload == plain.payload
        computed, restored, total = resumed.cells
        assert total == 4 and restored >= 2  # the pre-crash work survived
        assert load_journal(jfile).ended
