"""End-to-end telemetry: metrics registry, engine drain, sweep tracing,
coordinator status — and the bitwise-invisibility contract.

The load-bearing guarantees:

* a telemetry-armed run produces simulated results bit-identical to a
  telemetry-off run, across scheduler x coalesce x kernel, at the cell
  level and through the full Runner (cached documents included: the
  metric snapshot is a side channel, never cached bytes);
* ``REPRO_KERNEL=py`` and ``=c`` runs of the same cell drain identical
  metric snapshots — the counters live in shared ``__slots__`` both
  kernels write, so equality is by construction;
* every dropped packet is attributed to exactly one cause and the causes
  sum to the total, across scheduler x kernel on a faulted run;
* the coordinator's status snapshot answers from cache, and a status
  poller is never mistaken for a worker.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time

import pytest

from repro.net.kernel import compiled_available
from repro.obs.metrics import (
    FCT_BUCKET_BOUNDS_US,
    REGISTRY,
    Histogram,
    MetricsRegistry,
    armed,
    drop_cause_totals,
    merge_snapshots,
    validate_snapshot,
)
from repro.obs.trace import (
    TraceWriter,
    Tracer,
    build_spans,
    list_traces,
    load_trace,
    render_trace,
    trace_path,
)
from repro.scenarios import Progress, ResultCache, Runner

from test_coalescing import COMBOS

requires_c = pytest.mark.skipif(
    not compiled_available(),
    reason="compiled kernel (_ckernel) not built in this environment",
)

MS = 1_000_000_000

#: Same tiny fig07 configuration the sharding/distrib tests pin (4 cells).
TINY_FIG07 = {
    "loads": (0.02, 0.05),
    "networks": ("opera", "rotornet"),
    "duration_ms": 0.4,
    "scale": "ci",
}


@pytest.fixture(autouse=True)
def telemetry_hygiene(monkeypatch, tmp_path):
    """Arm/disarm cleanly per test; never touch the user's real cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "default-cache"))
    saved = os.environ.get("REPRO_TELEMETRY")
    yield
    if saved is None:
        os.environ.pop("REPRO_TELEMETRY", None)
    else:
        os.environ["REPRO_TELEMETRY"] = saved
    REGISTRY.reset()


def _run_cell(monkeypatch, scheduler="heap", coalesce=True, kernel="py"):
    """One ci-scale opera fig07 cell under explicit engine seams."""
    from repro.experiments.fctsim import run_fct_cell

    monkeypatch.setenv("REPRO_SCHEDULER", scheduler)
    monkeypatch.setenv("REPRO_COALESCE", "1" if coalesce else "0")
    monkeypatch.setenv("REPRO_KERNEL", kernel)
    return run_fct_cell("opera", 0.1, "datamining", 4.0, 0, "ci")


# ------------------------------------------------------------------ arming


class TestArming:
    @pytest.mark.parametrize("raw", ["", "0", "false", "off"])
    def test_falsy_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TELEMETRY", raw)
        assert not armed()

    def test_unset_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        assert not armed()

    @pytest.mark.parametrize("raw", ["1", "true", "yes"])
    def test_truthy_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TELEMETRY", raw)
        assert armed()


# -------------------------------------------------------------- primitives


class TestPrimitives:
    def test_counter_gauge(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc(4)
        assert reg.counter("a").value == 5  # get-or-create returns live inst
        reg.gauge("g").set(7)
        reg.gauge("g").high_water(3)
        assert reg.gauge("g").value == 7
        reg.gauge("g").high_water(11)
        assert reg.gauge("g").value == 11

    def test_histogram_bucketing_and_overflow(self):
        h = Histogram((10, 100))
        for v in (5, 10, 11, 100, 2_000):
            h.observe(v)
        assert h.counts == [2, 2, 1]  # inclusive upper bounds + overflow
        assert h.count == 5 and h.total == 2_126

    def test_histogram_bounds_validation(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram((10, 10))
        with pytest.raises(ValueError, match="ascending"):
            Histogram((100, 10))
        with pytest.raises(ValueError, match="ascending"):
            Histogram(())

    def test_histogram_rebound_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", (1, 2))
        with pytest.raises(ValueError, match="different bounds"):
            reg.histogram("h", (1, 3))

    def test_snapshot_is_creation_order_independent(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x").inc(1)
        a.counter("y").inc(2)
        b.counter("y").inc(2)
        b.counter("x").inc(1)
        assert a.snapshot() == b.snapshot()

    def test_reset_and_bool(self):
        reg = MetricsRegistry()
        assert not reg
        reg.counter("x").inc()
        assert reg
        reg.reset()
        assert not reg and reg.snapshot()["counters"] == {}

    def test_portable_roundtrip_validates(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1)
        reg.histogram("h", FCT_BUCKET_BOUNDS_US).observe(50)
        plain = validate_snapshot(reg.portable())
        assert plain == reg.snapshot()
        # The plain form validates too (render path feeds it back in).
        assert validate_snapshot(reg.snapshot()) == reg.snapshot()

    @pytest.mark.parametrize(
        "bad",
        [
            {"counters": {}},
            {"counters": {}, "gauges": {}, "histograms": {"h": {}}},
            {"counters": {"x": "nan"}, "gauges": {}, "histograms": {}},
            {
                "counters": {},
                "gauges": {},
                "histograms": {
                    "h": {"bounds": (1,), "counts": [1], "count": 1, "total": 0}
                },
            },
            {
                "counters": {},
                "gauges": {},
                "histograms": {
                    "h": {"bounds": (1,), "counts": [1, 2], "count": 9, "total": 0}
                },
            },
        ],
    )
    def test_validate_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            validate_snapshot(bad)

    def test_merge_snapshots(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        a.gauge("g").set(5)
        b.gauge("g").set(9)
        a.histogram("h", (10,)).observe(1)
        b.histogram("h", (10,)).observe(100)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"]["c"] == 5  # counters add
        assert merged["gauges"]["g"] == 9  # gauges take the max
        assert merged["histograms"]["h"]["counts"] == [1, 1]
        assert merged["histograms"]["h"]["total"] == 101


# ------------------------------------------------------------ engine drain


class TestEngineDrain:
    def test_armed_cell_equals_off_cell(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        REGISTRY.reset()
        off = _run_cell(monkeypatch)
        assert not REGISTRY  # off runs never touch the registry
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        armed_result = _run_cell(monkeypatch)
        assert armed_result == off  # telemetry is pure observation
        snap = REGISTRY.snapshot()
        assert snap["counters"]["flows.total"] > 0
        assert snap["counters"]["engine.events"] > 0
        assert snap["histograms"]["flows.fct_us"]["count"] == snap[
            "counters"
        ]["flows.completed"]

    def test_snapshot_identical_across_scheduler_and_coalesce(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        reference = None
        for scheduler, coalesce in COMBOS:
            REGISTRY.reset()
            _run_cell(monkeypatch, scheduler, coalesce)
            snap = REGISTRY.snapshot()
            # Coalescing changes scheduler-entry counts by design; every
            # simulation-level metric must be identical.
            for volatile in (
                "engine.sched_entries",
                "engine.trains",
                "engine.train_events",
                "engine.train_repushes",
            ):
                snap["counters"].pop(volatile)
            snap["gauges"].pop("engine.sched_depth_at_drain")
            if reference is None:
                reference = snap
            else:
                assert snap == reference, (scheduler, coalesce)

    @requires_c
    def test_snapshot_identical_across_kernels(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        snaps = {}
        for kernel in ("py", "c"):
            REGISTRY.reset()
            result = _run_cell(monkeypatch, kernel=kernel)
            snaps[kernel] = (result, REGISTRY.snapshot())
        assert snaps["py"] == snaps["c"]


# ------------------------------------------------------- drop-cause ledger


class TestDropCauses:
    INJECT_PS = int(0.5 * MS)

    def _faulted(self, kernel: str, scheduler: str):
        from repro.core.faults import FailureSchedule

        from test_faults_dynamic import build_net, fault_workload

        probe = build_net(seed=11)
        schedule = FailureSchedule.random(
            probe.network.n_racks,
            probe.network.n_switches,
            "link",
            0.25,
            self.INJECT_PS,
            random.Random(3),
        )
        return fault_workload(schedule, kernel=kernel, scheduler=scheduler)

    def test_causes_partition_the_drops(self):
        # Property: every dropped packet has exactly one cause, so the
        # causes sum to the total — across scheduler x kernel.
        kernels = ("py", "c") if compiled_available() else ("py",)
        reference = None
        for kernel in kernels:
            for scheduler in ("heap", "wheel"):
                run = self._faulted(kernel, scheduler)
                causes = drop_cause_totals(run["net"])
                assert causes["total"] == (
                    causes["failure_blackhole"]
                    + causes["queue_overflow"]
                    + causes["undeliverable"]
                )
                assert causes["failure_blackhole"] == run["blackholed_packets"]
                assert causes["failure_blackhole"] > 0  # the draw bit
                if reference is None:
                    reference = causes
                else:
                    assert causes == reference, (kernel, scheduler)

    def test_per_flow_recovery_time_pin(self):
        # Regression pin: the worst per-flow recovery time of this seeded
        # link draw is deterministic — integer picoseconds, no wall clock
        # — so pin it exactly, plus the max-over-flows identity.
        run = self._faulted("py", "heap")
        stats = run["net"].stats
        recovery = stats.recovery_time_ps(self.INJECT_PS)
        per_flow = {
            fid: stats.flows[fid].end_ps - self.INJECT_PS
            for fid in stats.affected_flows - stats.unrecoverable_flows
        }
        assert per_flow and recovery == max(per_flow.values())
        assert recovery == 2_909_656_800
        assert min(per_flow.values()) >= 0


# ------------------------------------------------------------ trace stream


class TestTraceStream:
    def test_tracer_sinkless_is_falsy_and_noop(self):
        tracer = Tracer()
        assert not tracer
        tracer.emit({"ev": "queued"})  # must not raise or stamp anything

    def test_sink_exception_is_swallowed(self):
        tracer = Tracer()
        seen = []
        tracer.add_sink(lambda ev: (_ for _ in ()).throw(RuntimeError("x")))
        tracer.add_sink(seen.append)
        tracer.emit({"ev": "queued", "uid": 1})
        assert len(seen) == 1 and seen[0]["t"] > 0  # later sinks still fire

    def test_writer_roundtrip_and_torn_tail(self, tmp_path):
        path = trace_path(tmp_path, "deadbeef")
        assert path.parent.name == "_trace"
        with TraceWriter(path) as writer:
            writer.write({"ev": "run-start", "run": "deadbeef", "units": 1})
            writer.write({"ev": "queued", "uid": 0, "label": "x"})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"ev": "completed", "ui')  # torn final append
        events = load_trace(path)
        assert [e["ev"] for e in events] == ["run-start", "queued"]
        assert load_trace(tmp_path / "missing.jsonl") == []

    def test_list_traces_most_recent_first(self, tmp_path):
        older = trace_path(tmp_path, "aaaa")
        newer = trace_path(tmp_path, "bbbb")
        TraceWriter(older).close()
        TraceWriter(newer).close()
        os.utime(older, (1, 1))
        os.utime(newer, (2, 2))
        assert [p.stem for p in list_traces(tmp_path)] == ["bbbb", "aaaa"]
        assert list_traces(tmp_path / "nowhere") == []

    def test_build_spans_attempt_counting(self):
        events = [
            {"ev": "run-start", "run": "r", "units": 2, "t": 0.0},
            {"ev": "cache-hit", "label": "fig06", "kind": "doc", "t": 0.0},
            {"ev": "queued", "uid": 0, "label": "a", "t": 0.1},
            {"ev": "queued", "uid": 1, "label": "b", "t": 0.1},
            {"ev": "leased", "uid": 0, "label": "a", "worker": "w1", "t": 0.2},
            {"ev": "released", "uid": 0, "label": "a", "worker": "w1", "t": 0.5},
            {"ev": "leased", "uid": 0, "label": "a", "worker": "w2", "t": 0.6},
            {
                "ev": "completed", "uid": 0, "label": "a", "worker": "w2",
                "duration_s": 0.3, "failed": False, "quarantined": False,
                "done": 1, "total": 2, "eta_s": 1.0, "t": 0.9,
            },
            {
                "ev": "completed", "uid": 1, "label": "b", "worker": None,
                "duration_s": 0.1, "failed": True, "quarantined": True,
                "done": 2, "total": 2, "eta_s": None, "t": 1.0,
            },
            {"ev": "run-end", "wall_s": 1.0, "crashed": False, "t": 1.0},
        ]
        doc = build_spans(events)
        assert doc["units"] == 2 and doc["wall_s"] == 1.0 and not doc["crashed"]
        assert doc["cache_hits"] == [{"label": "fig06", "kind": "doc"}]
        a, b = doc["spans"][0], doc["spans"][1]
        assert a["attempts"] == 2 and a["worker"] == "w2"
        assert a["first_leased_t"] == 0.2 and a["completed_t"] == 0.9
        assert b["attempts"] == 1  # local execution: no lease events
        assert b["failed"] and b["quarantined"]

    def test_render_trace(self):
        reg = MetricsRegistry()
        reg.counter("engine.events").inc(42)
        reg.counter("port.sent_packets").inc(7)
        events = [
            {"ev": "run-start", "run": "cafebabe" * 4, "units": 1, "t": 10.0},
            {"ev": "queued", "uid": 0, "label": "fig07:opera@0.1", "t": 10.0},
            {
                "ev": "completed", "uid": 0, "label": "fig07:opera@0.1",
                "worker": "w1", "duration_s": 2.5, "failed": False,
                "quarantined": False, "done": 1, "total": 1, "eta_s": 0.0,
                "telemetry": reg.snapshot(), "t": 12.5,
            },
            {"ev": "run-end", "wall_s": 2.5, "crashed": False, "t": 12.5},
        ]
        text = "\n".join(render_trace(events))
        assert "cafebabecafe" in text and "1 unit(s)" in text
        assert "fig07:opera@0.1" in text and "w1" in text
        assert "stragglers:" in text and "critical path:" in text
        assert "42 events" in text and "7 packet hops" in text


# --------------------------------------------------------- runner telemetry


class TestRunnerTelemetry:
    def _run(self, tmp_path, sub, progress=None, **env):
        cache = ResultCache(tmp_path / sub)
        runner = Runner(cache=cache, progress=progress)
        saved = {k: os.environ.get(k) for k in env}
        os.environ.update(env)
        try:
            result = runner.run(names=["fig07"], overrides=TINY_FIG07)[0]
        finally:
            for k, v in saved.items():
                if v is None:
                    os.environ.pop(k, None)
                else:
                    os.environ[k] = v
        return result, cache

    def test_armed_run_is_bitwise_invisible(self, tmp_path):
        off, off_cache = self._run(tmp_path, "off", REPRO_TELEMETRY="0")
        on, on_cache = self._run(tmp_path, "on", REPRO_TELEMETRY="1")
        assert on.rows == off.rows
        assert on.payload == off.payload
        assert on.value == off.value
        # Cached documents identical (modulo the wall-clock duration_s no
        # two runs share): the snapshot is popped before any cache write,
        # so no cached document ever carries a "telemetry" key.
        def docs(sub):
            out = {}
            for p in sorted((tmp_path / sub).rglob("*.json")):
                assert '"telemetry"' not in p.read_text()
                doc = json.loads(p.read_text())
                doc.pop("duration_s", None)
                out[p.name] = doc
            return out

        off_docs, on_docs = docs("off"), docs("on")
        assert off_docs and on_docs == off_docs

    def test_trace_file_records_the_run(self, tmp_path):
        _result, cache = self._run(tmp_path, "on", REPRO_TELEMETRY="1")
        (path,) = list_traces(cache.root)
        events = load_trace(path)
        kinds = [e["ev"] for e in events]
        assert kinds[0] == "run-start" and kinds[-1] == "run-end"
        assert kinds.count("queued") == 4 and kinds.count("completed") == 4
        # Every per-unit snapshot on the stream validates and carries the
        # engine drain.
        snaps = [
            validate_snapshot(e["telemetry"])
            for e in events
            if e["ev"] == "completed"
        ]
        assert len(snaps) == 4
        merged = merge_snapshots(snaps)
        assert merged["counters"]["engine.events"] > 0
        # The cached re-run leaves cache-hit events, not spans.
        _again, cache = self._run(tmp_path, "on", REPRO_TELEMETRY="1")
        (path,) = list_traces(cache.root)
        kinds = [e["ev"] for e in load_trace(path)]
        assert "cache-hit" in kinds and "queued" not in kinds

    def test_off_run_writes_no_trace(self, tmp_path):
        _result, cache = self._run(tmp_path, "off", REPRO_TELEMETRY="0")
        assert list_traces(cache.root) == []

    def test_progress_is_a_span_consumer(self, tmp_path):
        # The --progress callback is a sink over the same event stream;
        # it fires with telemetry off (no trace file involved).
        seen: list[Progress] = []
        _result, cache = self._run(
            tmp_path, "off", progress=seen.append, REPRO_TELEMETRY="0"
        )
        assert [p.done for p in seen] == [1, 2, 3, 4]
        assert all(p.total == 4 for p in seen)
        assert all(p.label for p in seen)
        assert list_traces(cache.root) == []


# ------------------------------------------------------- coordinator status


class TestCoordinatorStatus:
    def test_status_during_run_and_poller_is_not_a_worker(self):
        from repro.distrib import Coordinator
        from repro.distrib.protocol import fetch_status

        from test_distrib import _FakeWorker, _cheap_units

        coord = Coordinator(
            max_releases=1,
            status_refresh_s=0.0,
            status_extra={"run": "abc123", "jobs": 1},
        )
        fake = _FakeWorker(coord.address[1], mode="stall")
        results: list = []
        thread = threading.Thread(
            target=lambda: results.extend(coord.run(_cheap_units()[:1])),
            daemon=True,
        )
        thread.start()
        try:
            deadline = time.time() + 20
            status = None
            while time.time() < deadline:
                status = fetch_status(coord.address, timeout=5)
                if status["in_flight"] == 1:
                    break
                time.sleep(0.05)
            assert status is not None and status["in_flight"] == 1
            assert status["state"] == "running"
            assert status["units_total"] == 1 and status["pending"] == 0
            assert status["extra"] == {"run": "abc123", "jobs": 1}
            # Status pollers never say hello: the workers list shows only
            # the real (fake) worker, holding its lease.
            (worker,) = status["workers"]
            assert worker["worker"] == "fake"
            assert worker["lease_uid"] == 0
            assert worker["lease_age_s"] is not None
            assert worker["lease_age_s"] >= 0
        finally:
            fake.stop()  # socket closes -> release -> poison at max_releases=1
            thread.join(timeout=30)
            coord.close()
        assert not thread.is_alive()
        ((uid, doc, _w),) = results
        assert uid == 0 and "error" in doc
        assert coord.quarantined == 1

    def test_fetch_status_rejects_malformed_reply(self):
        import socket as socket_mod

        from repro.distrib.protocol import (
            ProtocolError,
            fetch_status,
            recv_msg,
            send_msg,
        )

        server = socket_mod.create_server(("127.0.0.1", 0))
        port = server.getsockname()[1]

        def _serve():
            conn, _ = server.accept()
            with conn:
                recv_msg(conn)
                send_msg(conn, {"type": "nope"})

        thread = threading.Thread(target=_serve, daemon=True)
        thread.start()
        try:
            with pytest.raises(ProtocolError, match="unexpected status reply"):
                fetch_status(("127.0.0.1", port), timeout=5)
        finally:
            thread.join(timeout=10)
            server.close()


# -------------------------------------------------------------- CLI surface


class TestCli:
    def test_trace_disabled_cache_errors(self, capsys):
        from repro.cli import main

        assert main(["trace", "--cache-dir", ""]) == 2
        assert "disabled" in capsys.readouterr().err

    def test_trace_empty_listing(self, capsys):
        from repro.cli import main

        assert main(["trace"]) == 0
        assert "no recorded traces" in capsys.readouterr().out
        assert main(["trace", "latest"]) == 2
        assert "no recorded trace matches" in capsys.readouterr().err

    def test_run_telemetry_then_trace(self, capsys):
        from repro.cli import main

        assert main(["run", "fig06", "--telemetry", "--quiet"]) == 0
        capsys.readouterr()
        assert main(["trace"]) == 0
        listing = capsys.readouterr().out
        assert "1 unit(s)" in listing and "done" in listing
        assert main(["trace", "latest"]) == 0
        rendered = capsys.readouterr().out
        assert "trace" in rendered and "fig06" in rendered
        assert main(["trace", "latest", "--json"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        events = [json.loads(line) for line in lines]
        assert events[0]["ev"] == "run-start"
        assert events[-1]["ev"] == "run-end"

    def test_status_unreachable_coordinator(self, capsys):
        from repro.cli import main

        assert main(["status", "127.0.0.1:1", "--timeout", "0.2"]) == 1
        assert "status error" in capsys.readouterr().err

    def test_quarantined_cache_entry_warns(self, tmp_path, caplog):
        import logging

        cache = ResultCache(tmp_path)
        path = cache.path("fig06", {"k": 8})
        path.parent.mkdir(parents=True)
        path.write_text("not json {")
        with caplog.at_level(logging.WARNING, logger="repro.scenarios.cache"):
            assert cache.get("fig06", {"k": 8}) is None
        assert any("quarantining" in r.message for r in caplog.records)
        assert path.with_name(path.name + ".corrupt").exists()
