"""Regression tests pinning the back-to-back serializer's timing.

The fast-path Port (``repro.net.link``) replaced the original
one-transmission-done-event-per-packet serializer with ``_busy_until``
bookkeeping, a single pending *kick* event, and back-to-back commitment of
the control queue. These tests pin the observable behaviour to the old
engine's exact packet timings: every delivery time below is the value the
one-event-per-packet design produced.
"""

import pytest

from repro.core.timing import PS_PER_S
from repro.net.link import Port
from repro.net.packet import (
    HEADER_BYTES,
    MTU_BYTES,
    Packet,
    PacketKind,
    Priority,
)
from repro.net.sim import Simulator

SER_MTU = 1_200_000  # 1500 B at 10 Gb/s
SER_HDR = 51_200  # 64 B at 10 Gb/s
PROP = 500_000


def make_packet(seq=0, size=MTU_BYTES, priority=Priority.LOW_LATENCY,
                kind=PacketKind.DATA):
    return Packet(
        flow_id=1,
        kind=kind,
        src_host=0,
        dst_host=1,
        seq=seq,
        size_bytes=size,
        priority=priority,
    )


def control_packet(seq):
    return make_packet(
        seq, size=HEADER_BYTES, priority=Priority.CONTROL, kind=PacketKind.ACK
    )


class ArrivalLog:
    """Sink that records (time, seq, kind) triples."""

    def __init__(self, sim):
        self.sim = sim
        self.arrivals = []

    def receive(self, packet):
        self.arrivals.append((self.sim.now, packet.seq, packet.kind))


def port_to(sim, sink, **kwargs):
    return Port(sim, "t", resolver=lambda _p, _n: sink, **kwargs)


class TestBackToBackTiming:
    def test_single_packet_exact_times(self):
        sim = Simulator()
        sink = ArrivalLog(sim)
        port = port_to(sim, sink)
        port.enqueue(make_packet(0))
        sim.run()
        assert sink.arrivals == [(SER_MTU + PROP, 0, PacketKind.DATA)]

    def test_burst_serializes_back_to_back(self):
        # Three MTUs enqueued at t=0: packet i's last bit leaves at
        # (i+1)*ser, arrives prop later — exactly the old per-event times.
        sim = Simulator()
        sink = ArrivalLog(sim)
        port = port_to(sim, sink)
        for seq in range(3):
            port.enqueue(make_packet(seq))
        sim.run()
        assert [(t, s) for t, s, _k in sink.arrivals] == [
            (1 * SER_MTU + PROP, 0),
            (2 * SER_MTU + PROP, 1),
            (3 * SER_MTU + PROP, 2),
        ]

    def test_control_burst_back_to_back_exact_times(self):
        # A data packet occupies the line; three ACKs queue behind it. The
        # fast path commits the whole control burst in one kick — the
        # delivery times must still be per-packet exact.
        sim = Simulator()
        sink = ArrivalLog(sim)
        port = port_to(sim, sink)
        port.enqueue(make_packet(0))
        for seq in (10, 11, 12):
            port.enqueue(control_packet(seq))
        sim.run()
        expected = [
            (SER_MTU + PROP, 0),
            (SER_MTU + 1 * SER_HDR + PROP, 10),
            (SER_MTU + 2 * SER_HDR + PROP, 11),
            (SER_MTU + 3 * SER_HDR + PROP, 12),
        ]
        assert [(t, s) for t, s, _k in sink.arrivals] == expected

    def test_control_preempts_queued_data_mid_burst(self):
        # d0 transmitting, d1 queued; an ACK arriving mid-serialization
        # jumps ahead of d1 but not d0 (old engine semantics, exact times).
        sim = Simulator()
        sink = ArrivalLog(sim)
        port = port_to(sim, sink)
        port.enqueue(make_packet(0))
        port.enqueue(make_packet(1))
        sim.at(600_000, port.enqueue, control_packet(99))
        sim.run()
        assert [(t, s) for t, s, _k in sink.arrivals] == [
            (SER_MTU + PROP, 0),
            (SER_MTU + SER_HDR + PROP, 99),
            (2 * SER_MTU + SER_HDR + PROP, 1),
        ]

    def test_enqueue_at_exact_line_free_instant_starts_immediately(self):
        # The line frees at t=ser; a packet enqueued by an event at exactly
        # that time starts serializing with no gap.
        sim = Simulator()
        sink = ArrivalLog(sim)
        port = port_to(sim, sink)
        port.enqueue(make_packet(0))
        sim.at(SER_MTU, port.enqueue, make_packet(1))
        sim.run()
        assert [(t, s) for t, s, _k in sink.arrivals] == [
            (SER_MTU + PROP, 0),
            (2 * SER_MTU + PROP, 1),
        ]

    def test_idle_gap_then_restart(self):
        sim = Simulator()
        sink = ArrivalLog(sim)
        port = port_to(sim, sink)
        port.enqueue(make_packet(0))
        sim.run()
        assert not port.busy
        # Much later: a fresh packet starts immediately at enqueue time.
        sim.at(10 * SER_MTU, port.enqueue, make_packet(1))
        sim.run()
        assert sink.arrivals[-1] == (11 * SER_MTU + PROP, 1, PacketKind.DATA)

    def test_busy_flag_during_and_after_transmission(self):
        sim = Simulator()
        sink = ArrivalLog(sim)
        port = port_to(sim, sink)
        port.enqueue(make_packet(0))
        assert port.busy
        sim.run()
        assert not port.busy


class TestDropAndTrimTiming:
    def test_trimmed_header_checked_against_control_capacity(self):
        # Data overflowing the data queue trims to a header, which is then
        # admitted to (or dropped by) the *control* queue — both caps apply.
        sim = Simulator()
        sink = ArrivalLog(sim)
        port = port_to(
            sim, sink, data_queue_bytes=2 * MTU_BYTES, control_queue_bytes=HEADER_BYTES
        )
        results = [port.enqueue(make_packet(seq)) for seq in range(6)]
        sim.run()
        assert port.stats.trimmed == 3
        assert port.stats.dropped_control == 2  # only one header fits
        assert results.count(False) == 2

    def test_undeliverable_reported_at_completion_time(self):
        # The old engine reported a dark-circuit loss when the last bit
        # left the serializer, not when transmission started.
        sim = Simulator()
        seen = []
        port = Port(
            sim,
            "dark",
            resolver=lambda _p, _n: None,
            on_undeliverable=lambda p: seen.append((sim.now, p.seq)),
        )
        port.enqueue(make_packet(7))
        sim.run()
        assert seen == [(SER_MTU, 7)]
        assert port.stats.undeliverable == 1

    def test_resolver_sees_transmission_start_time(self):
        # Back-to-back batches resolve each packet at its own start time
        # ("the far end is fixed when the first bit enters the fiber").
        sim = Simulator()
        seen = []

        class Sink:
            def receive(self, packet):
                pass

        sink = Sink()

        def resolver(packet, now_ps):
            seen.append((now_ps, packet.seq))
            return sink

        port = Port(sim, "t", resolver=resolver)
        port.enqueue(make_packet(0))
        for seq in (1, 2):
            port.enqueue(control_packet(seq))
        sim.run()
        assert seen == [
            (0, 0),
            (SER_MTU, 1),
            (SER_MTU + SER_HDR, 2),
        ]


class TestControlAdmissionDuringBurst:
    def test_committed_packets_still_occupy_the_control_queue(self):
        # An MTU on the wire, two ACKs filling a 128 B control queue. The
        # kick at t=ser commits both back-to-back, but the second only
        # enters the wire one header-time later: until then it must keep
        # occupying the queue, exactly as the one-event-per-packet engine
        # modeled it (one new ACK fits the freed slot, the next is dropped).
        sim = Simulator()
        sink = ArrivalLog(sim)
        port = port_to(sim, sink, control_queue_bytes=2 * HEADER_BYTES)
        port.enqueue(make_packet(0))
        assert port.enqueue(control_packet(1))
        assert port.enqueue(control_packet(2))
        assert not port.enqueue(control_packet(3))  # queue full
        outcomes = []

        def probe():
            # t = ser + 10 ns: ACK 1 is on the wire, ACK 2 committed but
            # not started — occupancy must read one header, admit exactly
            # one more packet, and drop the one after.
            outcomes.append(port.queued_bytes(Priority.CONTROL))
            outcomes.append(port.enqueue(control_packet(4)))
            outcomes.append(port.enqueue(control_packet(5)))

        sim.at(SER_MTU + 10_000, probe)
        sim.run()
        assert outcomes == [HEADER_BYTES, True, False]
        assert port.stats.dropped_control == 2
        assert [s for _t, s, _k in sink.arrivals] == [0, 1, 2, 4]


class TestSerializationConstants:
    def test_divisible_rate_uses_exact_per_byte_constant(self):
        sim = Simulator()
        port = port_to(sim, ArrivalLog(sim))
        assert port.serialization_ps(1500) == SER_MTU
        assert port.serialization_ps(64) == SER_HDR

    def test_non_divisible_rate_falls_back_to_exact_division(self):
        sim = Simulator()
        sink = ArrivalLog(sim)
        port = port_to(sim, sink, rate_bps=3_000_000_000)
        expected = (1500 * 8 * PS_PER_S) // 3_000_000_000
        assert port.serialization_ps(1500) == expected
        port.enqueue(make_packet(0))
        sim.run()
        assert sink.arrivals == [(expected + PROP, 0, PacketKind.DATA)]

    def test_exactly_one_of_resolver_or_target(self):
        sim = Simulator()
        sink = ArrivalLog(sim)
        with pytest.raises(ValueError):
            Port(sim, "neither")
        with pytest.raises(ValueError):
            Port(sim, "both", resolver=lambda _p, _n: sink, target=sink)

    def test_static_target_port_delivers_identically(self):
        sim = Simulator()
        sink = ArrivalLog(sim)
        port = Port(sim, "static", target=sink)
        for seq in range(2):
            port.enqueue(make_packet(seq))
        sim.run()
        assert [(t, s) for t, s, _k in sink.arrivals] == [
            (SER_MTU + PROP, 0),
            (2 * SER_MTU + PROP, 1),
        ]


class TestQueueAccounting:
    def test_queued_bytes_per_priority_and_total(self):
        sim = Simulator()
        sink = ArrivalLog(sim)
        port = port_to(sim, sink, bulk_queue_bytes=1 << 20)
        port.enqueue(make_packet(0))  # transmitting, not queued
        port.enqueue(make_packet(1))
        port.enqueue(control_packet(2))
        port.enqueue(make_packet(3, priority=Priority.BULK))
        assert port.queued_bytes(Priority.LOW_LATENCY) == MTU_BYTES
        assert port.queued_bytes(Priority.CONTROL) == HEADER_BYTES
        assert port.queued_bytes(Priority.BULK) == MTU_BYTES
        assert port.queued_bytes() == 2 * MTU_BYTES + HEADER_BYTES
        sim.run()
        assert port.queued_bytes() == 0
        assert port.stats.sent_packets == 4
        assert port.stats.sent_bytes == 3 * MTU_BYTES + HEADER_BYTES
