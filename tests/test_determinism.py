"""Determinism guarantees: same seed -> bit-identical run; new seed -> new run.

The simulation engine orders events by (integer picosecond, scheduling
sequence), and all randomness flows from explicit seeds, so a packet-level
experiment is a pure function of its parameters. The scenario runner's
content-addressed cache and the golden fixtures both assume this; these
tests pin it down at the network level and through the Runner.
"""

from repro.experiments.fctsim import MS, build_network
from repro.scenarios import Runner, content_hash
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.distributions import DATAMINING


def packet_trace(seed, load=0.10, duration_ms=0.5, drain_ms=2.0):
    """Run a small Opera packet simulation; return its full observable state."""
    net = build_network("opera", k=8, n_racks=8, seed=seed)
    hosts_per_rack = sum(1 for h in net.hosts if h.rack == 0)
    arrivals = PoissonArrivals(
        DATAMINING.truncated(500_000),
        load=load,
        n_hosts=len(net.hosts),
        hosts_per_rack=hosts_per_rack,
        seed=seed,
    )
    threshold = net.network.bulk_threshold_bytes
    for flow in arrivals.flows(duration_ps=int(duration_ms * MS)):
        if flow.size_bytes >= threshold:
            net.start_bulk_flow(flow.src_host, flow.dst_host, flow.size_bytes, flow.time_ps)
        else:
            net.start_low_latency_flow(
                flow.src_host, flow.dst_host, flow.size_bytes, flow.time_ps
            )
    net.run(until_ps=int((duration_ms + drain_ms) * MS))
    fcts = [
        (fid, rec.src_host, rec.dst_host, rec.size_bytes, rec.fct_ps)
        for fid, rec in sorted(net.stats.flows.items())
    ]
    return {
        "events_processed": net.sim.events_processed,
        "final_now": net.sim.now,
        "n_flows": len(net.stats.flows),
        "fcts": fcts,
    }


class TestPacketLevelDeterminism:
    def test_same_seed_is_bit_identical(self):
        a = packet_trace(seed=7)
        b = packet_trace(seed=7)
        assert a["events_processed"] == b["events_processed"]
        assert a["fcts"] == b["fcts"]  # per-flow FCT lists, exactly
        assert a == b

    def test_run_produces_work(self):
        # Guard the guard: a trace with no flows would make the determinism
        # assertions vacuous.
        trace = packet_trace(seed=7)
        assert trace["n_flows"] > 10
        assert trace["events_processed"] > 1000
        assert any(fct is not None for *_ignored, fct in trace["fcts"])

    def test_different_seeds_differ(self):
        a = packet_trace(seed=7)
        b = packet_trace(seed=8)
        assert a["fcts"] != b["fcts"]


class TestRunnerDeterminism:
    PARAMS = {"loads": (0.05,), "networks": ("opera",), "duration_ms": 0.5}

    def test_scenario_payload_is_reproducible(self):
        runner = Runner(cache=None)
        results = [
            runner.run(names=["fig07"], overrides=self.PARAMS)[0]
            for _ in range(2)
        ]
        assert results[0].payload == results[1].payload
        assert results[0].rows == results[1].rows
        assert content_hash(results[0].payload) == content_hash(results[1].payload)

    def test_distinct_seeds_change_the_payload(self):
        runner = Runner(cache=None)
        base = runner.run(names=["fig07"], overrides=self.PARAMS)[0]
        other = runner.run(
            names=["fig07"], overrides={**self.PARAMS, "seed": 1}
        )[0]
        assert base.payload != other.payload
