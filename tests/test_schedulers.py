"""Differential tests: the timing wheel is bit-identical to the heap.

The engine contract is that scheduler choice is *invisible*: identical
workloads dispatch identical event sequences — same timestamps, same
tie-break order, same clock trajectory — under ``scheduler="heap"`` and
``scheduler="wheel"``. These tests pin that with random event cascades
(property-style, many seeds), with the engine's run-contract corner cases,
and with a full packet workload compared observable-by-observable.
"""

import random

import pytest

from repro.experiments.fctsim import MS, build_network
from repro.net.sim import SCHEDULERS, Simulator
from repro.net.wheel import TimingWheel
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.distributions import DATAMINING


def random_cascade(scheduler: str, seed: int) -> tuple:
    """Seeded self-scheduling event storm; returns every observable."""
    sim = Simulator(scheduler=scheduler)
    rng = random.Random(seed)
    trace = []

    def fire(tag):
        trace.append((sim.now, tag))
        # Subcritical branching (mean < 1) so every cascade dies out.
        for i in range(rng.choices((0, 1, 2), weights=(5, 3, 2))[0]):
            # Mix of immediate (tie-producing), short and far-future delays
            # (far ones exercise the wheel's overflow list).
            delay = rng.choice(
                (0, rng.randrange(1, 2_000_000), rng.randrange(1, 5_000_000_000))
            )
            sim.after(delay, fire, f"{tag}.{i}")

    for i in range(40):
        sim.at(rng.randrange(0, 50_000_000), fire, str(i))
    # Chunked draining with budgets exercises resume paths in both modes.
    sim.run(until_ps=100_000_000, max_events=500)
    sim.run(until_ps=2_000_000_000)
    sim.run(max_events=3_000)
    sim.run()
    return tuple(trace), sim.now, sim.events_processed, sim.pending


class TestDifferentialCascades:
    @pytest.mark.parametrize("seed", range(25))
    def test_heap_and_wheel_trace_identically(self, seed):
        assert random_cascade("heap", seed) == random_cascade("wheel", seed)

    def test_cascades_produce_work(self):
        trace, _now, events, pending = random_cascade("heap", 0)
        assert events > 100 and pending == 0
        assert any(t for t, _tag in trace)


class TestWheelEngineContract:
    """The Simulator run() contract holds under the wheel scheduler."""

    def test_ties_fifo(self):
        sim = Simulator(scheduler="wheel")
        seen = []
        for tag in "xyz":
            sim.at(5, seen.append, tag)
        sim.run()
        assert seen == ["x", "y", "z"]

    def test_idle_advance_and_rejection_of_skipped_interval(self):
        sim = Simulator(scheduler="wheel")
        sim.run(until_ps=123)
        assert sim.now == 123
        with pytest.raises(ValueError):
            sim.at(25, lambda: None)

    def test_max_events_leaves_now_behind_horizon(self):
        sim = Simulator(scheduler="wheel")
        for t in (10, 20, 30):
            sim.at(t, lambda: None)
        assert sim.run(until_ps=100, max_events=2) == 2
        assert sim.now == 20
        assert sim.pending == 1
        assert sim.run(until_ps=100, max_events=10) == 1
        assert sim.now == 100

    def test_max_events_exhausted_on_last_event_does_not_advance(self):
        # Boundary: the budget runs out exactly as the wheel empties; the
        # clock still must not jump to the horizon (the run can't know the
        # queue is quiet without budget left to look). Pinned for the heap
        # in test_sim_engine.py; the wheel path has its own bucket/ready
        # bookkeeping, so it gets its own pin.
        sim = Simulator(scheduler="wheel")
        sim.at(10, lambda: None)
        sim.at(20, lambda: None)
        assert sim.run(until_ps=500, max_events=2) == 2
        assert sim.now == 20
        assert sim.pending == 0
        # With budget to spare the same drain idles forward as usual.
        assert sim.run(until_ps=500, max_events=5) == 0
        assert sim.now == 500

    def test_far_future_events_cross_many_rotations(self):
        # Horizon is slot_ps * n_slots; schedule well beyond several
        # rotations to exercise overflow redistribution and fast-forward.
        sim = Simulator(scheduler="wheel")
        seen = []
        horizon = TimingWheel().horizon_ps
        times = [7 * horizon + 3, 2 * horizon, 123, 5 * horizon + 9]
        for t in times:
            sim.at(t, seen.append, t)
        sim.run()
        assert seen == sorted(times)
        assert sim.now == max(times)

    def test_reuse_after_drain_reanchors(self):
        sim = Simulator(scheduler="wheel")
        sim.at(10, lambda: None)
        sim.run()
        assert sim.now == 10
        seen = []
        sim.at(20_000_000_000, seen.append, "late")
        sim.run()
        assert seen == ["late"] and sim.now == 20_000_000_000


class TestWheelUnit:
    def test_pop_empty_raises(self):
        wheel = TimingWheel()
        assert wheel.peek_time() is None
        with pytest.raises(IndexError):
            wheel.pop()

    def test_fifo_within_bucket_and_across_buckets(self):
        wheel = TimingWheel(slot_ps=100, n_slots=8)
        entries = [(50, 1), (50, 2), (120, 3), (40, 4), (799, 5), (800, 6)]
        for t, seq in entries:
            wheel.push(t, seq, lambda: None, ())
        popped = []
        while len(wheel):
            t, seq, _cb, _args = wheel.pop()
            popped.append((t, seq))
        assert popped == sorted(entries)

    def test_insert_into_bucket_being_drained(self):
        wheel = TimingWheel(slot_ps=1000, n_slots=4)
        wheel.push(10, 1, lambda: None, ())
        wheel.push(500, 2, lambda: None, ())
        assert wheel.pop()[:2] == (10, 1)
        # Same bucket, later time, pushed mid-drain: must slot in order.
        wheel.push(200, 3, lambda: None, ())
        assert wheel.pop()[:2] == (200, 3)
        assert wheel.pop()[:2] == (500, 2)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            TimingWheel(slot_ps=0)
        with pytest.raises(ValueError):
            TimingWheel(n_slots=0)


class TestUnknownScheduler:
    def test_rejected_with_known_list(self):
        with pytest.raises(ValueError, match="heap"):
            Simulator(scheduler="calendar")

    def test_known_names(self):
        assert set(SCHEDULERS) == {"heap", "wheel"}

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "wheel")
        assert Simulator().scheduler == "wheel"
        monkeypatch.delenv("REPRO_SCHEDULER")
        assert Simulator().scheduler == "heap"


def packet_workload(scheduler: str, seed: int = 11) -> dict:
    """A small mixed fig07-style run; returns the full observable state."""
    import os

    prev = os.environ.get("REPRO_SCHEDULER")
    os.environ["REPRO_SCHEDULER"] = scheduler
    try:
        net = build_network("opera", k=8, n_racks=8, seed=seed)
        arrivals = PoissonArrivals(
            DATAMINING.truncated(500_000),
            load=0.15,
            n_hosts=len(net.hosts),
            hosts_per_rack=4,
            seed=seed,
        )
        threshold = net.network.bulk_threshold_bytes
        for flow in arrivals.flows(duration_ps=int(1.0 * MS)):
            if flow.size_bytes >= threshold:
                net.start_bulk_flow(
                    flow.src_host, flow.dst_host, flow.size_bytes, flow.time_ps
                )
            else:
                net.start_low_latency_flow(
                    flow.src_host, flow.dst_host, flow.size_bytes, flow.time_ps
                )
        net.run(until_ps=int(5.0 * MS))
    finally:
        if prev is None:
            os.environ.pop("REPRO_SCHEDULER", None)
        else:
            os.environ["REPRO_SCHEDULER"] = prev
    return {
        "events": net.sim.events_processed,
        "final_now": net.sim.now,
        "fcts": [
            (fid, rec.fct_ps, rec.delivered_bytes, rec.retransmissions)
            for fid, rec in sorted(net.stats.flows.items())
        ],
    }


class TestPacketWorkloadDifferential:
    def test_full_packet_run_bit_identical(self):
        heap = packet_workload("heap")
        wheel = packet_workload("wheel")
        assert heap["events"] == wheel["events"]
        assert heap["final_now"] == wheel["final_now"]
        assert heap["fcts"] == wheel["fcts"]

    def test_workload_is_non_trivial(self):
        heap = packet_workload("heap")
        assert heap["events"] > 10_000
        assert sum(1 for _f, fct, *_r in heap["fcts"] if fct is not None) > 10
