"""Differential tests: the timing wheel is bit-identical to the heap.

The engine contract is that scheduler choice is *invisible*: identical
workloads dispatch identical event sequences — same timestamps, same
tie-break order, same clock trajectory — under ``scheduler="heap"`` and
``scheduler="wheel"``. These tests pin that with random event cascades
(property-style, many seeds), with the engine's run-contract corner cases,
and with a full packet workload compared observable-by-observable.
"""

import random

import pytest

from repro.experiments.fctsim import MS, build_network
from repro.net.sim import SCHEDULERS, Simulator
from repro.net.wheel import TimingWheel
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.distributions import DATAMINING


def random_cascade(scheduler: str, seed: int) -> tuple:
    """Seeded self-scheduling event storm; returns every observable."""
    sim = Simulator(scheduler=scheduler)
    rng = random.Random(seed)
    trace = []

    def fire(tag):
        trace.append((sim.now, tag))
        # Subcritical branching (mean < 1) so every cascade dies out.
        for i in range(rng.choices((0, 1, 2), weights=(5, 3, 2))[0]):
            # Mix of immediate (tie-producing), short and far-future delays
            # (far ones exercise the wheel's overflow list).
            delay = rng.choice(
                (0, rng.randrange(1, 2_000_000), rng.randrange(1, 5_000_000_000))
            )
            sim.after(delay, fire, f"{tag}.{i}")

    for i in range(40):
        sim.at(rng.randrange(0, 50_000_000), fire, str(i))
    # Chunked draining with budgets exercises resume paths in both modes.
    sim.run(until_ps=100_000_000, max_events=500)
    sim.run(until_ps=2_000_000_000)
    sim.run(max_events=3_000)
    sim.run()
    return tuple(trace), sim.now, sim.events_processed, sim.pending


class TestDifferentialCascades:
    @pytest.mark.parametrize("seed", range(25))
    def test_heap_and_wheel_trace_identically(self, seed):
        assert random_cascade("heap", seed) == random_cascade("wheel", seed)

    def test_cascades_produce_work(self):
        trace, _now, events, pending = random_cascade("heap", 0)
        assert events > 100 and pending == 0
        assert any(t for t, _tag in trace)


class TestWheelEngineContract:
    """The Simulator run() contract holds under the wheel scheduler."""

    def test_ties_fifo(self):
        sim = Simulator(scheduler="wheel")
        seen = []
        for tag in "xyz":
            sim.at(5, seen.append, tag)
        sim.run()
        assert seen == ["x", "y", "z"]

    def test_idle_advance_and_rejection_of_skipped_interval(self):
        sim = Simulator(scheduler="wheel")
        sim.run(until_ps=123)
        assert sim.now == 123
        with pytest.raises(ValueError):
            sim.at(25, lambda: None)

    def test_max_events_leaves_now_behind_horizon(self):
        sim = Simulator(scheduler="wheel")
        for t in (10, 20, 30):
            sim.at(t, lambda: None)
        assert sim.run(until_ps=100, max_events=2) == 2
        assert sim.now == 20
        assert sim.pending == 1
        assert sim.run(until_ps=100, max_events=10) == 1
        assert sim.now == 100

    def test_max_events_exhausted_on_last_event_does_not_advance(self):
        # Boundary: the budget runs out exactly as the wheel empties; the
        # clock still must not jump to the horizon (the run can't know the
        # queue is quiet without budget left to look). Pinned for the heap
        # in test_sim_engine.py; the wheel path has its own bucket/ready
        # bookkeeping, so it gets its own pin.
        sim = Simulator(scheduler="wheel")
        sim.at(10, lambda: None)
        sim.at(20, lambda: None)
        assert sim.run(until_ps=500, max_events=2) == 2
        assert sim.now == 20
        assert sim.pending == 0
        # With budget to spare the same drain idles forward as usual.
        assert sim.run(until_ps=500, max_events=5) == 0
        assert sim.now == 500

    def test_far_future_events_cross_many_rotations(self):
        # Horizon is slot_ps * n_slots; schedule well beyond several
        # rotations to exercise overflow redistribution and fast-forward.
        sim = Simulator(scheduler="wheel")
        seen = []
        horizon = TimingWheel().horizon_ps
        times = [7 * horizon + 3, 2 * horizon, 123, 5 * horizon + 9]
        for t in times:
            sim.at(t, seen.append, t)
        sim.run()
        assert seen == sorted(times)
        assert sim.now == max(times)

    def test_reuse_after_drain_reanchors(self):
        sim = Simulator(scheduler="wheel")
        sim.at(10, lambda: None)
        sim.run()
        assert sim.now == 10
        seen = []
        sim.at(20_000_000_000, seen.append, "late")
        sim.run()
        assert seen == ["late"] and sim.now == 20_000_000_000


class TestWheelUnit:
    def test_pop_empty_raises(self):
        wheel = TimingWheel()
        assert wheel.peek_time() is None
        with pytest.raises(IndexError):
            wheel.pop()

    def test_fifo_within_bucket_and_across_buckets(self):
        wheel = TimingWheel(slot_ps=100, n_slots=8)
        entries = [(50, 1), (50, 2), (120, 3), (40, 4), (799, 5), (800, 6)]
        for t, seq in entries:
            wheel.push(t, seq, lambda: None, ())
        popped = []
        while len(wheel):
            t, seq, _cb, _args = wheel.pop()
            popped.append((t, seq))
        assert popped == sorted(entries)

    def test_insert_into_bucket_being_drained(self):
        wheel = TimingWheel(slot_ps=1000, n_slots=4)
        wheel.push(10, 1, lambda: None, ())
        wheel.push(500, 2, lambda: None, ())
        assert wheel.pop()[:2] == (10, 1)
        # Same bucket, later time, pushed mid-drain: must slot in order.
        wheel.push(200, 3, lambda: None, ())
        assert wheel.pop()[:2] == (200, 3)
        assert wheel.pop()[:2] == (500, 2)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            TimingWheel(slot_ps=0)
        with pytest.raises(ValueError):
            TimingWheel(n_slots=0)


class TestWheelRebasePeek:
    """Regression pins for the ``_rebase``/``peek`` interaction.

    ``peek``/``peek_time`` are *state-mutating*: finding the front entry
    may drain the exhausted ready list, advance the cursor, sort the next
    bucket into the ready list, or — when everything pending sits beyond
    the current rotation — jump the whole wheel via ``_rebase_to``. All
    of that must be invisible: a peek can never change what subsequent
    pushes and pops observe.
    """

    def test_peek_triggers_rebase_then_push_lands_mid_bucket(self):
        # One entry far beyond the rotation: peek() must fast-forward the
        # wheel (overflow -> _rebase_to -> sort bucket -> ready).
        wheel = TimingWheel(slot_ps=100, n_slots=8)
        horizon = wheel.horizon_ps
        far = 3 * horizon + 250
        wheel.push(far, 1, lambda: None, ())
        assert wheel.peek_time() == far
        # The wheel is now mid-bucket in the rebased rotation; a push into
        # the very slot being drained must merge in sorted position even
        # though it precedes the peeked entry.
        wheel.push(far - 10, 2, lambda: None, ())
        assert wheel.pop()[:2] == (far - 10, 2)
        assert wheel.pop()[:2] == (far, 1)
        assert len(wheel) == 0

    def test_peek_is_observably_pure(self):
        # Same pushes, with and without interleaved peeks: identical pops.
        def run(peek_every: bool) -> list:
            wheel = TimingWheel(slot_ps=100, n_slots=8)
            rng = random.Random(7)
            out, floor, seq = [], 0, 0
            for _ in range(400):
                if rng.random() < 0.6 or len(wheel) == 0:
                    t = floor + rng.choice(
                        (0, rng.randrange(1, 300), rng.randrange(1, 10_000))
                    )
                    seq += 1
                    wheel.push(t, seq, lambda: None, ())
                else:
                    t, s, _cb, _args = wheel.pop()
                    floor = t
                    out.append((t, s))
                if peek_every:
                    front = wheel.peek()
                    assert (front is None) == (len(wheel) == 0)
            while len(wheel):
                out.append(wheel.pop()[:2])
            return out

        assert run(True) == run(False)

    def test_push_many_straddles_rebase_boundary(self):
        # One bulk insert spanning: the slot being drained, later slots of
        # the current rotation, and several future rotations (overflow) —
        # then drain across the wrap so _rebase redistributes overflow.
        wheel = TimingWheel(slot_ps=100, n_slots=4)
        horizon = wheel.horizon_ps  # 400
        wheel.push(50, 1, lambda: None, ())
        assert wheel.pop()[:2] == (50, 1)  # mid-bucket, cursor slot 0
        batch = [
            (60, 2, None, ()),  # cursor slot, behind the consumed prefix
            (350, 3, None, ()),  # last slot of this rotation
            (horizon + 20, 4, None, ()),  # next rotation -> overflow
            (5 * horizon + 7, 5, None, ()),  # far overflow
            (99, 6, None, ()),  # cursor slot again
        ]
        wheel.push_many(batch)
        got = []
        while len(wheel):
            got.append(wheel.pop()[:2])
        assert got == [(60, 2), (99, 6), (350, 3), (horizon + 20, 4), (5 * horizon + 7, 5)]

    def test_push_many_on_empty_wheel_reanchors_to_floor(self):
        # Drain fully, then bulk-push beyond the old rotation: push_many's
        # count==0 path must re-anchor at the floor exactly like push().
        wheel = TimingWheel(slot_ps=100, n_slots=4)
        wheel.push(30, 1, lambda: None, ())
        assert wheel.pop()[:2] == (30, 1)
        batch = [(10_000 + i * 37, 2 + i, None, ()) for i in range(10)]
        wheel.push_many(list(reversed(batch)))
        got = [wheel.pop()[:2] for _ in range(len(batch))]
        assert got == [(t, s) for t, s, _cb, _a in batch]

    @pytest.mark.parametrize("seed", range(10))
    def test_fuzz_bit_identical_to_heap(self, seed):
        # Random interleaving of push / push_many / peek / pop, mirrored
        # into a heapq reference; pop streams must match exactly.
        import heapq

        rng = random.Random(seed)
        wheel = TimingWheel(slot_ps=64, n_slots=16)
        heap: list = []
        horizon = wheel.horizon_ps
        floor, seq = 0, 0
        wheel_out, heap_out = [], []
        for _ in range(1500):
            r = rng.random()
            if r < 0.45 or not heap:
                t = floor + rng.choice(
                    (0, rng.randrange(1, 200), rng.randrange(1, 3 * horizon))
                )
                seq += 1
                wheel.push(t, seq, None, ())
                heapq.heappush(heap, (t, seq))
            elif r < 0.55:
                batch = []
                for _ in range(rng.randrange(1, 6)):
                    t = floor + rng.randrange(0, 2 * horizon)
                    seq += 1
                    batch.append((t, seq, None, ()))
                wheel.push_many(batch)
                for t, s, _cb, _a in batch:
                    heapq.heappush(heap, (t, s))
            elif r < 0.7:
                front = wheel.peek()
                assert front is not None and front[:2] == heap[0]
            else:
                t, s, _cb, _a = wheel.pop()
                floor = t
                wheel_out.append((t, s))
                heap_out.append(heapq.heappop(heap))
        while heap:
            wheel_out.append(wheel.pop()[:2])
            heap_out.append(heapq.heappop(heap))
        assert wheel_out == heap_out and len(wheel) == 0


class TestUnknownScheduler:
    def test_rejected_with_known_list(self):
        with pytest.raises(ValueError, match="heap"):
            Simulator(scheduler="calendar")

    def test_known_names(self):
        assert set(SCHEDULERS) == {"heap", "wheel"}

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "wheel")
        assert Simulator().scheduler == "wheel"
        monkeypatch.delenv("REPRO_SCHEDULER")
        assert Simulator().scheduler == "heap"


def packet_workload(scheduler: str, seed: int = 11) -> dict:
    """A small mixed fig07-style run; returns the full observable state."""
    import os

    prev = os.environ.get("REPRO_SCHEDULER")
    os.environ["REPRO_SCHEDULER"] = scheduler
    try:
        net = build_network("opera", k=8, n_racks=8, seed=seed)
        arrivals = PoissonArrivals(
            DATAMINING.truncated(500_000),
            load=0.15,
            n_hosts=len(net.hosts),
            hosts_per_rack=4,
            seed=seed,
        )
        threshold = net.network.bulk_threshold_bytes
        for flow in arrivals.flows(duration_ps=int(1.0 * MS)):
            if flow.size_bytes >= threshold:
                net.start_bulk_flow(
                    flow.src_host, flow.dst_host, flow.size_bytes, flow.time_ps
                )
            else:
                net.start_low_latency_flow(
                    flow.src_host, flow.dst_host, flow.size_bytes, flow.time_ps
                )
        net.run(until_ps=int(5.0 * MS))
    finally:
        if prev is None:
            os.environ.pop("REPRO_SCHEDULER", None)
        else:
            os.environ["REPRO_SCHEDULER"] = prev
    return {
        "events": net.sim.events_processed,
        "final_now": net.sim.now,
        "fcts": [
            (fid, rec.fct_ps, rec.delivered_bytes, rec.retransmissions)
            for fid, rec in sorted(net.stats.flows.items())
        ],
    }


class TestPacketWorkloadDifferential:
    def test_full_packet_run_bit_identical(self):
        heap = packet_workload("heap")
        wheel = packet_workload("wheel")
        assert heap["events"] == wheel["events"]
        assert heap["final_now"] == wheel["final_now"]
        assert heap["fcts"] == wheel["fcts"]

    def test_workload_is_non_trivial(self):
        heap = packet_workload("heap")
        assert heap["events"] > 10_000
        assert sum(1 for _f, fct, *_r in heap["fcts"] if fct is not None) > 10
