"""Sharded scenario execution: portable encoding, plans, differential
equivalence, cost-ordered scheduling, and cache-granular resumption.

The load-bearing guarantees:

* ``from_portable(to_portable(v)) == v`` for every experiment result type
  (cells travel and cache through this encoding);
* a sharded run — in-process, pooled, or restored from the cell cache —
  produces bit-identical results to the scenario's own unsharded ``run()``;
* deleting a subset of cell cache entries re-executes exactly the missing
  cells and reproduces the identical merged payload.
"""

import dataclasses
import math

import pytest

from repro.experiments.fctsim import (
    NETWORK_COST_WEIGHT,
    FctResult,
    adaptive_cell_cost,
    fct_cell_cost,
)
from repro.scenarios import (
    Cell,
    EncodeError,
    Progress,
    ResultCache,
    Runner,
    ScenarioExecutionError,
    calibrate_costs,
    derive_cell_seed,
    from_portable,
    get,
    scenario,
    to_portable,
    validate_plan,
)
from repro.scenarios import registry as registry_mod

#: A fig07 configuration small enough for unit tests (4 packet cells of a
#: quarter-horizon 8-rack run each).
TINY_FIG07 = {
    "loads": (0.02, 0.05),
    "networks": ("opera", "rotornet"),
    "duration_ms": 0.4,
    "scale": "ci",
}


@pytest.fixture
def scratch_registry():
    before = dict(registry_mod._REGISTRY)
    yield registry_mod._REGISTRY
    registry_mod._REGISTRY.clear()
    registry_mod._REGISTRY.update(before)


# ----------------------------------------------------------------- encoding


class TestPortableEncoding:
    def test_scalars_and_containers_roundtrip(self):
        for value in (
            None,
            True,
            42,
            0.1,
            "text",
            [1, [2, "x"], None],
            (1, (2, 3), "y"),
            {"a": 1, "b": (2, 3)},
            {(0, 10_000): (1.5, None), (10_000, 100_000): (2.5, 3.5)},
            {1, 2, 3},
            frozenset({"a", "b"}),
            range(0, 108, 4),
        ):
            assert from_portable(to_portable(value)) == value

    def test_types_survive_exactly(self):
        value = {"t": (1, 2), "l": [1, 2], "s": {3}, "f": frozenset({4})}
        decoded = from_portable(to_portable(value))
        assert isinstance(decoded["t"], tuple)
        assert isinstance(decoded["l"], list)
        assert isinstance(decoded["s"], set)
        assert isinstance(decoded["f"], frozenset)

    def test_dataclass_roundtrip(self):
        result = FctResult(
            network="opera",
            load=0.1,
            n_flows=50,
            completed=48,
            buckets={(0, 10_000): (12.5, 30.0), (10_000, 100_000): (None, None)},
        )
        decoded = from_portable(to_portable(result))
        assert isinstance(decoded, FctResult)
        assert decoded == result
        assert decoded.buckets[(0, 10_000)] == (12.5, 30.0)

    def test_marker_keys_are_escaped(self):
        # A plain dict whose key collides with the encoding's own markers
        # must not be misread as structure.
        tricky = {"__tuple__": [1, 2], "plain": 3}
        assert from_portable(to_portable(tricky)) == tricky

    def test_unportable_raises(self):
        with pytest.raises(EncodeError):
            to_portable(object())

    def test_non_dataclass_import_path_rejected(self):
        with pytest.raises(EncodeError):
            from_portable({"__dataclass__": "os:getcwd", "fields": {}})


# -------------------------------------------------------------------- plans


class TestShardPlans:
    def test_fig07_plan_covers_the_grid(self):
        plan = get("fig07").shard_plan(**get("fig07").bind({}))
        assert len(plan) == 15  # 5 networks x 3 loads
        keys = [cell.key for cell in plan]
        assert keys[0] == "opera@0.01" and "clos@0.25" in keys
        assert len(set(keys)) == len(keys)

    def test_cell_seeds_are_hash_derived_and_independent(self):
        plan = get("fig07").shard_plan(**get("fig07").bind({}))
        seeds = {cell.key: cell.params["seed"] for cell in plan}
        assert seeds["opera@0.01"] == derive_cell_seed(0, "fig07", "opera@0.01")
        assert len(set(seeds.values())) == len(seeds)  # no stream sharing
        # The seed depends only on (base seed, scenario, key) — not on
        # which other cells exist.
        small = get("fig07").shard_plan(
            **get("fig07").bind({"loads": (0.01,), "networks": ("opera",)})
        )
        assert small[0].params["seed"] == seeds["opera@0.01"]

    def test_cell_costs_follow_scale_network_load(self):
        assert fct_cell_cost("paper", "clos", 0.25, 4.0) > fct_cell_cost(
            "default", "clos", 0.25, 4.0
        )
        assert fct_cell_cost("default", "clos", 0.1, 4.0) > fct_cell_cost(
            "default", "opera", 0.1, 4.0
        )
        assert fct_cell_cost("default", "opera", 0.25, 4.0) > fct_cell_cost(
            "default", "opera", 0.01, 4.0
        )
        assert set(NETWORK_COST_WEIGHT) == {
            "opera", "expander", "clos", "rotornet-hybrid", "rotornet"
        }

    def test_all_grid_scenarios_declare_shards(self):
        for name in ("fig07", "fig09", "fig10", "fig11", "ablation_grouping",
                     "ablation_guard_bands", "ablation_vlb"):
            sc = get(name)
            assert sc.shardable, name
            plan = sc.shard_plan(**sc.bind({}))
            assert len(plan) > 1, name

    def test_validate_plan_rejects_bad_plans(self):
        with pytest.raises(ValueError, match="no cells"):
            validate_plan("x", [])
        with pytest.raises(ValueError, match="duplicate"):
            validate_plan("x", [Cell("a"), Cell("a")])
        with pytest.raises(ValueError, match="non-positive"):
            validate_plan("x", [Cell("a", cost=0.0)])
        with pytest.raises(ValueError, match="JSON-able"):
            validate_plan("x", [Cell("a", params={"obj": object()})])
        with pytest.raises(TypeError, match="must return Cells"):
            validate_plan("x", ["a"])

    def test_decorator_requires_all_three_hooks(self, scratch_registry):
        with pytest.raises(ValueError, match="declared together"):
            scenario("half-sharded", shards="shards")


# ------------------------------------------------------------- differential


class TestShardedMatchesUnsharded:
    """The acceptance property: sharded == pooled == in-process, bitwise."""

    def test_fig07_in_process_sharded_matches_plain_run(self, tmp_path):
        plain = Runner(cache=None).execute("fig07", **TINY_FIG07)
        sharded = Runner(cache=ResultCache(tmp_path)).run(
            names=["fig07"], overrides=TINY_FIG07
        )[0]
        assert sharded.cells == (4, 0, 4)
        assert sharded.value == plain
        # Per-bucket means/p99s and flow counts, exactly.
        for ours, theirs in zip(sharded.value, plain):
            assert ours.buckets == theirs.buckets
            assert (ours.n_flows, ours.completed) == (
                theirs.n_flows, theirs.completed
            )

    def test_fig07_pooled_matches_plain_run(self, tmp_path):
        plain = Runner(cache=None).execute("fig07", **TINY_FIG07)
        pooled = Runner(workers=2, cache=ResultCache(tmp_path)).run(
            names=["fig07"], overrides=TINY_FIG07
        )[0]
        assert pooled.value == plain
        serial = Runner(cache=None).run(names=["fig07"], overrides=TINY_FIG07)[0]
        assert pooled.payload == serial.payload
        assert pooled.rows == serial.rows

    def test_fig11_sharded_matches_plain_run(self):
        params = {"n_racks": 24, "fractions": (0.1, 0.4), "slice_stride": 12}
        plain = Runner(cache=None).execute("fig11", **params)
        sharded = Runner(cache=None).run(names=["fig11"], overrides=params)[0]
        assert sharded.cells == (6, 0, 6)
        assert sharded.value == plain

    def test_ablation_sharded_matches_plain_run(self):
        params = {"groups": (12, 6)}
        plain = Runner(cache=None).execute("ablation_grouping", **params)
        sharded = Runner(cache=None).run(
            names=["ablation_grouping"], overrides=params
        )[0]
        assert sharded.value == plain
        assert [row["group"] for row in sharded.value] == [12, 6]


# ------------------------------------------------------------ adaptive costs


class TestAdaptiveCosts:
    def test_calibrate_no_history_is_identity(self):
        static = {"a": 4.0, "b": 1.0}
        assert calibrate_costs(static, {}) == static
        assert calibrate_costs(static, {"a": 0.0}) == static

    def test_calibrate_full_history_orders_by_recorded(self):
        # Static says a >> b, recorded wall clocks say otherwise: the
        # blended costs must follow the measurements.
        blended = calibrate_costs({"a": 4.0, "b": 1.0}, {"a": 1.0, "b": 9.0})
        assert blended["b"] > blended["a"]
        # Total mass is preserved by the calibration fit.
        assert sum(blended.values()) == pytest.approx(5.0)

    def test_calibrate_partial_history_stays_comparable(self):
        # 'c' has no history; its static estimate must survive on a scale
        # comparable with the history-backed entries.
        blended = calibrate_costs(
            {"a": 2.0, "b": 2.0, "c": 5.0}, {"a": 10.0, "b": 30.0}
        )
        assert blended["c"] == 5.0
        assert blended["b"] == pytest.approx(3.0)  # 30s at 10s/unit
        assert blended["a"] == pytest.approx(1.0)
        assert blended["b"] > blended["a"]

    def test_calibrate_non_finite_recorded_is_no_history(self):
        # A corrupted duration (inf/NaN telemetry) must not poison the
        # fit: the key falls back to its static estimate and every
        # calibrated cost stays finite (they feed progress ETAs).
        static = {"a": 4.0, "b": 1.0, "c": 2.0}
        for bad in (math.inf, -math.inf, math.nan):
            blended = calibrate_costs(static, {"a": bad, "b": 9.0})
            assert blended["a"] == 4.0
            assert all(math.isfinite(v) for v in blended.values())

    def test_calibrate_all_history_non_finite_is_identity(self):
        static = {"a": 4.0, "b": 1.0}
        assert calibrate_costs(static, {"a": math.inf, "b": math.nan}) == static

    def test_calibrate_non_finite_static_key_excluded_from_fit(self):
        # A non-finite *static* estimate cannot participate in the
        # seconds-per-unit fit; the finite keys must calibrate as if it
        # were absent.
        blended = calibrate_costs(
            {"a": 2.0, "b": 2.0, "x": math.inf}, {"a": 10.0, "b": 30.0, "x": 5.0}
        )
        assert blended["a"] == pytest.approx(1.0)
        assert blended["b"] == pytest.approx(3.0)
        assert blended["x"] == math.inf  # kept as-is, not blended

    def test_adaptive_cell_cost_falls_back_to_static(self):
        static = fct_cell_cost("default", "opera", 0.1, 4.0)
        assert adaptive_cell_cost("default", "opera", 0.1, 4.0) == static
        assert (
            adaptive_cell_cost("default", "opera", 0.1, 4.0, history={})
            == static
        )
        # History for *other* cells only: this cell keeps its static
        # estimate (calibrated statics preserve no-history entries).
        adapted = adaptive_cell_cost(
            "default", "opera", 0.1, 4.0, history={"clos@0.25": 60.0}
        )
        assert adapted == static

    def test_adaptive_cell_cost_prefers_recorded_ordering(self):
        # Static weights say rotornet is the cheapest network, but the
        # recorded durations say its cells run *longest*: adaptive costs
        # must flip the ordering.
        history = {"rotornet@0.1": 50.0, "opera@0.1": 1.0}
        rotor = adaptive_cell_cost("default", "rotornet", 0.1, 4.0, history)
        opera = adaptive_cell_cost("default", "opera", 0.1, 4.0, history)
        assert fct_cell_cost("default", "rotornet", 0.1, 4.0) < fct_cell_cost(
            "default", "opera", 0.1, 4.0
        )
        assert rotor > opera

    #: Fabricated history: rotornet@0.02 dominates the wall clock, the
    #: exact inverse of the static model's ranking.
    FAKE_DURATIONS = {
        "rotornet@0.02": 500.0,
        "rotornet@0.05": 40.0,
        "opera@0.05": 20.0,
        "opera@0.02": 10.0,
    }

    def _put_history(self, cache, mutate=None):
        # History documents must be params-comparable with the coming
        # run: same cell params up to the seed (a prior run of the same
        # shape under a different base seed).
        sc = get("fig07")
        plan = sc.shard_plan(**sc.bind(TINY_FIG07))
        for cell in plan:
            params = dict(cell.params, seed=cell.params["seed"] + 1)
            if mutate:
                params = mutate(params)
            cache.put_cell(
                "fig07",
                cell.key,
                params,
                {"scenario": "fig07", "cell": cell.key, "params": params,
                 "value": None, "duration_s": self.FAKE_DURATIONS[cell.key]},
            )

    def test_runner_orders_by_recorded_durations(self, tmp_path):
        # The Runner must schedule by the fabricated history even though
        # the static model ranks rotornet last (see
        # TestCostOrderedScheduling.test_expensive_cells_run_first).
        cache = ResultCache(tmp_path)
        self._put_history(cache)
        seen: list[Progress] = []
        Runner(cache=cache, progress=seen.append).run(
            names=["fig07"], overrides=TINY_FIG07
        )
        labels = [p.label for p in seen]
        assert labels[0] == "fig07:rotornet@0.02"
        assert labels == [
            f"fig07:{k}"
            for k in sorted(
                self.FAKE_DURATIONS, key=self.FAKE_DURATIONS.get, reverse=True
            )
        ]

    def test_incomparable_history_is_ignored(self, tmp_path):
        # Same cell keys, different shape (another duration_ms): ci-scale
        # telemetry from a different horizon must not misorder this run —
        # static ordering prevails.
        cache = ResultCache(tmp_path)
        self._put_history(
            cache, mutate=lambda p: dict(p, duration_ms=p["duration_ms"] * 8)
        )
        seen: list[Progress] = []
        Runner(cache=cache, progress=seen.append).run(
            names=["fig07"], overrides=TINY_FIG07
        )
        labels = [p.label for p in seen]
        assert labels[0] == "fig07:opera@0.05"
        assert labels[-1] == "fig07:rotornet@0.02"

    def test_poisoned_history_keeps_eta_finite(self, tmp_path):
        # An inf duration in the cell telemetry (clock glitch, corrupted
        # cache row) used to propagate NaN through calibrate_costs into
        # total_cost and from there into the progress ETA. It must now be
        # treated as no-history: the run completes, ordering still works,
        # and every reported ETA is either unknown or finite and >= 0.
        cache = ResultCache(tmp_path)
        self._put_history(cache)
        sc = get("fig07")
        plan = sc.shard_plan(**sc.bind(TINY_FIG07))
        cell = plan[0]
        params = dict(cell.params, seed=cell.params["seed"] + 1)
        cache.put_cell(
            "fig07",
            cell.key,
            params,
            {"scenario": "fig07", "cell": cell.key, "params": params,
             "value": None, "duration_s": math.inf},
        )
        seen: list[Progress] = []
        Runner(cache=cache, progress=seen.append).run(
            names=["fig07"], overrides=TINY_FIG07
        )
        assert len(seen) == 4
        for p in seen:
            assert p.eta_s is None or (
                math.isfinite(p.eta_s) and p.eta_s >= 0.0
            )


# --------------------------------------------------- scheduling and progress


class TestCostOrderedScheduling:
    def test_expensive_cells_run_first(self, tmp_path):
        seen: list[Progress] = []
        runner = Runner(cache=ResultCache(tmp_path), progress=seen.append)
        runner.run(names=["fig07"], overrides=TINY_FIG07)
        labels = [p.label for p in seen]
        assert len(labels) == 4
        # Highest estimated cost first: the 5% cells lead their 2%
        # siblings, and rotornet's 0.4x weight sinks it below opera at
        # equal load.
        assert labels[0] == "fig07:opera@0.05"
        assert labels[-1] == "fig07:rotornet@0.02"
        assert labels.index("fig07:opera@0.05") < labels.index(
            "fig07:opera@0.02"
        )
        assert labels.index("fig07:rotornet@0.05") < labels.index(
            "fig07:rotornet@0.02"
        )
        assert seen[-1].done == seen[-1].total == 4
        assert all(p.eta_s is not None for p in seen)

    def test_sweep_points_order_by_estimated_cost(self):
        # All points of one sweep share the scenario's cost hint; the cells
        # they shard into carry real estimates, so the heavier load runs
        # first regardless of grid order.
        seen: list[Progress] = []
        runner = Runner(cache=None, progress=seen.append)
        runner.sweep(
            "fig07",
            {"loads": [(0.02,), (0.05,)]},
            overrides={"networks": ("opera",), "duration_ms": 0.4,
                       "scale": "ci"},
        )
        assert [p.label for p in seen] == [
            "fig07:opera@0.05",
            "fig07:opera@0.02",
        ]

    def test_shared_cells_run_once_per_batch(self, tmp_path):
        # Two sweep points whose plans overlap (both contain opera@0.02)
        # must execute the shared cell once and fan its value out.
        seen: list[Progress] = []
        runner = Runner(cache=ResultCache(tmp_path), progress=seen.append)
        results = runner.sweep(
            "fig07",
            {"networks": [("opera",), ("opera", "rotornet")]},
            overrides={"loads": (0.02,), "duration_ms": 0.4, "scale": "ci"},
        )
        labels = sorted(p.label for p in seen)
        assert labels == ["fig07:opera@0.02", "fig07:rotornet@0.02"]
        assert results[0].cells == (1, 0, 1)
        assert results[1].cells == (2, 0, 2)
        # The shared cell's value is identical in both merges.
        assert results[0].payload[0] == results[1].payload[0]

    def test_full_cache_hit_skips_all_cells(self, tmp_path):
        cache = ResultCache(tmp_path)
        Runner(cache=cache).run(names=["fig07"], overrides=TINY_FIG07)
        seen: list[Progress] = []
        warm = Runner(cache=cache, progress=seen.append).run(
            names=["fig07"], overrides=TINY_FIG07
        )[0]
        assert warm.cached is True
        assert seen == []


# --------------------------------------------------------------- resumption


class TestResumption:
    def _run(self, cache, progress=None):
        return Runner(cache=cache, progress=progress).run(
            names=["fig07"], overrides=TINY_FIG07
        )[0]

    def test_interrupted_sweep_resumes_from_completed_cells(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = self._run(cache)
        assert first.cells == (4, 0, 4)

        # Simulate a killed run: the merged document never landed, and a
        # strict subset of cell entries is gone.
        sc = get("fig07")
        params = sc.bind(TINY_FIG07)
        cache.path("fig07", params).unlink()
        plan = sc.shard_plan(**params)
        dropped = [plan[0], plan[3]]
        for cell in dropped:
            cache.cell_path("fig07", cell.key, cell.params).unlink()

        seen: list[Progress] = []
        second = self._run(cache, progress=seen.append)
        # Exactly the missing cells executed...
        executed = {p.label.split(":", 1)[1] for p in seen}
        assert executed == {cell.key for cell in dropped}
        assert second.cells == (2, 2, 4)
        # ...and the merged result is bit-identical to the uninterrupted run.
        assert second.payload == first.payload
        assert second.rows == first.rows
        assert second.value == first.value

    def test_dropping_all_cells_recomputes_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = self._run(cache)
        cache.clear("fig07")
        seen: list[Progress] = []
        second = self._run(cache, progress=seen.append)
        assert len(seen) == 4
        assert second.payload == first.payload

    def test_no_cache_mode_still_writes_cells(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = Runner(cache=cache, use_cache=False)
        runner.run(names=["fig07"], overrides=TINY_FIG07)
        sc = get("fig07")
        params = sc.bind(TINY_FIG07)
        for cell in sc.shard_plan(**params):
            assert cache.cell_path("fig07", cell.key, cell.params).is_file()


# ----------------------------------------------------------------- failures


def _shards_two(x: int = 1):
    return [
        Cell("ok", params={"variant": "ok", "x": x}),
        Cell("boom", params={"variant": "boom", "x": x}),
    ]


def _cell_two(variant: str, x: int) -> int:
    if variant == "boom":
        raise RuntimeError("cell exploded")
    return x * 2


def _merge_two(values, **_params):
    return values


def _shards_bad_value(x: int = 1):
    return [Cell("only", params={})]


def _cell_bad_value():
    return object()  # not portable -> cell-level execution error


class TestCellFailures:
    def test_cell_failure_carries_cell_context(self, scratch_registry, tmp_path):
        @scenario("twocell", title="one good one bad cell",
                  shards="_shards_two", cell="_cell_two", merge="_merge_two")
        def run(x: int = 1):
            return _merge_two([_cell_two(**c.params) for c in _shards_two(x)])

        cache = ResultCache(tmp_path)
        with pytest.raises(ScenarioExecutionError, match=r"twocell\[boom\]") as err:
            Runner(cache=cache).run(names=["twocell"])
        assert "cell exploded" in err.value.worker_traceback
        # The sibling cell's work survived the batch failure.
        assert cache.get_cell("twocell", "ok", {"variant": "ok", "x": 1})

    def test_unportable_cell_value_is_an_execution_error(self, scratch_registry):
        @scenario("badcell", title="cell value not portable",
                  shards="_shards_bad_value", cell="_cell_bad_value",
                  merge="_merge_two")
        def run(x: int = 1):
            return None

        with pytest.raises(ScenarioExecutionError, match="badcell"):
            Runner(cache=None).run(names=["badcell"])
