"""Tests for the rotor schedule (paper sections 3.1–3.3, Appendix B)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedule import OperaSchedule


@pytest.fixture(scope="module")
def small():
    """The paper's Figure 5 scale: 8 ToRs, 4 rotor switches."""
    return OperaSchedule(8, 4, seed=0)


@pytest.fixture(scope="module")
def medium():
    return OperaSchedule(24, 4, seed=1)


class TestShape:
    def test_matchings_per_switch(self, small):
        assert small.matchings_per_switch == 2

    def test_cycle_slices_default_group(self, small):
        # One global group: group_size = n_switches, cycle = n_racks slices.
        assert small.group_size == 4
        assert small.cycle_slices == 8

    def test_grouped_cycle_is_shorter(self):
        # u=6 in two groups of 3: two switches reconfigure at a time, and the
        # remaining four matchings per slice still form a connected union.
        grouped = OperaSchedule(24, 6, group_size=3, seed=0)
        assert grouped.n_groups == 2
        assert grouped.cycle_slices == 12

    def test_invalid_group_size(self):
        with pytest.raises(ValueError):
            OperaSchedule(8, 4, group_size=3)

    def test_racks_not_divisible(self):
        with pytest.raises(ValueError):
            OperaSchedule(10, 4)

    def test_no_switches(self):
        with pytest.raises(ValueError):
            OperaSchedule(8, 0)


class TestDownSwitches:
    def test_exactly_one_down_per_slice_default(self, small):
        for s in range(small.cycle_slices):
            assert len(small.down_switches(s)) == 1

    def test_one_down_per_group(self):
        sched = OperaSchedule(24, 6, group_size=3, seed=0)
        for s in range(sched.cycle_slices):
            down = sched.down_switches(s)
            assert len(down) == 2  # one per group
            # one member of each group: groups are {0,1,2} and {3,4,5}
            assert len({w // 3 for w in down}) == 2

    def test_every_switch_reconfigures_each_round(self, small):
        # Over group_size consecutive slices, each switch is down exactly once.
        for start in range(small.cycle_slices):
            downs = [
                w
                for s in range(start, start + small.group_size)
                for w in small.down_switches(s)
            ]
            assert sorted(downs) == list(range(small.n_switches))


class TestMatchingRotation:
    def test_holding_period(self, small):
        """A switch holds each matching for group_size slices."""
        for w in range(small.n_switches):
            indices = [
                small.matching_index_of(w, s) for s in range(small.cycle_slices)
            ]
            for idx in range(small.matchings_per_switch):
                assert indices.count(idx) == small.group_size

    def test_all_matchings_shown_each_cycle(self, medium):
        for w in range(medium.n_switches):
            shown = {
                medium.matching_index_of(w, s)
                for s in range(medium.cycle_slices)
            }
            assert shown == set(range(medium.matchings_per_switch))

    def test_cycle_wraps(self, small):
        for w in range(small.n_switches):
            assert small.matching_of(w, 0) == small.matching_of(
                w, small.cycle_slices
            )

    def test_advance_happens_at_down_slice_boundary(self, small):
        """A switch shows a new matching right after its down slice."""
        for w in range(small.n_switches):
            for s in range(small.cycle_slices - 1):
                before = small.matching_index_of(w, s)
                after = small.matching_index_of(w, s + 1)
                if small.is_down(w, s):
                    assert after == (before + 1) % small.matchings_per_switch
                else:
                    assert after == before


class TestConnectivity:
    def test_cycle_covers_all_pairs(self, small):
        small.verify_cycle_connectivity()

    def test_cycle_covers_all_pairs_medium(self, medium):
        medium.verify_cycle_connectivity()

    def test_direct_slices_count(self, medium):
        """Each pair is directly connected group_size - 1 slices per cycle."""
        for a, b in [(0, 5), (3, 17), (10, 11)]:
            assert len(medium.direct_slices(a, b)) == medium.group_size - 1

    def test_direct_slices_rejects_self(self, small):
        with pytest.raises(ValueError):
            small.direct_slices(3, 3)

    def test_direct_switch_matches_direct_slices(self, small):
        for s in small.direct_slices(0, 1):
            assert small.direct_switch(0, 1, s) is not None

    def test_wait_slices_zero_when_connected(self, small):
        s = small.direct_slices(2, 6)[0]
        assert small.wait_slices_for_direct(2, 6, s) == 0

    def test_wait_slices_bounded_by_cycle(self, small):
        for s in range(small.cycle_slices):
            wait = small.wait_slices_for_direct(0, 7, s)
            assert 0 <= wait < small.cycle_slices


class TestNeighbors:
    def test_neighbors_counts(self, small):
        """Up to u-1 up uplinks; identity assignments idle the port."""
        for s in range(small.cycle_slices):
            for rack in range(small.n_racks):
                neighbors = small.neighbors(rack, s)
                assert len(neighbors) <= small.n_switches - 1
                for peer, switch in neighbors:
                    assert peer != rack
                    assert not small.is_down(switch, s)

    def test_neighbors_symmetric(self, small):
        for s in range(small.cycle_slices):
            for rack in range(small.n_racks):
                for peer, switch in small.neighbors(rack, s):
                    back = small.neighbors(peer, s)
                    assert (rack, switch) in back

    def test_adjacency_matches_neighbors(self, small):
        for s in range(small.cycle_slices):
            adj = small.slice_adjacency(s)
            for rack in range(small.n_racks):
                assert sorted(adj[rack]) == sorted(
                    peer for peer, _ in small.neighbors(rack, s)
                )

    def test_include_down_adds_edges(self, small):
        s = 0
        with_down = sum(len(x) for x in small.slice_adjacency(s, include_down=True))
        without = sum(len(x) for x in small.slice_adjacency(s))
        assert with_down >= without


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        a = OperaSchedule(16, 4, seed=9)
        b = OperaSchedule(16, 4, seed=9)
        for s in range(a.cycle_slices):
            for w in range(4):
                assert a.matching_of(w, s) == b.matching_of(w, s)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_slice_functions_periodic(self, s):
        sched = OperaSchedule(8, 4, seed=3)
        base = s % sched.cycle_slices
        assert sched.down_switches(s) == sched.down_switches(base)
        for w in range(sched.n_switches):
            assert sched.matching_of(w, s) == sched.matching_of(w, base)


class TestTimingIntegration:
    def test_timing_from_schedule(self):
        sched = OperaSchedule(108, 6, seed=0)
        timing = sched.timing()
        assert timing.cycle_slices == sched.cycle_slices == 108
        assert timing.slice_ps == 100_000_000  # 100 us
        assert abs(timing.duty_cycle - 0.9833) < 1e-3
        assert abs(timing.cycle_ps / 1e9 - 10.8) < 1e-6  # ~10.7 ms in paper
