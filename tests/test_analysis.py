"""Tests for expansion, path-length and failure analyses (Figs 4, 11, 16-20)."""

import random

import pytest

from repro.analysis.expansion import (
    adjacency_matrix,
    expander_spectrum,
    opera_slice_spectra,
    ramanujan_gap,
    spectral_gap,
)
from repro.analysis.failures import (
    clos_failure_report,
    expander_failure_report,
    opera_failure_report,
    random_clos_link_failures,
    random_clos_switch_failures,
)
from repro.analysis.paths import (
    clos_path_lengths,
    expander_path_lengths,
    opera_path_lengths,
    sampled_average_path_length,
)
from repro.core.faults import FailureSet
from repro.core.schedule import OperaSchedule
from repro.topologies.expander import ExpanderTopology
from repro.topologies.folded_clos import FoldedClos


@pytest.fixture(scope="module")
def sched():
    return OperaSchedule(24, 6, seed=0)


@pytest.fixture(scope="module")
def expander():
    return ExpanderTopology(24, 5, 4, seed=0)


class TestExpansion:
    def test_ramanujan_gap(self):
        assert ramanujan_gap(5) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            ramanujan_gap(0.5)

    def test_slice_spectra_positive(self, sched):
        reports = opera_slice_spectra(sched, slices=range(4))
        assert len(reports) == 4
        for r in reports:
            assert r.spectral_gap > 0
            assert r.average_path_length >= 1.0
            assert r.worst_path_length >= 2

    def test_ramanujan_fraction_reasonable(self, sched):
        """App. D: Opera slices are close to optimal expanders."""
        for r in opera_slice_spectra(sched, slices=range(6)):
            assert 0.3 < r.ramanujan_fraction < 2.5

    def test_expander_spectrum(self, expander):
        report = expander_spectrum(expander)
        assert report.degree == pytest.approx(5.0)
        assert report.spectral_gap > 0

    def test_adjacency_matrix_symmetric(self, expander):
        mat = adjacency_matrix(expander.adjacency)
        assert (mat == mat.T).all()
        assert mat.sum() == 24 * 5

    def test_spectral_gap_of_complete_graph(self):
        # K_n has eigenvalues n-1 and -1: gap = (n-1) - (-1) = n.
        import numpy as np

        n = 8
        mat = np.ones((n, n)) - np.eye(n)
        assert spectral_gap(mat) == pytest.approx(n)


class TestPathLengths:
    def test_opera_distribution(self, sched):
        dist = opera_path_lengths(sched)
        assert dist.total == sched.cycle_slices * 24 * 23
        assert dist.fraction_at_most(dist.worst()) == pytest.approx(1.0)
        assert 1.0 < dist.average() < 4.0

    def test_cdf_monotone(self, sched):
        cdf = opera_path_lengths(sched).cdf()
        values = [v for _h, v in cdf]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(1.0)

    def test_expander_distribution(self, expander):
        dist = expander_path_lengths(expander)
        assert dist.total == 24 * 23
        assert dist.average() < 3.0

    def test_clos_distribution(self):
        clos = FoldedClos(8, 3)
        dist = clos_path_lengths(clos)
        assert set(dist.counts) == {2, 4}
        assert dist.average() > 3.0  # dominated by cross-pod traffic

    def test_figure4_ordering(self, sched, expander):
        """Figure 4: Opera ~ expander << folded Clos."""
        opera = opera_path_lengths(sched).average()
        exp = expander_path_lengths(expander).average()
        clos = clos_path_lengths(FoldedClos(8, 3)).average()
        assert opera < clos
        assert exp < clos

    def test_sampled_average_close_to_exact(self, sched):
        exact = opera_path_lengths(sched).average()
        sampled = sampled_average_path_length(
            sched, n_slices=sched.cycle_slices, n_sources=24
        )
        assert sampled == pytest.approx(exact, rel=0.02)


class TestOperaFailures:
    def test_no_failures_no_loss(self, sched):
        report = opera_failure_report(sched, FailureSet.none())
        assert report.worst_slice_loss == 0.0
        assert report.any_slice_loss == 0.0
        assert report.worst_path_length >= 2

    def test_loss_ordering(self, sched):
        report = opera_failure_report(
            sched,
            FailureSet.random_links(24, 6, 0.2, random.Random(0)),
        )
        assert report.any_slice_loss >= report.worst_slice_loss

    def test_failures_stretch_paths(self, sched):
        clean = opera_failure_report(sched, FailureSet.none())
        failed = opera_failure_report(
            sched,
            FailureSet.random_links(24, 6, 0.2, random.Random(1)),
        )
        assert failed.average_path_length >= clean.average_path_length

    def test_small_switch_failures_tolerated(self, sched):
        """Figure 11: Opera withstands 2/6 circuit switches w/o loss."""
        report = opera_failure_report(
            sched, FailureSet(switches=frozenset({0, 3}))
        )
        assert report.any_slice_loss == 0.0

    def test_many_switch_failures_disconnect(self, sched):
        report = opera_failure_report(
            sched, FailureSet(switches=frozenset({0, 1, 2, 3, 4}))
        )
        assert report.worst_slice_loss > 0.0

    def test_failed_racks_excluded(self, sched):
        report = opera_failure_report(
            sched, FailureSet(racks=frozenset({0, 1}))
        )
        # Pairs among the 22 live racks should mostly stay connected.
        assert report.any_slice_loss < 0.1


class TestStaticFailures:
    def test_expander_no_failures(self, expander):
        report = expander_failure_report(expander, FailureSet.none())
        assert report.any_slice_loss == 0.0

    def test_expander_with_rack_failures(self, expander):
        report = expander_failure_report(
            expander, FailureSet.random_racks(24, 0.2, random.Random(0))
        )
        assert 0.0 <= report.any_slice_loss < 0.5

    def test_clos_no_failures(self):
        clos = FoldedClos(8, 3)
        report = clos_failure_report(clos)
        assert report.any_slice_loss == 0.0
        assert report.average_path_length > 2.0

    def test_clos_link_failures_cause_loss(self):
        clos = FoldedClos(8, 3)
        rng = random.Random(0)
        report = clos_failure_report(
            clos, failed_links=random_clos_link_failures(clos, 0.4, rng)
        )
        assert report.any_slice_loss > 0.0

    def test_clos_switch_failures(self):
        clos = FoldedClos(8, 3)
        rng = random.Random(1)
        report = clos_failure_report(
            clos, failed_switches=random_clos_switch_failures(clos, 0.2, rng)
        )
        assert report.average_path_length >= 2.0

    def test_clos_fault_tolerance_weaker_than_expander(self, expander):
        """App. E: the 3:1 Clos loses connectivity before the expander."""
        rng_a, rng_b = random.Random(2), random.Random(2)
        clos = FoldedClos(8, 3)
        clos_report = clos_failure_report(
            clos, failed_links=random_clos_link_failures(clos, 0.3, rng_a)
        )
        exp_report = expander_failure_report(
            expander, FailureSet.random_links(24, 5, 0.3, rng_b)
        )
        assert clos_report.any_slice_loss >= exp_report.any_slice_loss
