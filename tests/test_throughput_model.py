"""Tests for the flow-level throughput models (Figures 10, 12, 15)."""

import random

import numpy as np
import pytest

from repro.analysis.throughput import (
    RotorFluidModel,
    clos_throughput,
    expander_link_loads,
    expander_throughput,
    opera_throughput,
)
from repro.topologies.expander import ExpanderTopology
from repro.workloads.patterns import (
    all_to_all_matrix,
    hot_rack_matrix,
    permutation_matrix,
    skew_matrix,
)


@pytest.fixture(scope="module")
def paper_expander():
    return ExpanderTopology(130, 7, 5, seed=0)


class TestClosModel:
    def test_pattern_independent(self):
        """Paper: Clos throughput is independent of traffic pattern."""
        values = set()
        for demand in (
            all_to_all_matrix(72, 9),
            permutation_matrix(72, 9, random.Random(0)),
            hot_rack_matrix(72, 9),
            skew_matrix(72, 9, 0.2, random.Random(1)),
        ):
            values.add(round(clos_throughput(demand, 3.0, 9), 6))
        assert len(values) == 1
        assert values.pop() == pytest.approx(1 / 3)

    def test_scales_with_oversubscription(self):
        demand = all_to_all_matrix(72, 9)
        assert clos_throughput(demand, 2.0, 9) == pytest.approx(0.5)
        assert clos_throughput(demand, 4.0, 9) == pytest.approx(0.25)

    def test_zero_demand_full_throughput(self):
        assert clos_throughput(np.zeros((4, 4)), 3.0, 9) == 1.0

    def test_invalid_f(self):
        with pytest.raises(ValueError):
            clos_throughput(np.zeros((4, 4)), 0.5, 9)


class TestExpanderModel:
    def test_link_loads_conserve_demand_hops(self, paper_expander):
        demand = hot_rack_matrix(130, 5, 0, 1)
        neighbor = [
            sorted({p for p, _w in edges}) for edges in paper_expander.adjacency
        ]
        loads = expander_link_loads(neighbor, demand)
        dist = paper_expander.routes.dist[0][1]
        assert sum(loads.values()) == pytest.approx(5.0 * dist)

    def test_uniform_traffic_throughput(self, paper_expander):
        theta = expander_throughput(paper_expander, all_to_all_matrix(130, 5))
        # Ideal bound u/(d * Lavg) ~ 0.52; shortest-path ECMP is below it.
        assert 0.15 < theta <= 0.55

    def test_less_skew_less_throughput(self, paper_expander):
        """Paper: expander throughput drops as traffic becomes uniform."""
        hot = np.mean(
            [
                expander_throughput(
                    paper_expander, hot_rack_matrix(130, 5, a, b)
                )
                for a, b in [(0, 1), (10, 90), (40, 77), (5, 121)]
            ]
        )
        perm = expander_throughput(
            paper_expander, permutation_matrix(130, 5, random.Random(0))
        )
        assert hot > perm

    def test_zero_demand(self, paper_expander):
        assert expander_throughput(paper_expander, np.zeros((130, 130))) == 1.0


class TestRotorFluidModel:
    def test_rack_capacity(self):
        model = RotorFluidModel(108, 6, duty_cycle=0.983)
        assert model.rack_capacity == pytest.approx(5 * 0.983)

    def test_all_to_all_near_full(self):
        """Shuffle rides direct paths: throughput ~ (u-1)/u * duty (§5.2)."""
        theta = opera_throughput(all_to_all_matrix(108, 6), 108, 6)
        assert 0.75 < theta < 0.85

    def test_hot_rack_vlb(self):
        theta = opera_throughput(hot_rack_matrix(108, 6), 108, 6)
        assert 0.75 < theta < 0.85

    def test_skew_between(self):
        hot = opera_throughput(hot_rack_matrix(108, 6), 108, 6)
        skew = opera_throughput(skew_matrix(108, 6, 0.2, random.Random(1)), 108, 6)
        perm = opera_throughput(
            permutation_matrix(108, 6, random.Random(2)), 108, 6
        )
        # Paper: Opera dips with decreasing skew, then recovers for uniform.
        assert perm < skew < hot

    def test_low_latency_load_reduces_bulk(self):
        demand = all_to_all_matrix(108, 6)
        free = opera_throughput(demand, 108, 6, hosts_per_rack=6)
        loaded = opera_throughput(
            demand, 108, 6, low_latency_load=0.10, hosts_per_rack=6
        )
        assert loaded < free

    def test_infeasible_background_gives_zero(self):
        demand = all_to_all_matrix(108, 6)
        theta = opera_throughput(
            demand, 108, 6, low_latency_load=0.9, hosts_per_rack=6
        )
        assert theta == 0.0

    def test_zero_demand(self):
        assert opera_throughput(np.zeros((108, 108)), 108, 6) == 1.0

    def test_rotornet_mode_has_more_uplinks(self):
        """Lockstep RotorNet uses all u uplinks but has no expander paths."""
        demand = all_to_all_matrix(108, 6)
        opera = RotorFluidModel(108, 6, duty_cycle=0.983)
        rotornet = RotorFluidModel(
            108,
            6,
            duty_cycle=0.9,
            up_fraction=1.0,
            direct_fraction=6 / 108,
        )
        assert rotornet.throughput(demand) >= opera.throughput(demand)
