"""Smoke tests for the per-figure experiment modules (tiny configurations).

The benchmarks run the paper-scale versions; these tests exercise the same
code paths quickly so a broken experiment fails in the unit suite, not just
in a long benchmark run.
"""

import pytest

from repro.experiments import (
    fctsim,
    fig01_distributions,
    fig04_path_lengths,
    fig06_timing,
    fig08_shuffle,
    fig10_mixed,
    fig11_faults,
    fig12_cost_sensitivity,
    fig13_prototype,
    fig14_cycle_scaling,
    fig16_path_scaling,
    fig17_spectral,
    fig18_failure_paths,
    table1_state,
    table2_costs,
)
from repro.workloads.distributions import WEBSEARCH


class TestCheapExperiments:
    def test_fig01(self):
        data = fig01_distributions.run()
        assert set(data) == {"datamining", "websearch", "hadoop"}
        assert fig01_distributions.format_rows(data)

    def test_fig06(self):
        data = fig06_timing.run()
        assert data["cycle_slices"] == 108
        assert fig06_timing.format_rows(data)

    def test_fig14(self):
        rows = fig14_cycle_scaling.run((12, 24))
        assert rows[0]["relative_cycle_no_groups"] == 1.0
        assert fig14_cycle_scaling.format_rows(rows)

    def test_table1(self):
        rows = table1_state.run()
        assert len(rows) == 6
        assert table1_state.format_rows(rows)

    def test_table2(self):
        data = table2_costs.run()
        assert data["opera_port_usd"] > data["static_port_usd"]
        assert table2_costs.format_rows(data)


class TestGraphExperiments:
    def test_fig04_small(self):
        data = fig04_path_lengths.run(k=12, n_racks=24, n_slices=4)
        assert data["opera"].average() < data["clos"].average()
        assert fig04_path_lengths.format_rows(data)

    def test_fig11_small(self):
        data = fig11_faults.run(n_racks=24, n_switches=6, fractions=(0.1, 0.4), slice_stride=6)
        assert set(data) == {"links", "racks", "switches"}
        assert fig11_faults.format_rows(data)

    def test_fig16_small(self):
        rows = fig16_path_scaling.run(radices=(12,), alphas=(1.4,), n_slices=2, n_sources=16)
        assert rows[0]["opera"] > 1.0
        assert fig16_path_scaling.format_rows(rows)

    def test_fig17_small(self):
        data = fig17_spectral.run(n_racks=24, n_switches=6, n_hosts=144, slice_stride=6)
        assert data["opera"] and data["static"]
        assert fig17_spectral.format_rows(data)

    def test_fig18_small(self):
        data = fig18_failure_paths.run_opera(
            n_racks=24, n_switches=6, fractions=(0.1,), slice_stride=6
        )
        assert data["links"][0][1].average_path_length > 1.0
        assert fig18_failure_paths.format_rows(data)

    def test_fig19_small(self):
        data = fig18_failure_paths.run_clos(k=8, fractions=(0.1,))
        assert data["links"] and data["switches"]

    def test_fig20_small(self):
        data = fig18_failure_paths.run_expander(
            n_racks=24, uplinks=5, hosts_per_rack=3, fractions=(0.1,)
        )
        assert data["links"] and data["racks"]


class TestThroughputExperiments:
    def test_fig08_small(self):
        data = fig08_shuffle.run(k=12, n_racks=24, bytes_per_host_pair=20_000)
        assert data["opera"].all_complete
        rows = fig08_shuffle.format_rows(data)
        assert len(rows) == 4

    def test_fig10_small(self):
        data = fig10_mixed.run(k=12, n_racks=24, ws_loads=(0.01, 0.10))
        assert data["opera"][0][1] > data["clos"][0][1]
        assert fig10_mixed.format_rows(data)

    def test_fig12_small(self):
        data = fig12_cost_sensitivity.run(
            k=12, alphas=(1.3,), patterns=("hotrack", "all_to_all"), hotrack_trials=2
        )
        assert data["all_to_all"]["opera"][0][1] > data["all_to_all"]["clos"][0][1]
        assert fig12_cost_sensitivity.format_rows(data)


class TestPacketExperiments:
    def test_build_all_network_kinds(self):
        for kind in ("opera", "expander", "clos", "rotornet", "rotornet-hybrid"):
            net = fctsim.build_network(kind)
            assert net.hosts

    def test_build_unknown_kind(self):
        with pytest.raises(ValueError):
            fctsim.build_network("token-ring")

    def test_fct_experiment_smoke(self):
        result = fctsim.run_fct_experiment(
            "opera", WEBSEARCH, load=0.05, duration_ms=1.0, drain_ms=5.0
        )
        assert result.network == "opera"
        assert result.completed <= result.n_flows
        assert fctsim.format_rows([result])

    def test_fig13_tiny(self):
        data = fig13_prototype.run(n_pings=6, with_bulk_pairs=4, bulk_bytes=100_000)
        assert len(data["idle"]) >= 4
        assert fig13_prototype.format_rows(data)
