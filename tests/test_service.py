"""Long-lived coordinator service: auth handshake, job queue, drain.

The load-bearing guarantees:

* the HMAC challenge/response rejects wrong secrets, replayed macs and
  protocol-v1 peers, and an unauthenticated connection gets exactly one
  error frame before disconnect — without perturbing running jobs;
* two sweeps submitted concurrently to one service share the worker
  fleet and each comes back bitwise identical to an in-process run;
* drain (coordinator and worker) is orderly: no new admissions, held
  work finishes, the serve loop exits, workers leave with ``bye``;
* frames are hard-bounded by ``MAX_FRAME_BYTES`` in both directions.
"""

from __future__ import annotations

import contextlib
import os
import signal
import socket
import struct
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.distrib import (
    AuthError,
    Coordinator,
    ProtocolTimeout,
    ServiceError,
    cancel_job,
    fetch_jobs,
)
from repro.distrib.auth import compute_mac, load_secret
from repro.distrib.jobs import JobQueue
from repro.distrib.protocol import (
    MAX_FRAME_BYTES,
    PROTO_VERSION,
    ProtocolError,
    fetch_status,
    recv_msg,
    send_msg,
)
from repro.scenarios import Runner

SRC_ROOT = str(Path(__file__).resolve().parents[1] / "src")
SECRET = b"test-shared-secret"


def _worker_env(**extra: str) -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_ROOT + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.update(extra)
    return env


def _spawn_worker(port: int, **extra_env: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro.distrib.worker", f"127.0.0.1:{port}"],
        env=_worker_env(**extra_env),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _reap(*procs: subprocess.Popen) -> None:
    for p in procs:
        if p.poll() is None:
            p.terminate()
    for p in procs:
        try:
            p.wait(timeout=10)
        except subprocess.TimeoutExpired:
            p.kill()


@contextlib.contextmanager
def _service(**kwargs):
    """A serve_forever Coordinator on a background thread.

    Exits by drain: the context manager drains on the way out and joins
    the loop, so a hung serve loop fails the test instead of leaking.
    """
    coord = Coordinator(**kwargs)
    thread = threading.Thread(target=coord.serve_forever, daemon=True)
    thread.start()
    try:
        yield coord
    finally:
        coord.drain()
        thread.join(timeout=30)
        coord.close()
        assert not thread.is_alive(), "serve loop failed to drain"


def _dial(port: int) -> socket.socket:
    sock = socket.create_connection(("127.0.0.1", port), timeout=10)
    sock.settimeout(10)
    return sock


def _hello(role: str = "client") -> dict:
    msg = {"type": "hello", "proto": PROTO_VERSION, "role": role}
    if role == "worker":
        msg["worker"] = "t"
        msg["pid"] = 0
    return msg


# --------------------------------------------------------------------- auth


class TestAuthHandshake:
    def test_correct_secret_is_welcomed(self):
        with _service(secret=SECRET) as coord:
            sock = _dial(coord.address[1])
            try:
                send_msg(sock, _hello())
                challenge = recv_msg(sock)
                assert challenge["type"] == "challenge"
                mac = compute_mac(SECRET, challenge["nonce"], "client")
                send_msg(sock, {"type": "auth", "mac": mac})
                assert recv_msg(sock)["type"] == "welcome"
            finally:
                sock.close()

    def test_wrong_secret_is_refused_and_disconnected(self):
        with _service(secret=SECRET) as coord:
            sock = _dial(coord.address[1])
            try:
                send_msg(sock, _hello())
                challenge = recv_msg(sock)
                mac = compute_mac(b"wrong-secret", challenge["nonce"], "client")
                send_msg(sock, {"type": "auth", "mac": mac})
                reply = recv_msg(sock)
                assert reply["type"] == "error"
                assert recv_msg(sock) is None  # disconnected
            finally:
                sock.close()

    def test_replayed_mac_fails_against_fresh_nonce(self):
        with _service(secret=SECRET) as coord:
            sock = _dial(coord.address[1])
            try:
                send_msg(sock, _hello())
                first = recv_msg(sock)
                replayed = compute_mac(SECRET, first["nonce"], "client")
            finally:
                sock.close()
            # A second connection gets a *fresh* nonce, so the captured
            # mac (a wire-level replay) no longer verifies.
            sock = _dial(coord.address[1])
            try:
                send_msg(sock, _hello())
                second = recv_msg(sock)
                assert second["nonce"] != first["nonce"]
                send_msg(sock, {"type": "auth", "mac": replayed})
                assert recv_msg(sock)["type"] == "error"
                assert recv_msg(sock) is None
            finally:
                sock.close()

    def test_role_binding_rejects_worker_mac_for_client(self):
        # The role is folded into the mac, so a captured worker
        # credential cannot be replayed to open a client session.
        with _service(secret=SECRET) as coord:
            sock = _dial(coord.address[1])
            try:
                send_msg(sock, _hello("client"))
                challenge = recv_msg(sock)
                mac = compute_mac(SECRET, challenge["nonce"], "worker")
                send_msg(sock, {"type": "auth", "mac": mac})
                assert recv_msg(sock)["type"] == "error"
            finally:
                sock.close()

    def test_v1_peer_refused_when_secret_armed(self):
        with _service(secret=SECRET) as coord:
            sock = _dial(coord.address[1])
            try:
                send_msg(sock, {"type": "hello", "worker": "old", "pid": 0})
                reply = recv_msg(sock)
                assert reply["type"] == "error"
                assert "v1" in reply["error"]
                assert recv_msg(sock) is None
            finally:
                sock.close()

    def test_too_new_proto_refused(self):
        with _service(secret=SECRET) as coord:
            sock = _dial(coord.address[1])
            try:
                send_msg(sock, {"type": "hello", "proto": 99, "role": "client"})
                reply = recv_msg(sock)
                assert reply["type"] == "error"
                assert "proto" in reply["error"]
            finally:
                sock.close()

    def test_unauthenticated_status_poll_gets_one_error_then_eof(self):
        with _service(secret=SECRET) as coord:
            sock = _dial(coord.address[1])
            try:
                send_msg(sock, {"type": "status"})
                reply = recv_msg(sock)
                assert reply["type"] == "error"
                assert recv_msg(sock) is None
            finally:
                sock.close()

    def test_fetch_status_with_secret_succeeds(self):
        with _service(secret=SECRET) as coord:
            status = fetch_status(coord.address, secret=SECRET)
            assert status["auth"] is True
            assert status["jobs"] == []

    def test_fetch_jobs_with_wrong_secret_raises_autherror(self):
        with _service(secret=SECRET) as coord:
            with pytest.raises(AuthError):
                fetch_jobs(coord.address, secret=b"nope")

    def test_rejected_peer_does_not_perturb_running_jobs(self):
        with _service(secret=SECRET) as coord:
            jid = coord._queue.submit(
                [{"uid": 0, "kind": "scenario", "name": "fig06",
                  "cell_key": None, "params": {}}],
                label="probe",
            ).jid
            with pytest.raises(AuthError):
                fetch_jobs(coord.address, secret=b"nope")
            deadline = time.monotonic() + 10
            table = fetch_jobs(coord.address, secret=SECRET)
            assert [j["job"] for j in table["jobs"]] == [jid]
            assert table["jobs"][0]["state"] in ("queued", "running")
            coord._queue.cancel(jid)  # let drain converge

    def test_load_secret_file_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SECRET", "from-env")
        path = tmp_path / "s.key"
        path.write_text("from-file\n")
        assert load_secret(path) == b"from-file"
        assert load_secret(None) == b"from-env"
        monkeypatch.delenv("REPRO_SECRET")
        assert load_secret(None) is None
        (tmp_path / "empty.key").write_text("\n")
        with pytest.raises(AuthError):
            load_secret(tmp_path / "empty.key")


# ------------------------------------------------------------- frame bounds


class TestFrameBounds:
    def test_oversized_inbound_frame_is_a_protocol_error(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            a.sendall(b"x" * 64)
            with pytest.raises(ProtocolError, match="exceeds"):
                recv_msg(b)
        finally:
            a.close()
            b.close()

    def test_large_legal_frame_roundtrips_chunked(self):
        # Several MB forces the chunked _recv_exactly path (one recv
        # never returns this much); content must survive byte-for-byte.
        big = {"type": "result", "blob": "x" * (3 << 20)}
        a, b = socket.socketpair()
        try:
            t = threading.Thread(target=send_msg, args=(a, big), daemon=True)
            t.start()
            assert recv_msg(b) == big
            t.join(timeout=10)
        finally:
            a.close()
            b.close()

    def test_coordinator_drops_oversized_frame_sender(self):
        with _service() as coord:
            sock = _dial(coord.address[1])
            try:
                sock.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1) + b"junk")
                assert recv_msg(sock) is None  # dropped, no reply
            finally:
                sock.close()

    def test_fetch_status_times_out_with_named_error(self):
        listener = socket.create_server(("127.0.0.1", 0))
        try:
            # Accepts but never answers: the client must fail fast with
            # the named timeout error, not hang.
            with pytest.raises(ProtocolTimeout):
                fetch_status(listener.getsockname()[:2], timeout=0.3)
        finally:
            listener.close()


# ---------------------------------------------------------------- job queue


def _payloads(n: int, name: str = "fig06") -> list[dict]:
    return [
        {"uid": i, "kind": "scenario", "name": name, "cell_key": None,
         "params": {}}
        for i in range(n)
    ]


class TestJobQueue:
    def test_fair_share_alternates_jobs(self):
        q = JobQueue()
        a = q.submit(_payloads(3), label="a")
        b = q.submit(_payloads(3), label="b")
        order = []
        while True:
            lease = q.next_lease()
            if lease is None:
                break
            gid, job, _payload = lease
            order.append(job.jid)
        assert order == [a.jid, b.jid] * 3

    def test_within_job_order_is_submission_order(self):
        q = JobQueue()
        q.submit(_payloads(4))
        uids = []
        while True:
            lease = q.next_lease()
            if lease is None:
                break
            uids.append(lease[2]["uid"])
        assert uids == [0, 1, 2, 3]

    def test_token_dedup_returns_same_job(self):
        q = JobQueue()
        a = q.submit(_payloads(2), token="tok")
        b = q.submit(_payloads(2), token="tok")
        assert a is b
        assert q.pending_total() == 2

    def test_draining_refuses_new_jobs(self):
        q = JobQueue()
        q.draining = True
        with pytest.raises(ServiceError, match="draining"):
            q.submit(_payloads(1))

    def test_full_queue_refuses(self):
        q = JobQueue(max_active=1)
        q.submit(_payloads(1))
        with pytest.raises(ServiceError, match="full"):
            q.submit(_payloads(1))

    def test_duplicate_uids_refused(self):
        q = JobQueue()
        bad = _payloads(2)
        bad[1]["uid"] = 0
        with pytest.raises(ServiceError, match="distinct"):
            q.submit(bad)

    def test_cancel_clears_pending_keeps_completed(self):
        q = JobQueue()
        job = q.submit(_payloads(3))
        gid, _job, payload = q.next_lease()
        assert q.cancel(job.jid) is job
        # The in-flight lease runs to completion and is retained.
        q.complete(gid, {"uid": payload["uid"], "rows": []}, "w")
        assert job.cancelled and job.finished
        assert list(job.completed) == [payload["uid"]]
        assert q.idle

    def test_late_result_after_requeue_wins_once(self):
        q = JobQueue()
        job = q.submit(_payloads(1))
        gid, _job, payload = q.next_lease()
        q.requeue(gid)  # "dead" worker's lease goes back
        # The not-so-dead worker's result lands before the re-lease: it
        # completes the unit, and the re-leased copy must not run again.
        assert q.complete(gid, {"uid": 0, "rows": []}, "w") is not None
        assert q.next_lease() is None
        assert job.finished


# ------------------------------------------------------- service end-to-end


class TestServiceEndToEnd:
    def test_two_concurrent_jobs_share_one_fleet_bitwise(self):
        """Acceptance: two sweeps through one authenticated service come
        back bitwise identical to in-process runs of the same grids."""
        # status snapshots are cached for status_refresh_s; refresh fast
        # so the post-run poll sees the finished job table.
        with _service(secret=SECRET, status_refresh_s=0.05) as coord:
            workers = [
                _spawn_worker(
                    coord.address[1], REPRO_SECRET=SECRET.decode()
                )
                for _ in range(2)
            ]
            results: dict[str, object] = {}
            errors: list[BaseException] = []

            def _submit(name: str) -> None:
                try:
                    runner = Runner(
                        cache=None,
                        executor="service",
                        service=("127.0.0.1", coord.address[1]),
                        secret=SECRET,
                    )
                    results[name] = runner.run(names=[name])[0]
                except BaseException as exc:  # surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=_submit, args=(name,))
                for name in ("fig06", "table1")
            ]
            try:
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=120)
            finally:
                _reap(*workers)
            assert not errors, errors
            status = fetch_status(coord.address, secret=SECRET)
        assert {j["source"] for j in status["jobs"]} == {"remote"}
        assert len(status["jobs"]) == 2
        assert all(j["state"] == "done" for j in status["jobs"])
        for name in ("fig06", "table1"):
            local = Runner(cache=None).run(names=[name])[0]
            assert results[name].rows == local.rows
            assert results[name].payload == local.payload

    def test_worker_sigterm_drains_cleanly(self):
        with _service(secret=SECRET) as coord:
            worker = _spawn_worker(
                coord.address[1], REPRO_SECRET=SECRET.decode()
            )
            try:
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    if fetch_status(coord.address, secret=SECRET)["workers"]:
                        break
                    time.sleep(0.1)
                else:
                    pytest.fail("worker never connected")
                worker.send_signal(signal.SIGTERM)
                assert worker.wait(timeout=30) == 0
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    status = fetch_status(coord.address, secret=SECRET)
                    if status["workers_drained"] == 1:
                        break
                    time.sleep(0.1)
                assert status["workers_drained"] == 1
                assert status["workers"] == []
            finally:
                _reap(worker)

    def test_drain_refuses_new_submissions_and_exits(self):
        coord = Coordinator()
        thread = threading.Thread(target=coord.serve_forever, daemon=True)
        thread.start()
        try:
            reply = cancel_job(coord.address, drain=True)
            assert reply.get("draining") is True
            with pytest.raises((ServiceError, OSError, ProtocolError)):
                # Either the refusal lands ("draining") or the loop has
                # already exited and the dial fails — both are drained.
                from repro.distrib.jobs import ServiceClient

                ServiceClient(coord.address).submit(_payloads(1))
            thread.join(timeout=30)
            assert not thread.is_alive()
        finally:
            coord.close()
            thread.join(timeout=10)

    def test_wrong_secret_worker_is_refused_with_auth_exit(self):
        from repro.distrib.worker import AUTH_EXIT

        with _service(secret=SECRET) as coord:
            worker = _spawn_worker(coord.address[1], REPRO_SECRET="wrong")
            try:
                assert worker.wait(timeout=30) == AUTH_EXIT
            finally:
                _reap(worker)
            # The refused peer never registered as a worker.
            status = fetch_status(coord.address, secret=SECRET)
            assert status["workers_seen"] == 0

    def test_embedded_worker_restores_sigterm_disposition(self):
        # serve() installs a drain hook on the main thread; an embedding
        # process (like this test runner) must get its previous SIGTERM
        # disposition back, or forked children (multiprocessing pool
        # workers) inherit the hook and shrug off Pool.terminate().
        from repro import cli

        before = signal.getsignal(signal.SIGTERM)
        rc = cli.main(["worker", "127.0.0.1:1", "--connect-timeout", "0.1"])
        assert rc == 1
        assert signal.getsignal(signal.SIGTERM) == before
