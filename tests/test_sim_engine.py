"""Tests for the event engine, port model and packet primitives."""

import pytest

from repro.net.link import Port
from repro.net.packet import (
    HEADER_BYTES,
    MTU_BYTES,
    Packet,
    PacketKind,
    Priority,
)
from repro.net.sim import Simulator


def make_packet(seq=0, size=MTU_BYTES, priority=Priority.LOW_LATENCY, kind=PacketKind.DATA):
    return Packet(
        flow_id=1,
        kind=kind,
        src_host=0,
        dst_host=1,
        seq=seq,
        size_bytes=size,
        priority=priority,
    )


class Collector:
    def __init__(self):
        self.packets = []
        self.times = []

    def receive(self, packet):
        self.packets.append(packet)


class TestSimulator:
    def test_events_in_time_order(self):
        sim = Simulator()
        seen = []
        sim.at(50, seen.append, "b")
        sim.at(10, seen.append, "a")
        sim.at(90, seen.append, "c")
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_ties_fifo(self):
        sim = Simulator()
        seen = []
        for tag in "xyz":
            sim.at(5, seen.append, tag)
        sim.run()
        assert seen == ["x", "y", "z"]

    def test_until_inclusive(self):
        sim = Simulator()
        seen = []
        sim.at(10, seen.append, 1)
        sim.at(11, seen.append, 2)
        sim.run(until_ps=10)
        assert seen == [1]
        assert sim.pending == 1

    def test_no_past_scheduling(self):
        sim = Simulator()
        sim.at(10, lambda: sim.at(5, lambda: None))
        with pytest.raises(ValueError):
            sim.run()

    def test_after_relative(self):
        sim = Simulator()
        out = []
        sim.at(10, lambda: sim.after(7, lambda: out.append(sim.now)))
        sim.run()
        assert out == [17]

    def test_advances_to_horizon_when_idle(self):
        sim = Simulator()
        sim.run(until_ps=123)
        assert sim.now == 123

    def test_max_events_leaves_now_behind_horizon(self):
        # Contract: when the event budget (not the horizon) stops the run,
        # the clock stays at the last processed event — the runner cannot
        # claim the rest of the interval was quiet.
        sim = Simulator()
        for t in (10, 20, 30):
            sim.at(t, lambda: None)
        processed = sim.run(until_ps=100, max_events=2)
        assert processed == 2
        assert sim.now == 20  # behind the horizon by design
        assert sim.pending == 1
        # A later chunked call resumes cleanly and then idles to the horizon.
        processed = sim.run(until_ps=100, max_events=10)
        assert processed == 1
        assert sim.now == 100
        assert sim.events_processed == 3

    def test_max_events_exhausted_on_last_event_does_not_advance(self):
        # Boundary: the budget runs out exactly as the heap empties; the
        # clock still must not jump to the horizon (the run can't know the
        # heap is quiet without budget left to look).
        sim = Simulator()
        sim.at(10, lambda: None)
        sim.at(20, lambda: None)
        assert sim.run(until_ps=500, max_events=2) == 2
        assert sim.now == 20
        # With budget to spare the same drain idles forward as usual.
        assert sim.run(until_ps=500, max_events=5) == 0
        assert sim.now == 500

    def test_horizon_wins_over_max_events(self):
        # Events beyond the horizon don't count against the budget and the
        # idle-advance still applies when the horizon (not the budget)
        # bounds the run.
        sim = Simulator()
        sim.at(10, lambda: None)
        sim.at(900, lambda: None)
        assert sim.run(until_ps=100, max_events=5) == 1
        assert sim.now == 100
        assert sim.pending == 1

    def test_scheduling_into_skipped_interval_is_rejected(self):
        # Companion to the idle-advance: once the clock reached the horizon,
        # the skipped interval is really in the past.
        sim = Simulator()
        sim.run(until_ps=50)
        with pytest.raises(ValueError):
            sim.at(25, lambda: None)


class TestPort:
    def _port(self, sim, sink, **kwargs):
        return Port(
            sim,
            "test",
            resolver=lambda _p, _n: sink,
            rate_bps=10_000_000_000,
            propagation_ps=500_000,
            **kwargs,
        )

    def test_serialization_exact(self):
        sim = Simulator()
        sink = Collector()
        port = self._port(sim, sink)
        assert port.serialization_ps(1500) == 1_200_000
        port.enqueue(make_packet())
        sim.run()
        # one serialization + one propagation
        assert sim.now == 1_200_000 + 500_000
        assert len(sink.packets) == 1

    def test_back_to_back_serialization(self):
        sim = Simulator()
        sink = Collector()
        port = self._port(sim, sink)
        port.enqueue(make_packet(0))
        port.enqueue(make_packet(1))
        sim.run()
        assert sim.now == 2 * 1_200_000 + 500_000

    def test_control_priority_preempts_data(self):
        sim = Simulator()
        sink = Collector()
        port = self._port(sim, sink)
        port.enqueue(make_packet(0))  # starts transmitting
        port.enqueue(make_packet(1))  # queued data
        port.enqueue(
            make_packet(2, size=HEADER_BYTES, priority=Priority.CONTROL, kind=PacketKind.ACK)
        )
        sim.run()
        order = [p.seq for p in sink.packets]
        assert order == [0, 2, 1]  # control jumps the data queue

    def test_trimming_on_full_data_queue(self):
        sim = Simulator()
        sink = Collector()
        # Queue limit of 2 full packets; 1 transmitting + 2 queued + overflow.
        port = self._port(sim, sink, data_queue_bytes=2 * MTU_BYTES)
        for seq in range(5):
            port.enqueue(make_packet(seq))
        sim.run()
        kinds = {p.seq: p.kind for p in sink.packets}
        assert port.stats.trimmed == 2
        trimmed = [s for s, k in kinds.items() if k is PacketKind.HEADER]
        assert len(trimmed) == 2
        # Trimmed headers arrive *before* the queued full packets.
        arrival_order = [p.seq for p in sink.packets]
        assert set(arrival_order) == {0, 1, 2, 3, 4}

    def test_drop_tail_without_trimming(self):
        sim = Simulator()
        sink = Collector()
        port = self._port(sim, sink, data_queue_bytes=2 * MTU_BYTES, trimming=False)
        results = [port.enqueue(make_packet(seq)) for seq in range(5)]
        sim.run()
        assert results.count(False) == 2
        assert len(sink.packets) == 3

    def test_control_queue_overflow_drops(self):
        sim = Simulator()
        sink = Collector()
        port = self._port(sim, sink, control_queue_bytes=2 * HEADER_BYTES)
        ok = [
            port.enqueue(
                make_packet(s, size=HEADER_BYTES, priority=Priority.CONTROL, kind=PacketKind.ACK)
            )
            for s in range(5)
        ]
        sim.run()
        assert ok.count(False) > 0
        assert port.stats.dropped_control > 0

    def test_bulk_drop_callback(self):
        sim = Simulator()
        sink = Collector()
        dropped = []
        port = self._port(
            sim, sink, bulk_queue_bytes=MTU_BYTES, on_bulk_drop=dropped.append
        )
        for seq in range(4):
            port.enqueue(make_packet(seq, priority=Priority.BULK))
        sim.run()
        assert dropped and all(p.priority is Priority.BULK for p in dropped)

    def test_undeliverable_handler(self):
        sim = Simulator()
        lost = []
        port = Port(
            sim,
            "dark",
            resolver=lambda _p, _n: None,
            on_undeliverable=lost.append,
        )
        port.enqueue(make_packet())
        sim.run()
        assert len(lost) == 1
        assert port.stats.undeliverable == 1


class TestPacket:
    def test_trim(self):
        pkt = make_packet()
        pkt.trim()
        assert pkt.kind is PacketKind.HEADER
        assert pkt.size_bytes == HEADER_BYTES
        assert pkt.priority is Priority.CONTROL

    def test_trim_only_data(self):
        pkt = make_packet(kind=PacketKind.ACK, priority=Priority.CONTROL, size=64)
        with pytest.raises(ValueError):
            pkt.trim()
