#!/usr/bin/env python3
"""A realistic datacenter mix: Datamining flows over Opera (Figure 7's setup).

Drives a reduced-scale Opera network with Poisson arrivals from the
Microsoft Datamining distribution. Flows below the deployment's
amortization threshold ride multi-hop expander paths immediately; larger
flows buffer for direct circuits. Prints the per-size-bucket flow
completion times and the effective bandwidth-tax split.

Run:  python examples/datacenter_mix.py
"""

from repro.core.topology import OperaNetwork
from repro.experiments.fctsim import SIZE_BUCKETS
from repro.net import OperaSimNetwork
from repro.workloads import DATAMINING, PoissonArrivals

MS = 1_000_000_000


def main() -> None:
    net = OperaNetwork(k=8, n_racks=8, seed=0)
    sim = OperaSimNetwork(net)
    threshold = net.bulk_threshold_bytes
    print(f"{net}  bulk threshold = {threshold / 1e3:.0f} KB")

    workload = DATAMINING.truncated(3_000_000)
    arrivals = PoissonArrivals(
        workload, load=0.10, n_hosts=net.n_hosts,
        hosts_per_rack=net.hosts_per_rack, seed=1,
    )
    n_bulk = n_ll = 0
    for flow in arrivals.flows(duration_ps=4 * MS):
        if flow.size_bytes >= threshold:
            sim.start_bulk_flow(flow.src_host, flow.dst_host,
                                flow.size_bytes, flow.time_ps)
            n_bulk += 1
        else:
            sim.start_low_latency_flow(flow.src_host, flow.dst_host,
                                       flow.size_bytes, flow.time_ps)
            n_ll += 1
    print(f"offered {n_ll} low-latency + {n_bulk} bulk flows at 10% load")

    sim.run(until_ps=40 * MS)
    done = sim.stats.completion_fraction()
    print(f"completed {done:.0%} of flows\n")
    print("size bucket        mean FCT      99p FCT")
    for lo, hi in SIZE_BUCKETS:
        mean = sim.stats.mean_fct_us((lo, hi))
        p99 = sim.stats.fct_percentile_us(99, (lo, hi))
        if mean is None:
            continue
        label = f"{lo // 1000}KB-{hi // 1000 if hi < 1 << 40 else '...'}KB"
        print(f"{label:>14s} {mean:10.0f} us {p99:10.0f} us")

    ll_bytes = sum(
        f.delivered_bytes for f in sim.stats.flows.values()
        if f.traffic_class == "low_latency"
    )
    bulk_bytes = sum(
        f.delivered_bytes for f in sim.stats.flows.values()
        if f.traffic_class == "bulk"
    )
    total = ll_bytes + bulk_bytes
    if total:
        print(f"\nbytes via taxed multi-hop paths : {ll_bytes / total:.1%}")
        print(f"bytes via tax-free direct paths : {bulk_bytes / total:.1%}")
        print("(the paper's Datamining mix pays an effective 8.4% tax)")


if __name__ == "__main__":
    main()
