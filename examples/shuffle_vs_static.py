#!/usr/bin/env python3
"""Shuffle showdown (Figure 8): Opera vs folded Clos vs expander.

Runs the paper's headline experiment at full 108-rack / 648-host scale:
every host sends 100 KB to every other host (a MapReduce-style shuffle,
flow size = the Facebook Hadoop median). Opera carries all of it over
direct, bandwidth-tax-free circuits; the cost-equivalent statics pay
oversubscription (Clos) or a 200-300% bandwidth tax (expander).

Run:  python examples/shuffle_vs_static.py
"""

from repro.experiments import fig08_shuffle


def main() -> None:
    print("running 648-host 100 KB all-to-all shuffle (fluid, paper scale)...")
    results = fig08_shuffle.run()
    for row in fig08_shuffle.format_rows(results):
        print(row)

    opera = results["opera"]
    print("\nOpera throughput over time (10 ms bins):")
    bins: dict[int, list[float]] = {}
    for t_ms, v in opera.throughput_series:
        bins.setdefault(int(t_ms // 10), []).append(v)
    for b in sorted(bins):
        mean = sum(bins[b]) / len(bins[b])
        bar = "#" * int(mean * 50)
        print(f"  {10 * b:4d}-{10 * (b + 1):<4d} ms |{bar:<50s}| {mean:.2f}")

    o = opera.completion_percentile_ms(99)
    c = results["clos"].completion_percentile_ms(99)
    e = results["expander"].completion_percentile_ms(99)
    print(f"\n99th-percentile completion: opera {o:.0f} ms, "
          f"expander {e:.0f} ms, clos {c:.0f} ms")
    print(f"Opera advantage: {min(c, e) / o:.1f}x "
          "(paper: 60 ms vs 223/227 ms)")


if __name__ == "__main__":
    main()
