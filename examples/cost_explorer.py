#!/usr/bin/env python3
"""Cost explorer (Figures 12/15): when is Opera worth its optics?

Sweeps the relative cost alpha of an Opera port and, at each point, re-sizes
the cost-equivalent folded Clos and expander (Appendix A), then compares
throughput on the paper's four traffic patterns.

Run:  python examples/cost_explorer.py [k]
"""

import sys

from repro.analysis.costs import alpha_estimate, cost_equivalent_networks
from repro.experiments import fig12_cost_sensitivity


def main() -> None:
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    print(f"estimated alpha from Table 2 component costs: {alpha_estimate():.2f}")
    eq = cost_equivalent_networks(k, 1.3)
    print(
        f"cost-equivalent trio at k={k}, alpha=1.3: "
        f"{eq.n_hosts}-host Opera ({eq.opera_racks} racks), "
        f"{eq.clos_oversubscription:.1f}:1 folded Clos, "
        f"u={eq.expander_uplinks} expander ({eq.expander_racks} racks)\n"
    )
    data = fig12_cost_sensitivity.run(k=k, alphas=(1.0, 1.3, 1.7, 2.0))
    for row in fig12_cost_sensitivity.format_rows(data):
        print(row)
    print(
        "\npaper: Opera wins permutation and moderately skewed traffic for "
        "alpha < 1.8,\nmatches the expander on a hot rack, and doubles "
        "everyone on all-to-all."
    )


if __name__ == "__main__":
    main()
