#!/usr/bin/env python3
"""Quickstart: build an Opera network and look inside it.

Builds the paper's Figure 5 example (8 ToRs, 4 rotor circuit switches),
shows how the topology changes slice by slice, verifies the two properties
Opera rests on — an expander at every instant, every rack pair directly
connected once per cycle — and then runs one low-latency and one bulk flow
through the packet simulator.

Run:  python examples/quickstart.py
"""

from repro import OperaNetwork
from repro.core.routing import OperaRouting
from repro.net import OperaSimNetwork

MS = 1_000_000_000  # picoseconds


def main() -> None:
    # --- The Figure 5 network: 8 racks x 4 hosts, 4 rotor switches. -------
    net = OperaNetwork(k=8, n_racks=8, seed=0)
    sched = net.schedule
    print(net)
    print(f"slice duration : {net.timing.slice_ps / 1e6:.0f} us")
    print(f"cycle          : {sched.cycle_slices} slices "
          f"({net.timing.cycle_ps / 1e9:.2f} ms)")
    print(f"duty cycle     : {net.timing.duty_cycle:.1%}")
    print(f"bulk threshold : {net.bulk_threshold_bytes / 1e3:.0f} KB\n")

    # --- Watch the rotor switches step through their matchings. -----------
    for s in range(4):
        down = sched.down_switches(s)
        links = sched.neighbors(0, s)
        print(f"slice {s}: switch {down[0]} reconfiguring; "
              f"rack 0 connects to {[peer for peer, _w in links]}")
    print()

    # --- The two structural guarantees. ------------------------------------
    sched.verify_cycle_connectivity()  # every pair gets a direct circuit
    routing = OperaRouting(sched)
    for s in range(sched.cycle_slices):
        assert routing.routes(s).reachable_pairs() == 8 * 7
    print("verified: every slice is connected, every rack pair gets a "
          "direct circuit each cycle\n")

    # --- Two flows through the packet simulator. ---------------------------
    sim = OperaSimNetwork(net)
    low_latency = sim.start_low_latency_flow(0, 30, 20_000)   # 20 KB
    bulk = sim.start_bulk_flow(1, 31, 1_000_000)              # 1 MB, waits
    sim.run(until_ps=30 * MS)

    print(f"low-latency 20 KB flow : {low_latency.fct_ps / 1e6:8.1f} us "
          "(multi-hop expander path, sent immediately)")
    print(f"bulk 1 MB flow         : {bulk.fct_ps / 1e6:8.1f} us "
          "(waited for direct circuits; zero bandwidth tax)")
    direct = sum(a.direct_bytes_sent for a in sim.agents)
    vlb = sum(a.vlb_bytes_sent for a in sim.agents)
    print(f"bulk bytes direct / two-hop VLB: {direct} / {vlb}")


if __name__ == "__main__":
    main()
