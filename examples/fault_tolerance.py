#!/usr/bin/env python3
"""Fault tolerance (Figure 11): watch Opera route around failures.

Injects growing numbers of link, ToR and circuit-switch failures into the
648-host reference network and reports connectivity loss and path stretch,
exactly as section 5.5 measures them.

Run:  python examples/fault_tolerance.py
"""

import random

from repro import FailureSet
from repro.analysis.failures import opera_failure_report
from repro.core.schedule import OperaSchedule


def main() -> None:
    sched = OperaSchedule(108, 6, seed=0)
    slices = range(0, sched.cycle_slices, 6)  # sample 18 of 108 slices
    rng = random.Random(7)

    print("failures              loss(worst)  loss(any)   avg path  worst")
    for label, failures in [
        ("none", FailureSet.none()),
        ("2.5% links", FailureSet.random_links(108, 6, 0.025, rng)),
        ("10% links", FailureSet.random_links(108, 6, 0.10, rng)),
        ("40% links", FailureSet.random_links(108, 6, 0.40, rng)),
        ("5% ToRs", FailureSet.random_racks(108, 0.05, rng)),
        ("20% ToRs", FailureSet.random_racks(108, 0.20, rng)),
        ("1 of 6 switches", FailureSet(switches=frozenset({2}))),
        ("2 of 6 switches", FailureSet(switches=frozenset({2, 5}))),
        ("3 of 6 switches", FailureSet(switches=frozenset({0, 2, 5}))),
    ]:
        report = opera_failure_report(sched, failures, slices)
        print(
            f"{label:>20s} {report.worst_slice_loss:11.4f} "
            f"{report.any_slice_loss:10.4f} {report.average_path_length:10.2f} "
            f"{report.worst_path_length:6d}"
        )
    print(
        "\npaper: no loss up to ~4% links, ~7% ToRs, or 2 of 6 circuit "
        "switches;\nsurviving paths stretch gracefully as failures mount."
    )


if __name__ == "__main__":
    main()
