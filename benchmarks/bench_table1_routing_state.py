"""Table 1: ruleset sizes and Tofino utilization."""

from conftest import emit, run_scenario

from repro.experiments import table1_state as exp


def test_table1_routing_state(benchmark):
    rows = run_scenario(benchmark, "table1")
    emit("Table 1: routing state scalability", exp.format_rows(rows))
    expected = {
        108: 12_096,
        252: 65_268,
        520: 276_120,
        768: 600_576,
        1008: 1_032_192,
        1200: 1_461_600,
    }
    for row in rows:
        assert row.entries == expected[row.n_racks]
    # Paper's headline: even 1,200 racks fit with spare capacity.
    assert rows[-1].utilization < 0.9
