"""Table 2 / Appendix A: port costs and the cost-equivalent trio."""

from conftest import emit, run_scenario

from repro.experiments import table2_costs as exp


def test_table2_cost_model(benchmark):
    data = run_scenario(benchmark, "table2")
    emit("Table 2: cost model", exp.format_rows(data))
    assert data["static_port_usd"] == 215.0
    assert data["opera_port_usd"] == 275.0
    assert abs(data["alpha"] - 1.28) < 0.03  # paper rounds to 1.3
    # Appendix A: alpha=1.3 sizes the paper's exact comparison trio.
    assert data["trio_hosts"] == 648
    assert data["trio_expander_uplinks"] == 7
    assert data["trio_expander_racks"] == 130
    assert abs(data["trio_clos_oversubscription"] - 3.08) < 0.01
