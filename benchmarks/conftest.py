"""Shared helpers for the per-figure benchmark harness.

Every benchmark runs its experiment once (``benchmark.pedantic`` with one
round — these are reproduction measurements, not micro-benchmarks), prints
the same rows/series the paper's table or figure reports, and asserts the
qualitative *shape* the paper claims (who wins, by roughly what factor).

Scale note: packet-level experiments run at reduced scale by default; see
``EXPERIMENTS.md`` for the mapping to the paper's configurations.
"""

from __future__ import annotations

from repro.scenarios import Runner

#: In-process, cache-free runner: a benchmark measurement times exactly the
#: scenario body, through the same registry + parameter binding as the CLI.
_RUNNER = Runner()


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def run_scenario(benchmark, name, **overrides):
    """Run registered scenario ``name`` once through the shared Runner path."""
    return run_once(benchmark, _RUNNER.execute, name, **overrides)


def emit(title: str, rows: list[str]) -> None:
    print(f"\n=== {title} ===")
    for row in rows:
        print(row)
