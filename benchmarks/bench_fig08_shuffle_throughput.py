"""Figure 8: 100 KB all-to-all shuffle throughput over time (paper scale)."""

from conftest import emit, run_scenario

from repro.experiments import fig08_shuffle as exp


def test_fig08_shuffle_throughput(benchmark):
    data = run_scenario(benchmark, "fig08")
    emit("Figure 8: shuffle (648 hosts, 100 KB all-to-all)", exp.format_rows(data))
    opera = data["opera"].completion_percentile_ms(99)
    expander = data["expander"].completion_percentile_ms(99)
    clos = data["clos"].completion_percentile_ms(99)
    assert opera is not None and expander is not None and clos is not None
    # Paper: Opera 60 ms vs 223/227 ms for the statics. Our fluid statics
    # are idealized (no transport losses), so the gap is ~2x rather than
    # ~3.7x, but Opera's direct paths win decisively either way.
    assert opera < expander
    assert opera < clos
    assert opera < 100.0  # paper: 60 ms; fluid model lands ~75 ms
    # Opera's plateau: direct circuits carry ~ (u-1)/u * duty of host bw.
    series = data["opera"].throughput_series
    mid = [v for _t, v in series[: len(series) // 2]]
    assert 0.7 < sum(mid) / len(mid) < 0.85
