"""Figure 16 / Appendix C: average path length vs network scale."""

from conftest import emit, run_scenario

from repro.experiments import fig16_path_scaling as exp


def test_fig16_path_scaling(benchmark):
    rows = run_scenario(benchmark, "fig16", radices=(12, 16, 24))
    emit("Figure 16: average path length vs scale", exp.format_rows(rows))
    # Paper: Opera's average path length stays within ~1 hop of the
    # cost-comparable expanders and converges at larger scale.
    for row in rows:
        statics = [v for key, v in row.items() if key.startswith("expander")]
        assert min(statics) - 0.5 < row["opera"] < max(statics) + 1.2
    # Path lengths grow modestly (log-like), not linearly, with scale.
    operas = [r["opera"] for r in rows]
    assert operas[-1] < operas[0] + 1.5
