"""Figure 6 / section 4.1: topology-slice time constants."""

from conftest import emit, run_scenario

from repro.experiments import fig06_timing as exp


def test_fig06_timing_constants(benchmark):
    data = run_scenario(benchmark, "fig06")
    emit("Figure 6 / section 4.1: time constants", exp.format_rows(data))
    assert data["slice_us"] == 100.0
    assert data["cycle_slices"] == 108
    # Paper: "a duty cycle of 98%" and "a cycle time of 10.7 ms".
    assert abs(data["duty_cycle"] - 0.983) < 0.002
    assert abs(data["cycle_ms"] - 10.8) < 0.2
    # Paper rounds the resulting 13.5 MB amortization point up to 15 MB.
    assert 12.0 < data["bulk_threshold_MB"] < 16.0
