"""Engine microbenchmark: the fig07 packet workload, events/sec tracked.

Runs the Figure 7 reduced-scale workload (Datamining arrivals at 10% load
over all five evaluation networks, 4 ms of arrivals + 10 ms drain) under
each scheduler and records throughput to ``BENCH_engine.json`` so the
engine's perf trajectory is tracked from PR 2 on.

Metrics per engine configuration:

* ``events`` / ``wall_s`` / ``events_per_sec`` — raw dispatch throughput.
  Note that the fast-path engine *eliminates* events (no per-packet
  transmission-done event on an idle line), so its raw events/sec
  understates the win: fewer, heavier events remain.
* ``packet_hops`` / ``hops_per_sec`` — simulated work per second, the
  event-structure-independent measure.
* ``reference_events_per_sec`` — the pre-PR engine's event count for this
  exact workload divided by the current wall time: throughput denominated
  in the *reference* event stream, directly comparable across engine
  rewrites (this is the number the CI perf-smoke gate and the >=3x
  acceptance threshold use).

Usage::

    PYTHONPATH=src python benchmarks/engine_microbench.py \
        --output BENCH_engine.json [--check BENCH_engine.json] [--repeat 3]

``--check`` compares the fresh run against a committed artifact and exits
non-zero on a >2x regression of ``reference_events_per_sec``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.experiments.fctsim import build_network
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.distributions import DATAMINING

MS = 1_000_000_000

#: The fixed microbenchmark workload (the fig07 reduced-scale point).
WORKLOAD = {
    "networks": ["opera", "expander", "clos", "rotornet-hybrid", "rotornet"],
    "k": 8,
    "n_racks": 8,
    "load": 0.10,
    "duration_ms": 4.0,
    "drain_ms": 10.0,
    "size_cap": 3_000_000,
    "seed": 0,
}

#: Pre-PR (single-heap, one-event-per-packet) engine measured on this exact
#: workload — committed alongside the fast-path engine so every future run
#: reports its speedup against the same anchor. Event counts are exact
#: (deterministic); the wall clock is the machine that produced this PR.
PRE_PR_REFERENCE = {
    "events": 970_020,
    "wall_s": 3.182,
    "events_per_sec": 304_845,
}


def _all_ports(net):
    """Every Port of a SimNetwork (NICs, host ports, fabric/uplink ports)."""
    for host in net.hosts:
        if host.nic is not None:
            yield host.nic
    yield from getattr(net, "host_ports", {}).values()
    for group in ("uplink_ports", "tor_up", "agg_down", "agg_up", "core_down"):
        for ports in getattr(net, group, []):
            yield from ports.values()
    yield from getattr(net, "fabric_up", [])
    yield from getattr(net, "fabric_down", [])


def run_network(kind: str, scheduler: str) -> dict:
    """One network of the workload; returns events/hops/wall."""
    import os

    prev = os.environ.get("REPRO_SCHEDULER")
    os.environ["REPRO_SCHEDULER"] = scheduler
    try:
        t0 = time.perf_counter()
        net = build_network(
            kind, k=WORKLOAD["k"], n_racks=WORKLOAD["n_racks"], seed=WORKLOAD["seed"]
        )
        arrivals = PoissonArrivals(
            DATAMINING.truncated(WORKLOAD["size_cap"]),
            load=WORKLOAD["load"],
            n_hosts=len(net.hosts),
            hosts_per_rack=sum(1 for h in net.hosts if h.rack == 0),
            seed=WORKLOAD["seed"],
        )
        threshold = getattr(
            getattr(net, "network", None), "bulk_threshold_bytes", 1 << 62
        )
        for flow in arrivals.flows(duration_ps=int(WORKLOAD["duration_ms"] * MS)):
            if flow.size_bytes >= threshold:
                net.start_bulk_flow(
                    flow.src_host, flow.dst_host, flow.size_bytes, flow.time_ps
                )
            else:
                net.start_low_latency_flow(
                    flow.src_host, flow.dst_host, flow.size_bytes, flow.time_ps
                )
        net.run(
            until_ps=int((WORKLOAD["duration_ms"] + WORKLOAD["drain_ms"]) * MS)
        )
        wall = time.perf_counter() - t0
    finally:
        if prev is None:
            os.environ.pop("REPRO_SCHEDULER", None)
        else:
            os.environ["REPRO_SCHEDULER"] = prev
    hops = sum(port.stats.sent_packets for port in _all_ports(net))
    return {
        "network": kind,
        "events": net.sim.events_processed,
        "packet_hops": hops,
        "wall_s": wall,
        "flows": len(net.stats.flows),
        "completed": len(net.stats.completed_flows()),
    }


def run_engine(scheduler: str, repeat: int = 1) -> dict:
    """The full workload under one scheduler; best-of-``repeat`` wall."""
    best: list[dict] | None = None
    for _ in range(repeat):
        rows = [run_network(kind, scheduler) for kind in WORKLOAD["networks"]]
        if best is None or sum(r["wall_s"] for r in rows) < sum(
            r["wall_s"] for r in best
        ):
            best = rows
    assert best is not None
    events = sum(r["events"] for r in best)
    hops = sum(r["packet_hops"] for r in best)
    wall = sum(r["wall_s"] for r in best)
    return {
        "scheduler": scheduler,
        "events": events,
        "packet_hops": hops,
        "wall_s": round(wall, 4),
        "events_per_sec": int(events / wall),
        "hops_per_sec": int(hops / wall),
        "reference_events_per_sec": int(PRE_PR_REFERENCE["events"] / wall),
        "per_network": best,
    }


def run_microbench(
    schedulers: tuple[str, ...] = ("heap", "wheel"), repeat: int = 1
) -> dict:
    engines = {s: run_engine(s, repeat=repeat) for s in schedulers}
    heap = engines.get("heap") or next(iter(engines.values()))
    return {
        "benchmark": "fig07-engine-microbench",
        "workload": WORKLOAD,
        "pre_pr_reference": PRE_PR_REFERENCE,
        "engines": engines,
        "speedup_wall_vs_pre_pr": round(
            PRE_PR_REFERENCE["wall_s"] / heap["wall_s"], 2
        ),
        "speedup_reference_eps_vs_pre_pr": round(
            heap["reference_events_per_sec"] / PRE_PR_REFERENCE["events_per_sec"], 2
        ),
    }


def format_rows(doc: dict) -> list[str]:
    rows = []
    for name, eng in doc["engines"].items():
        rows.append(
            f"{name:>6s}: {eng['events']:8d} events in {eng['wall_s']:6.3f} s "
            f"= {eng['events_per_sec']:>9,d} ev/s  "
            f"({eng['hops_per_sec']:>9,d} hops/s, "
            f"{eng['reference_events_per_sec']:>9,d} ref-ev/s)"
        )
    ref = doc["pre_pr_reference"]
    rows.append(
        f"pre-PR: {ref['events']:8d} events in {ref['wall_s']:6.3f} s "
        f"= {ref['events_per_sec']:>9,d} ev/s"
    )
    rows.append(
        f"speedup vs pre-PR: {doc['speedup_wall_vs_pre_pr']}x wall, "
        f"{doc['speedup_reference_eps_vs_pre_pr']}x reference events/sec"
    )
    return rows


def check_regression(doc: dict, committed_path: Path) -> int:
    """Exit status: non-zero on a >2x reference-events/sec regression."""
    committed = json.loads(committed_path.read_text())
    baseline = committed["engines"]["heap"]["reference_events_per_sec"]
    fresh = doc["engines"]["heap"]["reference_events_per_sec"]
    floor = baseline / 2
    print(
        f"perf-smoke: fresh {fresh:,d} ref-ev/s vs committed {baseline:,d} "
        f"(floor {floor:,.0f})"
    )
    if fresh < floor:
        print("perf-smoke: FAIL — >2x events/sec regression", file=sys.stderr)
        return 1
    print("perf-smoke: ok")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=None,
                        help="write the JSON artifact here")
    parser.add_argument("--check", type=Path, default=None,
                        help="committed BENCH_engine.json to gate against")
    parser.add_argument("--repeat", type=int, default=1,
                        help="take the best of N runs per engine")
    parser.add_argument("--schedulers", default="heap,wheel",
                        help="comma-separated scheduler list")
    args = parser.parse_args(argv)
    schedulers = tuple(s for s in args.schedulers.split(",") if s)
    doc = run_microbench(schedulers, repeat=args.repeat)
    for row in format_rows(doc):
        print(row)
    if args.output is not None:
        args.output.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {args.output}")
    if args.check is not None and args.check.exists():
        return check_regression(doc, args.check)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
