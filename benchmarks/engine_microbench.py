"""Engine microbenchmark: the fig07 packet workload, events/sec tracked.

Runs the Figure 7 reduced-scale workload (Datamining arrivals at 10% load
over all five evaluation networks, 4 ms of arrivals + 10 ms drain) under
each scheduler x kernel (``REPRO_KERNEL=py|c``, compiled records suffixed
``-c``) and records throughput to ``BENCH_engine.json`` so the engine's
perf trajectory is tracked from PR 2 on. The c-kernel records double as a
differential check: their deterministic observables (events, entries,
hops, trains) must equal the py oracle's exactly or the bench aborts.

Metrics per engine configuration:

* ``events`` / ``wall_s`` / ``events_per_sec`` — raw dispatch throughput.
  Note that the fast-path engine *eliminates* events (no per-packet
  transmission-done event on an idle line), so its raw events/sec
  understates the win: fewer, heavier events remain.
* ``packet_hops`` / ``hops_per_sec`` — simulated work per second, the
  event-structure-independent measure.
* ``sched_entries`` / ``events_per_hop`` — scheduler insertions actually
  performed and their ratio to packet hops: the per-event interpreter
  cost the coalescing engine attacks. Both are deterministic (no wall
  clock involved), so the CI gate on ``events_per_hop`` has zero runner
  noise. The default engines run with coalescing on; the ``heap-legacy``
  record is the same workload with ``REPRO_COALESCE=0`` (one entry per
  event), pinning what coalescing saves — and, because coalesced runs
  are bit-identical, its ``events``/``packet_hops`` double as a
  differential check.
* ``reference_events_per_sec`` — the pre-PR engine's event count for this
  exact workload divided by the current wall time: throughput denominated
  in the *reference* event stream, directly comparable across engine
  rewrites (this is the number the CI perf-smoke gate and the >=3x
  acceptance threshold use).

``--profile N`` runs the heap pass under ``cProfile`` and prints the
top-N cumulative functions, so per-event interpreter-cost claims stay
attributable to specific code.

Two further phases feed the artifact:

* ``--depths`` — a synthetic heap-vs-wheel steady-state bench at
  paper-scale pending depths (prefill N events, then pop-one/push-one).
  The per-profile default scheduler (``fctsim.SCHEDULER_BY_SCALE``) is
  picked from its committed results.
* ``--sharded-workers N[,M...]`` — the sharded fig07 grid through the
  scenario Runner at ``--sharded-scale``, recording wall and cells/sec
  per worker count (the CI perf-smoke job gates on cells/sec with the
  same >2x rule as events/sec).
* ``--faults`` — price the dynamic failure subsystem: armed-but-empty
  vs uninstalled walls (the deterministic observables must be identical
  or the bench aborts) plus an active 25% link draw, differentially
  checked py-vs-c when the compiled kernel is present.
* ``--telemetry`` — price the metrics subsystem (``REPRO_TELEMETRY``):
  armed vs off walls on the opera fig07 cell. The armed run's FctResult
  must equal the off run's exactly (telemetry is observation after
  simulation) and, with the compiled kernel present, the c-kernel's
  drained metric snapshot must equal the py kernel's — both checked
  with a bench abort.

Usage::

    PYTHONPATH=src python benchmarks/engine_microbench.py \
        --output BENCH_engine.json [--check BENCH_engine.json] [--repeat 3] \
        [--profile 25] [--depths] [--sharded ci:1,2]

``--check`` compares the fresh run against a committed artifact and exits
non-zero on a >2x regression of ``reference_events_per_sec``, a >10%
regression of the deterministic ``events_per_hop`` event-count gate, or a
>2x regression of sharded cells/sec when both artifacts carry the sharded
phase.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from heapq import heappop, heappush
from pathlib import Path

from repro.experiments.fctsim import build_network
from repro.net.kernel import compiled_available
from repro.net.wheel import TimingWheel
from repro.obs.metrics import iter_ports as _all_ports
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.distributions import DATAMINING

MS = 1_000_000_000

#: The fixed microbenchmark workload (the fig07 reduced-scale point).
WORKLOAD = {
    "networks": ["opera", "expander", "clos", "rotornet-hybrid", "rotornet"],
    "k": 8,
    "n_racks": 8,
    "load": 0.10,
    "duration_ms": 4.0,
    "drain_ms": 10.0,
    "size_cap": 3_000_000,
    "seed": 0,
}

#: Pre-PR (single-heap, one-event-per-packet) engine measured on this exact
#: workload — committed alongside the fast-path engine so every future run
#: reports its speedup against the same anchor. Event counts are exact
#: (deterministic); the wall clock is the machine that produced this PR.
PRE_PR_REFERENCE = {
    "events": 970_020,
    "wall_s": 3.182,
    "events_per_sec": 304_845,
}

#: The PR-4 heap record on this workload (pre-coalescing: every event was
#: its own scheduler entry), the anchor for the event-coalescing PR's
#: ``events_per_hop`` and ``hops_per_sec`` comparisons.
PR4_REFERENCE = {
    "events": 623_430,
    "packet_hops": 456_832,
    "events_per_hop": 1.3647,
    "hops_per_sec": 456_811,
}


def run_network(
    kind: str, scheduler: str, coalesce: bool = True, kernel: str = "py"
) -> dict:
    """One network of the workload; returns events/entries/hops/wall."""
    import os

    prev = os.environ.get("REPRO_SCHEDULER")
    prev_coalesce = os.environ.get("REPRO_COALESCE")
    prev_kernel = os.environ.get("REPRO_KERNEL")
    os.environ["REPRO_SCHEDULER"] = scheduler
    os.environ["REPRO_COALESCE"] = "1" if coalesce else "0"
    os.environ["REPRO_KERNEL"] = kernel
    try:
        t0 = time.perf_counter()
        net = build_network(
            kind, k=WORKLOAD["k"], n_racks=WORKLOAD["n_racks"], seed=WORKLOAD["seed"]
        )
        arrivals = PoissonArrivals(
            DATAMINING.truncated(WORKLOAD["size_cap"]),
            load=WORKLOAD["load"],
            n_hosts=len(net.hosts),
            hosts_per_rack=sum(1 for h in net.hosts if h.rack == 0),
            seed=WORKLOAD["seed"],
        )
        threshold = getattr(
            getattr(net, "network", None), "bulk_threshold_bytes", 1 << 62
        )
        for flow in arrivals.flows(duration_ps=int(WORKLOAD["duration_ms"] * MS)):
            if flow.size_bytes >= threshold:
                net.start_bulk_flow(
                    flow.src_host, flow.dst_host, flow.size_bytes, flow.time_ps
                )
            else:
                net.start_low_latency_flow(
                    flow.src_host, flow.dst_host, flow.size_bytes, flow.time_ps
                )
        net.run(
            until_ps=int((WORKLOAD["duration_ms"] + WORKLOAD["drain_ms"]) * MS)
        )
        wall = time.perf_counter() - t0
    finally:
        if prev is None:
            os.environ.pop("REPRO_SCHEDULER", None)
        else:
            os.environ["REPRO_SCHEDULER"] = prev
        if prev_coalesce is None:
            os.environ.pop("REPRO_COALESCE", None)
        else:
            os.environ["REPRO_COALESCE"] = prev_coalesce
        if prev_kernel is None:
            os.environ.pop("REPRO_KERNEL", None)
        else:
            os.environ["REPRO_KERNEL"] = prev_kernel
    hops = sum(port.stats.sent_packets for port in _all_ports(net))
    return {
        "network": kind,
        "events": net.sim.events_processed,
        "sched_entries": net.sim.sched_pushes,
        "trains": net.sim.trains_formed,
        "packet_hops": hops,
        "wall_s": wall,
        "flows": len(net.stats.flows),
        "completed": len(net.stats.completed_flows()),
    }


def _assemble_engine(
    scheduler: str, coalesce: bool, kernel: str, best: list[dict]
) -> dict:
    events = sum(r["events"] for r in best)
    entries = sum(r["sched_entries"] for r in best)
    hops = sum(r["packet_hops"] for r in best)
    wall = sum(r["wall_s"] for r in best)
    return {
        "scheduler": scheduler,
        "coalesce": coalesce,
        "kernel": kernel,
        "events": events,
        "sched_entries": entries,
        "trains": sum(r["trains"] for r in best),
        "packet_hops": hops,
        "events_per_hop": round(entries / hops, 4),
        "wall_s": round(wall, 4),
        "events_per_sec": int(events / wall),
        "hops_per_sec": int(hops / wall),
        "reference_events_per_sec": int(PRE_PR_REFERENCE["events"] / wall),
        "per_network": best,
    }


def run_microbench(
    schedulers: tuple[str, ...] = ("heap", "wheel"),
    repeat: int = 1,
    legacy: bool = True,
    kernels: tuple[str, ...] = ("py", "c"),
) -> dict:
    # Engine configurations are measured round-robin (one full pass per
    # configuration per round, best-of-`repeat` rounds) so slow drift of
    # the host — tens of percent over minutes on shared 1-core boxes —
    # biases no configuration: back-to-back passes see the same machine.
    #
    # Kernel naming: the pure-Python records keep their historical names
    # ("heap", "wheel") so the artifact stays comparable across PRs; the
    # compiled-kernel records are suffixed "-c" ("heap-c"). REPRO_KERNEL=c
    # is never benchmarked when the compiled module is absent — the auto
    # fallback would silently produce py numbers under a c label.
    if "c" in kernels and not compiled_available():
        print(
            "note: compiled kernel (_ckernel) not built; skipping the "
            "c-kernel records (build with `python setup.py build_ext "
            "--inplace`)"
        )
        kernels = tuple(k for k in kernels if k != "c")
    configs: list[tuple[str, str, bool, str]] = []
    for kernel in kernels:
        suffix = "" if kernel == "py" else f"-{kernel}"
        configs.extend((f"{s}{suffix}", s, True, kernel) for s in schedulers)
    if legacy and "py" in kernels:
        # The uncoalesced heap path: pins what coalescing saves, and its
        # (deterministic) events/hops double as a differential check
        # against the coalesced record.
        configs.append(("heap-legacy", "heap", False, "py"))
    best: dict[str, list[dict]] = {}
    for _ in range(repeat):
        for name, scheduler, coalesce, kernel in configs:
            rows = [
                run_network(kind, scheduler, coalesce, kernel)
                for kind in WORKLOAD["networks"]
            ]
            if name not in best or sum(r["wall_s"] for r in rows) < sum(
                r["wall_s"] for r in best[name]
            ):
                best[name] = rows
    engines = {
        name: _assemble_engine(scheduler, coalesce, kernel, best[name])
        for name, scheduler, coalesce, kernel in configs
    }
    # The c kernel is a differential fast path: its deterministic
    # observables must equal the py oracle's exactly — a bench run that
    # ever saw them diverge must not produce an artifact.
    for name, eng in engines.items():
        if eng["kernel"] == "py" or f"{eng['scheduler']}" not in engines:
            continue
        oracle = engines[eng["scheduler"]]
        for field in ("events", "sched_entries", "trains", "packet_hops"):
            if eng[field] != oracle[field]:
                raise SystemExit(
                    f"kernel differential FAILED: {name}.{field}="
                    f"{eng[field]} != {eng['scheduler']}.{field}="
                    f"{oracle[field]}"
                )
    heap = engines.get("heap") or next(iter(engines.values()))
    doc = {
        "benchmark": "fig07-engine-microbench",
        "workload": WORKLOAD,
        "pre_pr_reference": PRE_PR_REFERENCE,
        "pr4_reference": PR4_REFERENCE,
        "engines": engines,
        "speedup_wall_vs_pre_pr": round(
            PRE_PR_REFERENCE["wall_s"] / heap["wall_s"], 2
        ),
        "speedup_reference_eps_vs_pre_pr": round(
            heap["reference_events_per_sec"] / PRE_PR_REFERENCE["events_per_sec"], 2
        ),
        "events_per_hop_vs_pr4": round(
            heap["events_per_hop"] / PR4_REFERENCE["events_per_hop"], 4
        ),
        "hops_per_sec_vs_pr4": round(
            heap["hops_per_sec"] / PR4_REFERENCE["hops_per_sec"], 2
        ),
    }
    if "heap-c" in engines and "heap" in engines:
        # The compiled-kernel acceptance number: simulated work per wall
        # second, c kernel over the py oracle, same machine, same round-
        # robin run.
        doc["kernel_speedup_hops_per_sec"] = round(
            engines["heap-c"]["hops_per_sec"] / engines["heap"]["hops_per_sec"],
            2,
        )
    return doc


def run_profile(top_n: int) -> None:
    """The fig07 workload under cProfile; prints the top-N cumulative rows.

    Makes per-event interpreter-cost claims attributable: the ranking
    shows where a hop's wall time actually goes (dispatch loop, port
    enqueue, endpoint callbacks, scheduler C calls, ...).
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    for kind in WORKLOAD["networks"]:
        run_network(kind, "heap")
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    print(f"--- cProfile, fig07 workload, top {top_n} by cumulative time ---")
    stats.print_stats(top_n)


# ---------------------------------------------------------- depth microbench

#: Pending-event depths the scale profiles actually reach, estimated from
#: deployment size (ports + in-flight flows scale with hosts): ci = 64
#: hosts, default = 64 hosts at full horizon, paper = 648 hosts.
PROFILE_DEPTH_ESTIMATE = {"ci": 512, "default": 4096, "paper": 32768}

DEPTHS = (512, 4096, 32768, 262144)


def _depth_point(scheduler: str, depth: int, ops: int) -> float:
    """Steady-state ops/sec at ``depth`` pending events (pop one, push one).

    Delays follow a deterministic LCG over the engine's real magnitudes
    (0.5-2.5 us in integer picoseconds — packet serialization and
    propagation steps), so bucket spread matches what the wheel sees in a
    packet run.
    """
    x = 0x2545F4914F6CDD1D
    def delay() -> int:
        nonlocal x
        x = (x * 6364136223846793005 + 1442695040888963407) & (2**64 - 1)
        return 500_000 + (x >> 40) % 2_000_000

    now = 0
    seq = 0
    if scheduler == "heap":
        heap: list = []
        for _ in range(depth):
            seq += 1
            heappush(heap, (now + delay(), seq, None, ()))
        start = time.perf_counter()
        for _ in range(ops):
            now = heap[0][0]
            heappop(heap)
            seq += 1
            heappush(heap, (now + delay(), seq, None, ()))
        return ops / (time.perf_counter() - start)
    wheel = TimingWheel()
    for _ in range(depth):
        seq += 1
        wheel.push(now + delay(), seq, None, ())
    start = time.perf_counter()
    for _ in range(ops):
        entry = wheel.pop()
        now = entry[0]
        seq += 1
        wheel.push(now + delay(), seq, None, ())
    return ops / (time.perf_counter() - start)


def run_depth_bench(depths: tuple[int, ...] = DEPTHS, ops: int = 100_000) -> dict:
    """Heap vs wheel ops/sec per pending depth + winner per scale profile."""
    per_depth = {}
    for depth in depths:
        heap_ops = _depth_point("heap", depth, ops)
        wheel_ops = _depth_point("wheel", depth, ops)
        per_depth[str(depth)] = {
            "heap_ops_per_sec": int(heap_ops),
            "wheel_ops_per_sec": int(wheel_ops),
            "winner": "heap" if heap_ops >= wheel_ops else "wheel",
        }
    winner_by_profile = {}
    for profile, estimate in PROFILE_DEPTH_ESTIMATE.items():
        nearest = min(depths, key=lambda d: abs(d - estimate))
        winner_by_profile[profile] = per_depth[str(nearest)]["winner"]
    return {
        "ops_per_point": ops,
        "per_depth": per_depth,
        "profile_depth_estimate": PROFILE_DEPTH_ESTIMATE,
        "winner_by_profile": winner_by_profile,
    }


# --------------------------------------------------------- faults overhead


def _run_opera_faulted(
    schedule, scheduler: str = "heap", kernel: str = "py"
) -> dict:
    """The opera leg of the workload with the failure subsystem armed.

    ``schedule=None`` runs uninstalled; an empty schedule arms the
    machinery with nothing ever failing. Returns the deterministic
    observables plus wall time, so callers can both price the seam and
    differential-check it.
    """
    prev = {
        key: os.environ.get(key)
        for key in ("REPRO_SCHEDULER", "REPRO_COALESCE", "REPRO_KERNEL")
    }
    os.environ["REPRO_SCHEDULER"] = scheduler
    os.environ["REPRO_COALESCE"] = "1"
    os.environ["REPRO_KERNEL"] = kernel
    try:
        t0 = time.perf_counter()
        net = build_network(
            "opera",
            k=WORKLOAD["k"],
            n_racks=WORKLOAD["n_racks"],
            seed=WORKLOAD["seed"],
        )
        if schedule is not None:
            net.install_failures(schedule)
        arrivals = PoissonArrivals(
            DATAMINING.truncated(WORKLOAD["size_cap"]),
            load=WORKLOAD["load"],
            n_hosts=len(net.hosts),
            hosts_per_rack=net.network.hosts_per_rack,
            seed=WORKLOAD["seed"],
        )
        threshold = net.network.bulk_threshold_bytes
        for flow in arrivals.flows(duration_ps=int(WORKLOAD["duration_ms"] * MS)):
            if flow.size_bytes >= threshold:
                net.start_bulk_flow(
                    flow.src_host, flow.dst_host, flow.size_bytes, flow.time_ps
                )
            else:
                net.start_low_latency_flow(
                    flow.src_host, flow.dst_host, flow.size_bytes, flow.time_ps
                )
        net.run(
            until_ps=int((WORKLOAD["duration_ms"] + WORKLOAD["drain_ms"]) * MS)
        )
        wall = time.perf_counter() - t0
    finally:
        for key, value in prev.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    stats = net.stats
    return {
        "events": net.sim.events_processed,
        "sched_entries": net.sim.sched_pushes,
        "packet_hops": sum(p.stats.sent_packets for p in _all_ports(net)),
        "blackholed_packets": stats.total_blackholed_packets(),
        "completed": len(stats.completed_flows()),
        "unrecoverable": len(stats.unrecoverable_flows),
        "wall_s": wall,
    }


def run_faults_overhead() -> dict:
    """Price the dynamic failure subsystem on the opera workload.

    Three records: uninstalled, armed-but-empty (must be event-for-event
    identical — the seam's cost is one box read per routed packet), and a
    mid-run 25% link draw (the recovery machinery actually working).
    When the compiled kernel is present the active draw is repeated under
    ``REPRO_KERNEL=c`` and every deterministic observable must match the
    py record — a bench run that saw the kernels diverge under failures
    must not produce an artifact.
    """
    import random as _random

    from repro.core.faults import FailureSchedule

    off = _run_opera_faulted(None)
    armed = _run_opera_faulted(FailureSchedule.empty())
    for field in ("events", "sched_entries", "packet_hops"):
        if armed[field] != off[field]:
            raise SystemExit(
                f"faults differential FAILED: armed-but-empty {field}="
                f"{armed[field]} != uninstalled {field}={off[field]}"
            )

    def draw():
        return FailureSchedule.random(
            WORKLOAD["n_racks"],
            WORKLOAD["k"] // 2,
            "link",
            0.25,
            int(2.0 * MS),
            _random.Random(7),
        )

    active = _run_opera_faulted(draw())
    record = {
        "off_wall_s": round(off["wall_s"], 4),
        "armed_wall_s": round(armed["wall_s"], 4),
        "ratio": round(armed["wall_s"] / off["wall_s"], 4),
        "active": {
            "fraction": 0.25,
            "component": "link",
            "wall_s": round(active["wall_s"], 4),
            "events": active["events"],
            "blackholed_packets": active["blackholed_packets"],
            "completed": active["completed"],
            "unrecoverable": active["unrecoverable"],
        },
    }
    if compiled_available():
        active_c = _run_opera_faulted(draw(), kernel="c")
        for field in (
            "events",
            "sched_entries",
            "packet_hops",
            "blackholed_packets",
            "completed",
            "unrecoverable",
        ):
            if active_c[field] != active[field]:
                raise SystemExit(
                    f"faults kernel differential FAILED: heap-c {field}="
                    f"{active_c[field]} != heap {field}={active[field]}"
                )
        record["active"]["kernel_identical"] = True
    return record


# ------------------------------------------------------- telemetry overhead


def _run_opera_telemetry(armed: bool, kernel: str = "py"):
    """One opera fig07 cell with telemetry off or armed.

    Returns ``(result, snapshot, wall_s)`` — the :class:`FctResult` (the
    deterministic observable an armed run must not perturb), the drained
    metric snapshot (``None`` when off) and the wall clock. The global
    registry is reset before and after so passes never see each other.
    """
    from repro.experiments.fctsim import run_fct_cell
    from repro.obs.metrics import REGISTRY

    prev = {
        key: os.environ.get(key)
        for key in (
            "REPRO_SCHEDULER",
            "REPRO_COALESCE",
            "REPRO_KERNEL",
            "REPRO_TELEMETRY",
        )
    }
    os.environ["REPRO_SCHEDULER"] = "heap"
    os.environ["REPRO_COALESCE"] = "1"
    os.environ["REPRO_KERNEL"] = kernel
    os.environ["REPRO_TELEMETRY"] = "1" if armed else "0"
    REGISTRY.reset()
    try:
        t0 = time.perf_counter()
        result = run_fct_cell(
            "opera",
            WORKLOAD["load"],
            "datamining",
            WORKLOAD["duration_ms"],
            WORKLOAD["seed"],
            "ci",
        )
        wall = time.perf_counter() - t0
    finally:
        for key, value in prev.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    snapshot = REGISTRY.snapshot() if armed else None
    REGISTRY.reset()
    return result, snapshot, wall


def run_telemetry_overhead(repeat: int = 3) -> dict:
    """Price the metrics subsystem on the opera fig07 cell.

    Alternating off/armed passes (best-of-``repeat`` each, so host drift
    biases neither side): the armed run's :class:`FctResult` must equal
    the off run's exactly — telemetry is pure observation after the
    simulation, and a bench run that ever saw it perturb a simulated
    observable must not produce an artifact. When the compiled kernel is
    present the armed cell is repeated under ``REPRO_KERNEL=c`` and both
    the result *and* the drained metric snapshot must match the py
    record: the counters live in shared ``__slots__`` both kernels
    write, so snapshot equality is the seam's whole contract.
    """
    off_wall = armed_wall = None
    off_result = armed_result = snapshot = None
    for _ in range(repeat):
        result, _, wall = _run_opera_telemetry(False)
        if off_wall is None or wall < off_wall:
            off_wall = wall
        off_result = result
        result, snap, wall = _run_opera_telemetry(True)
        if armed_wall is None or wall < armed_wall:
            armed_wall = wall
        armed_result, snapshot = result, snap
    if armed_result != off_result:
        raise SystemExit(
            "telemetry differential FAILED: armed FctResult != off "
            f"FctResult ({armed_result!r} vs {off_result!r})"
        )
    record = {
        "off_wall_s": round(off_wall, 4),
        "armed_wall_s": round(armed_wall, 4),
        "ratio": round(armed_wall / off_wall, 4),
        # Counters + gauges + histograms actually drained, not sections.
        "metrics": sum(len(section) for section in snapshot.values()),
    }
    if compiled_available():
        result_c, snap_c, _ = _run_opera_telemetry(True, kernel="c")
        if result_c != armed_result:
            raise SystemExit(
                "telemetry kernel differential FAILED: c-kernel FctResult "
                "!= py FctResult"
            )
        if snap_c != snapshot:
            diff = {
                k
                for k in set(snap_c) | set(snapshot)
                if snap_c.get(k) != snapshot.get(k)
            }
            raise SystemExit(
                "telemetry kernel differential FAILED: c-kernel metric "
                f"snapshot != py snapshot (differing keys: {sorted(diff)})"
            )
        record["kernel_identical"] = True
    return record


# ----------------------------------------------------------- sharded fig07


def run_sharded_bench(
    scale: str, workers_list: tuple[int, ...], executor: str | None = None
) -> dict:
    """The full fig07 grid through the sharded Runner, per worker count.

    Every run starts from a cold cell cache (fresh temp dir), so the wall
    clock measures execution + merge, not cache reads; cells/sec is the
    scheduling-level throughput number the CI gate tracks. ``executor``
    selects the Runner backend (``--sharded-executor distributed``
    measures the TCP coordinator/worker path, auto-spawned local workers,
    including their process-startup cost).
    """
    from repro.scenarios import ResultCache, Runner, get

    plan = get("fig07").shard_plan(**get("fig07").bind({"scale": scale}))
    runs = {}
    base_wall = None
    for workers in workers_list:
        with tempfile.TemporaryDirectory() as tmp:
            start = time.perf_counter()
            result = Runner(
                workers=workers, cache=ResultCache(tmp), executor=executor
            ).run(names=["fig07"], overrides={"scale": scale})[0]
            wall = time.perf_counter() - start
        assert result.cells is not None and result.cells[0] == len(plan)
        if base_wall is None:
            base_wall = wall
        runs[f"workers_{workers}"] = {
            "workers": workers,
            "wall_s": round(wall, 4),
            "cells": len(plan),
            "cells_per_sec": round(len(plan) / wall, 4),
            "speedup_vs_first": round(base_wall / wall, 2),
        }
    # Price the chaos harness at rest: the same workload with the
    # injector armed but every fault probability zero (REPRO_CHAOS with
    # only a seed) costs one env lookup plus one rng draw per frame/lease
    # decision. The ratio pins that "armed but quiet" stays noise — the
    # seam must be free when nobody is injecting faults.
    chaos_wall = None
    if workers_list:
        saved = os.environ.get("REPRO_CHAOS")
        os.environ["REPRO_CHAOS"] = "seed=1"
        try:
            with tempfile.TemporaryDirectory() as tmp:
                start = time.perf_counter()
                Runner(
                    workers=workers_list[0],
                    cache=ResultCache(tmp),
                    executor=executor,
                ).run(names=["fig07"], overrides={"scale": scale})
                chaos_wall = time.perf_counter() - start
        finally:
            if saved is None:
                os.environ.pop("REPRO_CHAOS", None)
            else:
                os.environ["REPRO_CHAOS"] = saved

    record = {
        "scale": scale,
        "cells": len(plan),
        "cpu_count": os.cpu_count(),
        "runs": runs,
    }
    if chaos_wall is not None:
        record["chaos_overhead"] = {
            "workers": workers_list[0],
            "off_wall_s": round(base_wall, 4),
            "armed_wall_s": round(chaos_wall, 4),
            "ratio": round(chaos_wall / base_wall, 4),
        }
    if executor is not None:
        record["executor"] = executor
    return record


def format_rows(doc: dict) -> list[str]:
    rows = []
    for name, eng in doc["engines"].items():
        rows.append(
            f"{name:>11s}: {eng['events']:8d} events "
            f"({eng.get('sched_entries', eng['events']):8d} entries, "
            f"{eng.get('events_per_hop', 0):.4f}/hop) in {eng['wall_s']:6.3f} s "
            f"= {eng['events_per_sec']:>9,d} ev/s  "
            f"({eng['hops_per_sec']:>9,d} hops/s, "
            f"{eng['reference_events_per_sec']:>9,d} ref-ev/s)"
        )
    ref = doc["pre_pr_reference"]
    rows.append(
        f"pre-PR: {ref['events']:8d} events in {ref['wall_s']:6.3f} s "
        f"= {ref['events_per_sec']:>9,d} ev/s"
    )
    rows.append(
        f"speedup vs pre-PR: {doc['speedup_wall_vs_pre_pr']}x wall, "
        f"{doc['speedup_reference_eps_vs_pre_pr']}x reference events/sec"
    )
    if "events_per_hop_vs_pr4" in doc:
        rows.append(
            f"vs PR-4 heap record: {doc['events_per_hop_vs_pr4']:.4f}x "
            f"entries/hop, {doc['hops_per_sec_vs_pr4']}x hops/sec"
        )
    if "kernel_speedup_hops_per_sec" in doc:
        rows.append(
            f"compiled kernel: {doc['kernel_speedup_hops_per_sec']}x "
            f"hops/sec (heap-c vs heap, deterministic observables equal)"
        )
    faults = doc.get("faults_overhead")
    if faults:
        rows.append(
            f"faults armed-but-empty: {faults['armed_wall_s']:.3f} s vs "
            f"{faults['off_wall_s']:.3f} s off = {faults['ratio']:.3f}x "
            f"(events identical)"
        )
        active = faults["active"]
        rows.append(
            f"faults active ({active['component']} {active['fraction']:.0%}): "
            f"{active['wall_s']:.3f} s, {active['blackholed_packets']} "
            f"blackholed, {active['completed']} completed"
            + (
                ", py==c"
                if active.get("kernel_identical")
                else ""
            )
        )
    telemetry = doc.get("telemetry_overhead")
    if telemetry:
        rows.append(
            f"telemetry armed: {telemetry['armed_wall_s']:.3f} s vs "
            f"{telemetry['off_wall_s']:.3f} s off = {telemetry['ratio']:.3f}x "
            f"({telemetry['metrics']} metrics, results identical"
            + (", py==c snapshots" if telemetry.get("kernel_identical") else "")
            + ")"
        )
    if "scheduler_depths" in doc:
        for depth, point in doc["scheduler_depths"]["per_depth"].items():
            rows.append(
                f"depth {int(depth):7,d}: heap {point['heap_ops_per_sec']:>10,d} "
                f"ops/s  wheel {point['wheel_ops_per_sec']:>10,d} ops/s  "
                f"-> {point['winner']}"
            )
        winners = doc["scheduler_depths"]["winner_by_profile"]
        rows.append(
            "scheduler per profile: "
            + "  ".join(f"{p}={w}" for p, w in winners.items())
        )
    for scale, record in doc.get("sharded", {}).items():
        for run in record["runs"].values():
            rows.append(
                f"sharded fig07 ({scale}, {run['workers']} worker(s)): "
                f"{run['cells']} cells in {run['wall_s']:.2f} s = "
                f"{run['cells_per_sec']:.2f} cells/s "
                f"({run['speedup_vs_first']}x vs first)"
            )
        chaos = record.get("chaos_overhead")
        if chaos:
            rows.append(
                f"sharded fig07 ({scale}) chaos armed-but-quiet: "
                f"{chaos['armed_wall_s']:.2f} s vs {chaos['off_wall_s']:.2f} s "
                f"off = {chaos['ratio']:.3f}x"
            )
    return rows


def _best_cells_per_sec(doc: dict, scale: str) -> float | None:
    record = doc.get("sharded", {}).get(scale)
    if not record:
        return None
    return max(run["cells_per_sec"] for run in record["runs"].values())


def check_regression(doc: dict, committed_path: Path) -> int:
    """Exit status: non-zero on a regression.

    Gates ``reference_events_per_sec`` (>2x rule: the margin absorbs
    hosted-runner hardware variance), the deterministic event-count gate
    ``events_per_hop`` (>10% rule — no wall clock involved, so
    entry-count bloat fails crisply even on a noisy 1-core runner)
    together with an exact train-liveness pin (coalescing shifts
    ``events_per_hop`` by well under 10% on this dense workload, so the
    ratio alone cannot notice train formation dying), and sharded
    cells/sec under the >2x rule whenever both the fresh run and the
    committed artifact carry the sharded phase.
    """
    committed = json.loads(committed_path.read_text())
    baseline = committed["engines"]["heap"]["reference_events_per_sec"]
    fresh = doc["engines"]["heap"]["reference_events_per_sec"]
    floor = baseline / 2
    print(
        f"perf-smoke: fresh {fresh:,d} ref-ev/s vs committed {baseline:,d} "
        f"(floor {floor:,.0f})"
    )
    status = 0
    if fresh < floor:
        print("perf-smoke: FAIL — >2x events/sec regression", file=sys.stderr)
        status = 1
    committed_eph = committed["engines"]["heap"].get("events_per_hop")
    fresh_eph = doc["engines"]["heap"].get("events_per_hop")
    if committed_eph is not None and fresh_eph is not None:
        ceiling = committed_eph * 1.10
        print(
            f"perf-smoke: fresh {fresh_eph:.4f} entries/hop vs committed "
            f"{committed_eph:.4f} (ceiling {ceiling:.4f}, deterministic)"
        )
        if fresh_eph > ceiling:
            print(
                "perf-smoke: FAIL — >10% events-per-hop regression "
                "(event-count gate)",
                file=sys.stderr,
            )
            status = 1
    # Coalescing saves only a fraction of a percent of entries on this
    # dense workload, so the ratio ceiling alone cannot notice train
    # formation silently dying; the train count is deterministic too, so
    # pin liveness exactly.
    committed_trains = committed["engines"]["heap"].get("trains", 0)
    fresh_trains = doc["engines"]["heap"].get("trains", 0)
    if committed_trains > 0:
        print(
            f"perf-smoke: fresh {fresh_trains:,d} trains vs committed "
            f"{committed_trains:,d} (must stay > 0)"
        )
        if fresh_trains == 0:
            print(
                "perf-smoke: FAIL — coalescing formed no trains "
                "(event-count gate)",
                file=sys.stderr,
            )
            status = 1
    # Compiled-kernel gates, active only when both the fresh run and the
    # committed artifact carry the heap-c record (a checkout without the
    # extension built skips them with a note instead of failing: the
    # kernel is an accelerator, its absence is a degraded mode, and the
    # dedicated CI kernel job is the place that *requires* the build).
    committed_c = committed["engines"].get("heap-c")
    fresh_c = doc["engines"].get("heap-c")
    if committed_c is not None and fresh_c is None:
        print(
            "perf-smoke: note — committed artifact has a heap-c record but "
            "this run has no compiled kernel; skipping the kernel gates"
        )
    elif committed_c is not None and fresh_c is not None:
        c_floor = committed_c["reference_events_per_sec"] / 2
        print(
            f"perf-smoke [heap-c]: fresh "
            f"{fresh_c['reference_events_per_sec']:,d} ref-ev/s vs committed "
            f"{committed_c['reference_events_per_sec']:,d} "
            f"(floor {c_floor:,.0f})"
        )
        if fresh_c["reference_events_per_sec"] < c_floor:
            print(
                "perf-smoke: FAIL — >2x events/sec regression on the "
                "compiled kernel",
                file=sys.stderr,
            )
            status = 1
        # The kernel must stay a *speedup*: measured 2.05x at record time,
        # gated at 1.5x so hosted-runner noise cannot flake the job while
        # a real fast-path regression (compiled methods silently
        # delegating to Python) still fails crisply.
        speedup = doc.get("kernel_speedup_hops_per_sec")
        if speedup is not None:
            print(
                f"perf-smoke [heap-c]: {speedup}x hops/sec vs py kernel "
                f"(floor 1.5x)"
            )
            if speedup < 1.5:
                print(
                    "perf-smoke: FAIL — compiled kernel speedup below 1.5x "
                    "(fast path not engaging?)",
                    file=sys.stderr,
                )
                status = 1
    shared_scales = set(doc.get("sharded", {})) & set(committed.get("sharded", {}))
    for scale in sorted(shared_scales):
        fresh_cells = _best_cells_per_sec(doc, scale)
        committed_cells = _best_cells_per_sec(committed, scale)
        assert fresh_cells is not None and committed_cells is not None
        print(
            f"perf-smoke [{scale}]: fresh {fresh_cells:.2f} cells/s vs "
            f"committed {committed_cells:.2f} (floor {committed_cells / 2:.2f})"
        )
        if fresh_cells < committed_cells / 2:
            print(
                f"perf-smoke: FAIL — >2x cells/sec regression at {scale} scale",
                file=sys.stderr,
            )
            status = 1
    if status == 0:
        print("perf-smoke: ok")
    return status


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=None,
                        help="write the JSON artifact here")
    parser.add_argument("--check", type=Path, default=None,
                        help="committed BENCH_engine.json to gate against")
    parser.add_argument("--repeat", type=int, default=1,
                        help="take the best of N runs per engine")
    parser.add_argument("--schedulers", default="heap,wheel",
                        help="comma-separated scheduler list")
    parser.add_argument("--kernels", default="py,c",
                        help="comma-separated kernel list (py, c); c is "
                        "skipped with a note when the compiled module is "
                        "not built")
    parser.add_argument("--profile", type=int, default=0, metavar="N",
                        help="run the fig07 workload under cProfile and "
                        "print the top-N cumulative functions")
    parser.add_argument("--no-legacy", action="store_true",
                        help="skip the uncoalesced heap-legacy record")
    parser.add_argument("--depths", action="store_true",
                        help="run the heap-vs-wheel pending-depth bench")
    parser.add_argument("--faults", action="store_true",
                        help="price the dynamic failure subsystem "
                        "(armed-but-empty vs off, plus an active draw)")
    parser.add_argument("--telemetry", action="store_true",
                        help="price the metrics subsystem (armed vs off, "
                        "deterministic-equality checked)")
    parser.add_argument("--sharded", action="append", default=[],
                        metavar="SCALE:W1,W2",
                        help="run the sharded fig07 grid at SCALE for each "
                        "worker count (repeatable), e.g. ci:1,2")
    parser.add_argument("--sharded-executor", default=None,
                        choices=("local", "pool", "distributed"),
                        help="Runner backend for --sharded runs (default: "
                        "pool when workers > 1)")
    args = parser.parse_args(argv)
    schedulers = tuple(s for s in args.schedulers.split(",") if s)
    # Validate every --sharded spec up front: a typo must not cost the
    # minutes the main microbench takes before erroring.
    sharded_specs: list[tuple[str, tuple[int, ...]]] = []
    for spec in args.sharded:
        scale, _, workers_text = spec.partition(":")
        try:
            workers_list = tuple(int(w) for w in workers_text.split(",") if w)
        except ValueError:
            workers_list = ()
        if not scale or not workers_list:
            parser.error(f"--sharded expects SCALE:W1[,W2...], got {spec!r}")
        sharded_specs.append((scale, workers_list))
    if args.profile:
        run_profile(args.profile)
        if (
            args.output is None
            and args.check is None
            and not args.depths
            and not sharded_specs
        ):
            # Profiling only: skip the timed phases, nothing else asked.
            return 0
    kernels = tuple(k for k in args.kernels.split(",") if k)
    doc = run_microbench(
        schedulers,
        repeat=args.repeat,
        legacy=not args.no_legacy,
        kernels=kernels,
    )
    if args.depths:
        doc["scheduler_depths"] = run_depth_bench()
    if args.faults:
        doc["faults_overhead"] = run_faults_overhead()
    if args.telemetry:
        doc["telemetry_overhead"] = run_telemetry_overhead()
    for scale, workers_list in sharded_specs:
        doc.setdefault("sharded", {})[scale] = run_sharded_bench(
            scale, workers_list, executor=args.sharded_executor
        )
    for row in format_rows(doc):
        print(row)
    if args.output is not None:
        args.output.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {args.output}")
    if args.check is not None and args.check.exists():
        return check_regression(doc, args.check)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
