"""Engine microbenchmark: the fig07 packet workload, events/sec tracked.

Runs the Figure 7 reduced-scale workload (Datamining arrivals at 10% load
over all five evaluation networks, 4 ms of arrivals + 10 ms drain) under
each scheduler and records throughput to ``BENCH_engine.json`` so the
engine's perf trajectory is tracked from PR 2 on.

Metrics per engine configuration:

* ``events`` / ``wall_s`` / ``events_per_sec`` — raw dispatch throughput.
  Note that the fast-path engine *eliminates* events (no per-packet
  transmission-done event on an idle line), so its raw events/sec
  understates the win: fewer, heavier events remain.
* ``packet_hops`` / ``hops_per_sec`` — simulated work per second, the
  event-structure-independent measure.
* ``reference_events_per_sec`` — the pre-PR engine's event count for this
  exact workload divided by the current wall time: throughput denominated
  in the *reference* event stream, directly comparable across engine
  rewrites (this is the number the CI perf-smoke gate and the >=3x
  acceptance threshold use).

Two further phases feed the artifact:

* ``--depths`` — a synthetic heap-vs-wheel steady-state bench at
  paper-scale pending depths (prefill N events, then pop-one/push-one).
  The per-profile default scheduler (``fctsim.SCHEDULER_BY_SCALE``) is
  picked from its committed results.
* ``--sharded-workers N[,M...]`` — the sharded fig07 grid through the
  scenario Runner at ``--sharded-scale``, recording wall and cells/sec
  per worker count (the CI perf-smoke job gates on cells/sec with the
  same >2x rule as events/sec).

Usage::

    PYTHONPATH=src python benchmarks/engine_microbench.py \
        --output BENCH_engine.json [--check BENCH_engine.json] [--repeat 3] \
        [--depths] [--sharded-workers 1,2 --sharded-scale ci]

``--check`` compares the fresh run against a committed artifact and exits
non-zero on a >2x regression of ``reference_events_per_sec`` (and of
sharded cells/sec when both artifacts carry the sharded phase).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from heapq import heappop, heappush
from pathlib import Path

from repro.experiments.fctsim import build_network
from repro.net.wheel import TimingWheel
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.distributions import DATAMINING

MS = 1_000_000_000

#: The fixed microbenchmark workload (the fig07 reduced-scale point).
WORKLOAD = {
    "networks": ["opera", "expander", "clos", "rotornet-hybrid", "rotornet"],
    "k": 8,
    "n_racks": 8,
    "load": 0.10,
    "duration_ms": 4.0,
    "drain_ms": 10.0,
    "size_cap": 3_000_000,
    "seed": 0,
}

#: Pre-PR (single-heap, one-event-per-packet) engine measured on this exact
#: workload — committed alongside the fast-path engine so every future run
#: reports its speedup against the same anchor. Event counts are exact
#: (deterministic); the wall clock is the machine that produced this PR.
PRE_PR_REFERENCE = {
    "events": 970_020,
    "wall_s": 3.182,
    "events_per_sec": 304_845,
}


def _all_ports(net):
    """Every Port of a SimNetwork (NICs, host ports, fabric/uplink ports)."""
    for host in net.hosts:
        if host.nic is not None:
            yield host.nic
    yield from getattr(net, "host_ports", {}).values()
    for group in ("uplink_ports", "tor_up", "agg_down", "agg_up", "core_down"):
        for ports in getattr(net, group, []):
            yield from ports.values()
    yield from getattr(net, "fabric_up", [])
    yield from getattr(net, "fabric_down", [])


def run_network(kind: str, scheduler: str) -> dict:
    """One network of the workload; returns events/hops/wall."""
    import os

    prev = os.environ.get("REPRO_SCHEDULER")
    os.environ["REPRO_SCHEDULER"] = scheduler
    try:
        t0 = time.perf_counter()
        net = build_network(
            kind, k=WORKLOAD["k"], n_racks=WORKLOAD["n_racks"], seed=WORKLOAD["seed"]
        )
        arrivals = PoissonArrivals(
            DATAMINING.truncated(WORKLOAD["size_cap"]),
            load=WORKLOAD["load"],
            n_hosts=len(net.hosts),
            hosts_per_rack=sum(1 for h in net.hosts if h.rack == 0),
            seed=WORKLOAD["seed"],
        )
        threshold = getattr(
            getattr(net, "network", None), "bulk_threshold_bytes", 1 << 62
        )
        for flow in arrivals.flows(duration_ps=int(WORKLOAD["duration_ms"] * MS)):
            if flow.size_bytes >= threshold:
                net.start_bulk_flow(
                    flow.src_host, flow.dst_host, flow.size_bytes, flow.time_ps
                )
            else:
                net.start_low_latency_flow(
                    flow.src_host, flow.dst_host, flow.size_bytes, flow.time_ps
                )
        net.run(
            until_ps=int((WORKLOAD["duration_ms"] + WORKLOAD["drain_ms"]) * MS)
        )
        wall = time.perf_counter() - t0
    finally:
        if prev is None:
            os.environ.pop("REPRO_SCHEDULER", None)
        else:
            os.environ["REPRO_SCHEDULER"] = prev
    hops = sum(port.stats.sent_packets for port in _all_ports(net))
    return {
        "network": kind,
        "events": net.sim.events_processed,
        "packet_hops": hops,
        "wall_s": wall,
        "flows": len(net.stats.flows),
        "completed": len(net.stats.completed_flows()),
    }


def run_engine(scheduler: str, repeat: int = 1) -> dict:
    """The full workload under one scheduler; best-of-``repeat`` wall."""
    best: list[dict] | None = None
    for _ in range(repeat):
        rows = [run_network(kind, scheduler) for kind in WORKLOAD["networks"]]
        if best is None or sum(r["wall_s"] for r in rows) < sum(
            r["wall_s"] for r in best
        ):
            best = rows
    assert best is not None
    events = sum(r["events"] for r in best)
    hops = sum(r["packet_hops"] for r in best)
    wall = sum(r["wall_s"] for r in best)
    return {
        "scheduler": scheduler,
        "events": events,
        "packet_hops": hops,
        "wall_s": round(wall, 4),
        "events_per_sec": int(events / wall),
        "hops_per_sec": int(hops / wall),
        "reference_events_per_sec": int(PRE_PR_REFERENCE["events"] / wall),
        "per_network": best,
    }


def run_microbench(
    schedulers: tuple[str, ...] = ("heap", "wheel"), repeat: int = 1
) -> dict:
    engines = {s: run_engine(s, repeat=repeat) for s in schedulers}
    heap = engines.get("heap") or next(iter(engines.values()))
    return {
        "benchmark": "fig07-engine-microbench",
        "workload": WORKLOAD,
        "pre_pr_reference": PRE_PR_REFERENCE,
        "engines": engines,
        "speedup_wall_vs_pre_pr": round(
            PRE_PR_REFERENCE["wall_s"] / heap["wall_s"], 2
        ),
        "speedup_reference_eps_vs_pre_pr": round(
            heap["reference_events_per_sec"] / PRE_PR_REFERENCE["events_per_sec"], 2
        ),
    }


# ---------------------------------------------------------- depth microbench

#: Pending-event depths the scale profiles actually reach, estimated from
#: deployment size (ports + in-flight flows scale with hosts): ci = 64
#: hosts, default = 64 hosts at full horizon, paper = 648 hosts.
PROFILE_DEPTH_ESTIMATE = {"ci": 512, "default": 4096, "paper": 32768}

DEPTHS = (512, 4096, 32768, 262144)


def _depth_point(scheduler: str, depth: int, ops: int) -> float:
    """Steady-state ops/sec at ``depth`` pending events (pop one, push one).

    Delays follow a deterministic LCG over the engine's real magnitudes
    (0.5-2.5 us in integer picoseconds — packet serialization and
    propagation steps), so bucket spread matches what the wheel sees in a
    packet run.
    """
    x = 0x2545F4914F6CDD1D
    def delay() -> int:
        nonlocal x
        x = (x * 6364136223846793005 + 1442695040888963407) & (2**64 - 1)
        return 500_000 + (x >> 40) % 2_000_000

    now = 0
    seq = 0
    if scheduler == "heap":
        heap: list = []
        for _ in range(depth):
            seq += 1
            heappush(heap, (now + delay(), seq, None, ()))
        start = time.perf_counter()
        for _ in range(ops):
            now = heap[0][0]
            heappop(heap)
            seq += 1
            heappush(heap, (now + delay(), seq, None, ()))
        return ops / (time.perf_counter() - start)
    wheel = TimingWheel()
    for _ in range(depth):
        seq += 1
        wheel.push(now + delay(), seq, None, ())
    start = time.perf_counter()
    for _ in range(ops):
        entry = wheel.pop()
        now = entry[0]
        seq += 1
        wheel.push(now + delay(), seq, None, ())
    return ops / (time.perf_counter() - start)


def run_depth_bench(depths: tuple[int, ...] = DEPTHS, ops: int = 100_000) -> dict:
    """Heap vs wheel ops/sec per pending depth + winner per scale profile."""
    per_depth = {}
    for depth in depths:
        heap_ops = _depth_point("heap", depth, ops)
        wheel_ops = _depth_point("wheel", depth, ops)
        per_depth[str(depth)] = {
            "heap_ops_per_sec": int(heap_ops),
            "wheel_ops_per_sec": int(wheel_ops),
            "winner": "heap" if heap_ops >= wheel_ops else "wheel",
        }
    winner_by_profile = {}
    for profile, estimate in PROFILE_DEPTH_ESTIMATE.items():
        nearest = min(depths, key=lambda d: abs(d - estimate))
        winner_by_profile[profile] = per_depth[str(nearest)]["winner"]
    return {
        "ops_per_point": ops,
        "per_depth": per_depth,
        "profile_depth_estimate": PROFILE_DEPTH_ESTIMATE,
        "winner_by_profile": winner_by_profile,
    }


# ----------------------------------------------------------- sharded fig07


def run_sharded_bench(
    scale: str, workers_list: tuple[int, ...], executor: str | None = None
) -> dict:
    """The full fig07 grid through the sharded Runner, per worker count.

    Every run starts from a cold cell cache (fresh temp dir), so the wall
    clock measures execution + merge, not cache reads; cells/sec is the
    scheduling-level throughput number the CI gate tracks. ``executor``
    selects the Runner backend (``--sharded-executor distributed``
    measures the TCP coordinator/worker path, auto-spawned local workers,
    including their process-startup cost).
    """
    from repro.scenarios import ResultCache, Runner, get

    plan = get("fig07").shard_plan(**get("fig07").bind({"scale": scale}))
    runs = {}
    base_wall = None
    for workers in workers_list:
        with tempfile.TemporaryDirectory() as tmp:
            start = time.perf_counter()
            result = Runner(
                workers=workers, cache=ResultCache(tmp), executor=executor
            ).run(names=["fig07"], overrides={"scale": scale})[0]
            wall = time.perf_counter() - start
        assert result.cells is not None and result.cells[0] == len(plan)
        if base_wall is None:
            base_wall = wall
        runs[f"workers_{workers}"] = {
            "workers": workers,
            "wall_s": round(wall, 4),
            "cells": len(plan),
            "cells_per_sec": round(len(plan) / wall, 4),
            "speedup_vs_first": round(base_wall / wall, 2),
        }
    record = {
        "scale": scale,
        "cells": len(plan),
        "cpu_count": os.cpu_count(),
        "runs": runs,
    }
    if executor is not None:
        record["executor"] = executor
    return record


def format_rows(doc: dict) -> list[str]:
    rows = []
    for name, eng in doc["engines"].items():
        rows.append(
            f"{name:>6s}: {eng['events']:8d} events in {eng['wall_s']:6.3f} s "
            f"= {eng['events_per_sec']:>9,d} ev/s  "
            f"({eng['hops_per_sec']:>9,d} hops/s, "
            f"{eng['reference_events_per_sec']:>9,d} ref-ev/s)"
        )
    ref = doc["pre_pr_reference"]
    rows.append(
        f"pre-PR: {ref['events']:8d} events in {ref['wall_s']:6.3f} s "
        f"= {ref['events_per_sec']:>9,d} ev/s"
    )
    rows.append(
        f"speedup vs pre-PR: {doc['speedup_wall_vs_pre_pr']}x wall, "
        f"{doc['speedup_reference_eps_vs_pre_pr']}x reference events/sec"
    )
    if "scheduler_depths" in doc:
        for depth, point in doc["scheduler_depths"]["per_depth"].items():
            rows.append(
                f"depth {int(depth):7,d}: heap {point['heap_ops_per_sec']:>10,d} "
                f"ops/s  wheel {point['wheel_ops_per_sec']:>10,d} ops/s  "
                f"-> {point['winner']}"
            )
        winners = doc["scheduler_depths"]["winner_by_profile"]
        rows.append(
            "scheduler per profile: "
            + "  ".join(f"{p}={w}" for p, w in winners.items())
        )
    for scale, record in doc.get("sharded", {}).items():
        for run in record["runs"].values():
            rows.append(
                f"sharded fig07 ({scale}, {run['workers']} worker(s)): "
                f"{run['cells']} cells in {run['wall_s']:.2f} s = "
                f"{run['cells_per_sec']:.2f} cells/s "
                f"({run['speedup_vs_first']}x vs first)"
            )
    return rows


def _best_cells_per_sec(doc: dict, scale: str) -> float | None:
    record = doc.get("sharded", {}).get(scale)
    if not record:
        return None
    return max(run["cells_per_sec"] for run in record["runs"].values())


def check_regression(doc: dict, committed_path: Path) -> int:
    """Exit status: non-zero on a >2x regression.

    Gates ``reference_events_per_sec`` always, and sharded cells/sec under
    the same >2x rule whenever both the fresh run and the committed
    artifact carry the sharded phase.
    """
    committed = json.loads(committed_path.read_text())
    baseline = committed["engines"]["heap"]["reference_events_per_sec"]
    fresh = doc["engines"]["heap"]["reference_events_per_sec"]
    floor = baseline / 2
    print(
        f"perf-smoke: fresh {fresh:,d} ref-ev/s vs committed {baseline:,d} "
        f"(floor {floor:,.0f})"
    )
    status = 0
    if fresh < floor:
        print("perf-smoke: FAIL — >2x events/sec regression", file=sys.stderr)
        status = 1
    shared_scales = set(doc.get("sharded", {})) & set(committed.get("sharded", {}))
    for scale in sorted(shared_scales):
        fresh_cells = _best_cells_per_sec(doc, scale)
        committed_cells = _best_cells_per_sec(committed, scale)
        assert fresh_cells is not None and committed_cells is not None
        print(
            f"perf-smoke [{scale}]: fresh {fresh_cells:.2f} cells/s vs "
            f"committed {committed_cells:.2f} (floor {committed_cells / 2:.2f})"
        )
        if fresh_cells < committed_cells / 2:
            print(
                f"perf-smoke: FAIL — >2x cells/sec regression at {scale} scale",
                file=sys.stderr,
            )
            status = 1
    if status == 0:
        print("perf-smoke: ok")
    return status


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=None,
                        help="write the JSON artifact here")
    parser.add_argument("--check", type=Path, default=None,
                        help="committed BENCH_engine.json to gate against")
    parser.add_argument("--repeat", type=int, default=1,
                        help="take the best of N runs per engine")
    parser.add_argument("--schedulers", default="heap,wheel",
                        help="comma-separated scheduler list")
    parser.add_argument("--depths", action="store_true",
                        help="run the heap-vs-wheel pending-depth bench")
    parser.add_argument("--sharded", action="append", default=[],
                        metavar="SCALE:W1,W2",
                        help="run the sharded fig07 grid at SCALE for each "
                        "worker count (repeatable), e.g. ci:1,2")
    parser.add_argument("--sharded-executor", default=None,
                        choices=("local", "pool", "distributed"),
                        help="Runner backend for --sharded runs (default: "
                        "pool when workers > 1)")
    args = parser.parse_args(argv)
    schedulers = tuple(s for s in args.schedulers.split(",") if s)
    # Validate every --sharded spec up front: a typo must not cost the
    # minutes the main microbench takes before erroring.
    sharded_specs: list[tuple[str, tuple[int, ...]]] = []
    for spec in args.sharded:
        scale, _, workers_text = spec.partition(":")
        try:
            workers_list = tuple(int(w) for w in workers_text.split(",") if w)
        except ValueError:
            workers_list = ()
        if not scale or not workers_list:
            parser.error(f"--sharded expects SCALE:W1[,W2...], got {spec!r}")
        sharded_specs.append((scale, workers_list))
    doc = run_microbench(schedulers, repeat=args.repeat)
    if args.depths:
        doc["scheduler_depths"] = run_depth_bench()
    for scale, workers_list in sharded_specs:
        doc.setdefault("sharded", {})[scale] = run_sharded_bench(
            scale, workers_list, executor=args.sharded_executor
        )
    for row in format_rows(doc):
        print(row)
    if args.output is not None:
        args.output.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {args.output}")
    if args.check is not None and args.check.exists():
        return check_regression(doc, args.check)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
