"""Figure 1: published flow-size distributions (flows and bytes CDFs)."""

from conftest import emit, run_scenario

from repro.experiments import fig01_distributions as exp


def test_fig01_flow_distributions(benchmark):
    data = run_scenario(benchmark, "fig01")
    emit("Figure 1: flow/byte CDFs", exp.format_rows(data))
    # Paper: vast majority of datamining *bytes* are in bulk (>15 MB) flows,
    # while websearch has none at all above the threshold.
    assert data["datamining"]["bulk_byte_fraction_15MB"][0] > 0.75
    assert data["websearch"]["bulk_byte_fraction_15MB"][0] < 0.05
    # Flow-count CDFs are dominated by small flows in all three workloads.
    for name in ("datamining", "websearch", "hadoop"):
        flows_at_1mb = data[name]["flow_cdf"][4]  # 1e6 bytes
        assert flows_at_1mb > 0.5
