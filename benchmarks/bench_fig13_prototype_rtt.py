"""Figure 13: prototype RTTs with and without bulk background traffic."""

from conftest import emit, run_scenario

from repro.experiments import fig13_prototype as exp


def test_fig13_prototype_rtt(benchmark):
    data = run_scenario(benchmark, "fig13", n_pings=80)
    emit("Figure 13: ping-pong RTT (8 ToRs x 4 rotors)", exp.format_rows(data))
    idle, busy = data["idle"], data["with_bulk"]
    assert len(idle) >= 60 and len(busy) >= 60

    def median(xs):
        return xs[len(xs) // 2]

    # Paper: idle RTTs are a few us per hop; bulk background adds up to one
    # MTU serialization per hop (the CDF shifts right, tail grows).
    assert median(idle) < 60.0
    assert median(busy) >= median(idle)
    assert max(busy) > max(idle)
