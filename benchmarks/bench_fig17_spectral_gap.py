"""Figure 17 / Appendix D: spectral gap vs path length."""

from conftest import emit, run_scenario

from repro.experiments import fig17_spectral as exp


def test_fig17_spectral_gap(benchmark):
    data = run_scenario(benchmark, "fig17")
    emit("Figure 17: spectral gaps", exp.format_rows(data))
    opera = data["opera"]
    statics = {r.label: r for r in data["static"]}
    # Every slice is a genuine expander (positive spectral gap).
    assert all(r.spectral_gap > 0 for r in opera)
    # Paper: Opera's average path length comes very close to the best
    # achievable by a static expander at equal cost (u=6 has the same
    # per-slice degree budget as Opera's 5 active uplinks + identity).
    opera_avg = sum(r.average_path_length for r in opera) / len(opera)
    best_static = min(r.average_path_length for r in statics.values())
    assert opera_avg < best_static + 1.0
    # More uplinks -> shorter static paths (u=8 beats u=5).
    assert (
        statics["expander-u8"].average_path_length
        < statics["expander-u5"].average_path_length
    )
