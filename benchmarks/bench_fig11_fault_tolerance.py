"""Figure 11: connectivity loss under random failures (108-rack Opera)."""

from conftest import emit, run_scenario

from repro.experiments import fig11_faults as exp


def test_fig11_fault_tolerance(benchmark):
    data = run_scenario(benchmark, "fig11")
    emit("Figure 11: Opera fault tolerance", exp.format_rows(data))
    links = dict((f, r) for f, r in data["links"])
    racks = dict((f, r) for f, r in data["racks"])
    switches = dict((f, r) for f, r in data["switches"])
    # Paper: no connectivity loss at ~4% links / ~7% ToRs / 2 of 6 switches.
    assert links[0.025].any_slice_loss == 0.0
    assert racks[0.05].any_slice_loss == 0.0
    assert switches[0.2].any_slice_loss == 0.0  # 1/6 switches
    # Heavy failures do disconnect pairs.
    assert links[0.4].any_slice_loss > 0.0
    # Loss integrated across slices is at least the worst slice's.
    for series in data.values():
        for _f, report in series:
            assert report.any_slice_loss >= report.worst_slice_loss
