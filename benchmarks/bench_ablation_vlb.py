"""Ablation: RotorLB's two-hop VLB (section 4.2.2 design choice).

The paper adopts RotorNet's automatic transition to Valiant load balancing
for skewed bulk traffic. This ablation quantifies it: a single hot rack
pair with and without VLB, in both the fluid model and the packet
simulator, through the registered ``ablation_vlb`` scenario.
"""

from conftest import emit, run_scenario

from repro.experiments.ablations import format_vlb


def test_ablation_vlb(benchmark):
    results = run_scenario(benchmark, "ablation_vlb")
    emit("Ablation: two-hop VLB for skewed bulk traffic", format_vlb(results))
    # VLB multiplies a hot pair's capacity by spreading over all racks:
    # expect a large completion-time improvement at both fidelities.
    assert results["fluid_vlb=True"] < results["fluid_vlb=False"] / 2
    assert results["packet_vlb=True"] is not None
    assert results["packet_vlb=False"] is None or (
        results["packet_vlb=True"] <= results["packet_vlb=False"]
    )
