"""Ablation: RotorLB's two-hop VLB (section 4.2.2 design choice).

The paper adopts RotorNet's automatic transition to Valiant load balancing
for skewed bulk traffic. This ablation quantifies it: a single hot rack
pair with and without VLB, in both the fluid model and the packet
simulator.
"""

import numpy as np
from conftest import emit, run_once

from repro.core.schedule import OperaSchedule
from repro.core.timing import TimingParams
from repro.core.topology import OperaNetwork
from repro.fluid import RotorFluidSimulation
from repro.net import OperaSimNetwork

MS = 1_000_000_000


def _run():
    # Fluid, paper scale: 30 MB rack-pair backlog.
    results = {}
    for vlb in (True, False):
        sched = OperaSchedule(108, 6, seed=0)
        timing = TimingParams(n_racks=108, n_switches=6)
        sim = RotorFluidSimulation(sched, timing, hosts_per_rack=6, enable_vlb=vlb)
        demand = np.zeros((108, 108))
        demand[0][1] = 30e6
        sim.add_demand(demand)
        res = sim.run(max_slices=8000)
        results[("fluid", vlb)] = res.pair_completion_ms[(0, 1)]
    # Packet level, reduced scale: 2 MB host flow.
    for vlb in (True, False):
        sim = OperaSimNetwork(OperaNetwork(k=8, n_racks=8, seed=0), enable_vlb=vlb)
        rec = sim.start_bulk_flow(0, 30, 2_000_000)
        sim.run(60 * MS)
        results[("packet", vlb)] = rec.fct_ps / 1e9 if rec.complete else None
    return results


def test_ablation_vlb(benchmark):
    results = run_once(benchmark, _run)
    rows = [
        f"{level:>7s} vlb={vlb!s:5s} completion: "
        + (f"{value:.2f} ms" if value is not None else "unfinished")
        for (level, vlb), value in results.items()
    ]
    emit("Ablation: two-hop VLB for skewed bulk traffic", rows)
    # VLB multiplies a hot pair's capacity by spreading over all racks:
    # expect a large completion-time improvement at both fidelities.
    assert results[("fluid", True)] < results[("fluid", False)] / 2
    assert results[("packet", True)] is not None
    assert results[("packet", False)] is None or (
        results[("packet", True)] <= results[("packet", False)]
    )
