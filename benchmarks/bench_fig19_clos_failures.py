"""Figure 19 / Appendix E: folded Clos failure analysis."""

from conftest import emit, run_once

from repro.experiments import fig18_failure_paths as exp


def test_fig19_clos_failures(benchmark):
    data = run_once(benchmark, exp.run_clos)
    emit("Figure 19: 3:1 folded Clos under failures", exp.format_rows(data, "clos"))
    links = dict(data["links"])
    # The 3:1 Clos has only 3 uplinks per ToR: it starts disconnecting at
    # much lower link-failure rates than Opera (App. E).
    assert links[0.4].any_slice_loss > 0.0
    assert links[0.01].any_slice_loss <= 0.02
    # Intact paths stay at 2/4 switch hops (no detours exist in a Clos).
    assert links[0.01].worst_path_length <= 4
