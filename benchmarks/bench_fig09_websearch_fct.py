"""Figure 9: Websearch FCTs — all-indirect worst case (reduced scale)."""

from conftest import emit, run_scenario

from repro.experiments import fig09_websearch as exp


def test_fig09_websearch_fct(benchmark):
    results = run_scenario(
        benchmark,
        "fig09",
        loads=(0.01, 0.05, 0.10),
        networks=("opera", "expander", "clos"),
        duration_ms=5.0,
    )
    emit("Figure 9: Websearch FCT (reduced scale)", exp.format_rows(results))
    by = {(r.network, r.load): r for r in results}
    # Paper: all three networks provide equivalent FCTs at <= 10% load
    # (Opera forwards just like the expander here, at lower capacity).
    for load in (0.05, 0.10):
        opera = by[("opera", load)].bucket_p99(10_000)
        expander = by[("expander", load)].bucket_p99(10_000)
        if opera is None or expander is None:
            continue
        assert opera < 20 * expander
    # Everything is below the bulk threshold: flows complete via NDP.
    # (At 1% load only a handful of flows arrive; allow one straggler that
    # lands too close to the horizon to drain.)
    for key, r in by.items():
        assert r.completed >= min(r.n_flows - 1, 0.8 * r.n_flows), key
