"""Figure 12: throughput vs alpha at k=24 (5,184 hosts)."""

from conftest import emit, run_scenario

from repro.experiments import fig12_cost_sensitivity as exp


def test_fig12_cost_sensitivity_k24(benchmark):
    data = run_scenario(benchmark, "fig12", k=24, alphas=(1.0, 1.3, 1.7, 2.0))
    emit("Figure 12: throughput vs alpha (k=24)", exp.format_rows(data))
    alpha = 1.3

    def value(pattern, network):
        return dict(data[pattern][network])[alpha]

    # Paper: Clos throughput is pattern independent and rises with alpha.
    clos_vals = {p: value(p, "clos") for p in exp.PATTERNS}
    assert max(clos_vals.values()) - min(clos_vals.values()) < 0.01
    clos_curve = [v for _a, v in data["permutation"]["clos"]]
    assert clos_curve == sorted(clos_curve)
    # Paper: expander throughput falls as traffic becomes less skewed.
    assert value("hotrack", "expander") > value("permutation", "expander")
    # Paper: Opera dips with decreasing skew then recovers for uniform.
    assert value("hotrack", "opera") > value("skew", "opera")
    assert value("skew", "opera") > value("permutation", "opera")
    assert value("all_to_all", "opera") > value("permutation", "opera")
    # Paper: Opera wins permutation and moderate skew while alpha < ~1.8...
    assert value("permutation", "opera") > value("permutation", "expander")
    assert value("skew", "opera") > value("skew", "expander")
    # ...and delivers ~2x on all-to-all even at alpha = 2.
    a2a = {net: dict(data["all_to_all"][net])[2.0] for net in ("opera", "expander", "clos")}
    assert a2a["opera"] > 1.4 * a2a["clos"]
