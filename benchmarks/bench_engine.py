"""Engine throughput: fig07 microbenchmark under both schedulers.

Runs the fixed Figure 7 packet workload through the heap and timing-wheel
schedulers, asserts the fast-path engine's floor, and writes a local
``BENCH_engine.local.json`` snapshot. The *committed* ``BENCH_engine.json``
(the CI perf-smoke anchor) is only updated deliberately, via::

    PYTHONPATH=src python benchmarks/engine_microbench.py \
        --repeat 3 --output BENCH_engine.json
"""

import json
from pathlib import Path

from conftest import emit, run_once

from engine_microbench import PRE_PR_REFERENCE, format_rows, run_microbench

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_engine.local.json"


def test_engine_microbench(benchmark):
    doc = run_once(benchmark, run_microbench)
    emit("Engine microbenchmark (fig07 workload)", format_rows(doc))
    ARTIFACT.write_text(json.dumps(doc, indent=2) + "\n")
    heap = doc["engines"]["heap"]
    wheel = doc["engines"]["wheel"]
    # Identical workload, identical results: both schedulers dispatch the
    # same number of events and hops (bit-identical runs).
    assert heap["events"] == wheel["events"]
    assert heap["packet_hops"] == wheel["packet_hops"]
    # The fast-path engine must stay comfortably ahead of the pre-PR
    # engine's event throughput on the reference stream (>=3x at commit
    # time; this floor only guards against catastrophic regressions since
    # CI machines vary).
    assert heap["reference_events_per_sec"] > PRE_PR_REFERENCE["events_per_sec"]
