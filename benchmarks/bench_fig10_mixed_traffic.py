"""Figure 10: throughput vs Websearch share of a mixed workload."""

from conftest import emit, run_scenario

from repro.experiments import fig10_mixed as exp


def test_fig10_mixed_traffic(benchmark):
    data = run_scenario(benchmark, "fig10")
    emit("Figure 10: mixed Websearch + shuffle", exp.format_rows(data))
    opera = dict(data["opera"])
    expander = dict(data["expander"])
    clos = dict(data["clos"])
    # Paper: at low websearch load Opera delivers up to ~4x the static
    # networks' throughput (>= 2x with our idealized static models)...
    low = min(opera)
    assert opera[low] > 2.0 * expander[low]
    assert opera[low] > 2.0 * clos[low]
    # ...and still ~2x at 10% websearch load.
    assert opera[0.10] > 1.5 * expander[0.10]
    # Opera's bulk advantage shrinks as websearch load grows.
    loads = sorted(opera)
    gaps = [opera[w] - expander[w] for w in loads]
    assert gaps[0] >= gaps[-1]
