"""Figure 15: throughput vs alpha at k=12 (matches Figure 12's scaling)."""

from conftest import emit, run_scenario

from repro.experiments import fig12_cost_sensitivity as exp


def test_fig15_cost_sensitivity_k12(benchmark):
    data = run_scenario(benchmark, "fig12", k=12, alphas=(1.0, 1.3, 1.7, 2.0))
    emit("Figure 15: throughput vs alpha (k=12)", exp.format_rows(data))

    def value(pattern, network, alpha=1.3):
        return dict(data[pattern][network])[alpha]

    # Same qualitative panel as Figure 12 (the paper: "nearly identical
    # performance-cost scaling" across k=12 and k=24).
    assert value("hotrack", "opera") > value("skew", "opera") > value(
        "permutation", "opera"
    )
    assert value("permutation", "opera") > value("permutation", "expander")
    assert value("all_to_all", "opera") > 1.4 * value("all_to_all", "clos")
