"""Ablation: synchronization guard bands (section 3.5).

The paper: "each us of guard time contributes a 1% relative reduction in
low-latency capacity and a 0.2% reduction for bulk traffic", and bulk
throughput scales with the duty cycle. Swept here over 0-10 us guards.
"""

from conftest import emit, run_once

from repro.core.schedule import OperaSchedule
from repro.core.timing import PS_PER_US, TimingParams
from repro.fluid import RotorFluidSimulation


def _run():
    rows = []
    for guard_us in (0, 1, 2, 5, 10):
        timing = TimingParams(
            n_racks=108, n_switches=6, guard_ps=guard_us * PS_PER_US
        )
        sched = OperaSchedule(24, 6, seed=0)
        fluid_timing = TimingParams(
            n_racks=24, n_switches=6, guard_ps=guard_us * PS_PER_US
        )
        sim = RotorFluidSimulation(
            sched,
            TimingParams(
                n_racks=24,
                n_switches=6,
                reconfiguration_ps=fluid_timing.reconfiguration_ps
                + 2 * guard_us * PS_PER_US,
            ),
            hosts_per_rack=6,
        )
        sim.add_all_to_all(100_000)
        res = sim.run(max_slices=6000)
        mid = [v for _t, v in res.throughput_series[: res.slices_run // 2]]
        rows.append(
            {
                "guard_us": guard_us,
                "ll_factor": timing.low_latency_capacity_factor,
                "bulk_factor": timing.bulk_capacity_factor,
                "shuffle_throughput": sum(mid) / len(mid),
            }
        )
    return rows


def test_ablation_guard_bands(benchmark):
    rows = run_once(benchmark, _run)
    emit(
        "Ablation: guard bands",
        [
            f"guard {r['guard_us']:2d} us: low-latency x{r['ll_factor']:.3f}  "
            f"bulk x{r['bulk_factor']:.4f}  shuffle thr {r['shuffle_throughput']:.3f}"
            for r in rows
        ],
    )
    by = {r["guard_us"]: r for r in rows}
    # Paper's coefficients: 1%/us low-latency, ~0.2%/us bulk.
    assert abs((1 - by[1]["ll_factor"]) - 0.01) < 1e-6
    assert (1 - by[1]["bulk_factor"]) < 0.003
    # Measured shuffle throughput decreases monotonically with guard time.
    throughputs = [r["shuffle_throughput"] for r in rows]
    assert all(a >= b - 1e-9 for a, b in zip(throughputs, throughputs[1:]))
