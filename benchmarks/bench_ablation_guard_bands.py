"""Ablation: synchronization guard bands (section 3.5).

The paper: "each us of guard time contributes a 1% relative reduction in
low-latency capacity and a 0.2% reduction for bulk traffic", and bulk
throughput scales with the duty cycle. Swept over 0-10 us guards through
the registered ``ablation_guard_bands`` scenario.
"""

from conftest import emit, run_scenario

from repro.experiments.ablations import format_guard_bands


def test_ablation_guard_bands(benchmark):
    rows = run_scenario(benchmark, "ablation_guard_bands")
    emit("Ablation: guard bands", format_guard_bands(rows))
    by = {r["guard_us"]: r for r in rows}
    # Paper's coefficients: 1%/us low-latency, ~0.2%/us bulk.
    assert abs((1 - by[1]["ll_factor"]) - 0.01) < 1e-6
    assert (1 - by[1]["bulk_factor"]) < 0.003
    # Measured shuffle throughput decreases monotonically with guard time.
    throughputs = [r["shuffle_throughput"] for r in rows]
    assert all(a >= b - 1e-9 for a, b in zip(throughputs, throughputs[1:]))
