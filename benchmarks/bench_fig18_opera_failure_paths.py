"""Figure 18 / Appendix E: Opera path stretch under failures."""

from conftest import emit, run_once

from repro.experiments import fig18_failure_paths as exp


def test_fig18_opera_failure_paths(benchmark):
    data = run_once(benchmark, exp.run_opera)
    emit("Figure 18: Opera path lengths under failures", exp.format_rows(data, "opera"))
    links = dict(data["links"])
    # Routing around failures stretches paths monotonically-ish: the 40%
    # sweep must be strictly longer than the 1% sweep.
    assert links[0.4].average_path_length > links[0.01].average_path_length
    # In the paper's operating regime (<= 20% failures) worst-case finite
    # paths stay close to Figure 18's ~10-15 hop ceiling; only the 40%
    # devastation point grows beyond it.
    for series in data.values():
        for fraction, report in series:
            if fraction <= 0.2:
                assert report.worst_path_length <= 15
