"""Figure 7: Datamining FCTs vs load on the four networks (reduced scale)."""

from conftest import emit, run_scenario

from repro.experiments import fig07_datamining as exp


def test_fig07_datamining_fct(benchmark):
    results = run_scenario(
        benchmark,
        "fig07",
        loads=(0.01, 0.10, 0.25),
        networks=("opera", "expander", "clos", "rotornet-hybrid", "rotornet"),
        duration_ms=3.0,  # ms of arrivals per configuration (reduced scale)
    )
    emit("Figure 7: Datamining FCT (reduced scale)", exp.format_rows(results))
    by = {(r.network, r.load): r for r in results}

    def p99_small(kind, load):
        return by[(kind, load)].bucket_p99(0) or by[(kind, load)].bucket_p99(10_000)

    # Paper: at low load every network with a packet path serves short
    # flows in tens-to-hundreds of microseconds...
    for kind in ("opera", "expander", "clos", "rotornet-hybrid"):
        v = p99_small(kind, 0.10)
        assert v is not None and v < 1_000, (kind, v)
    # ...while non-hybrid RotorNet pays orders of magnitude (short flows
    # must wait for buffered circuits), Figure 7c.
    rotor = p99_small("rotornet", 0.10)
    opera = p99_small("opera", 0.10)
    assert rotor is not None and opera is not None
    assert rotor > 5 * opera
    # Every offered flow eventually completes at low load.
    for kind in ("opera", "expander", "clos"):
        r = by[(kind, 0.10)]
        assert r.completed >= 0.9 * r.n_flows
