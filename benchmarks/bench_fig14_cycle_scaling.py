"""Figure 14 / Appendix B: relative cycle time vs ToR radix."""

from conftest import emit, run_scenario

from repro.experiments import fig14_cycle_scaling as exp


def test_fig14_cycle_scaling(benchmark):
    rows = run_scenario(benchmark, "fig14")
    emit("Figure 14: cycle time scaling", exp.format_rows(rows))
    by_k = {r["k"]: r for r in rows}
    # Paper: without groups, k=64 costs ~28x the k=12 cycle (quadratic)...
    assert abs(by_k[64]["relative_cycle_no_groups"] - 28.4) < 1.0
    # ...with groups of ~6 the increase is only ~6x (linear-ish).
    assert by_k[64]["relative_cycle_grouped"] < 8.0
    # Grouping never lengthens the cycle.
    for r in rows:
        assert r["relative_cycle_grouped"] <= r["relative_cycle_no_groups"] + 1e-9
