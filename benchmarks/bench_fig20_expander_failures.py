"""Figure 20 / Appendix E: u=7 expander failure analysis."""

from conftest import emit, run_once

from repro.experiments import fig18_failure_paths as exp


def test_fig20_expander_failures(benchmark):
    data = run_once(benchmark, exp.run_expander)
    emit("Figure 20: u=7 expander under failures", exp.format_rows(data, "expander"))
    links = dict(data["links"])
    racks = dict(data["racks"])
    # Paper: the u=7 expander (higher fanout) tolerates failures best —
    # still connected at 10% link failures.
    assert links[0.1].any_slice_loss == 0.0
    assert racks[0.05].any_slice_loss == 0.0
    # Paths stretch as links fail.
    assert links[0.4].average_path_length >= links[0.01].average_path_length
