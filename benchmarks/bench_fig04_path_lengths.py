"""Figure 4: path-length CDFs of the cost-equivalent 648-host trio."""

from conftest import emit, run_scenario

from repro.experiments import fig04_path_lengths as exp


def test_fig04_path_lengths(benchmark):
    data = run_scenario(benchmark, "fig04", k=12, n_racks=108, seed=0, n_slices=27)
    emit("Figure 4: path length CDFs (648-host trio)", exp.format_rows(data))
    opera, expander, clos = data["opera"], data["expander"], data["clos"]
    # Paper: Opera's paths are almost always substantially shorter than the
    # folded Clos's and only marginally longer than the u=7 expander's.
    assert opera.average() < clos.average()
    assert expander.average() <= opera.average() + 1.0
    # Nearly all Opera paths fit in 5 hops (the epsilon budget).
    assert opera.fraction_at_most(5) > 0.99
    # Clos paths are 2 (intra-pod) or 4 (cross-pod) switch hops.
    assert set(clos.counts) == {2, 4}
