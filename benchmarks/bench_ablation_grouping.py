"""Ablation: reconfiguration-group size (Appendix B design choice).

Larger groups shorten the cycle (lower bulk waiting, smaller amortization
threshold) but take more switches down per slice (less instantaneous
expander capacity and direct supply). Swept on a 48-rack, 12-switch
network through the registered ``ablation_grouping`` scenario.
"""

from conftest import emit, run_scenario

from repro.experiments.ablations import format_grouping


def test_ablation_grouping(benchmark):
    rows = run_scenario(benchmark, "ablation_grouping")
    emit(
        "Ablation: reconfiguration group size (48 racks, u=12)",
        format_grouping(rows),
    )
    by = {r["group"]: r for r in rows}
    # Smaller groups -> shorter cycles (less bulk delay)...
    assert by[3]["cycle_ms"] < by[6]["cycle_ms"] < by[12]["cycle_ms"]
    # ...but fewer live switches -> longer expander paths.
    assert by[3]["avg_path"] >= by[12]["avg_path"] - 1e-9
