"""Ablation: reconfiguration-group size (Appendix B design choice).

Larger groups shorten the cycle (lower bulk waiting, smaller amortization
threshold) but take more switches down per slice (less instantaneous
expander capacity and direct supply). Swept on a 48-rack, 12-switch
network.
"""

from conftest import emit, run_once

from repro.core.routing import OperaRouting
from repro.core.schedule import OperaSchedule
from repro.core.timing import TimingParams


def _run():
    rows = []
    for group in (12, 6, 4, 3):
        sched = OperaSchedule(48, 12, group_size=group, seed=0)
        timing = TimingParams(n_racks=48, n_switches=12, group_size=group)
        routing = OperaRouting(sched)
        hist = routing.path_length_histogram()
        total = sum(hist.values())
        avg = sum(h * c for h, c in hist.items()) / total
        rows.append(
            {
                "group": group,
                "down_per_slice": 12 // group,
                "cycle_slices": sched.cycle_slices,
                "cycle_ms": timing.cycle_ps / 1e9,
                "threshold_MB": timing.bulk_threshold_bytes / 1e6,
                "avg_path": avg,
            }
        )
    return rows


def test_ablation_grouping(benchmark):
    rows = run_once(benchmark, _run)
    emit(
        "Ablation: reconfiguration group size (48 racks, u=12)",
        [
            f"group {r['group']:2d} ({r['down_per_slice']} down/slice): "
            f"cycle {r['cycle_slices']:3d} slices = {r['cycle_ms']:5.2f} ms, "
            f"threshold {r['threshold_MB']:4.1f} MB, avg path {r['avg_path']:.2f}"
            for r in rows
        ],
    )
    by = {r["group"]: r for r in rows}
    # Smaller groups -> shorter cycles (less bulk delay)...
    assert by[3]["cycle_ms"] < by[6]["cycle_ms"] < by[12]["cycle_ms"]
    # ...but fewer live switches -> longer expander paths.
    assert by[3]["avg_path"] >= by[12]["avg_path"] - 1e-9
