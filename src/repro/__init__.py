"""repro — a from-scratch Python reproduction of Opera (NSDI 2020).

Opera ("Expanding across time to deliver bandwidth efficiency and low
latency", Mellette et al.) is a datacenter network built from packet-switched
ToRs and rotor circuit switches. At every instant the instantiated circuits
form an expander graph, so latency-sensitive traffic is forwarded
immediately over short multi-hop paths; integrated across one reconfiguration
cycle, every rack pair receives a direct circuit, so bulk traffic rides
one-hop, bandwidth-tax-free paths.

Top-level subpackages:

* :mod:`repro.core` — matchings, rotor schedule, routing, timing (the
  paper's contribution).
* :mod:`repro.topologies` — cost-equivalent baselines: folded Clos, static
  expander, RotorNet.
* :mod:`repro.net` — packet-level event simulator with NDP and RotorLB
  transports (htsim substitute).
* :mod:`repro.fluid` — slice-granularity fluid simulator for paper-scale
  throughput experiments.
* :mod:`repro.workloads` — published flow-size distributions and traffic
  patterns.
* :mod:`repro.analysis` — expansion/path/failure/cost/throughput analyses.
"""

from .core import (
    FailureSet,
    ForwardingPipeline,
    OperaNetwork,
    OperaRouting,
    OperaSchedule,
    TimingParams,
    TrafficClass,
    classify_flow,
)

__version__ = "1.0.0"

__all__ = [
    "FailureSet",
    "ForwardingPipeline",
    "OperaNetwork",
    "OperaRouting",
    "OperaSchedule",
    "TimingParams",
    "TrafficClass",
    "classify_flow",
    "__version__",
]
