"""Process-local metrics: counters, gauges, fixed-bucket histograms.

The registry is deliberately primitive — plain python ints and dicts, no
locks (each worker process owns its registry; snapshots cross process
boundaries as data, never as shared state), no background threads, no
third-party clients. Snapshots travel in the portable encoding
(:func:`repro.scenarios.encode.to_portable`), the same self-describing
form shard cells use, so a snapshot reconstructs exactly on the far side
of a pool pipe, a TCP frame, or a JSONL trace line.

Engine instruments
------------------
The packet engine is *not* instrumented with new hooks. Every engine
metric drains from counters the ``__slots__`` layout already carries and
both kernels already bump — ``Simulator.events_processed`` /
``sched_pushes`` / the train counters, the per-port :class:`~repro.net.
link.PortStats` (sent/trimmed/dropped by cause), and the
:class:`~repro.net.stats.StatsCollector` failure ledger. The compiled
kernel writes those slots through the same member descriptors the python
engine uses (see :mod:`repro.net.kernel`), so a ``REPRO_KERNEL=py`` and a
``=c`` run of the same cell produce *identical* snapshots by
construction, and draining at run end cannot perturb the simulation it
measures. The one honest caveat: "scheduler depth" is the depth observed
at drain time (a gauge), not a true high-water mark — tracking high-water
would require a per-push hook in both kernels, i.e. exactly the armed-run
perturbation this design refuses.
"""

from __future__ import annotations

import os
from typing import Any, Iterable, Iterator, Mapping

# NOTE: repro.scenarios.encode is imported lazily inside portable() /
# validate_snapshot(): the scenarios package's runner imports this module
# at load time, so a module-level import here would be circular whenever
# repro.obs loads first.

__all__ = [
    "armed",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "iter_ports",
    "drop_cause_totals",
    "drain_network",
    "merge_snapshots",
    "validate_snapshot",
]

#: Falsy spellings of ``REPRO_TELEMETRY`` (mirrors ``REPRO_COALESCE``).
_OFF = ("", "0", "false", "off")

#: Fixed FCT histogram bucket upper bounds, in whole microseconds. Fixed
#: (not adaptive) so two runs of the same cell — or the same cell under
#: both kernels — always bucket identically.
FCT_BUCKET_BOUNDS_US: tuple[int, ...] = (10, 100, 1_000, 10_000, 100_000)


def armed() -> bool:
    """Process-wide telemetry arming: ``REPRO_TELEMETRY=1``.

    Read from the environment per call (it is one dict lookup) so spawned
    pool and TCP workers inherit the arming with zero plumbing — the same
    propagation path ``REPRO_CHAOS`` uses.
    """
    return os.environ.get("REPRO_TELEMETRY", "") not in _OFF


class Counter:
    """Monotonic integer count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Point-in-time integer observation (last value or high-water)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value: int) -> None:
        self.value = value

    def high_water(self, value: int) -> None:
        if value > self.value:
            self.value = value


class Histogram:
    """Fixed-bucket histogram of integer observations.

    ``bounds`` are inclusive upper bounds; observations above the last
    bound land in the overflow bucket, so ``counts`` has
    ``len(bounds) + 1`` entries. Bounds are fixed at construction —
    deterministic bucketing is what lets py and c kernel snapshots
    compare with ``==``.
    """

    __slots__ = ("bounds", "counts", "count", "total")

    def __init__(self, bounds: Iterable[int]) -> None:
        self.bounds = tuple(bounds)
        if not self.bounds or list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be distinct and ascending")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0

    def observe(self, value: int) -> None:
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.count += 1
        self.total += value


class MetricsRegistry:
    """Name -> instrument map with deterministic snapshots.

    ``counter``/``gauge``/``histogram`` are get-or-create (re-requesting
    a name returns the live instrument); a histogram re-request must
    agree on bounds. ``snapshot()`` emits plain data sorted by name, so
    equal registries snapshot to equal objects regardless of creation
    order.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter()
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge()
        return inst

    def histogram(self, name: str, bounds: Iterable[int]) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(bounds)
        elif inst.bounds != tuple(bounds):
            raise ValueError(
                f"histogram {name!r} re-registered with different bounds"
            )
        return inst

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __bool__(self) -> bool:
        return bool(self._counters or self._gauges or self._histograms)

    def snapshot(self) -> dict[str, Any]:
        """Plain-data view: ``{"counters": ..., "gauges": ...,
        "histograms": {name: {"bounds": (...), "counts": [...], ...}}}``."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "bounds": h.bounds,
                    "counts": list(h.counts),
                    "count": h.count,
                    "total": h.total,
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    def portable(self) -> Any:
        """The snapshot in the self-describing portable encoding.

        This is the wire/cache-side-channel form: histogram bounds are
        tuples, and :func:`~repro.scenarios.encode.to_portable` is what
        guarantees they come back as tuples — the same round-trip
        contract shard-cell values rely on.
        """
        from ..scenarios.encode import to_portable

        return to_portable(self.snapshot())


#: The process-wide registry worker entry points snapshot and reset.
REGISTRY = MetricsRegistry()


def validate_snapshot(snapshot: Any) -> dict[str, Any]:
    """Schema-check one snapshot (plain or portable form); return plain.

    Raises ``ValueError`` on any malformed section — CI's
    ``telemetry-smoke`` job runs trace-recorded snapshots through this.
    """
    from ..scenarios.encode import EncodeError, from_portable

    try:
        snapshot = from_portable(snapshot)
    except EncodeError:
        pass  # already the plain form (live tuples are not portable nodes)
    if not isinstance(snapshot, dict) or snapshot.keys() != {
        "counters",
        "gauges",
        "histograms",
    }:
        raise ValueError("snapshot must have counters/gauges/histograms")
    for section in ("counters", "gauges"):
        for name, value in snapshot[section].items():
            if not isinstance(name, str) or not isinstance(value, int):
                raise ValueError(f"bad {section} entry {name!r}: {value!r}")
    for name, hist in snapshot["histograms"].items():
        if not isinstance(hist, dict) or set(hist) != {
            "bounds",
            "counts",
            "count",
            "total",
        }:
            raise ValueError(f"bad histogram {name!r}: {hist!r}")
        bounds, counts = tuple(hist["bounds"]), list(hist["counts"])
        if len(counts) != len(bounds) + 1:
            raise ValueError(f"histogram {name!r}: counts/bounds mismatch")
        if sum(counts) != hist["count"]:
            raise ValueError(f"histogram {name!r}: count disagrees with sum")
    return snapshot


# -------------------------------------------------------------- engine drain


def iter_ports(net: Any) -> Iterator[Any]:
    """Every :class:`~repro.net.link.Port` of a SimNetwork.

    Walks NICs, ToR-to-host ports, and each topology's fabric/uplink port
    groups — the same enumeration the engine microbenchmark's hop counts
    use (it imports this function).
    """
    for host in net.hosts:
        if host.nic is not None:
            yield host.nic
    yield from getattr(net, "host_ports", {}).values()
    for group in ("uplink_ports", "tor_up", "agg_down", "agg_up", "core_down"):
        for ports in getattr(net, group, []):
            yield from ports.values()
    yield from getattr(net, "fabric_up", [])
    yield from getattr(net, "fabric_down", [])


def drop_cause_totals(net: Any) -> dict[str, int]:
    """Every dropped packet of a run, attributed to exactly one cause.

    ``failure_blackhole`` is the :class:`~repro.net.stats.StatsCollector`
    ledger (packets absorbed by failed components); ``queue_overflow``
    sums the per-port ``dropped_control``/``dropped_bulk`` counters;
    ``undeliverable`` counts dark-circuit discards. The three ledgers are
    disjoint by design (a blackholed packet was never queue pressure —
    see the ``StatsCollector`` docstring), so ``total`` is their sum.
    """
    return net.stats.drop_causes(iter_ports(net))


def drain_network(net: Any, registry: MetricsRegistry | None = None) -> None:
    """Accumulate one finished network's engine counters into ``registry``.

    Called at run end (``run_fct_experiment``) when :func:`armed`; every
    value read is an integer both kernels maintained identically during
    the run, so the drain is pure observation. Multiple networks drained
    into one registry accumulate (a unit that simulates several networks
    reports their sum).
    """
    reg = REGISTRY if registry is None else registry
    sim = net.sim
    sim_counters = sim.counters()
    for name, value in sim_counters.items():
        if name == "pending":
            continue
        reg.counter(f"engine.{name}").inc(value)
    # Depth at drain time, not high-water: see the module docstring.
    reg.gauge("engine.sched_depth_at_drain").high_water(sim_counters["pending"])

    port_totals: dict[str, int] = {}
    for port in iter_ports(net):
        for name, value in port.stats.counters().items():
            port_totals[name] = port_totals.get(name, 0) + value
    for name, value in port_totals.items():
        reg.counter(f"port.{name}").inc(value)

    stats = net.stats
    reg.counter("flows.total").inc(len(stats.flows))
    reg.counter("flows.completed").inc(len(stats.completed_flows()))
    reg.counter("flows.affected_by_failures").inc(len(stats.affected_flows))
    reg.counter("flows.unrecoverable").inc(len(stats.unrecoverable_flows))
    reg.counter("drops.failure_blackhole").inc(stats.total_blackholed_packets())
    reg.counter("drops.failure_blackhole_bytes").inc(stats.blackholed_bytes)
    reg.counter("drops.queue_overflow").inc(
        port_totals.get("dropped_control", 0) + port_totals.get("dropped_bulk", 0)
    )
    fct = reg.histogram("flows.fct_us", FCT_BUCKET_BOUNDS_US)
    # Whole-microsecond FCTs (integer division of integer picoseconds):
    # deterministic bucketing, bit-equal across kernels.
    for record in stats.completed_flows():
        fct.observe(record.fct_ps // 1_000_000)


def merge_snapshots(snapshots: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Sum plain-form snapshots (counters add, gauges take the max,
    same-bounds histograms add) — the ``repro trace`` summary view of a
    whole sweep's engine work."""
    out = MetricsRegistry()
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():
            out.counter(name).inc(value)
        for name, value in snap.get("gauges", {}).items():
            out.gauge(name).high_water(value)
        for name, hist in snap.get("histograms", {}).items():
            merged = out.histogram(name, tuple(hist["bounds"]))
            for i, n in enumerate(hist["counts"]):
                merged.counts[i] += n
            merged.count += hist["count"]
            merged.total += hist["total"]
    return out.snapshot()
