"""Sweep tracing: per-unit span records, JSONL persistence, rendering.

Every unit of a Runner batch leaves a span through the stages it actually
passed: ``queued`` -> ``leased`` (distributed executor only, once per
attempt) -> ``completed`` (or quarantined). Cache restores emit
``cache-hit`` events instead of spans — a restored cell never ran. The
stream is append-only JSONL next to the run journal::

    <cache root>/_trace/<run key>.jsonl

one JSON object per line, ``{"ev": ..., "t": <unix seconds>}``:

``run-start``   batch begins: ``run`` key, ``units``, ``jobs``.
``cache-hit``   a doc/cell was restored, not executed: ``label``, ``kind``.
``queued``      a unit entered the schedule: ``uid``, ``label``, ``cost``.
``leased``      a distributed worker took the unit: ``uid``, ``worker``
                (repeats on re-lease, so span attempt counts are honest).
``released``    a lease died (worker lost); the unit re-queued.
``completed``   a result document landed: ``uid``, ``label``, ``worker``,
                ``duration_s``, ``failed``, ``quarantined``, ``done``/
                ``total``/``eta_s`` (the progress math), and — when
                telemetry is armed — the unit's engine metric
                ``telemetry`` snapshot (portable form).
``run-end``     the batch drained: ``wall_s``, ``crashed``.

Writers flush per event and tolerate a full disk the way the run journal
does (tracing degrades, the sweep survives); readers skip torn lines.
The Runner's ``--progress`` callback is a *sink over this same stream* —
``completed`` events carry everything a progress record needs, so the
stderr line and the trace file can never disagree.
"""

from __future__ import annotations

import json
import logging
import os
import time
from pathlib import Path
from typing import Any, Callable, Iterable

__all__ = [
    "TRACE_DIR",
    "trace_path",
    "list_traces",
    "Tracer",
    "TraceWriter",
    "load_trace",
    "build_spans",
    "render_trace",
]

logger = logging.getLogger(__name__)

#: Subdirectory of the cache root holding trace streams; underscore-
#: prefixed like ``_journal`` so cache stats/ls never mistake it for a
#: scenario directory.
TRACE_DIR = "_trace"


def trace_path(cache_root: str | os.PathLike[str], run_key: str) -> Path:
    return Path(cache_root) / TRACE_DIR / f"{run_key}.jsonl"


def list_traces(cache_root: str | os.PathLike[str]) -> list[Path]:
    """Recorded trace files, most recent first."""
    root = Path(cache_root) / TRACE_DIR
    if not root.is_dir():
        return []
    paths = [p for p in root.glob("*.jsonl")]
    paths.sort(key=lambda p: (p.stat().st_mtime, p.name), reverse=True)
    return paths


class Tracer:
    """Fan one event stream out to zero or more sinks.

    With no sinks attached, :meth:`emit` is a single falsy check — the
    telemetry-off hot path through the Runner loop stays effectively
    free. Sink exceptions are logged and swallowed: a broken trace sink
    must degrade observability, never the sweep it observes.
    """

    def __init__(self) -> None:
        self._sinks: list[Callable[[dict[str, Any]], None]] = []

    def add_sink(self, sink: Callable[[dict[str, Any]], None]) -> None:
        self._sinks.append(sink)

    def __bool__(self) -> bool:
        return bool(self._sinks)

    def emit(self, event: dict[str, Any]) -> None:
        if not self._sinks:
            return
        if "t" not in event:
            event["t"] = round(time.time(), 6)
        for sink in self._sinks:
            try:
                sink(event)
            except Exception:
                logger.warning(
                    "trace sink %r failed on %r", sink, event.get("ev"),
                    exc_info=True,
                )


class TraceWriter:
    """Append-only JSONL writer for one run's trace file."""

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: Any = open(self.path, "w", encoding="utf-8")
        self._warned = False

    def write(self, event: dict[str, Any]) -> None:
        if self._fh is None:
            return
        line = json.dumps(event, separators=(",", ":"), default=str)
        try:
            self._fh.write(line + "\n")
            self._fh.flush()
        except (OSError, ValueError) as exc:
            if not self._warned:
                self._warned = True
                logger.warning(
                    "trace append failed (%s); tracing degraded for %s",
                    exc,
                    self.path,
                )

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def load_trace(path: str | os.PathLike[str]) -> list[dict[str, Any]]:
    """Decode one trace file; unparseable (torn) lines are skipped."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
    except OSError:
        return []
    events: list[dict[str, Any]] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn append
        if isinstance(rec, dict):
            events.append(rec)
    return events


def build_spans(events: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Fold an event stream into per-unit spans plus run-level facts.

    Returns ``{"run": ..., "t0": ..., "wall_s": ..., "crashed": ...,
    "units": ..., "cache_hits": [...], "spans": {uid: span}}`` where each
    span carries ``label``, ``queued_t``, ``first_leased_t``,
    ``completed_t``, ``duration_s``, ``attempts`` (lease count, 1 for
    local/pool execution), ``worker``, ``failed``/``quarantined`` and the
    unit's ``telemetry`` snapshot when one was recorded.
    """
    out: dict[str, Any] = {
        "run": None,
        "t0": None,
        "wall_s": None,
        "crashed": False,
        "units": None,
        "cache_hits": [],
        "spans": {},
    }
    spans: dict[int, dict[str, Any]] = {}

    def span(uid: int) -> dict[str, Any]:
        sp = spans.get(uid)
        if sp is None:
            sp = spans[uid] = {
                "uid": uid,
                "label": None,
                "queued_t": None,
                "first_leased_t": None,
                "completed_t": None,
                "duration_s": None,
                "attempts": 0,
                "worker": None,
                "failed": False,
                "quarantined": False,
                "telemetry": None,
            }
        return sp

    for ev in events:
        kind = ev.get("ev")
        t = ev.get("t")
        if kind == "run-start":
            out["run"] = ev.get("run")
            out["t0"] = t
            out["units"] = ev.get("units")
        elif kind == "cache-hit":
            out["cache_hits"].append(
                {"label": ev.get("label"), "kind": ev.get("kind")}
            )
        elif kind == "queued":
            sp = span(ev["uid"])
            sp["label"] = ev.get("label")
            sp["queued_t"] = t
        elif kind == "leased":
            sp = span(ev["uid"])
            sp["attempts"] += 1
            if sp["first_leased_t"] is None:
                sp["first_leased_t"] = t
            sp["worker"] = ev.get("worker")
        elif kind == "completed":
            sp = span(ev["uid"])
            sp["label"] = ev.get("label", sp["label"])
            sp["completed_t"] = t
            sp["duration_s"] = ev.get("duration_s")
            sp["failed"] = bool(ev.get("failed"))
            sp["quarantined"] = bool(ev.get("quarantined"))
            if ev.get("worker"):
                sp["worker"] = ev["worker"]
            if sp["attempts"] == 0:
                sp["attempts"] = 1  # local/pool execution: no lease events
            if "telemetry" in ev:
                sp["telemetry"] = ev["telemetry"]
        elif kind == "run-end":
            out["wall_s"] = ev.get("wall_s")
            out["crashed"] = bool(ev.get("crashed"))
    out["spans"] = spans
    return out


def _fmt_t(t: float | None, t0: float | None) -> str:
    if t is None or t0 is None:
        return "      ?"
    return f"+{t - t0:6.2f}s"


def render_trace(events: Iterable[dict[str, Any]]) -> list[str]:
    """Human view of one trace: timeline, stragglers, critical path."""
    doc = build_spans(events)
    spans = sorted(
        doc["spans"].values(),
        key=lambda s: (s["completed_t"] is None, s["completed_t"] or 0.0),
    )
    t0 = doc["t0"]
    run = (doc["run"] or "?")[:12]
    header = f"trace {run} — {doc['units'] if doc['units'] is not None else '?'} unit(s)"
    if doc["cache_hits"]:
        header += f", {len(doc['cache_hits'])} cache hit(s)"
    if doc["wall_s"] is not None:
        header += f", wall {doc['wall_s']:.2f}s"
    if doc["crashed"]:
        header += " [CRASHED]"
    rows = [header]
    rows.append(
        f"{'queued':>8s} {'done':>8s} {'dur':>7s} {'att':>3s} "
        f"{'state':>11s}  {'worker':<18s} label"
    )
    for sp in spans:
        state = (
            "quarantined"
            if sp["quarantined"]
            else "FAILED"
            if sp["failed"]
            else "completed"
            if sp["completed_t"] is not None
            else "incomplete"
        )
        dur = f"{sp['duration_s']:.2f}s" if sp["duration_s"] is not None else "?"
        rows.append(
            f"{_fmt_t(sp['queued_t'], t0):>8s} "
            f"{_fmt_t(sp['completed_t'], t0):>8s} {dur:>7s} "
            f"{sp['attempts']:>3d} {state:>11s}  "
            f"{(sp['worker'] or '-'):<18s} {sp['label'] or '?'}"
        )
    finished = [s for s in spans if s["completed_t"] is not None]
    if finished:
        stragglers = sorted(
            (s for s in finished if s["duration_s"] is not None),
            key=lambda s: -s["duration_s"],
        )[:3]
        if stragglers:
            rows.append(
                "stragglers: "
                + ", ".join(
                    f"{s['label']} ({s['duration_s']:.2f}s)" for s in stragglers
                )
            )
        last = max(finished, key=lambda s: s["completed_t"])
        wait = None
        if last["queued_t"] is not None:
            ran = last["duration_s"] or 0.0
            wait = max(0.0, last["completed_t"] - last["queued_t"] - ran)
        crit = (
            f"critical path: {last['label']} finished last"
            f" at {_fmt_t(last['completed_t'], t0).strip()}"
        )
        if wait is not None:
            crit += (
                f" (waited {wait:.2f}s, ran "
                f"{last['duration_s'] or 0.0:.2f}s, "
                f"{last['attempts']} attempt(s)"
                + (f" on {last['worker']}" if last["worker"] else "")
                + ")"
            )
        rows.append(crit)
    telem = [s["telemetry"] for s in spans if s.get("telemetry")]
    if telem:
        from .metrics import merge_snapshots, validate_snapshot

        merged = merge_snapshots(validate_snapshot(t) for t in telem)
        events_n = merged["counters"].get("engine.events", 0)
        hops = merged["counters"].get("port.sent_packets", 0)
        drops = merged["counters"].get(
            "drops.queue_overflow", 0
        ) + merged["counters"].get("drops.failure_blackhole", 0)
        rows.append(
            f"engine telemetry ({len(telem)} unit(s)): "
            f"{events_n:,} events, {hops:,} packet hops, {drops:,} drops"
        )
    return rows
