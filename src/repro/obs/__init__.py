"""Zero-dependency telemetry: metrics, sweep tracing, status surfaces.

The observability layer follows the discipline PR 7 (chaos) and PR 8
(live failures) established for every cross-cutting subsystem:

* **Off by default is bitwise invisible.** Nothing in this package is
  imported on the engine hot path; arming telemetry
  (``REPRO_TELEMETRY=1``) only *reads* counters both engine kernels
  already maintain, at run end, so armed runs produce byte-identical
  simulated observables (pinned by ``tests/test_obs.py`` and a
  ``SystemExit`` abort in ``benchmarks/engine_microbench.py``).
* **On never perturbs simulated results.** Metric snapshots ride in a
  side channel (``doc["telemetry"]``) that the Runner strips before any
  cache write, and trace spans live in their own ``_trace/`` JSONL store
  next to the run journal.
* **The armed-but-quiet overhead is priced.** ``engine_microbench.py
  --telemetry`` records ``telemetry_overhead`` in ``BENCH_engine.json``
  alongside ``chaos_overhead`` and ``faults_overhead``.

Submodules: :mod:`.metrics` (process-local counter/gauge/histogram
registry plus the engine drain), :mod:`.trace` (per-unit span records,
JSONL persistence, and the ``repro trace`` renderer).
"""

from __future__ import annotations

from .metrics import REGISTRY, MetricsRegistry, armed
from .trace import Tracer, TraceWriter, load_trace, trace_path

__all__ = [
    "REGISTRY",
    "MetricsRegistry",
    "armed",
    "Tracer",
    "TraceWriter",
    "load_trace",
    "trace_path",
]
