"""Slice-granularity fluid simulators for paper-scale experiments."""

from .rotor import FluidResult, RotorFluidSimulation
from .static import static_shuffle_run

__all__ = ["FluidResult", "RotorFluidSimulation", "static_shuffle_run"]
