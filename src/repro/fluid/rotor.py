"""Slice-granularity fluid simulation of rotor networks (Figs 8 and 10).

The packet simulator is exact but cannot push 648 hosts x hundreds of
milliseconds in Python; this fluid model runs the same RotorLB logic at
rack-pair byte granularity, one topology slice at a time:

1. every up circuit (a—b) carries relay bytes for its far end first, then
   local bytes, up to the slice's byte budget;
2. leftover budget carries two-hop VLB traffic: local backlog for other
   racks moves to the connected peer's relay queues (subject to headroom);
3. optional low-latency background traffic (Figure 10's Websearch share)
   consumes a fixed fraction of every circuit's budget, scaled by the
   multi-hop bandwidth tax.

Flow completion times fall out of per-rack-pair backlog draining: the
paper's shuffle starts all flows at once and RotorLB round-robins packets
across a pair's flows, so a pair's flows complete when its backlog drains.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.schedule import OperaSchedule
from ..core.timing import PS_PER_S, TimingParams
from ..topologies.rotornet import RotorNetSchedule

__all__ = ["FluidResult", "RotorFluidSimulation"]


@dataclass
class FluidResult:
    """Outcome of a fluid run."""

    #: (time_ms, fraction of aggregate host bandwidth delivered) per slice.
    throughput_series: list[tuple[float, float]]
    #: rack pair -> completion time (ms); None if unfinished at the horizon.
    pair_completion_ms: dict[tuple[int, int], float | None]
    delivered_bytes: float
    offered_bytes: float
    slices_run: int

    def completion_percentile_ms(self, percentile: float) -> float | None:
        done = sorted(
            v for v in self.pair_completion_ms.values() if v is not None
        )
        if not done:
            return None
        idx = min(len(done) - 1, max(0, int(np.ceil(percentile / 100 * len(done))) - 1))
        return done[idx]

    @property
    def all_complete(self) -> bool:
        return all(v is not None for v in self.pair_completion_ms.values())


class RotorFluidSimulation:
    """Fluid RotorLB over an Opera or RotorNet schedule.

    Parameters
    ----------
    schedule:
        :class:`OperaSchedule` (offset reconfigurations; down switches skip
        a slice) or :class:`RotorNetSchedule` (lockstep; all up).
    timing:
        Supplies slice duration and duty cycle.
    link_rate_bps, hosts_per_rack:
        Shape (throughput normalization).
    background_ll_load:
        Low-latency load per host (fraction of NIC) forwarded multi-hop
        over the same fabric; its bandwidth tax reduces circuit budgets.
    avg_path_length:
        Bandwidth tax multiplier for the background traffic.
    """

    def __init__(
        self,
        schedule: OperaSchedule | RotorNetSchedule,
        timing: TimingParams,
        link_rate_bps: int = 10_000_000_000,
        hosts_per_rack: int = 6,
        background_ll_load: float = 0.0,
        avg_path_length: float = 3.3,
        relay_cap_bytes: float = 50e6,
        enable_vlb: bool = True,
    ) -> None:
        self.schedule = schedule
        self.timing = timing
        self.link_rate_bps = link_rate_bps
        self.hosts_per_rack = hosts_per_rack
        self.n = schedule.n_racks
        self.enable_vlb = enable_vlb
        self.relay_cap_bytes = relay_cap_bytes
        self.local = np.zeros((self.n, self.n))
        self.relay = np.zeros((self.n, self.n))
        self._offered = 0.0
        slice_seconds = timing.slice_ps / PS_PER_S
        budget = slice_seconds * link_rate_bps / 8 * timing.duty_cycle
        # Background low-latency traffic steals (load * d * tax / up-links)
        # of each circuit in expectation.
        uplinks = getattr(schedule, "n_switches", 1)
        up_per_slice = (
            len(schedule.up_switches(0))
            if isinstance(schedule, OperaSchedule)
            else uplinks
        )
        ll_bytes_per_rack = (
            background_ll_load
            * hosts_per_rack
            * avg_path_length
            * slice_seconds
            * link_rate_bps
            / 8
        )
        self._ll_share = min(1.0, ll_bytes_per_rack / max(budget * up_per_slice, 1e-9))
        self.slice_budget = budget * (1.0 - self._ll_share)

    # ---------------------------------------------------------------- load

    def add_demand(self, matrix_bytes: np.ndarray) -> None:
        """Add rack-pair backlog (bytes); diagonal must be zero."""
        if matrix_bytes.shape != (self.n, self.n):
            raise ValueError("demand matrix shape mismatch")
        if np.any(np.diag(matrix_bytes) != 0):
            raise ValueError("rack-local demand never enters the fabric")
        self.local += matrix_bytes
        self._offered += float(matrix_bytes.sum())

    def add_all_to_all(self, bytes_per_host_pair: int) -> None:
        """The paper's shuffle: every host to every non-local host."""
        d = self.hosts_per_rack
        per_rack_pair = bytes_per_host_pair * d * d
        matrix = np.full((self.n, self.n), float(per_rack_pair))
        np.fill_diagonal(matrix, 0.0)
        self.add_demand(matrix)

    # ---------------------------------------------------------------- run

    def _circuits(self, s: int) -> list[tuple[int, int]]:
        """Directed circuits (a -> b) live during slice ``s``."""
        out = []
        if isinstance(self.schedule, OperaSchedule):
            switches = self.schedule.up_switches(s)
        else:
            switches = range(self.schedule.n_switches)
        for w in switches:
            matching = self.schedule.matching_of(w, s)
            for a in range(self.n):
                b = matching[a]
                if a != b:
                    out.append((a, b))
        return out

    def run(self, max_slices: int = 10_000) -> FluidResult:
        budget = self.slice_budget
        slice_ms = self.timing.slice_ps / 1e9
        series: list[tuple[float, float]] = []
        # Bytes of each (src, dst) pair riding relay queues somewhere. The
        # relay matrix forgets origins, so deliveries are attributed back
        # proportionally — exact for completion purposes because a pair is
        # done only when its outstanding total hits zero.
        vlb_out = np.zeros_like(self.local)
        pending_pairs = {
            (a, b)
            for a in range(self.n)
            for b in range(self.n)
            if self.local[a][b] > 0
        }
        completion: dict[tuple[int, int], float | None] = {
            p: None for p in pending_pairs
        }
        aggregate_bytes_per_slice = (
            self.n
            * self.hosts_per_rack
            * self.link_rate_bps
            / 8
            * (self.timing.slice_ps / PS_PER_S)
        )
        # Host NICs bound what a rack can source (first hops: direct sends
        # and VLB moves) and sink (final deliveries) each slice. Relay
        # forwarding is ToR-buffer-to-ToR-buffer and does not touch NICs.
        nic_bytes = (
            self.hosts_per_rack
            * self.link_rate_bps
            / 8
            * (self.timing.slice_ps / PS_PER_S)
        )
        delivered_total = 0.0
        s = 0
        for s in range(max_slices):
            delivered = 0.0
            relay_delivered_to = np.zeros(self.n)
            nic_out = np.full(self.n, nic_bytes)
            nic_in = np.full(self.n, nic_bytes)
            for a, b in self._circuits(s):
                cap = budget
                take = min(cap, self.relay[a][b], nic_in[b])
                if take > 0:
                    self.relay[a][b] -= take
                    relay_delivered_to[b] += take
                    nic_in[b] -= take
                    cap -= take
                    delivered += take
                take = min(cap, self.local[a][b], nic_out[a], nic_in[b])
                if take > 0:
                    self.local[a][b] -= take
                    nic_out[a] -= take
                    nic_in[b] -= take
                    cap -= take
                    delivered += take
                if cap <= 1.0 or not self.enable_vlb:
                    continue
                # VLB: ship the most backlogged other-destination bytes to b.
                row = self.local[a]
                headroom = self.relay_cap_bytes - self.relay[b].sum()
                while cap > 1.0 and headroom > 1.0 and nic_out[a] > 1.0:
                    masked = row.copy()
                    masked[b] = 0.0
                    x = int(np.argmax(masked))
                    if masked[x] <= 0:
                        break
                    move = min(cap, row[x], headroom, nic_out[a])
                    row[x] -= move
                    self.relay[b][x] += move
                    vlb_out[a][x] += move
                    nic_out[a] -= move
                    cap -= move
                    headroom -= move
            # Attribute relay deliveries back to origin pairs (pro rata).
            for b in range(self.n):
                if relay_delivered_to[b] <= 0:
                    continue
                column = vlb_out[:, b]
                total = column.sum()
                if total > 0:
                    column *= max(0.0, 1.0 - relay_delivered_to[b] / total)
            delivered_total += delivered
            series.append(((s + 1) * slice_ms, delivered / aggregate_bytes_per_slice))
            if pending_pairs:
                finished = [
                    (a, b)
                    for (a, b) in pending_pairs
                    if self.local[a][b] <= 1e-6 and vlb_out[a][b] <= 1e-6
                ]
                for p in finished:
                    completion[p] = (s + 1) * slice_ms
                    pending_pairs.remove(p)
            if (
                not pending_pairs
                and self.local.sum() <= 1e-6
                and self.relay.sum() <= 1e-6
            ):
                break
        return FluidResult(
            throughput_series=series,
            pair_completion_ms=completion,
            delivered_bytes=delivered_total,
            offered_bytes=self._offered,
            slices_run=s + 1,
        )
