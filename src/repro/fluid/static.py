"""Fluid shuffle model for the static baselines (Figure 8's flat lines).

Under an all-to-all shuffle the static networks deliver at a constant
aggregate rate — their max-throughput for the uniform matrix — until the
backlog drains (the paper staggers flow arrivals over 10 ms to avoid
startup effects; we model the steady plateau). The plateau heights come
from :mod:`repro.analysis.throughput`'s per-network models.
"""

from __future__ import annotations

import numpy as np

from .rotor import FluidResult

__all__ = ["static_shuffle_run"]


def static_shuffle_run(
    throughput: float,
    n_racks: int,
    hosts_per_rack: int,
    bytes_per_host_pair: int,
    link_rate_bps: int = 10_000_000_000,
    bin_ms: float = 0.1,
    startup_ms: float = 10.0,
    max_ms: float = 2_000.0,
) -> FluidResult:
    """Constant-rate drain of the shuffle backlog at ``throughput``.

    ``throughput`` is normalized per host link (the network's uniform-matrix
    max); flows ramp linearly over ``startup_ms`` (the paper's staggered
    arrivals) and every rack pair completes when the shared backlog drains.
    """
    if not 0 < throughput <= 1:
        raise ValueError("throughput must be in (0, 1]")
    n_hosts = n_racks * hosts_per_rack
    total_bytes = bytes_per_host_pair * n_hosts * (n_hosts - hosts_per_rack)
    aggregate_rate = throughput * n_hosts * link_rate_bps / 8  # bytes/s
    series: list[tuple[float, float]] = []
    delivered = 0.0
    t = 0.0
    while delivered < total_bytes and t < max_ms:
        t += bin_ms
        ramp = min(1.0, t / startup_ms) if startup_ms > 0 else 1.0
        step = aggregate_rate * ramp * (bin_ms / 1e3)
        step = min(step, total_bytes - delivered)
        delivered += step
        series.append(
            (t, step / (n_hosts * link_rate_bps / 8 * (bin_ms / 1e3)))
        )
    finish = t if delivered >= total_bytes else None
    completion = {
        (a, b): finish
        for a in range(n_racks)
        for b in range(n_racks)
        if a != b
    }
    return FluidResult(
        throughput_series=series,
        pair_completion_ms=completion,
        delivered_bytes=delivered,
        offered_bytes=float(total_bytes),
        slices_run=len(series),
    )
