"""Published empirical flow-size distributions (paper Figure 1).

The paper evaluates three workloads whose flow-size CDFs it reproduces from
the literature:

* **Datamining** — Microsoft (VL2, Greenberg et al. [21]): extremely heavy
  tailed; flows span 100 B to 1 GB and >80% of *bytes* live in flows larger
  than Opera's 15 MB bulk threshold.
* **Websearch** — Microsoft (DCTCP, Alizadeh et al. [4]): flows of ~5 KB to
  30 MB, nearly all *below* the bulk threshold — the paper's worst case,
  where Opera pays tax on everything.
* **Hadoop** — Facebook (Roy et al. [39]): mostly small flows with a heavy
  tail; the paper's shuffle experiment uses 100 KB flows, the median
  *inter-rack* flow size in that cluster.

The breakpoints below are the standard digitizations used throughout the
datacenter-networking literature (e.g. the pFabric/Homa evaluations for the
first two); the Hadoop curve is digitized from Figure 1. Sampling uses
inverse-transform with log-linear interpolation between breakpoints.
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass

__all__ = [
    "FlowSizeDistribution",
    "DATAMINING",
    "WEBSEARCH",
    "HADOOP",
    "ALL_WORKLOADS",
]


@dataclass(frozen=True)
class FlowSizeDistribution:
    """An empirical flow-size CDF with log-linear interpolation.

    ``points`` is a monotone sequence of ``(size_bytes, cdf)`` pairs with
    the first cdf 0.0 and the last 1.0.
    """

    name: str
    points: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise ValueError("need at least two CDF points")
        sizes = [s for s, _ in self.points]
        cdfs = [c for _, c in self.points]
        if sizes != sorted(sizes) or any(s <= 0 for s in sizes):
            raise ValueError("sizes must be positive and non-decreasing")
        if cdfs != sorted(cdfs) or cdfs[0] != 0.0 or cdfs[-1] != 1.0:
            raise ValueError("cdf must rise from 0.0 to 1.0")

    # ---------------------------------------------------------------- sizes

    def sample(self, rng: random.Random) -> int:
        """Draw one flow size (bytes) by inverse transform."""
        return self.quantile(rng.random())

    def quantile(self, q: float) -> int:
        """Flow size at cumulative probability ``q`` (log-interpolated)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        cdfs = [c for _, c in self.points]
        i = bisect.bisect_left(cdfs, q)
        if i == 0:
            return int(round(self.points[0][0]))
        lo_size, lo_cdf = self.points[i - 1]
        hi_size, hi_cdf = self.points[i]
        if hi_cdf == lo_cdf:
            return int(round(hi_size))
        frac = (q - lo_cdf) / (hi_cdf - lo_cdf)
        log_size = math.log(lo_size) + frac * (math.log(hi_size) - math.log(lo_size))
        return max(1, int(round(math.exp(log_size))))

    def cdf(self, size_bytes: float) -> float:
        """Fraction of flows at most ``size_bytes`` (Figure 1, top)."""
        if size_bytes <= self.points[0][0]:
            return self.points[0][1]
        if size_bytes >= self.points[-1][0]:
            return 1.0
        sizes = [s for s, _ in self.points]
        i = bisect.bisect_right(sizes, size_bytes)
        lo_size, lo_cdf = self.points[i - 1]
        hi_size, hi_cdf = self.points[i]
        frac = (math.log(size_bytes) - math.log(lo_size)) / (
            math.log(hi_size) - math.log(lo_size)
        )
        return lo_cdf + frac * (hi_cdf - lo_cdf)

    # ---------------------------------------------------------------- bytes

    def _segment_means(self) -> list[tuple[float, float]]:
        """Per-segment (probability mass, conditional mean size)."""
        out = []
        for (lo_s, lo_c), (hi_s, hi_c) in zip(self.points, self.points[1:]):
            mass = hi_c - lo_c
            if mass <= 0:
                continue
            if hi_s == lo_s:
                mean = lo_s
            else:
                # Log-linear CDF means the size is log-uniform in a segment.
                mean = (hi_s - lo_s) / (math.log(hi_s) - math.log(lo_s))
            out.append((mass, mean))
        return out

    def mean_bytes(self) -> float:
        """Expected flow size in bytes."""
        return sum(mass * mean for mass, mean in self._segment_means())

    def byte_cdf(self, size_bytes: float) -> float:
        """Fraction of *bytes* in flows at most ``size_bytes`` (Fig 1, bottom)."""
        total = self.mean_bytes()
        acc = 0.0
        for (lo_s, lo_c), (hi_s, hi_c) in zip(self.points, self.points[1:]):
            mass = hi_c - lo_c
            if mass <= 0:
                continue
            if size_bytes >= hi_s:
                if hi_s == lo_s:
                    acc += mass * lo_s
                else:
                    acc += mass * (hi_s - lo_s) / (math.log(hi_s) - math.log(lo_s))
            elif size_bytes > lo_s:
                # Partial segment: integrate the log-uniform density to x.
                acc += (
                    mass
                    * (size_bytes - lo_s)
                    / (math.log(hi_s) - math.log(lo_s))
                )
                break
            else:
                break
        return acc / total

    def bulk_byte_fraction(self, threshold_bytes: float) -> float:
        """Fraction of bytes in flows >= threshold (Opera's bulk share)."""
        return 1.0 - self.byte_cdf(threshold_bytes)

    def truncated(self, cap_bytes: float) -> "FlowSizeDistribution":
        """Clip the distribution at ``cap_bytes`` (mass above moves to cap).

        Used to bound simulation horizons at reduced scale: the tail flows
        that would run for seconds are collapsed onto the cap.
        """
        if cap_bytes <= self.points[0][0]:
            raise ValueError("cap below the distribution's support")
        if cap_bytes >= self.points[-1][0]:
            return self
        kept = [(s, c) for s, c in self.points if s < cap_bytes]
        kept.append((cap_bytes, 1.0))
        return FlowSizeDistribution(f"{self.name}<=cap", tuple(kept))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FlowSizeDistribution({self.name!r}, {len(self.points)} points)"


#: VL2 datamining workload [21]: 100 B .. 1 GB, >95% of bytes in bulk flows.
DATAMINING = FlowSizeDistribution(
    "datamining",
    (
        (100, 0.0),
        (180, 0.10),
        (216, 0.20),
        (560, 0.30),
        (900, 0.40),
        (1_100, 0.50),
        (60_000, 0.60),
        (3_160_000, 0.70),
        (10_000_000, 0.80),
        (100_000_000, 0.90),
        (1_000_000_000, 1.0),
    ),
)

#: DCTCP websearch workload [4]. Section 5.3 reads Figure 1 as placing
#: every Websearch byte below Opera's 15 MB bulk threshold, so the tail
#: ends at 15 MB: the whole workload is latency-sensitive under Opera.
WEBSEARCH = FlowSizeDistribution(
    "websearch",
    (
        (5_000, 0.0),
        (6_000, 0.15),
        (13_000, 0.30),
        (19_000, 0.40),
        (33_000, 0.53),
        (53_000, 0.60),
        (133_000, 0.70),
        (667_000, 0.80),
        (1_333_000, 0.90),
        (6_667_000, 0.97),
        (15_000_000, 1.0),
    ),
)

#: Facebook Hadoop workload [39]: digitized from Figure 1; the 100 KB
#: median inter-rack flow motivates the shuffle experiment's flow size.
HADOOP = FlowSizeDistribution(
    "hadoop",
    (
        (100, 0.0),
        (250, 0.20),
        (1_000, 0.45),
        (10_000, 0.62),
        (100_000, 0.75),
        (1_000_000, 0.85),
        (10_000_000, 0.95),
        (100_000_000, 0.99),
        (1_000_000_000, 1.0),
    ),
)

ALL_WORKLOADS: dict[str, FlowSizeDistribution] = {
    d.name: d for d in (DATAMINING, WEBSEARCH, HADOOP)
}
