"""Workloads: published flow-size distributions and synthetic patterns."""

from .arrivals import FlowArrival, PoissonArrivals
from .distributions import (
    ALL_WORKLOADS,
    DATAMINING,
    HADOOP,
    WEBSEARCH,
    FlowSizeDistribution,
)
from .patterns import (
    all_to_all_matrix,
    hot_rack_matrix,
    permutation_flows,
    permutation_matrix,
    shuffle_flows,
    skew_matrix,
    websearch_background_matrix,
)

__all__ = [
    "FlowArrival",
    "PoissonArrivals",
    "ALL_WORKLOADS",
    "DATAMINING",
    "HADOOP",
    "WEBSEARCH",
    "FlowSizeDistribution",
    "all_to_all_matrix",
    "hot_rack_matrix",
    "permutation_flows",
    "permutation_matrix",
    "shuffle_flows",
    "skew_matrix",
    "websearch_background_matrix",
]
