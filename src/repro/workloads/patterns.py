"""Synthetic traffic patterns from the paper's evaluation (sections 5.2–5.6).

Rack-level demand matrices are expressed in units of *host links*: entry
``D[a][b]`` is the offered load from rack ``a`` to rack ``b`` as a multiple
of one host's link rate, so a rack with ``d`` hosts can offer at most ``d``
units of egress. Patterns:

* ``all_to_all`` — the shuffle of section 5.2: every rack sends its full
  egress spread uniformly over all other racks.
* ``permutation`` — section 5.6: each *host* sends at full rate to one
  non-rack-local host (aggregated to racks here).
* ``hot_rack`` — section 5.6: a single rack sends its full egress to one
  other rack (maximum skew).
* ``skew`` — section 5.6's skew[p, 1] (after [29]): a fraction ``p`` of
  racks are active and run a rack-level permutation among themselves at
  full rate; the rest are silent.

Host-level generators for the packet simulator accompany each.
"""

from __future__ import annotations

import random

import numpy as np

__all__ = [
    "all_to_all_matrix",
    "permutation_matrix",
    "hot_rack_matrix",
    "skew_matrix",
    "websearch_background_matrix",
    "shuffle_flows",
    "permutation_flows",
]


def _empty(n_racks: int) -> np.ndarray:
    return np.zeros((n_racks, n_racks), dtype=float)


def all_to_all_matrix(n_racks: int, hosts_per_rack: int) -> np.ndarray:
    """Uniform shuffle: each rack spreads ``d`` units over the others."""
    if n_racks < 2:
        raise ValueError("need at least two racks")
    demand = _empty(n_racks)
    per_pair = hosts_per_rack / (n_racks - 1)
    demand[:, :] = per_pair
    np.fill_diagonal(demand, 0.0)
    return demand


def _rack_disjoint_bijection(
    hosts: list[int], hosts_per_rack: int, rng: random.Random
) -> dict[int, int]:
    """A bijection on ``hosts`` where no host maps within its own rack.

    A random shuffle followed by swap repairs: any position mapped within
    its own rack trades targets with a random other position when the trade
    resolves the violation without creating a new one.
    """
    targets = list(hosts)
    rng.shuffle(targets)
    n = len(hosts)

    def ok(i: int) -> bool:
        return hosts[i] // hosts_per_rack != targets[i] // hosts_per_rack

    for _round in range(50):
        bad = [i for i in range(n) if not ok(i)]
        if not bad:
            return dict(zip(hosts, targets))
        for i in bad:
            for _try in range(100):
                j = rng.randrange(n)
                if j == i:
                    continue
                targets[i], targets[j] = targets[j], targets[i]
                if ok(i) and ok(j):
                    break
                targets[i], targets[j] = targets[j], targets[i]
    raise ValueError("could not find a rack-disjoint host bijection")


def permutation_matrix(
    n_racks: int, hosts_per_rack: int, rng: random.Random | None = None
) -> np.ndarray:
    """Host-level random permutation, aggregated to rack demand.

    Each host sends one unit to exactly one host of another rack and
    receives exactly one unit (a bijection), so every rack offers and
    receives exactly ``d`` units — the paper's admissible permutation.
    """
    rng = rng or random.Random(0)
    hosts = list(range(n_racks * hosts_per_rack))
    mapping = _rack_disjoint_bijection(hosts, hosts_per_rack, rng)
    demand = _empty(n_racks)
    for src, dst in mapping.items():
        demand[src // hosts_per_rack][dst // hosts_per_rack] += 1.0
    return demand


def hot_rack_matrix(
    n_racks: int, hosts_per_rack: int, src: int = 0, dst: int = 1
) -> np.ndarray:
    """One rack sends its full egress to one other rack."""
    if src == dst:
        raise ValueError("hot pair must be distinct racks")
    demand = _empty(n_racks)
    demand[src][dst] = float(hosts_per_rack)
    return demand


def skew_matrix(
    n_racks: int,
    hosts_per_rack: int,
    active_fraction: float,
    rng: random.Random | None = None,
) -> np.ndarray:
    """skew[p, 1]: a fraction ``p`` of racks communicate among themselves.

    Each host of an active rack sends one unit to a uniformly random host
    in a *different* active rack; inactive racks are silent.
    """
    if not 0 < active_fraction <= 1:
        raise ValueError("active fraction must be in (0, 1]")
    rng = rng or random.Random(0)
    n_active = max(2, round(active_fraction * n_racks))
    active = rng.sample(range(n_racks), n_active)
    hosts = [
        rack * hosts_per_rack + h for rack in active for h in range(hosts_per_rack)
    ]
    mapping = _rack_disjoint_bijection(hosts, hosts_per_rack, rng)
    demand = _empty(n_racks)
    for src, dst in mapping.items():
        demand[src // hosts_per_rack][dst // hosts_per_rack] += 1.0
    return demand


def websearch_background_matrix(
    n_racks: int, hosts_per_rack: int, load: float
) -> np.ndarray:
    """Uniform low-latency background at ``load`` of host capacity (Fig 10)."""
    if not 0 <= load <= 1:
        raise ValueError("load must be in [0, 1]")
    return all_to_all_matrix(n_racks, hosts_per_rack) * load


# ----------------------------------------------------------- host level


def shuffle_flows(
    n_hosts: int, flow_bytes: int = 100_000
) -> list[tuple[int, int, int]]:
    """All-to-all shuffle flow set: ``(src, dst, bytes)`` per host pair.

    Section 5.2 uses 100 KB flows (the Facebook Hadoop median inter-rack
    flow size), all tagged bulk and started simultaneously.
    """
    return [
        (src, dst, flow_bytes)
        for src in range(n_hosts)
        for dst in range(n_hosts)
        if src != dst
    ]


def permutation_flows(
    n_hosts: int,
    hosts_per_rack: int,
    flow_bytes: int,
    rng: random.Random | None = None,
) -> list[tuple[int, int, int]]:
    """Each host sends one flow to a unique non-rack-local host."""
    rng = rng or random.Random(0)
    for _attempt in range(200):
        targets = list(range(n_hosts))
        rng.shuffle(targets)
        if all(
            src // hosts_per_rack != dst // hosts_per_rack
            for src, dst in enumerate(targets)
        ):
            return [(src, dst, flow_bytes) for src, dst in enumerate(targets)]
    raise ValueError("could not find a rack-disjoint permutation")
