"""Poisson flow-arrival processes (paper sections 5.1 and 5.3).

The paper drives the Datamining and Websearch experiments with a Poisson
flow-arrival process whose rate is set relative to the aggregate bandwidth
of all host links: at load ``rho``, hosts collectively inject
``rho * n_hosts * link_rate`` bits per second of offered traffic, so the
arrival rate is ``rho * n_hosts * link_rate / (8 * E[flow size])`` flows/s.
Sources and destinations are chosen uniformly at random (destinations from
a different host, optionally a different rack).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator

from ..core.timing import PS_PER_S
from .distributions import FlowSizeDistribution

__all__ = ["FlowArrival", "PoissonArrivals"]


@dataclass(frozen=True)
class FlowArrival:
    """One flow injected into the network."""

    time_ps: int
    src_host: int
    dst_host: int
    size_bytes: int
    flow_id: int


class PoissonArrivals:
    """Poisson flow generator over uniformly random host pairs.

    Parameters
    ----------
    distribution:
        Flow-size distribution to sample.
    load:
        Offered load as a fraction of aggregate host-link bandwidth.
    n_hosts, link_rate_bps:
        Shape of the network being driven.
    hosts_per_rack:
        When given, destinations are drawn from a different *rack* (the
        paper's workloads are inter-rack).
    """

    def __init__(
        self,
        distribution: FlowSizeDistribution,
        load: float,
        n_hosts: int,
        link_rate_bps: int = 10_000_000_000,
        hosts_per_rack: int | None = None,
        seed: int | None = 0,
    ) -> None:
        if not 0 < load:
            raise ValueError("load must be positive")
        if n_hosts < 2:
            raise ValueError("need at least two hosts")
        self.distribution = distribution
        self.load = load
        self.n_hosts = n_hosts
        self.link_rate_bps = link_rate_bps
        self.hosts_per_rack = hosts_per_rack
        self.rng = random.Random(seed)
        mean_bits = 8.0 * distribution.mean_bytes()
        self.flows_per_second = load * n_hosts * link_rate_bps / mean_bits

    @property
    def mean_interarrival_ps(self) -> float:
        return PS_PER_S / self.flows_per_second

    def _pick_pair(self) -> tuple[int, int]:
        src = self.rng.randrange(self.n_hosts)
        while True:
            dst = self.rng.randrange(self.n_hosts)
            if dst == src:
                continue
            if (
                self.hosts_per_rack is not None
                and dst // self.hosts_per_rack == src // self.hosts_per_rack
            ):
                continue
            return src, dst

    def flows(
        self, duration_ps: int, start_ps: int = 0
    ) -> Iterator[FlowArrival]:
        """Yield arrivals with time < ``start_ps + duration_ps`` in order."""
        t = float(start_ps)
        flow_id = 0
        end = start_ps + duration_ps
        while True:
            t += -math.log(1.0 - self.rng.random()) * self.mean_interarrival_ps
            if t >= end:
                return
            src, dst = self._pick_pair()
            yield FlowArrival(
                time_ps=int(t),
                src_host=src,
                dst_host=dst,
                size_bytes=self.distribution.sample(self.rng),
                flow_id=flow_id,
            )
            flow_id += 1
