"""Command-line interface: regenerate any paper table or figure.

Usage::

    python -m repro.cli list
    python -m repro.cli fig04
    python -m repro.cli table1
    python -m repro.cli fig12 --k 12

Each experiment prints the same rows the corresponding benchmark emits;
heavyweight packet-level figures accept their module defaults only (use
the benchmarks for parameterized runs).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from . import experiments as E

__all__ = ["main", "EXPERIMENTS"]


def _simple(module) -> Callable[[argparse.Namespace], list[str]]:
    def runner(_args: argparse.Namespace) -> list[str]:
        return module.format_rows(module.run())

    return runner


def _fig04(args: argparse.Namespace) -> list[str]:
    data = E.fig04_path_lengths.run(k=args.k, n_slices=27)
    return E.fig04_path_lengths.format_rows(data)


def _fig12(args: argparse.Namespace) -> list[str]:
    data = E.fig12_cost_sensitivity.run(k=args.k)
    return E.fig12_cost_sensitivity.format_rows(data)


def _fig18(args: argparse.Namespace) -> list[str]:
    rows: list[str] = []
    rows += E.fig18_failure_paths.format_rows(E.fig18_failure_paths.run_opera(), "opera")
    rows += E.fig18_failure_paths.format_rows(E.fig18_failure_paths.run_clos(), "clos")
    rows += E.fig18_failure_paths.format_rows(
        E.fig18_failure_paths.run_expander(), "expander"
    )
    return rows


EXPERIMENTS: dict[str, tuple[str, Callable[[argparse.Namespace], list[str]]]] = {
    "fig01": ("flow-size distributions (Figure 1)", _simple(E.fig01_distributions)),
    "fig04": ("path-length CDFs (Figure 4)", _fig04),
    "fig06": ("time constants (Figure 6 / §4.1)", _simple(E.fig06_timing)),
    "fig07": ("Datamining FCTs, reduced scale (Figure 7)", _simple(E.fig07_datamining)),
    "fig08": ("shuffle throughput (Figure 8)", _simple(E.fig08_shuffle)),
    "fig09": ("Websearch FCTs, reduced scale (Figure 9)", _simple(E.fig09_websearch)),
    "fig10": ("mixed-traffic throughput (Figure 10)", _simple(E.fig10_mixed)),
    "fig11": ("fault tolerance (Figure 11)", _simple(E.fig11_faults)),
    "fig12": ("cost sensitivity (Figures 12/15)", _fig12),
    "fig13": ("prototype RTTs (Figure 13)", _simple(E.fig13_prototype)),
    "fig14": ("cycle-time scaling (Figure 14)", _simple(E.fig14_cycle_scaling)),
    "fig16": ("path-length scaling (Figure 16)", _simple(E.fig16_path_scaling)),
    "fig17": ("spectral gaps (Figure 17)", _simple(E.fig17_spectral)),
    "fig18": ("failure path stretch (Figures 18-20)", _fig18),
    "table1": ("routing state (Table 1)", _simple(E.table1_state)),
    "table2": ("port costs (Table 2)", _simple(E.table2_costs)),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="Opera reproduction experiment runner"
    )
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. fig08, table1) or 'list'",
    )
    parser.add_argument(
        "--k", type=int, default=12, help="ToR radix for sized experiments"
    )
    args = parser.parse_args(argv)
    if args.experiment == "list":
        for name, (description, _fn) in EXPERIMENTS.items():
            print(f"{name:>7s}  {description}")
        return 0
    if args.experiment not in EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; try 'list'", file=sys.stderr)
        return 2
    description, runner = EXPERIMENTS[args.experiment]
    print(f"=== {args.experiment}: {description} ===")
    for row in runner(args):
        print(row)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
