"""Command-line interface over the scenario registry.

Usage::

    python -m repro.cli list [--tag analysis]
    python -m repro.cli run fig04 fig16 --workers 4
    python -m repro.cli run --tag analysis
    python -m repro.cli run fig04 --set k=12 --set n_slices=9 --no-cache
    python -m repro.cli sweep fig04 --set k=8,12,16 --workers 4
    python -m repro.cli run fig07 --executor distributed --workers 2
    python -m repro.cli run fig07 --listen 0.0.0.0:7077 --workers 0
    python -m repro.cli worker HOST:7077
    python -m repro.cli cache stats
    python -m repro.cli run fig07 --telemetry --workers 4
    python -m repro.cli trace latest
    python -m repro.cli status HOST:7077
    python -m repro.cli serve 0.0.0.0:7077 --workers 4 --secret-file s.key
    python -m repro.cli submit HOST:7077 fig04 --set k=8,12
    python -m repro.cli jobs HOST:7077
    python -m repro.cli cancel HOST:7077 job-0001
    python -m repro.cli cancel HOST:7077 --drain

``run`` accepts scenario names (globs work: ``'fig1*'``) and/or ``--tag``
selections and executes them through the shared :class:`repro.scenarios.Runner`
— the same code path the pytest benchmarks use — with a multiprocessing
worker pool (``--workers``) and a content-addressed result cache (default
``~/.cache/opera-repro``; override with ``--cache-dir`` or
``$REPRO_CACHE_DIR``, skip reads with ``--no-cache``, disable entirely with
``--cache-dir ''``). ``sweep`` runs one scenario over the cartesian grid of
comma-separated ``--set`` values.

Sharded scenarios (fig07/fig09/fig10/fig11 and the ablations) decompose
into per-cell jobs that fan out across the worker pool and are cached
individually — an interrupted run resumes from its completed cells. A
progress stream (``[done/total] scenario:cell (dur [@worker]) — eta``)
goes to stderr when it is a terminal; force it with ``--progress``.

``--executor distributed`` leases those same units to TCP workers
instead: ``--workers N`` auto-spawns N local subprocess workers, and
``--listen HOST:PORT`` (which implies the executor) accepts external
``repro worker HOST:PORT`` processes — see README "Distributed
execution". ``cache`` inspects the content-addressed result/cell cache
(``stats`` | ``ls <scenario>`` | ``clear [scenario]``).

Fault tolerance (README "Fault tolerance & chaos testing"): ``--chaos
SPEC`` arms the seeded fault-injection harness for the run (and its
spawned workers), ``--policy degraded`` quarantines failed units into the
result instead of failing the sweep, and ``--resume-journal`` resumes a
crashed distributed run from its write-ahead journal — an injected
coordinator crash exits with status 3 and prints the resume command.

Service mode (README "Running as a service"): ``serve`` runs a
long-lived multi-sweep coordinator with a job queue; ``submit`` sends a
sweep to it (``sweep`` semantics over the wire — rows come back bitwise
identical to an in-process run), ``jobs`` lists its job table, and
``cancel`` cancels one job or drains the whole service. A shared secret
(``--secret-file`` or ``$REPRO_SECRET``) arms HMAC authentication on
every connection.

Observability (README "Observability"): ``--telemetry`` arms engine
metrics + sweep tracing for the run (``REPRO_TELEMETRY=1``; simulated
results stay bit-identical), ``trace`` renders a recorded run's per-unit
timeline from ``<cache>/_trace/``, ``status`` polls a live distributed
coordinator's cached snapshot, and a global ``-v/--verbose`` flag turns
on module logging (``-v`` INFO, ``-vv`` DEBUG).

The legacy spelling ``python -m repro.cli fig04 [--k 12]`` still works and
maps onto ``run``.
"""

from __future__ import annotations

import argparse
import math
import sys

from .distrib.chaos import ChaosCrash
from .scenarios import (
    Progress,
    ResultCache,
    Runner,
    ScenarioError,
    ScenarioExecutionError,
    all_scenarios,
    all_tags,
)

__all__ = ["main"]


def _format_eta(seconds: float) -> str:
    if not math.isfinite(seconds):
        return "?"
    if seconds >= 90:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


def _progress_printer(event: Progress) -> None:
    """One stderr line per finished unit: ``[done/total] label — eta``.

    Remote completions carry the worker's name, so a distributed run's
    ``[done/total]`` line accounts for every unit wherever it ran. The
    ETA is omitted (not printed as garbage) when the Runner could not
    compute one — e.g. a zero-duration first unit.

    The record goes out as ONE ``write()`` call, newline included:
    ``print()`` writes the text and the line terminator separately, and
    with several workers completing units concurrently (each process's
    stderr pointed at the same pipe) the interleaving tore lines apart
    mid-record. A single ``write`` of a complete line is atomic enough
    for a pipe (< ``PIPE_BUF``) — ``tests/test_cli.py`` pins this shape.
    """
    status = "FAILED" if event.failed else f"{event.duration_s:.1f}s"
    if event.worker:
        status += f" @{event.worker}"
    eta = (
        f" — eta {_format_eta(event.eta_s)}"
        if event.eta_s is not None and event.done < event.total
        else ""
    )
    sys.stderr.write(
        f"[{event.done}/{event.total}] {event.label} ({status}){eta}\n"
    )
    sys.stderr.flush()


def _parse_sets(pairs: list[str]) -> dict[str, str]:
    overrides: dict[str, str] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ScenarioError(f"--set expects key=value, got {pair!r}")
        overrides[key.strip()] = value.strip()
    return overrides


def _print_listen_banner(address: tuple[str, int]) -> None:
    host, port = address
    # A wildcard bind is not a dialable address; tell the operator to
    # substitute something reachable instead of letting them paste
    # 0.0.0.0 into a remote terminal.
    dial = "<coordinator-host>" if host in ("0.0.0.0", "::", "") else host
    print(
        f"[distrib] coordinator listening on {host}:{port} — attach workers "
        f"with: repro worker {dial}:{port}",
        file=sys.stderr,
        flush=True,
    )


def _make_runner(args: argparse.Namespace) -> Runner:
    cache: ResultCache | None
    if args.cache_dir == "":
        cache = None
    else:
        cache = ResultCache(args.cache_dir)  # None -> default location
    show_progress = (
        args.progress
        if args.progress is not None
        else sys.stderr.isatty()
    )
    executor = args.executor
    if executor is None and args.listen is not None:
        executor = "distributed"  # --listen only means one thing
    service = getattr(args, "service", None)
    if executor is None and service is not None:
        executor = "service"  # --service only means one thing
    secret = None
    if executor == "service":
        from .distrib import AuthError, load_secret

        try:
            secret = load_secret(getattr(args, "secret_file", None))
        except AuthError as exc:
            raise ScenarioError(str(exc)) from None
    if getattr(args, "chaos", None):
        # Validate the spec *here* (a typo must fail the command, not
        # silently run a different experiment), then publish it through
        # the environment — the injector seam in repro.distrib reads it,
        # and spawned workers inherit it.
        import os

        from .distrib import ChaosError, parse_chaos

        try:
            parse_chaos(args.chaos)
        except ChaosError as exc:
            raise ScenarioError(str(exc)) from None
        os.environ["REPRO_CHAOS"] = args.chaos
    if getattr(args, "telemetry", False):
        # Published through the environment like --chaos: pool and TCP
        # workers inherit it, so every unit of the run reports metrics.
        import os

        os.environ["REPRO_TELEMETRY"] = "1"
    try:
        return Runner(
            workers=args.workers,
            cache=cache,
            use_cache=not args.no_cache,
            base_seed=args.seed,
            progress=_progress_printer if show_progress else None,
            executor=executor,
            listen=args.listen,
            service=service,
            secret=secret,
            on_listen=_print_listen_banner if executor == "distributed" else None,
            policy=getattr(args, "policy", "strict"),
            resume_journal=getattr(args, "resume_journal", False),
            lease_timeout=getattr(args, "lease_timeout", 60.0),
            max_respawns=getattr(args, "max_respawns", 8),
            max_cell_attempts=getattr(args, "max_cell_attempts", 3),
        )
    except ValueError as exc:  # bad executor/listen combination
        raise ScenarioError(str(exc)) from None


def _print_results(results, quiet: bool) -> None:
    for res in results:
        sc_note = " [cached]" if res.cached else f" [{res.duration_s:.2f}s]"
        if res.cells is not None and not res.cached:
            computed, restored, total = res.cells
            detail = f"{computed} run"
            if restored:
                detail += f" + {restored} cached"
            sc_note = f"{sc_note[:-1]}; cells: {detail} / {total}]"
        print(f"=== {res.name}{sc_note} params={res.params} ===")
        if not quiet:
            for row in res.rows:
                print(row)


def _cmd_list(args: argparse.Namespace) -> int:
    scenarios = all_scenarios()
    if args.tag:
        scenarios = [sc for sc in scenarios if any(t in sc.tags for t in args.tag)]
    for sc in scenarios:
        tags = ",".join(sc.tags)
        print(f"{sc.name:>7s}  {sc.cost:>6s}  [{tags}]  {sc.description}")
    if not args.tag:
        print(f"\ntags: {', '.join(all_tags())}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    if not args.names and not args.tag:
        print("nothing selected: give scenario names and/or --tag", file=sys.stderr)
        return 2
    results = runner.run(
        names=args.names, tags=args.tag, overrides=_parse_sets(args.set)
    )
    _print_results(results, args.quiet)
    return 0


def _grid_values(sc, key: str, text: str) -> list:
    """One ``--set`` value -> the grid points it contributes to a sweep.

    Commas separate grid points (``--set k=8,12`` is two runs). For a
    tuple-typed parameter each comma element is its own one-element-tuple
    point (``--set radices=12,16`` sweeps (12,) then (16,)); semicolons
    group multi-element tuples (``--set radices=12,16;24,32`` sweeps
    (12, 16) then (24, 32), and a trailing ``;`` pins one whole tuple:
    ``--set 'networks=opera,clos;'``).
    """
    if key not in sc.params:
        # Unknown keys surface through bind()'s strict validation with the
        # scenario's accepted-parameter list, not a KeyError here.
        return [text]
    param = sc.params[key]
    if ";" in text:
        return [param.coerce(group) for group in text.split(";") if group.strip()]
    return [param.coerce(v) for v in text.split(",")]


def _cmd_sweep(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    sets = _parse_sets(args.set)
    if not sets:
        print("sweep needs at least one --set key=v1,v2,...", file=sys.stderr)
        return 2
    from .scenarios import get

    sc = get(args.name)
    grid = {key: _grid_values(sc, key, value) for key, value in sets.items()}
    results = runner.sweep(args.name, grid)
    _print_results(results, args.quiet)
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from .distrib import AuthError, load_secret
    from .distrib.worker import AUTH_EXIT, max_units_from_env, serve

    try:
        return serve(
            args.address,
            connect_timeout=args.connect_timeout,
            max_units=max_units_from_env(),
            secret=load_secret(args.secret_file),
        )
    except AuthError as exc:
        print(f"worker auth error: {exc}", file=sys.stderr)
        return AUTH_EXIT
    except (OSError, ValueError) as exc:
        print(f"worker error: {exc}", file=sys.stderr)
        return 1


def _format_bytes(n: int) -> str:
    value = float(n)
    for suffix in ("B", "KB", "MB", "GB"):
        if value < 1024 or suffix == "GB":
            return f"{value:.1f}{suffix}" if suffix != "B" else f"{n}B"
        value /= 1024
    return f"{n}B"


def _print_run_file_stats(run_files: dict) -> None:
    """Journal/trace inventory lines under the per-scenario table.

    Run files are not cache entries (they are not content-addressed and
    never restore results), so they get their own lines, with the oldest
    age shown — the signal that a scenario-scoped ``cache clear`` (which
    GCs run files stale past a week) or a full clear is due.
    """
    from .scenarios.cache import STALE_RUN_FILE_S

    for dirname in sorted(run_files):
        entry = run_files[dirname]
        oldest = entry["oldest_age_s"]
        stale = (
            "  (stale; 'repro cache clear' collects)"
            if oldest is not None and oldest > STALE_RUN_FILE_S
            else ""
        )
        kind = "journal" if dirname == "_journal" else "trace"
        print(
            f"{dirname:>22s}  {entry['files']:4d} {kind}(s)  "
            f"{_format_bytes(entry['bytes'])}  oldest {_format_age(oldest)}"
            f"{stale}"
        )


def _format_age(seconds: float | None) -> str:
    if seconds is None:
        return "?"
    if seconds >= 48 * 3600:
        return f"{seconds / 86400:.1f}d"
    if seconds >= 90 * 60:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 90:
        return f"{seconds / 60:.0f}m"
    return f"{seconds:.0f}s"


def _cmd_cache(args: argparse.Namespace) -> int:
    if args.cache_dir == "":
        print("cache: nothing to inspect with the cache disabled", file=sys.stderr)
        return 2
    cache = ResultCache(args.cache_dir)
    if args.action == "stats":
        stats = cache.stats()
        run_files = cache.run_file_stats()
        print(f"cache root: {cache.root}")
        if not stats:
            if run_files:
                _print_run_file_stats(run_files)
            else:
                print("(empty)")
            return 0
        total_results = total_cells = total_bytes = total_corrupt = 0
        for name, entry in stats.items():
            corrupt = entry.get("corrupt", 0)
            note = f"  {corrupt} corrupt!" if corrupt else ""
            print(
                f"{name:>22s}  {entry['results']:4d} result(s)  "
                f"{entry['cells']:5d} cell(s)  "
                f"{_format_bytes(entry['bytes'])}{note}"
            )
            total_results += entry["results"]
            total_cells += entry["cells"]
            total_bytes += entry["bytes"]
            total_corrupt += corrupt
        note = f"  {total_corrupt} corrupt!" if total_corrupt else ""
        print(
            f"{'total':>22s}  {total_results:4d} result(s)  "
            f"{total_cells:5d} cell(s)  {_format_bytes(total_bytes)}{note}"
        )
        if total_corrupt:
            print(
                "(corrupt entries were quarantined as *.corrupt and will "
                "be recomputed; 'repro cache clear' removes them)",
                file=sys.stderr,
            )
        _print_run_file_stats(run_files)
        return 0
    if args.action == "ls":
        if not args.scenario:
            print("cache ls needs a scenario name", file=sys.stderr)
            return 2
        entries = cache.entries(args.scenario)
        if not entries:
            print(f"(no cache entries for {args.scenario!r})")
            return 0
        for entry in entries:
            doc = entry["doc"]
            label = doc.get("cell") if entry["kind"] == "cell" else "merged"
            duration = doc.get("duration_s")
            status = "ERROR" if "error" in doc else (
                f"{duration:.2f}s" if isinstance(duration, (int, float)) else "-"
            )
            params = cache.params_json(doc.get("params", {}))
            if len(params) > 60:
                params = params[:57] + "..."
            print(
                f"{entry['kind']:>6s}  {entry['path'].stem[:12]}  "
                f"{label or '-':>18s}  {status:>8s}  {params}"
            )
        return 0
    # clear
    removed = cache.clear(args.scenario)
    scope = f"scenario {args.scenario!r}" if args.scenario else "all scenarios"
    print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'} ({scope})")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.cache_dir == "":
        print("trace: traces live under the cache root, which is disabled",
              file=sys.stderr)
        return 2
    import json

    from .obs.trace import build_spans, list_traces, load_trace, render_trace

    cache = ResultCache(args.cache_dir)
    traces = list_traces(cache.root)
    if not args.run:
        if not traces:
            print(f"(no recorded traces under {cache.root}; arm telemetry "
                  "with --telemetry or REPRO_TELEMETRY=1)")
            return 0
        for path in traces:
            doc = build_spans(load_trace(path))
            units = doc["units"] if doc["units"] is not None else len(doc["spans"])
            wall = f"{doc['wall_s']:.2f}s" if doc["wall_s"] is not None else "?"
            state = "CRASHED" if doc["crashed"] else "done"
            print(
                f"{path.stem[:12]}  {units:4d} unit(s)  "
                f"{len(doc['cache_hits']):4d} hit(s)  {wall:>8s}  {state}"
            )
        return 0
    if args.run == "latest":
        path = traces[0] if traces else None
    else:
        path = next((p for p in traces if p.stem.startswith(args.run)), None)
    if path is None:
        print(f"trace: no recorded trace matches {args.run!r}", file=sys.stderr)
        return 2
    events = load_trace(path)
    if args.json:
        for event in events:
            print(json.dumps(event, sort_keys=True))
        return 0
    for line in render_trace(events):
        print(line)
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    import json

    from .distrib import AuthError, load_secret
    from .distrib.protocol import ProtocolError, fetch_status

    try:
        secret = load_secret(args.secret_file)
        status = fetch_status(args.address, timeout=args.timeout, secret=secret)
    except (OSError, ValueError, ProtocolError, AuthError) as exc:
        print(f"status error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    done = status.get("completed", 0)
    total = status.get("units_total", 0)
    rate = status.get("units_per_sec")
    notes = []
    if status.get("auth"):
        notes.append("authenticated")
    if status.get("draining"):
        notes.append("DRAINING")
    print(
        f"coordinator {args.address} — {status.get('state', '?')}: "
        f"{done}/{total} done, {status.get('in_flight', 0)} in flight, "
        f"{status.get('pending', 0)} pending"
        + (f", {rate:.2f} units/s" if isinstance(rate, (int, float)) else "")
        + (f"  [{', '.join(notes)}]" if notes else "")
    )
    jobs = status.get("jobs")
    if isinstance(jobs, list) and jobs:
        print(f"jobs: {len(jobs)}")
        for job in jobs:
            _print_job_line(job)
    workers = status.get("workers", [])
    print(
        f"workers: {len(workers)} connected, "
        f"{status.get('workers_seen', 0)} ever seen; "
        f"releases {status.get('releases', 0)}, "
        f"quarantined {status.get('quarantined', 0)}"
    )
    for w in workers:
        if w.get("lease_uid") is not None:
            state = f"unit {w['lease_uid']}"
            if w.get("lease_age_s") is not None:
                state += f" for {w['lease_age_s']:.1f}s"
        else:
            state = "ready" if w.get("ready") else "idle"
        print(f"  {w.get('worker', '?'):<24s} {state:<20s} "
              f"silent {w.get('silent_s', 0):.1f}s")
    extra = status.get("extra")
    if isinstance(extra, dict):
        hits = extra.get("cache_hits", {})
        print(
            f"run {extra.get('run', '?')}: {extra.get('jobs', '?')} job(s), "
            f"cache hits {hits.get('docs', 0)} doc(s) + {hits.get('cells', 0)} "
            f"cell(s)"
        )
    return 0


def _print_job_line(job: dict) -> None:
    """One job-table row, shared by ``status`` and ``jobs``."""
    done = job.get("completed", 0)
    total = job.get("units", 0)
    state = job.get("state", "?")
    label = job.get("label") or "-"
    if len(label) > 40:
        label = label[:37] + "..."
    print(
        f"  {job.get('job', '?'):>9s}  {state:>9s}  {done:4d}/{total:<4d}  "
        f"{_format_age(job.get('age_s'))} old  [{job.get('source', '?')}] "
        f"{label}"
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import subprocess

    from .distrib import (
        AuthError,
        Coordinator,
        load_secret,
        parse_address,
        spawn_local_worker,
    )
    from .distrib.journal import RunJournal, journal_path

    try:
        secret = load_secret(args.secret_file)
        host, port = parse_address(args.address)
    except (AuthError, ValueError) as exc:
        print(f"serve error: {exc}", file=sys.stderr)
        return 2
    cache = None if args.cache_dir == "" else ResultCache(args.cache_dir)

    def journal_factory(job):
        # Per-job write-ahead journals under the service's cache root:
        # a job resubmitted after a coordinator restart finds its grant/
        # completion history under the same run key.
        if cache is None:
            return None
        key = job.run_key or job.jid
        journal = RunJournal(journal_path(cache.root, key))
        journal.start(key, job.total)
        return journal

    try:
        coordinator = Coordinator(
            host,
            port,
            lease_timeout=args.lease_timeout,
            secret=secret,
            max_jobs=args.max_jobs,
            # Service mode faces the network, so the peer ledger is
            # armed: repeated garbage from one host gets it banned, and
            # reconnect storms are shed at accept time.
            ban_after=5,
            journal_factory=journal_factory,
        )
    except OSError as exc:
        print(f"serve error: cannot bind {args.address}: {exc}", file=sys.stderr)
        return 2
    _print_listen_banner(coordinator.address)
    bind_host, bind_port = coordinator.address
    dial = "<host>" if bind_host in ("0.0.0.0", "::", "") else bind_host
    print(
        f"[serve] job queue up (max {args.max_jobs} active, auth "
        f"{'armed' if secret else 'OFF — loopback/trusted networks only'}); "
        f"submit with: repro submit {dial}:{bind_port} <scenario> --set ...",
        file=sys.stderr,
        flush=True,
    )

    procs: list[subprocess.Popen] = []
    respawns = 0

    def watchdog(coord: Coordinator) -> None:
        # Keep the spawned fleet at strength while the service is live;
        # a draining service lets its workers run out instead.
        nonlocal respawns
        if coord.draining:
            return
        for idx, proc in enumerate(procs):
            if proc.poll() is not None and respawns < args.max_respawns:
                respawns += 1
                procs[idx] = spawn_local_worker(
                    coord.address, role=f"worker-r{respawns}", secret=secret
                )

    # Like worker.serve(): the previous SIGTERM disposition comes back on
    # exit so an embedding process (and anything it later forks) is not
    # left with a drain hook pointed at a dead coordinator.
    prev_handler = None
    handler_installed = False
    try:
        prev_handler = signal.signal(
            signal.SIGTERM, lambda *_: coordinator.drain()
        )
        handler_installed = True
    except ValueError:
        pass  # not the main thread (embedded use)
    try:
        for i in range(args.workers):
            procs.append(
                spawn_local_worker(
                    coordinator.address, role=f"worker-{i}", secret=secret
                )
            )
        coordinator.serve_forever(watchdog if args.workers else None)
        return 0
    except KeyboardInterrupt:
        print(
            "[serve] interrupted — jobs abandoned; use SIGTERM or "
            "'repro cancel --drain' for a graceful drain",
            file=sys.stderr,
        )
        return 130
    finally:
        if handler_installed:
            signal.signal(signal.SIGTERM, prev_handler)
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()  # SIGTERM -> worker drains and exits
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()


def _cmd_submit(args: argparse.Namespace) -> int:
    # `submit HOST:PORT scenario` is `sweep scenario --service HOST:PORT`:
    # the sweep grid is built client-side, units are executed by the
    # service's fleet, and rows merge/cache/print locally — bitwise
    # identical to running the sweep in-process.
    args.service = args.address
    args.executor = "service"
    args.listen = None
    return _cmd_sweep(args)


def _cmd_jobs(args: argparse.Namespace) -> int:
    import json

    from .distrib import AuthError, ServiceError, fetch_jobs, load_secret
    from .distrib.protocol import ProtocolError

    try:
        secret = load_secret(args.secret_file)
        table = fetch_jobs(args.address, secret=secret, timeout=args.timeout)
    except (OSError, ValueError, ProtocolError, AuthError, ServiceError) as exc:
        print(f"jobs error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(table, indent=2, sort_keys=True))
        return 0
    jobs = table["jobs"]
    drain = "  [DRAINING — no new submissions]" if table["draining"] else ""
    if not jobs:
        print(f"coordinator {args.address}: no jobs{drain}")
        return 0
    print(f"coordinator {args.address}: {len(jobs)} job(s){drain}")
    for job in jobs:
        _print_job_line(job)
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    from .distrib import AuthError, ServiceError, cancel_job, load_secret
    from .distrib.protocol import ProtocolError

    if not args.drain and args.job is None:
        print("cancel needs a job id or --drain", file=sys.stderr)
        return 2
    try:
        secret = load_secret(args.secret_file)
        reply = cancel_job(
            args.address,
            args.job,
            drain=args.drain,
            secret=secret,
            timeout=args.timeout,
        )
    except (OSError, ValueError, ProtocolError, AuthError, ServiceError) as exc:
        print(f"cancel error: {exc}", file=sys.stderr)
        return 1
    if args.drain:
        jobs = reply.get("jobs", [])
        running = sum(1 for j in jobs if j.get("state") in ("running", "queued"))
        print(
            f"coordinator {args.address} draining: {running} job(s) still "
            "finishing; the serve loop exits when the queue is idle"
        )
        return 0
    print(
        f"job {reply.get('job', args.job)}: {reply.get('state', '?')} "
        f"({reply.get('completed', 0)}/{reply.get('units', 0)} units kept)"
    )
    return 0


def _add_verbose_option(sub: argparse.ArgumentParser) -> None:
    # Every subparser re-declares -v under its own dest: argparse would
    # otherwise reset the main parser's count with the subparser default.
    # main() sums both, so '-v run' and 'run -v' mean the same thing.
    sub.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        dest="verbose_sub",
        help="module logging to stderr (-v = INFO, -vv = DEBUG)",
    )


def _add_exec_options(sub: argparse.ArgumentParser) -> None:
    _add_verbose_option(sub)
    sub.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="parameter override (repeatable); sweep takes comma lists",
    )
    sub.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker count: pool size (>1 enables multiprocessing), or how "
        "many local workers a distributed run auto-spawns (0 = external "
        "workers only)",
    )
    sub.add_argument(
        "--executor",
        choices=("local", "pool", "distributed", "service"),
        default=None,
        help="execution backend (default: pool when --workers > 1, else "
        "local; distributed leases units to TCP workers; service submits "
        "to a running 'repro serve' coordinator)",
    )
    sub.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help="distributed coordinator address for external 'repro worker' "
        "processes (implies --executor distributed; port 0 = ephemeral)",
    )
    sub.add_argument(
        "--service",
        default=None,
        metavar="HOST:PORT",
        help="address of a running 'repro serve' coordinator to execute "
        "on (implies --executor service)",
    )
    sub.add_argument(
        "--secret-file",
        default=None,
        metavar="PATH",
        help="file holding the service's shared secret (default: "
        "$REPRO_SECRET; only used with --executor service)",
    )
    sub.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore cached results (fresh runs are still stored)",
    )
    sub.add_argument(
        "--cache-dir",
        default=None,
        help="cache root (default ~/.cache/opera-repro); '' disables the cache",
    )
    sub.add_argument(
        "--seed",
        type=int,
        default=None,
        help="base seed; scenarios taking a seed get a derived per-scenario one",
    )
    sub.add_argument(
        "--quiet", action="store_true", help="print headers only, not rows"
    )
    progress = sub.add_mutually_exclusive_group()
    progress.add_argument(
        "--progress",
        action="store_true",
        default=None,
        help="print per-unit progress (cells done/total, ETA) to stderr "
        "(default: only when stderr is a terminal)",
    )
    progress.add_argument(
        "--no-progress",
        dest="progress",
        action="store_false",
        help="suppress the progress stream",
    )
    sub.add_argument(
        "--telemetry",
        action="store_true",
        help="arm engine/sweep telemetry for this run and its spawned "
        "workers (sets REPRO_TELEMETRY=1): per-unit metric snapshots and "
        "a JSONL trace under the cache root, rendered by 'repro trace'. "
        "Simulated results are bit-identical with or without it",
    )
    sub.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="arm deterministic fault injection, e.g. "
        "'seed=3,kill_worker=0.2,drop_frame=0.1,crash_coordinator=after_5' "
        "(sets REPRO_CHAOS for this run and its spawned workers)",
    )
    sub.add_argument(
        "--policy",
        choices=("strict", "degraded"),
        default="strict",
        help="completion policy: strict fails the run on the first bad "
        "unit (after the batch drains); degraded quarantines bad units "
        "into the result rows and completes everything else",
    )
    sub.add_argument(
        "--resume-journal",
        action="store_true",
        help="resume a crashed distributed run from its write-ahead "
        "journal (honors prior quarantines; disarms an injected "
        "coordinator crash)",
    )
    sub.add_argument(
        "--lease-timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="silence (no heartbeat, no result) before a distributed "
        "worker's lease is re-queued (default 60)",
    )
    sub.add_argument(
        "--max-respawns",
        type=int,
        default=8,
        metavar="N",
        help="budget for replacing auto-spawned workers that die while "
        "leased work remains (default 8; raise under kill_worker chaos)",
    )
    sub.add_argument(
        "--max-cell-attempts",
        type=int,
        default=3,
        metavar="N",
        help="distinct worker losses one unit survives before it is "
        "declared poison (default 3; raise under kill_worker chaos)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Opera reproduction scenario runner"
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        dest="verbose_main",
        help="module logging to stderr (-v = INFO, -vv = DEBUG)",
    )
    sub = parser.add_subparsers(dest="command")

    p_list = sub.add_parser("list", help="list registered scenarios")
    p_list.add_argument("--tag", action="append", default=[], help="filter by tag")
    _add_verbose_option(p_list)
    p_list.set_defaults(fn=_cmd_list)

    p_run = sub.add_parser("run", help="run scenarios by name/glob/tag")
    p_run.add_argument("names", nargs="*", help="scenario names or globs")
    p_run.add_argument("--tag", action="append", default=[], help="select by tag")
    _add_exec_options(p_run)
    p_run.set_defaults(fn=_cmd_run)

    p_sweep = sub.add_parser("sweep", help="grid-sweep one scenario's parameters")
    p_sweep.add_argument("name", help="scenario name")
    _add_exec_options(p_sweep)
    p_sweep.set_defaults(fn=_cmd_sweep)

    p_worker = sub.add_parser(
        "worker", help="attach a distributed worker to a coordinator"
    )
    p_worker.add_argument("address", metavar="HOST:PORT", help="coordinator address")
    p_worker.add_argument(
        "--connect-timeout",
        type=float,
        default=30.0,
        help="seconds to keep retrying the initial connection (default 30)",
    )
    p_worker.add_argument(
        "--secret-file",
        default=None,
        metavar="PATH",
        help="file holding the coordinator's shared secret (default: "
        "$REPRO_SECRET)",
    )
    _add_verbose_option(p_worker)
    p_worker.set_defaults(fn=_cmd_worker)

    p_cache = sub.add_parser(
        "cache", help="inspect or clear the result/cell cache"
    )
    p_cache.add_argument("action", choices=("stats", "ls", "clear"))
    p_cache.add_argument(
        "scenario", nargs="?", default=None,
        help="scenario to list (required for ls) or clear (default: all)",
    )
    p_cache.add_argument(
        "--cache-dir",
        default=None,
        help="cache root (default ~/.cache/opera-repro or $REPRO_CACHE_DIR)",
    )
    _add_verbose_option(p_cache)
    p_cache.set_defaults(fn=_cmd_cache)

    p_trace = sub.add_parser(
        "trace", help="render a recorded sweep trace (per-unit timeline)"
    )
    p_trace.add_argument(
        "run",
        nargs="?",
        default=None,
        help="run-key prefix or 'latest'; omit to list recorded traces",
    )
    p_trace.add_argument(
        "--json",
        action="store_true",
        help="dump the raw span events as JSON lines instead of rendering",
    )
    p_trace.add_argument(
        "--cache-dir",
        default=None,
        help="cache root holding the _trace/ directory (default "
        "~/.cache/opera-repro or $REPRO_CACHE_DIR)",
    )
    _add_verbose_option(p_trace)
    p_trace.set_defaults(fn=_cmd_trace)

    p_status = sub.add_parser(
        "status", help="poll a live distributed coordinator's status"
    )
    p_status.add_argument(
        "address", metavar="HOST:PORT", help="coordinator address"
    )
    p_status.add_argument(
        "--json", action="store_true", help="print the raw snapshot as JSON"
    )
    p_status.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        help="connect/read timeout in seconds (default 5)",
    )
    p_status.add_argument(
        "--secret-file",
        default=None,
        metavar="PATH",
        help="file holding the coordinator's shared secret (default: "
        "$REPRO_SECRET)",
    )
    _add_verbose_option(p_status)
    p_status.set_defaults(fn=_cmd_status)

    p_serve = sub.add_parser(
        "serve",
        help="run a long-lived multi-sweep coordinator service",
    )
    p_serve.add_argument(
        "address", metavar="HOST:PORT", help="listen address (port 0 = ephemeral)"
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="local subprocess workers to spawn and keep at strength "
        "(default 0: external 'repro worker' processes only)",
    )
    p_serve.add_argument(
        "--max-jobs",
        type=int,
        default=8,
        help="concurrently active jobs admitted before submissions are "
        "refused (default 8)",
    )
    p_serve.add_argument(
        "--lease-timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="silence before a worker's lease is re-queued (default 60)",
    )
    p_serve.add_argument(
        "--max-respawns",
        type=int,
        default=8,
        metavar="N",
        help="budget for replacing spawned workers that die (default 8)",
    )
    p_serve.add_argument(
        "--secret-file",
        default=None,
        metavar="PATH",
        help="file holding the shared secret that workers and clients "
        "must present (default: $REPRO_SECRET; unset = unauthenticated)",
    )
    p_serve.add_argument(
        "--cache-dir",
        default=None,
        help="cache root for per-job journals (default ~/.cache/opera-repro "
        "or $REPRO_CACHE_DIR; '' disables journaling)",
    )
    _add_verbose_option(p_serve)
    p_serve.set_defaults(fn=_cmd_serve)

    p_submit = sub.add_parser(
        "submit",
        help="submit a sweep to a running 'repro serve' coordinator",
    )
    p_submit.add_argument(
        "address", metavar="HOST:PORT", help="coordinator address"
    )
    p_submit.add_argument("name", help="scenario name")
    _add_exec_options(p_submit)
    p_submit.set_defaults(fn=_cmd_submit)

    p_jobs = sub.add_parser(
        "jobs", help="list a service coordinator's job table"
    )
    p_jobs.add_argument(
        "address", metavar="HOST:PORT", help="coordinator address"
    )
    p_jobs.add_argument(
        "--json", action="store_true", help="print the raw job table as JSON"
    )
    p_jobs.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        help="connect/read timeout in seconds (default 10)",
    )
    p_jobs.add_argument(
        "--secret-file",
        default=None,
        metavar="PATH",
        help="file holding the coordinator's shared secret (default: "
        "$REPRO_SECRET)",
    )
    _add_verbose_option(p_jobs)
    p_jobs.set_defaults(fn=_cmd_jobs)

    p_cancel = sub.add_parser(
        "cancel", help="cancel a job, or drain the whole service"
    )
    p_cancel.add_argument(
        "address", metavar="HOST:PORT", help="coordinator address"
    )
    p_cancel.add_argument(
        "job", nargs="?", default=None, help="job id (from 'repro jobs')"
    )
    p_cancel.add_argument(
        "--drain",
        action="store_true",
        help="refuse new submissions, let running jobs finish, then shut "
        "the service and its worker fleet down",
    )
    p_cancel.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        help="connect/read timeout in seconds (default 10)",
    )
    p_cancel.add_argument(
        "--secret-file",
        default=None,
        metavar="PATH",
        help="file holding the coordinator's shared secret (default: "
        "$REPRO_SECRET)",
    )
    _add_verbose_option(p_cancel)
    p_cancel.set_defaults(fn=_cmd_cancel)

    return parser


def _rewrite_legacy(argv: list[str]) -> list[str]:
    """Map ``repro.cli fig04 [--k 12]`` onto the ``run`` subcommand."""
    commands = (
        "list", "run", "sweep", "worker", "cache", "trace", "status",
        "serve", "submit", "jobs", "cancel",
    )
    if not argv or argv[0] in commands or argv[0].startswith("-"):
        return argv
    head, rest = argv[0], list(argv[1:])
    out = ["run", head]
    while rest:
        tok = rest.pop(0)
        if tok == "--k":
            if not rest:
                break
            out += ["--set", f"k={rest.pop(0)}"]
        elif tok.startswith("--k="):
            out += ["--set", f"k={tok.split('=', 1)[1]}"]
        else:
            out.append(tok)
    return out


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    argv = _rewrite_legacy(argv)
    parser = _build_parser()
    args = parser.parse_args(argv)
    verbosity = getattr(args, "verbose_main", 0) + getattr(args, "verbose_sub", 0)
    if verbosity:
        import logging

        logging.basicConfig(
            level=logging.INFO if verbosity == 1 else logging.DEBUG,
            format="%(levelname)s %(name)s: %(message)s",
            stream=sys.stderr,
        )
    if not getattr(args, "fn", None):
        parser.print_help()
        return 2
    try:
        return args.fn(args)
    except ScenarioExecutionError as exc:
        print(exc, file=sys.stderr)
        return 1
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ChaosCrash as exc:
        # The injected coordinator death (crash_coordinator chaos). The
        # write-ahead journal + cell cache hold everything completed so
        # far; re-running the same command with --resume-journal picks up
        # from there (and disarms the crash).
        print(f"chaos: {exc}", file=sys.stderr)
        print(
            "resume with: the same command plus --resume-journal",
            file=sys.stderr,
        )
        return 3
    except BrokenPipeError:
        # Downstream pager/head closed early; exit quietly like cat does.
        # Re-point stdout at devnull so interpreter shutdown doesn't raise
        # a second time while flushing the dead pipe.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
