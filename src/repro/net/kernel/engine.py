"""Compiled-kernel engine classes.

Importing this module requires the compiled extension
(:mod:`repro.net.kernel._ckernel`); :func:`repro.net.kernel.engine_classes`
catches the ``ImportError`` and falls back to the pure-Python engine.

The ``CK*`` classes add **no state** (``__slots__ = ()``) — they only
rebind the hot methods to the C implementations, which operate on the
base classes' ``__slots__`` through member-descriptor offsets captured by
``_ckernel.init`` below. Everything else (construction, cold paths,
introspection, repr) is inherited from the pure-Python classes, and the
C functions themselves delegate any call they cannot prove is on the
fast path (wheel scheduler, non-integral line rate, subclasses, test
doubles) back to the pure-Python implementations passed to ``init``.
"""

from __future__ import annotations

from .. import sim as _sim_mod
from ..link import _LAZY, Port, PortStats
from ..ndp import NdpSink, NdpSource, PullPacer
from ..node import CONSUMED, MAX_HOPS, Host, SwitchNode
from ..packet import (
    _POOL,
    _POOL_MAX,
    HEADER_BYTES,
    Packet,
    PacketKind,
    Priority,
    acquire,
)
from ..sim import Simulator
from . import _ckernel

__all__ = [
    "CKSimulator",
    "CKPort",
    "CKHost",
    "CKSwitchNode",
    "CKNdpSource",
    "CKNdpSink",
    "CKPullPacer",
]

_ckernel.init(
    {
        "Simulator": Simulator,
        "Port": Port,
        "Packet": Packet,
        "Host": Host,
        "SwitchNode": SwitchNode,
        "PortStats": PortStats,
        "TRAIN": _sim_mod._TRAIN,
        "LAZY": _LAZY,
        "CONSUMED": CONSUMED,
        "PRIO_CONTROL": Priority.CONTROL,
        "PRIO_LOW_LATENCY": Priority.LOW_LATENCY,
        "PRIO_BULK": Priority.BULK,
        "KIND_DATA": PacketKind.DATA,
        "KIND_HEADER": PacketKind.HEADER,
        "KIND_ACK": PacketKind.ACK,
        "KIND_NACK": PacketKind.NACK,
        "KIND_PULL": PacketKind.PULL,
        "NdpSource": NdpSource,
        "NdpSink": NdpSink,
        "PullPacer": PullPacer,
        "POOL": _POOL,
        "POOL_MAX": _POOL_MAX,
        "MAX_HOPS": MAX_HOPS,
        "HEADER_BYTES": HEADER_BYTES,
        "SORT_KEY": _sim_mod._T0,
        "py_at": Simulator.at,
        "py_after": Simulator.after,
        "py_at_many": Simulator.at_many,
        "py_run": Simulator.run,
        "py_past_error": Simulator._past_error,
        "py_enqueue": Port.enqueue,
        "py_kick": Port._kick,
        "py_receive": Host.receive,
        "py_acquire": acquire,
        "py_src_on_packet": NdpSource.on_packet,
        "py_sink_on_packet": NdpSink.on_packet,
        "py_emit_pull": NdpSink.emit_pull,
        "py_pacer_tick": PullPacer._tick,
    }
)


class CKSimulator(Simulator):
    """Simulator with the scheduling/run loop compiled."""

    __slots__ = ()

    at = _ckernel.at
    after = _ckernel.after
    at_many = _ckernel.at_many
    run = _ckernel.run


class CKPort(Port):
    """Port with enqueue and the serializer kick compiled.

    ``Port.__init__`` binds ``self._kick_cb = self._kick``, which resolves
    through the rebound class attribute — so every kick event a compiled
    port schedules dispatches straight into C.
    """

    __slots__ = ()

    enqueue = _ckernel.enqueue
    _kick = _ckernel._kick


class CKHost(Host):
    """Host with the receive/dispatch-to-endpoint path compiled."""

    __slots__ = ()

    receive = _ckernel.receive


class CKSwitchNode(SwitchNode):
    """Switch whose fused dispatch closure is built in C.

    The base setter performs the install-once check and builds the
    pure-Python fused closure; that closure is kept as the fallback for
    packets/ports the C dispatch cannot prove are fast-path.
    """

    __slots__ = ()

    @property
    def router(self):
        return self._router

    @router.setter
    def router(self, route) -> None:
        SwitchNode.router.__set__(self, route)
        py_dispatch = self.receive_cb
        self.receive_cb = _ckernel.make_dispatch(self, route, py_dispatch)


class CKNdpSource(NdpSource):
    """NDP source with the ACK/NACK/PULL receive handler compiled."""

    __slots__ = ()

    on_packet = _ckernel.src_on_packet


class CKNdpSink(NdpSink):
    """NDP sink with the ACK/dedup/delivery and PULL paths compiled."""

    __slots__ = ()

    on_packet = _ckernel.sink_on_packet
    emit_pull = _ckernel.sink_emit_pull


class CKPullPacer(PullPacer):
    """Pull pacer with the per-PULL tick compiled.

    ``PullPacer.__init__`` binds ``self._tick_cb = self._tick``, which
    resolves through the rebound class attribute — so every pacer event a
    compiled pacer schedules dispatches straight into C.
    """

    __slots__ = ()

    _tick = _ckernel.pacer_tick


_ckernel.register(
    CKSimulator,
    CKPort,
    CKHost,
    CKSwitchNode,
    CKNdpSource,
    CKNdpSink,
    CKPullPacer,
)
