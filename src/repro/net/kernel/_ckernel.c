/* Compiled engine kernel: the enqueue/serialize/dispatch hot path in C.
 *
 * Design: ONE data layout, TWO method implementations. This module does
 * not define any data structures of its own — every function reads and
 * writes the existing `__slots__` of the pure-Python engine classes
 * (Simulator / Port / Packet / Host / SwitchNode / PortStats) through
 * member-descriptor offsets captured at init time, and the event heap
 * stays the same Python list of (time_ps, seq, callback, args) tuples.
 * The pure-Python engine therefore remains the differential oracle: a
 * REPRO_KERNEL=c run must be bit-identical to =py in every observable,
 * and mixing compiled and interpreted callers on the same simulator is
 * safe by construction.
 *
 * Every function guards its fast path with *exact* type checks against
 * the CK* classes registered by kernel/engine.py and delegates anything
 * else — wheel-scheduler simulators, non-integral line rates, subclasses,
 *  test doubles — to the stored pure-Python implementation, so semantics
 * can never diverge on paths the C code does not model.
 *
 * Heap discipline: heap_push / heap_pop transcribe heapq's exact
 * sift algorithms (append + _siftdown, pop-last + _siftup) comparing
 * entries by their (time_ps, seq) int64 prefix. Sequence numbers are
 * unique, so this ordering is identical to Python's tuple comparison —
 * and because the array layout after every operation matches heapq's,
 * C and Python heap operations can interleave freely on one list.
 *
 * Limits: timestamps and sequence numbers must fit in int64 (9.2e18 ps
 * is ~107 days of simulated time); beyond that the kernel raises
 * OverflowError suggesting REPRO_KERNEL=py.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>

/* ------------------------------------------------------------------ state */

typedef struct {
    Py_ssize_t now, wheel, heap, seq, gap, coalesce, train_extra,
        events_processed, trains_formed, train_events, train_repushes;
} SimOffsets;

typedef struct {
    Py_ssize_t sim, resolver, propagation_ps, data_queue_bytes,
        control_queue_bytes, bulk_queue_bytes, trimming, on_undeliverable,
        on_bulk_drop, stats, q_control, q_data, q_bulk, bytes_control,
        bytes_data, bytes_bulk, busy_until, kick_pending, ps_per_byte,
        target, committed_control, deliver, kick_cb, undeliv_cb, burst;
} PortOffsets;

typedef struct {
    Py_ssize_t flow_id, kind, src_host, dst_host, seq, size_bytes, priority,
        slice_stamp, salt, hops, next_rack, relay_to, enqueued_ps, recv_args,
        pooled;
} PacketOffsets;

typedef struct {
    Py_ssize_t record, priority, mtu, n_packets, next_new, rtx, acked,
        pulls_banked, send;
} SourceOffsets;

typedef struct {
    Py_ssize_t sim, record, pacer, stats, source, received, pull_seq, send;
} SinkOffsets;

typedef struct {
    Py_ssize_t sim, interval_ps, tokens, running, tick_cb;
} PacerOffsets;

typedef struct {
    Py_ssize_t sources, sinks, dropped;
} HostOffsets;

typedef struct {
    Py_ssize_t drops;
} SwitchOffsets;

typedef struct {
    Py_ssize_t sent_packets, sent_bytes, trimmed, dropped_control,
        dropped_bulk;
} StatsOffsets;

static SimOffsets S;
static PortOffsets P;
static PacketOffsets K;
static HostOffsets H;
static SwitchOffsets W;
static StatsOffsets ST;
static SourceOffsets NS;
static SinkOffsets NK;
static PacerOffsets PP;

/* Sentinels / enum members / shared objects (all owned references). */
static PyObject *g_train;        /* sim._TRAIN */
static PyObject *g_lazy;         /* link._LAZY */
static PyObject *g_consumed;     /* node.CONSUMED */
static PyObject *g_prio_control, *g_prio_low, *g_prio_bulk;
static PyObject *g_kind_data, *g_kind_header;
static PyObject *g_kind_ack, *g_kind_nack, *g_kind_pull;
static PyObject *g_ack_val, *g_nack_val, *g_pull_val; /* kind.value ints */
static PyObject *g_src_salt; /* 0x9E3779B9: NdpSource._emit salt constant */
static PyObject *g_zero, *g_one;
static long long g_header_ll; /* HEADER_BYTES as C int */
static PyObject *g_pool;         /* packet._POOL (the module-global list) */
static long g_pool_max;
static long long g_max_hops;
static PyObject *g_header_bytes; /* packet.HEADER_BYTES int object */
static PyObject *g_sorted;       /* builtins.sorted */
static PyObject *g_sort_kwargs;  /* {"key": sim._T0} */
static PyObject *g_empty;        /* () */

/* Pure-Python fallbacks (unbound functions). */
static PyObject *g_py_sim_at, *g_py_sim_after, *g_py_sim_at_many,
    *g_py_sim_run, *g_py_past_error, *g_py_port_enqueue, *g_py_port_kick,
    *g_py_host_receive, *g_py_acquire, *g_py_src_on_packet,
    *g_py_sink_on_packet, *g_py_emit_pull, *g_py_pacer_tick;

/* Base classes (for offset validity) and exact CK classes (fast path). */
static PyTypeObject *t_sim, *t_port, *t_packet, *t_host, *t_switch;
static PyTypeObject *t_cksim, *t_ckport, *t_ckhost, *t_ckswitch;
static PyTypeObject *t_src, *t_sink, *t_pacer;
static PyTypeObject *t_cksrc, *t_cksink, *t_ckpacer;

/* The PyCFunction behind the exported `enqueue` instancemethod — lets the
 * NDP send path recognise `ckport.enqueue` bound methods and call the C
 * implementation without going through the method object. */
static PyObject *g_cf_enqueue;

/* Interned method-name strings. */
static PyObject *s_receive_cb, *s_receive, *s_popleft, *s_append,
    *s_on_packet, *s_enqueue, *s_add, *s_after, *s_request, *s_emit_pull,
    *s_finished, *s_payload_bytes, *s_delivered, *s_now, *s_flow_id,
    *s_src_host, *s_dst_host, *s_size_bytes, *s_end_ps, *s_retransmissions,
    *s_value;

static int g_ready = 0; /* init() completed */

#define SLOT(o, off) (*(PyObject **)((char *)(o) + (off)))

/* ---------------------------------------------------------------- helpers */

static inline PyObject *
slot_get(PyObject *o, Py_ssize_t off, const char *name)
{
    PyObject *v = SLOT(o, off);
    if (v == NULL)
        PyErr_Format(PyExc_AttributeError, "slot %.100s is unset", name);
    return v;
}

/* Store v (borrowed) into a slot; increfs v, drops the old value. */
static inline void
slot_set(PyObject *o, Py_ssize_t off, PyObject *v)
{
    PyObject *old = SLOT(o, off);
    Py_INCREF(v);
    SLOT(o, off) = v;
    Py_XDECREF(old);
}

static inline long long
slot_ll(PyObject *o, Py_ssize_t off, const char *name, int *err)
{
    PyObject *v = SLOT(o, off);
    long long r;
    if (v == NULL) {
        PyErr_Format(PyExc_AttributeError, "slot %.100s is unset", name);
        *err = 1;
        return -1;
    }
    r = PyLong_AsLongLong(v);
    if (r == -1 && PyErr_Occurred()) {
        *err = 1;
        return -1;
    }
    return r;
}

static inline int
slot_set_ll(PyObject *o, Py_ssize_t off, long long v)
{
    PyObject *num = PyLong_FromLongLong(v);
    PyObject *old;
    if (num == NULL)
        return -1;
    old = SLOT(o, off);
    SLOT(o, off) = num;
    Py_XDECREF(old);
    return 0;
}

/* Add `delta` to an int slot (counter bump). */
static inline int
slot_add_ll(PyObject *o, Py_ssize_t off, const char *name, long long delta)
{
    int err = 0;
    long long v = slot_ll(o, off, name, &err);
    if (err)
        return -1;
    return slot_set_ll(o, off, v + delta);
}

/* (time, seq) key of a heap/train entry; entries are tuples whose first
 * two elements are ints. */
static inline int
entry_key(PyObject *e, long long *t, long long *s)
{
    *t = PyLong_AsLongLong(PyTuple_GET_ITEM(e, 0));
    if (*t == -1 && PyErr_Occurred())
        goto overflow;
    *s = PyLong_AsLongLong(PyTuple_GET_ITEM(e, 1));
    if (*s == -1 && PyErr_Occurred())
        goto overflow;
    return 0;
overflow:
    if (PyErr_ExceptionMatches(PyExc_OverflowError))
        PyErr_SetString(
            PyExc_OverflowError,
            "ckernel: event timestamp/sequence exceeds int64; "
            "run with REPRO_KERNEL=py");
    return -1;
}

/* ---------------------------------------------------------------- heap ops
 *
 * Exact transcriptions of heapq's _siftdown/_siftup so the array layout
 * stays interchangeable with Python-side heappush/heappop on the same
 * list. Items are only permuted (no refcount changes); on a comparison
 * error the in-flight item is written back so the list stays consistent.
 */

static int
heap_push(PyObject *heap, PyObject *entry)
{
    Py_ssize_t pos, parentpos;
    PyObject **items;
    long long nt, ns, pt, ps2;

    if (PyList_Append(heap, entry) < 0)
        return -1;
    pos = PyList_GET_SIZE(heap) - 1;
    if (entry_key(entry, &nt, &ns) < 0)
        return -1;
    items = ((PyListObject *)heap)->ob_item;
    while (pos > 0) {
        parentpos = (pos - 1) >> 1;
        if (entry_key(items[parentpos], &pt, &ps2) < 0) {
            items[pos] = entry; /* restore */
            return -1;
        }
        if (nt < pt || (nt == pt && ns < ps2)) {
            items[pos] = items[parentpos];
            pos = parentpos;
        }
        else
            break;
    }
    items[pos] = entry;
    return 0;
}

/* Pop the smallest entry; heap must be non-empty. Returns a new ref. */
static PyObject *
heap_pop(PyObject *heap)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    PyObject *last, *ret, *newitem;
    PyObject **items;
    Py_ssize_t pos, startpos, childpos, endpos;
    long long it, is2, ct, cs, rt, rs, pt, ps2;

    last = PyList_GET_ITEM(heap, n - 1);
    Py_INCREF(last);
    if (PyList_SetSlice(heap, n - 1, n, NULL) < 0) {
        Py_DECREF(last);
        return NULL;
    }
    if (n == 1)
        return last;
    items = ((PyListObject *)heap)->ob_item;
    ret = items[0];        /* transfer: list's ref becomes ours */
    items[0] = last;       /* transfer: our ref becomes the list's */

    /* _siftup(heap, 0): bubble the hole to a leaf chasing the smaller
     * child, then _siftdown back toward the start. */
    newitem = last;
    if (entry_key(newitem, &it, &is2) < 0)
        return ret; /* heap order broken but list consistent; error set */
    pos = 0;
    startpos = 0;
    endpos = PyList_GET_SIZE(heap);
    childpos = 2 * pos + 1;
    while (childpos < endpos) {
        Py_ssize_t rightpos = childpos + 1;
        if (entry_key(items[childpos], &ct, &cs) < 0) {
            items[pos] = newitem;
            return ret;
        }
        if (rightpos < endpos) {
            if (entry_key(items[rightpos], &rt, &rs) < 0) {
                items[pos] = newitem;
                return ret;
            }
            if (!(ct < rt || (ct == rt && cs < rs))) {
                childpos = rightpos;
                ct = rt;
                cs = rs;
            }
        }
        items[pos] = items[childpos];
        pos = childpos;
        childpos = 2 * pos + 1;
    }
    items[pos] = newitem;
    /* _siftdown(heap, startpos, pos) */
    while (pos > startpos) {
        Py_ssize_t parentpos = (pos - 1) >> 1;
        if (entry_key(items[parentpos], &pt, &ps2) < 0)
            return ret;
        if (it < pt || (it == pt && is2 < ps2)) {
            PyObject *parent = items[parentpos];
            items[parentpos] = newitem;
            items[pos] = parent;
            pos = parentpos;
        }
        else
            break;
    }
    return ret;
}

/* ----------------------------------------------------------- scheduling */

/* raise sim._past_error(time_ps, callback) */
static void
raise_past_error(PyObject *sim, PyObject *t_obj, PyObject *cb)
{
    PyObject *exc =
        PyObject_CallFunctionObjArgs(g_py_past_error, sim, t_obj, cb, NULL);
    if (exc != NULL) {
        PyErr_SetObject((PyObject *)Py_TYPE(exc), exc);
        Py_DECREF(exc);
    }
}

/* sim.at(time_ps, callback, *args) for a heap simulator whose past-check
 * already passed or is performed by the caller: allocate the next seq and
 * push (time, seq, callback, args). `args` is borrowed. */
static int
schedule_heap(PyObject *sim, long long time_ps, PyObject *cb, PyObject *args)
{
    int err = 0;
    long long seq = slot_ll(sim, S.seq, "_seq", &err) + 1;
    PyObject *heap, *seq_obj, *t_obj, *entry;
    if (err)
        return -1;
    heap = slot_get(sim, S.heap, "_heap");
    if (heap == NULL)
        return -1;
    seq_obj = PyLong_FromLongLong(seq);
    if (seq_obj == NULL)
        return -1;
    t_obj = PyLong_FromLongLong(time_ps);
    if (t_obj == NULL) {
        Py_DECREF(seq_obj);
        return -1;
    }
    entry = PyTuple_New(4);
    if (entry == NULL) {
        Py_DECREF(seq_obj);
        Py_DECREF(t_obj);
        return -1;
    }
    PyTuple_SET_ITEM(entry, 0, t_obj);             /* stolen */
    Py_INCREF(seq_obj);
    PyTuple_SET_ITEM(entry, 1, seq_obj);
    Py_INCREF(cb);
    PyTuple_SET_ITEM(entry, 2, cb);
    Py_INCREF(args);
    PyTuple_SET_ITEM(entry, 3, args);
    /* self._seq = seq (reuse the tuple's int object, as Python does) */
    {
        PyObject *old = SLOT(sim, S.seq);
        SLOT(sim, S.seq) = seq_obj; /* transfer our remaining ref */
        Py_XDECREF(old);
    }
    if (heap_push(heap, entry) < 0) {
        Py_DECREF(entry);
        return -1;
    }
    Py_DECREF(entry);
    return 0;
}

/* Fast-path eligibility for a simulator object. */
static inline int
sim_fast(PyObject *sim)
{
    return (Py_TYPE(sim) == t_cksim || Py_TYPE(sim) == t_sim) &&
           SLOT(sim, S.wheel) == Py_None;
}

/* ------------------------------------------------------- Simulator.at/after */

static PyObject *
c_sim_at(PyObject *Py_UNUSED(mod), PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *self, *t_obj, *cb, *rest;
    long long t, now;
    int err = 0;
    Py_ssize_t i;

    if (nargs < 3) {
        PyErr_SetString(PyExc_TypeError,
                        "at() requires (self, time_ps, callback, *args)");
        return NULL;
    }
    self = args[0];
    t_obj = args[1];
    cb = args[2];
    if (!g_ready || !sim_fast(self))
        return PyObject_Vectorcall(g_py_sim_at, args, nargs, NULL);
    t = PyLong_AsLongLong(t_obj);
    if (t == -1 && PyErr_Occurred())
        return NULL;
    now = slot_ll(self, S.now, "now", &err);
    if (err)
        return NULL;
    if (t < now) {
        raise_past_error(self, t_obj, cb);
        return NULL;
    }
    if (nargs == 3) {
        rest = g_empty;
        Py_INCREF(rest);
    }
    else {
        rest = PyTuple_New(nargs - 3);
        if (rest == NULL)
            return NULL;
        for (i = 3; i < nargs; i++) {
            Py_INCREF(args[i]);
            PyTuple_SET_ITEM(rest, i - 3, args[i]);
        }
    }
    if (schedule_heap(self, t, cb, rest) < 0) {
        Py_DECREF(rest);
        return NULL;
    }
    Py_DECREF(rest);
    Py_RETURN_NONE;
}

static PyObject *
c_sim_after(PyObject *Py_UNUSED(mod), PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *self, *cb, *rest;
    long long delay, now, t;
    int err = 0;
    Py_ssize_t i;

    if (nargs < 3) {
        PyErr_SetString(PyExc_TypeError,
                        "after() requires (self, delay_ps, callback, *args)");
        return NULL;
    }
    self = args[0];
    cb = args[2];
    if (!g_ready || !sim_fast(self))
        return PyObject_Vectorcall(g_py_sim_after, args, nargs, NULL);
    delay = PyLong_AsLongLong(args[1]);
    if (delay == -1 && PyErr_Occurred())
        return NULL;
    now = slot_ll(self, S.now, "now", &err);
    if (err)
        return NULL;
    t = now + delay;
    if (t < now) {
        PyObject *t_obj = PyLong_FromLongLong(t);
        if (t_obj != NULL) {
            raise_past_error(self, t_obj, cb);
            Py_DECREF(t_obj);
        }
        return NULL;
    }
    if (nargs == 3) {
        rest = g_empty;
        Py_INCREF(rest);
    }
    else {
        rest = PyTuple_New(nargs - 3);
        if (rest == NULL)
            return NULL;
        for (i = 3; i < nargs; i++) {
            Py_INCREF(args[i]);
            PyTuple_SET_ITEM(rest, i - 3, args[i]);
        }
    }
    if (schedule_heap(self, t, cb, rest) < 0) {
        Py_DECREF(rest);
        return NULL;
    }
    Py_DECREF(rest);
    Py_RETURN_NONE;
}

/* ---------------------------------------------------------------- at_many */

/* Build the 4-entry (t_obj, seq, cb, cargs) from a (t, cb, cargs) triple.
 * Borrows `triple`; returns new ref. */
static PyObject *
entry_from_triple(PyObject *triple, long long seq)
{
    PyObject *entry = PyTuple_New(4);
    PyObject *seq_obj;
    if (entry == NULL)
        return NULL;
    seq_obj = PyLong_FromLongLong(seq);
    if (seq_obj == NULL) {
        Py_DECREF(entry);
        return NULL;
    }
    Py_INCREF(PyTuple_GET_ITEM(triple, 0));
    PyTuple_SET_ITEM(entry, 0, PyTuple_GET_ITEM(triple, 0));
    PyTuple_SET_ITEM(entry, 1, seq_obj);
    Py_INCREF(PyTuple_GET_ITEM(triple, 1));
    PyTuple_SET_ITEM(entry, 2, PyTuple_GET_ITEM(triple, 1));
    Py_INCREF(PyTuple_GET_ITEM(triple, 2));
    PyTuple_SET_ITEM(entry, 3, PyTuple_GET_ITEM(triple, 2));
    return entry;
}

static PyObject *
c_at_many_impl(PyObject *self, PyObject *entries)
{
    Py_ssize_t n, i, start;
    long long now, seq, gap, prev, prev_t, t = 0;
    int err = 0, coalesce, pre_sorted;
    PyObject *heap, *block;
    int owned;

    n = PyList_GET_SIZE(entries);
    if (n == 0)
        Py_RETURN_NONE;
    now = slot_ll(self, S.now, "now", &err);
    if (err)
        return NULL;
    coalesce = PyObject_IsTrue(SLOT(self, S.coalesce));
    if (coalesce < 0)
        return NULL;
    heap = slot_get(self, S.heap, "_heap");
    if (heap == NULL)
        return NULL;
    seq = slot_ll(self, S.seq, "_seq", &err);
    if (err)
        return NULL;

    if (!coalesce || n == 1) {
        for (i = 0; i < n; i++) {
            PyObject *triple = PyList_GET_ITEM(entries, i);
            PyObject *entry;
            long long ti = PyLong_AsLongLong(PyTuple_GET_ITEM(triple, 0));
            if (ti == -1 && PyErr_Occurred()) {
                slot_set_ll(self, S.seq, seq);
                return NULL;
            }
            if (ti < now) {
                /* self._seq = seq; raise — entries already pushed stay. */
                if (slot_set_ll(self, S.seq, seq) < 0)
                    return NULL;
                raise_past_error(self, PyTuple_GET_ITEM(triple, 0),
                                 PyTuple_GET_ITEM(triple, 1));
                return NULL;
            }
            seq += 1;
            entry = entry_from_triple(triple, seq);
            if (entry == NULL || heap_push(heap, entry) < 0) {
                Py_XDECREF(entry);
                slot_set_ll(self, S.seq, seq);
                return NULL;
            }
            Py_DECREF(entry);
        }
        if (slot_set_ll(self, S.seq, seq) < 0)
            return NULL;
        Py_RETURN_NONE;
    }

    /* Validation pass: past check + pre-sorted detection. */
    prev = PyLong_AsLongLong(PyTuple_GET_ITEM(PyList_GET_ITEM(entries, 0), 0));
    if (prev == -1 && PyErr_Occurred())
        return NULL;
    if (prev < now) {
        PyObject *triple = PyList_GET_ITEM(entries, 0);
        raise_past_error(self, PyTuple_GET_ITEM(triple, 0),
                         PyTuple_GET_ITEM(triple, 1));
        return NULL;
    }
    pre_sorted = 1;
    for (i = 0; i < n; i++) {
        PyObject *triple = PyList_GET_ITEM(entries, i);
        long long ti = PyLong_AsLongLong(PyTuple_GET_ITEM(triple, 0));
        if (ti == -1 && PyErr_Occurred())
            return NULL;
        if (ti < now) {
            raise_past_error(self, PyTuple_GET_ITEM(triple, 0),
                             PyTuple_GET_ITEM(triple, 1));
            return NULL;
        }
        if (ti < prev)
            pre_sorted = 0;
        prev = ti;
    }
    if (pre_sorted) {
        block = entries;
        Py_INCREF(block);
        owned = 0;
    }
    else {
        PyObject *argtup = PyTuple_Pack(1, entries);
        if (argtup == NULL)
            return NULL;
        block = PyObject_Call(g_sorted, argtup, g_sort_kwargs);
        Py_DECREF(argtup);
        if (block == NULL)
            return NULL;
        owned = 1;
    }
    gap = slot_ll(self, S.gap, "_gap", &err);
    if (err) {
        Py_DECREF(block);
        return NULL;
    }
    start = 0;
    prev_t =
        PyLong_AsLongLong(PyTuple_GET_ITEM(PyList_GET_ITEM(block, 0), 0));
    if (prev_t == -1 && PyErr_Occurred()) {
        Py_DECREF(block);
        return NULL;
    }
    i = 1;
    for (;;) {
        PyObject *entry;
        if (i < n) {
            t = PyLong_AsLongLong(
                PyTuple_GET_ITEM(PyList_GET_ITEM(block, i), 0));
            if (t == -1 && PyErr_Occurred())
                goto fail;
            if (t - prev_t <= gap) {
                prev_t = t;
                i += 1;
                continue;
            }
        }
        seq += 1;
        if (i - start == 1) {
            entry = entry_from_triple(PyList_GET_ITEM(block, start), seq);
            if (entry == NULL)
                goto fail;
        }
        else {
            PyObject *group, *targs, *seq_obj, *pos_obj;
            if (owned && start == 0 && i == n) {
                group = block;
                Py_INCREF(group);
            }
            else {
                group = PyList_GetSlice(block, start, i);
                if (group == NULL)
                    goto fail;
            }
            if (slot_add_ll(self, S.train_extra, "_train_extra",
                            (long long)(i - start - 1)) < 0 ||
                slot_add_ll(self, S.trains_formed, "trains_formed", 1) < 0) {
                Py_DECREF(group);
                goto fail;
            }
            pos_obj = PyLong_FromLong(0);
            targs = (pos_obj == NULL)
                        ? NULL
                        : PyTuple_Pack(2, group, pos_obj);
            Py_XDECREF(pos_obj);
            seq_obj = PyLong_FromLongLong(seq);
            if (targs == NULL || seq_obj == NULL) {
                Py_XDECREF(targs);
                Py_XDECREF(seq_obj);
                Py_DECREF(group);
                goto fail;
            }
            entry = PyTuple_New(4);
            if (entry == NULL) {
                Py_DECREF(targs);
                Py_DECREF(seq_obj);
                Py_DECREF(group);
                goto fail;
            }
            Py_INCREF(PyTuple_GET_ITEM(PyList_GET_ITEM(group, 0), 0));
            PyTuple_SET_ITEM(
                entry, 0, PyTuple_GET_ITEM(PyList_GET_ITEM(group, 0), 0));
            PyTuple_SET_ITEM(entry, 1, seq_obj);
            Py_INCREF(g_train);
            PyTuple_SET_ITEM(entry, 2, g_train);
            PyTuple_SET_ITEM(entry, 3, targs);
            Py_DECREF(group);
        }
        if (heap_push(heap, entry) < 0) {
            Py_DECREF(entry);
            goto fail;
        }
        Py_DECREF(entry);
        if (i == n)
            break;
        start = i;
        prev_t = t;
        i += 1;
    }
    Py_DECREF(block);
    if (slot_set_ll(self, S.seq, seq) < 0)
        return NULL;
    Py_RETURN_NONE;

fail:
    Py_DECREF(block);
    slot_set_ll(self, S.seq, seq);
    return NULL;
}

static PyObject *
c_sim_at_many(PyObject *Py_UNUSED(mod), PyObject *const *args,
              Py_ssize_t nargs)
{
    Py_ssize_t i, n;
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "at_many() takes (self, entries)");
        return NULL;
    }
    if (!g_ready || !sim_fast(args[0]) || !PyList_CheckExact(args[1]))
        return PyObject_Vectorcall(g_py_sim_at_many, args, nargs, NULL);
    /* Malformed entries take the Python path for its exceptions. */
    n = PyList_GET_SIZE(args[1]);
    for (i = 0; i < n; i++) {
        PyObject *e = PyList_GET_ITEM(args[1], i);
        if (!PyTuple_CheckExact(e) || PyTuple_GET_SIZE(e) != 3 ||
            !PyLong_CheckExact(PyTuple_GET_ITEM(e, 0)))
            return PyObject_Vectorcall(g_py_sim_at_many, args, nargs, NULL);
    }
    return c_at_many_impl(args[0], args[1]);
}

/* -------------------------------------------------------------------- run */

/* Dispatch elements of a just-popped train (mirror of _run_train).
 * `seq_obj` is the popped entry's sequence object. Returns the element
 * count, or -1 on error (exception propagates; no re-push — exactly as
 * the Python version loses the train when a callback raises). */
static long long
c_run_train(PyObject *self, long long seq, PyObject *seq_obj, PyObject *targs,
            int has_until, long long until, int has_budget, long long budget,
            PyObject *heap)
{
    PyObject *elements = PyTuple_GET_ITEM(targs, 0);
    Py_ssize_t pos, n;
    long long count = 0, t_next = 0;
    int err = 0;

    pos = PyLong_AsSsize_t(PyTuple_GET_ITEM(targs, 1));
    if (pos == -1 && PyErr_Occurred())
        return -1;
    n = PyList_GET_SIZE(elements);
    for (;;) {
        PyObject *triple = PyList_GET_ITEM(elements, pos);
        PyObject *r;
        if (count) {
            if (slot_add_ll(self, S.train_extra, "_train_extra", -1) < 0)
                return -1;
        }
        slot_set(self, S.now, PyTuple_GET_ITEM(triple, 0));
        r = PyObject_Call(PyTuple_GET_ITEM(triple, 1),
                          PyTuple_GET_ITEM(triple, 2), NULL);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
        pos += 1;
        count += 1;
        if (pos == n) {
            if (slot_add_ll(self, S.train_events, "train_events", count) < 0)
                return -1;
            return count;
        }
        t_next = PyLong_AsLongLong(
            PyTuple_GET_ITEM(PyList_GET_ITEM(elements, pos), 0));
        if (t_next == -1 && PyErr_Occurred())
            return -1;
        if ((has_until && t_next > until) || (has_budget && count >= budget))
            break;
        if (PyList_GET_SIZE(heap) > 0) {
            long long ht, hs;
            if (entry_key(((PyListObject *)heap)->ob_item[0], &ht, &hs) < 0)
                return -1;
            if (ht < t_next || (ht == t_next && hs < seq))
                break;
        }
    }
    /* Preempted or cut: remainder rides the original entry again. */
    if (slot_add_ll(self, S.train_extra, "_train_extra", -1) < 0 ||
        slot_add_ll(self, S.train_events, "train_events", count) < 0 ||
        slot_add_ll(self, S.train_repushes, "train_repushes", 1) < 0)
        return -1;
    {
        PyObject *entry;
        if (pos == n - 1) {
            PyObject *triple = PyList_GET_ITEM(elements, pos);
            entry = PyTuple_New(4);
            if (entry == NULL)
                return -1;
            Py_INCREF(PyTuple_GET_ITEM(triple, 0));
            PyTuple_SET_ITEM(entry, 0, PyTuple_GET_ITEM(triple, 0));
            Py_INCREF(seq_obj);
            PyTuple_SET_ITEM(entry, 1, seq_obj);
            Py_INCREF(PyTuple_GET_ITEM(triple, 1));
            PyTuple_SET_ITEM(entry, 2, PyTuple_GET_ITEM(triple, 1));
            Py_INCREF(PyTuple_GET_ITEM(triple, 2));
            PyTuple_SET_ITEM(entry, 3, PyTuple_GET_ITEM(triple, 2));
        }
        else {
            PyObject *pos_obj = PyLong_FromSsize_t(pos);
            PyObject *new_targs;
            if (pos_obj == NULL)
                return -1;
            new_targs = PyTuple_Pack(2, elements, pos_obj);
            Py_DECREF(pos_obj);
            if (new_targs == NULL)
                return -1;
            entry = PyTuple_New(4);
            if (entry == NULL) {
                Py_DECREF(new_targs);
                return -1;
            }
            Py_INCREF(PyTuple_GET_ITEM(PyList_GET_ITEM(elements, pos), 0));
            PyTuple_SET_ITEM(
                entry, 0,
                PyTuple_GET_ITEM(PyList_GET_ITEM(elements, pos), 0));
            Py_INCREF(seq_obj);
            PyTuple_SET_ITEM(entry, 1, seq_obj);
            Py_INCREF(g_train);
            PyTuple_SET_ITEM(entry, 2, g_train);
            PyTuple_SET_ITEM(entry, 3, new_targs);
        }
        err = heap_push(heap, entry);
        Py_DECREF(entry);
        if (err < 0)
            return -1;
    }
    return count;
}

static PyObject *
c_sim_run(PyObject *Py_UNUSED(mod), PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"", "until_ps", "max_events", NULL};
    PyObject *self, *until_obj = Py_None, *max_obj = Py_None;
    PyObject *heap;
    long long processed = 0, until = 0, maxev = 0, now;
    int has_until, has_max, quiet, err = 0;

    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O|OO:run", kwlist, &self,
                                     &until_obj, &max_obj))
        return NULL;
    if (!g_ready || !sim_fast(self))
        return PyObject_CallFunctionObjArgs(g_py_sim_run, self, until_obj,
                                            max_obj, NULL);
    has_until = until_obj != Py_None;
    has_max = max_obj != Py_None;
    if (has_until) {
        until = PyLong_AsLongLong(until_obj);
        if (until == -1 && PyErr_Occurred())
            return NULL;
    }
    if (has_max) {
        maxev = PyLong_AsLongLong(max_obj);
        if (maxev == -1 && PyErr_Occurred())
            return NULL;
    }
    heap = slot_get(self, S.heap, "_heap");
    if (heap == NULL)
        return NULL;

    while (PyList_GET_SIZE(heap) > 0) {
        PyObject *entry, *cb, *r;
        long long t0, s0;
        if (entry_key(((PyListObject *)heap)->ob_item[0], &t0, &s0) < 0)
            return NULL;
        if (has_until && t0 > until)
            break;
        if (has_max && processed >= maxev)
            break;
        entry = heap_pop(heap);
        if (entry == NULL)
            return NULL;
        cb = PyTuple_GET_ITEM(entry, 2);
        if (cb == g_train) {
            long long c = c_run_train(
                self, s0, PyTuple_GET_ITEM(entry, 1),
                PyTuple_GET_ITEM(entry, 3), has_until, until, has_max,
                has_max ? maxev - processed : 0, heap);
            Py_DECREF(entry);
            if (c < 0)
                return NULL;
            processed += c;
            continue;
        }
        slot_set(self, S.now, PyTuple_GET_ITEM(entry, 0));
        r = PyObject_Call(cb, PyTuple_GET_ITEM(entry, 3), NULL);
        Py_DECREF(entry);
        if (r == NULL)
            return NULL; /* events_processed not updated — as in Python */
        Py_DECREF(r);
        processed += 1;
    }
    if (PyList_GET_SIZE(heap) == 0)
        quiet = 1;
    else if (has_until) {
        long long ht, hs;
        if (entry_key(((PyListObject *)heap)->ob_item[0], &ht, &hs) < 0)
            return NULL;
        quiet = ht > until;
    }
    else
        quiet = 0;
    now = slot_ll(self, S.now, "now", &err);
    if (err)
        return NULL;
    if (has_until && now < until && quiet && (!has_max || processed < maxev))
        slot_set(self, S.now, until_obj);
    if (slot_add_ll(self, S.events_processed, "events_processed",
                    processed) < 0)
        return NULL;
    return PyLong_FromLongLong(processed);
}

/* ------------------------------------------------------------------- Port */

/* getattr(target, "receive_cb", None) or target.receive — new ref. */
static PyObject *
get_deliver(PyObject *target)
{
    PyObject *cb = PyObject_GetAttr(target, s_receive_cb);
    int truth;
    if (cb == NULL) {
        if (!PyErr_ExceptionMatches(PyExc_AttributeError))
            return NULL;
        PyErr_Clear();
    }
    else {
        truth = PyObject_IsTrue(cb);
        if (truth < 0) {
            Py_DECREF(cb);
            return NULL;
        }
        if (truth)
            return cb;
        Py_DECREF(cb);
    }
    return PyObject_GetAttr(target, s_receive);
}

/* Lazy committed-control ledger settlement (mirror _expire_committed). */
static int
expire_committed(PyObject *self, PyObject *committed, long long now)
{
    for (;;) {
        Py_ssize_t len = PyObject_Length(committed);
        PyObject *first, *popped;
        long long t0, size;
        if (len < 0)
            return -1;
        if (len == 0)
            return 0;
        first = PySequence_GetItem(committed, 0);
        if (first == NULL)
            return -1;
        t0 = PyLong_AsLongLong(PyTuple_GET_ITEM(first, 0));
        Py_DECREF(first);
        if (t0 == -1 && PyErr_Occurred())
            return -1;
        if (t0 > now)
            return 0;
        popped = PyObject_CallMethodNoArgs(committed, s_popleft);
        if (popped == NULL)
            return -1;
        size = PyLong_AsLongLong(PyTuple_GET_ITEM(popped, 1));
        Py_DECREF(popped);
        if (size == -1 && PyErr_Occurred())
            return -1;
        if (slot_add_ll(self, P.bytes_control, "_bytes_control", -size) < 0)
            return -1;
    }
}

/* Resolve the delivery callback for a packet leaving `self` at start_ps.
 * Mirrors the deliver-resolution block shared by enqueue/_transmit.
 * On a dark circuit (*deliver_out left NULL, no error) the caller must
 * schedule the undeliverable event at `done`. Returns -1 on error. */
static int
resolve_deliver(PyObject *self, PyObject *packet, PyObject *start_obj,
                PyObject **deliver_out)
{
    PyObject *deliver = SLOT(self, P.deliver);
    *deliver_out = NULL;
    if (deliver == Py_None) {
        PyObject *resolver = slot_get(self, P.resolver, "resolver");
        PyObject *target;
        if (resolver == NULL)
            return -1;
        target =
            PyObject_CallFunctionObjArgs(resolver, packet, start_obj, NULL);
        if (target == NULL)
            return -1;
        if (target == Py_None) {
            Py_DECREF(target);
            return 0; /* dark circuit */
        }
        deliver = get_deliver(target);
        Py_DECREF(target);
        if (deliver == NULL)
            return -1;
        *deliver_out = deliver; /* new ref */
        return 0;
    }
    if (deliver == g_lazy) {
        PyObject *target = slot_get(self, P.target, "_target");
        if (target == NULL)
            return -1;
        deliver = get_deliver(target);
        if (deliver == NULL)
            return -1;
        slot_set(self, P.deliver, deliver); /* bind once */
        *deliver_out = deliver;             /* new ref */
        return 0;
    }
    Py_INCREF(deliver);
    *deliver_out = deliver;
    return 0;
}

/* Put `packet` on the wire at start_ps (mirror of _transmit). With `out`
 * non-NULL the delivery entry is appended to it (burst commit); returns
 * the line-free time or -1 on error. Caller guarantees _ps_per_byte > 0
 * and a heap simulator. */
static long long
c_transmit(PyObject *self, PyObject *sim, PyObject *packet, long long start,
           PyObject *out)
{
    int err = 0;
    long long size = slot_ll(packet, K.size_bytes, "size_bytes", &err);
    long long per_byte, done, prop;
    PyObject *stats, *deliver = NULL, *start_obj;

    if (err)
        return -1;
    per_byte = slot_ll(self, P.ps_per_byte, "_ps_per_byte", &err);
    if (err)
        return -1;
    done = start + size * per_byte;
    if (slot_set_ll(self, P.busy_until, done) < 0)
        return -1;
    stats = slot_get(self, P.stats, "stats");
    if (stats == NULL)
        return -1;
    if (slot_add_ll(stats, ST.sent_packets, "sent_packets", 1) < 0 ||
        slot_add_ll(stats, ST.sent_bytes, "sent_bytes", size) < 0)
        return -1;
    start_obj = PyLong_FromLongLong(start);
    if (start_obj == NULL)
        return -1;
    if (resolve_deliver(self, packet, start_obj, &deliver) < 0) {
        Py_DECREF(start_obj);
        return -1;
    }
    Py_DECREF(start_obj);
    if (deliver == NULL) {
        /* Dark circuit: loss observed when the last bit leaves. */
        PyObject *undeliv = slot_get(self, P.undeliv_cb, "_undeliv_cb");
        if (undeliv == NULL)
            return -1;
        if (out != NULL) {
            PyObject *recv_args =
                slot_get(packet, K.recv_args, "recv_args");
            PyObject *done_obj, *e;
            if (recv_args == NULL)
                return -1;
            done_obj = PyLong_FromLongLong(done);
            if (done_obj == NULL)
                return -1;
            e = PyTuple_Pack(3, done_obj, undeliv, recv_args);
            Py_DECREF(done_obj);
            if (e == NULL)
                return -1;
            err = PyList_Append(out, e);
            Py_DECREF(e);
            if (err < 0)
                return -1;
        }
        else {
            PyObject *cargs = PyTuple_Pack(1, packet);
            if (cargs == NULL)
                return -1;
            err = schedule_heap(sim, done, undeliv, cargs);
            Py_DECREF(cargs);
            if (err < 0)
                return -1;
        }
        return done;
    }
    prop = slot_ll(self, P.propagation_ps, "propagation_ps", &err);
    if (err) {
        Py_DECREF(deliver);
        return -1;
    }
    {
        PyObject *recv_args = slot_get(packet, K.recv_args, "recv_args");
        if (recv_args == NULL) {
            Py_DECREF(deliver);
            return -1;
        }
        if (out != NULL) {
            PyObject *t_obj = PyLong_FromLongLong(done + prop);
            PyObject *e;
            if (t_obj == NULL) {
                Py_DECREF(deliver);
                return -1;
            }
            e = PyTuple_Pack(3, t_obj, deliver, recv_args);
            Py_DECREF(t_obj);
            Py_DECREF(deliver);
            if (e == NULL)
                return -1;
            err = PyList_Append(out, e);
            Py_DECREF(e);
            if (err < 0)
                return -1;
        }
        else {
            err = schedule_heap(sim, done + prop, deliver, recv_args);
            Py_DECREF(deliver);
            if (err < 0)
                return -1;
        }
    }
    return done;
}

/* Fast-path eligibility for enqueue/_kick on `self` with its sim. */
static inline int
port_fast(PyObject *self, PyObject **sim_out, int *err)
{
    PyObject *sim;
    if (!g_ready || Py_TYPE(self) != t_ckport)
        return 0;
    sim = SLOT(self, P.sim);
    if (sim == NULL || !sim_fast(sim))
        return 0;
    {
        long long per_byte = slot_ll(self, P.ps_per_byte, "_ps_per_byte", err);
        if (*err)
            return 0;
        if (per_byte == 0)
            return 0; /* non-integral ps/byte: exact big-int division */
    }
    *sim_out = sim;
    return 1;
}

static PyObject *
c_port_enqueue_impl(PyObject *self, PyObject *packet)
{
    PyObject *sim, *priority, *stats;
    long long size, now;
    int err = 0, truth;

    if (err)
        return NULL;
    if (!port_fast(self, &sim, &err) || Py_TYPE(packet) != t_packet) {
        if (err)
            return NULL;
        return PyObject_CallFunctionObjArgs(g_py_port_enqueue, self, packet,
                                            NULL);
    }
    priority = slot_get(packet, K.priority, "priority");
    if (priority == NULL)
        return NULL;
    size = slot_ll(packet, K.size_bytes, "size_bytes", &err);
    if (err)
        return NULL;
    stats = slot_get(self, P.stats, "stats");
    if (stats == NULL)
        return NULL;
    if (priority == g_prio_low && SLOT(packet, K.kind) == g_kind_data) {
        long long qd = slot_ll(self, P.bytes_data, "_bytes_data", &err);
        long long cap = slot_ll(self, P.data_queue_bytes, "data_queue_bytes",
                                &err);
        if (err)
            return NULL;
        if (qd + size > cap) {
            truth = PyObject_IsTrue(SLOT(self, P.trimming));
            if (truth < 0)
                return NULL;
            if (!truth)
                Py_RETURN_FALSE; /* drop-tail */
            /* packet.trim(), inlined: kind is DATA (guarded above). */
            slot_set(packet, K.kind, g_kind_header);
            slot_set(packet, K.size_bytes, g_header_bytes);
            slot_set(packet, K.priority, g_prio_control);
            if (slot_add_ll(stats, ST.trimmed, "trimmed", 1) < 0)
                return NULL;
            priority = g_prio_control;
            size = PyLong_AsLongLong(g_header_bytes);
        }
    }
    now = slot_ll(sim, S.now, "now", &err);
    if (err)
        return NULL;
    if (priority == g_prio_control) {
        PyObject *committed =
            slot_get(self, P.committed_control, "_committed_control");
        long long qc, cap;
        Py_ssize_t clen;
        if (committed == NULL)
            return NULL;
        clen = PyObject_Length(committed);
        if (clen < 0)
            return NULL;
        if (clen > 0 && expire_committed(self, committed, now) < 0)
            return NULL;
        qc = slot_ll(self, P.bytes_control, "_bytes_control", &err);
        cap = slot_ll(self, P.control_queue_bytes, "control_queue_bytes",
                      &err);
        if (err)
            return NULL;
        if (qc + size > cap) {
            if (slot_add_ll(stats, ST.dropped_control, "dropped_control",
                            1) < 0)
                return NULL;
            Py_RETURN_FALSE;
        }
    }
    else if (priority == g_prio_bulk) {
        long long qb = slot_ll(self, P.bytes_bulk, "_bytes_bulk", &err);
        long long cap =
            slot_ll(self, P.bulk_queue_bytes, "bulk_queue_bytes", &err);
        if (err)
            return NULL;
        if (qb + size > cap) {
            PyObject *handler;
            if (slot_add_ll(stats, ST.dropped_bulk, "dropped_bulk", 1) < 0)
                return NULL;
            handler = SLOT(self, P.on_bulk_drop);
            if (handler != NULL && handler != Py_None) {
                PyObject *r =
                    PyObject_CallFunctionObjArgs(handler, packet, NULL);
                if (r == NULL)
                    return NULL;
                Py_DECREF(r);
            }
            Py_RETURN_FALSE;
        }
    }
    slot_set(packet, K.enqueued_ps, SLOT(sim, S.now));
    truth = PyObject_IsTrue(SLOT(self, P.kick_pending));
    if (truth < 0)
        return NULL;
    if (!truth) {
        long long busy = slot_ll(self, P.busy_until, "_busy_until", &err);
        if (err)
            return NULL;
        if (busy <= now) {
            /* Idle line, empty queues: transmit immediately (the single
             * hottest path in the engine). */
            long long per_byte =
                slot_ll(self, P.ps_per_byte, "_ps_per_byte", &err);
            long long done, prop;
            PyObject *deliver = NULL;
            if (err)
                return NULL;
            done = now + size * per_byte;
            if (slot_set_ll(self, P.busy_until, done) < 0)
                return NULL;
            if (slot_add_ll(stats, ST.sent_packets, "sent_packets", 1) < 0 ||
                slot_add_ll(stats, ST.sent_bytes, "sent_bytes", size) < 0)
                return NULL;
            if (resolve_deliver(self, packet, SLOT(sim, S.now), &deliver) <
                0)
                return NULL;
            if (deliver == NULL) {
                /* Dark circuit. */
                PyObject *undeliv =
                    slot_get(self, P.undeliv_cb, "_undeliv_cb");
                PyObject *cargs;
                if (undeliv == NULL)
                    return NULL;
                cargs = PyTuple_Pack(1, packet);
                if (cargs == NULL)
                    return NULL;
                err = schedule_heap(sim, done, undeliv, cargs);
                Py_DECREF(cargs);
                if (err < 0)
                    return NULL;
                Py_RETURN_TRUE;
            }
            prop = slot_ll(self, P.propagation_ps, "propagation_ps", &err);
            if (err) {
                Py_DECREF(deliver);
                return NULL;
            }
            {
                PyObject *recv_args =
                    slot_get(packet, K.recv_args, "recv_args");
                if (recv_args == NULL) {
                    Py_DECREF(deliver);
                    return NULL;
                }
                err = schedule_heap(sim, done + prop, deliver, recv_args);
                Py_DECREF(deliver);
                if (err < 0)
                    return NULL;
            }
            Py_RETURN_TRUE;
        }
    }
    /* Busy line (or kick pending): join the queue. */
    {
        PyObject *q, *r;
        Py_ssize_t boff;
        if (priority == g_prio_control) {
            q = slot_get(self, P.q_control, "_q_control");
            boff = P.bytes_control;
        }
        else if (priority == g_prio_low) {
            q = slot_get(self, P.q_data, "_q_data");
            boff = P.bytes_data;
        }
        else {
            q = slot_get(self, P.q_bulk, "_q_bulk");
            boff = P.bytes_bulk;
        }
        if (q == NULL)
            return NULL;
        r = PyObject_CallMethodOneArg(q, s_append, packet);
        if (r == NULL)
            return NULL;
        Py_DECREF(r);
        if (slot_add_ll(self, boff, "_bytes_*", size) < 0)
            return NULL;
    }
    if (!truth) {
        long long busy = slot_ll(self, P.busy_until, "_busy_until", &err);
        PyObject *kick_cb;
        if (err)
            return NULL;
        slot_set(self, P.kick_pending, Py_True);
        kick_cb = slot_get(self, P.kick_cb, "_kick_cb");
        if (kick_cb == NULL)
            return NULL;
        /* sim.at(self._busy_until, self._kick_cb): the past-time guard
         * holds (busy > now here, since the idle branch did not take). */
        if (schedule_heap(sim, busy, kick_cb, g_empty) < 0)
            return NULL;
    }
    Py_RETURN_TRUE;
}

static PyObject *
c_port_enqueue(PyObject *Py_UNUSED(mod), PyObject *const *args,
               Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "enqueue() takes (self, packet)");
        return NULL;
    }
    return c_port_enqueue_impl(args[0], args[1]);
}

static PyObject *
c_port_kick(PyObject *Py_UNUSED(mod), PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *self, *sim, *q, *packet;
    long long start, size;
    int err = 0;
    Py_ssize_t qlen;

    if (nargs != 1) {
        PyErr_SetString(PyExc_TypeError, "_kick() takes (self)");
        return NULL;
    }
    self = args[0];
    if (!port_fast(self, &sim, &err)) {
        if (err)
            return NULL;
        return PyObject_CallFunctionObjArgs(g_py_port_kick, self, NULL);
    }
    slot_set(self, P.kick_pending, Py_False);
    start = slot_ll(sim, S.now, "now", &err);
    if (err)
        return NULL;
    q = slot_get(self, P.q_control, "_q_control");
    if (q == NULL)
        return NULL;
    qlen = PyObject_Length(q);
    if (qlen < 0)
        return NULL;
    if (qlen > 0) {
        PyObject *committed =
            slot_get(self, P.committed_control, "_committed_control");
        if (committed == NULL)
            return NULL;
        if (qlen > 1) {
            /* Packet train: commit the whole burst back-to-back and
             * bulk-schedule its deliveries with one at_many call. */
            PyObject *burst = slot_get(self, P.burst, "_burst");
            int first = 1;
            long long dlen, blen;
            if (burst == NULL)
                return NULL;
            for (;;) {
                Py_ssize_t left = PyObject_Length(q);
                if (left < 0)
                    return NULL;
                if (left == 0)
                    break;
                packet = PyObject_CallMethodNoArgs(q, s_popleft);
                if (packet == NULL)
                    return NULL;
                size = slot_ll(packet, K.size_bytes, "size_bytes", &err);
                if (err) {
                    Py_DECREF(packet);
                    return NULL;
                }
                if (first) {
                    /* On the wire right now: out of the queue at once. */
                    if (slot_add_ll(self, P.bytes_control, "_bytes_control",
                                    -size) < 0) {
                        Py_DECREF(packet);
                        return NULL;
                    }
                    first = 0;
                }
                else {
                    /* Committed but not started: bytes stay in the
                     * admission ledger until the wire-entry time. */
                    PyObject *start_obj = PyLong_FromLongLong(start);
                    PyObject *pair, *r;
                    if (start_obj == NULL) {
                        Py_DECREF(packet);
                        return NULL;
                    }
                    pair = PyTuple_Pack(2, start_obj,
                                        SLOT(packet, K.size_bytes));
                    Py_DECREF(start_obj);
                    if (pair == NULL) {
                        Py_DECREF(packet);
                        return NULL;
                    }
                    r = PyObject_CallMethodOneArg(committed, s_append, pair);
                    Py_DECREF(pair);
                    if (r == NULL) {
                        Py_DECREF(packet);
                        return NULL;
                    }
                    Py_DECREF(r);
                }
                start = c_transmit(self, sim, packet, start, burst);
                Py_DECREF(packet);
                if (start < 0 && PyErr_Occurred())
                    return NULL;
            }
            dlen = PyObject_Length(slot_get(self, P.q_data, "_q_data"));
            blen = PyObject_Length(slot_get(self, P.q_bulk, "_q_bulk"));
            if (dlen < 0 || blen < 0)
                return NULL;
            if (dlen > 0 || blen > 0) {
                long long busy =
                    slot_ll(self, P.busy_until, "_busy_until", &err);
                PyObject *busy_obj, *kick_cb, *e;
                if (err)
                    return NULL;
                slot_set(self, P.kick_pending, Py_True);
                kick_cb = slot_get(self, P.kick_cb, "_kick_cb");
                if (kick_cb == NULL)
                    return NULL;
                busy_obj = PyLong_FromLongLong(busy);
                if (busy_obj == NULL)
                    return NULL;
                e = PyTuple_Pack(3, busy_obj, kick_cb, g_empty);
                Py_DECREF(busy_obj);
                if (e == NULL)
                    return NULL;
                err = PyList_Append(burst, e);
                Py_DECREF(e);
                if (err < 0)
                    return NULL;
            }
            {
                PyObject *r = c_at_many_impl(sim, burst);
                if (r == NULL)
                    return NULL;
                Py_DECREF(r);
            }
            if (PyList_SetSlice(burst, 0, PyList_GET_SIZE(burst), NULL) < 0)
                return NULL;
            Py_RETURN_NONE;
        }
        packet = PyObject_CallMethodNoArgs(q, s_popleft);
        if (packet == NULL)
            return NULL;
        size = slot_ll(packet, K.size_bytes, "size_bytes", &err);
        if (err ||
            slot_add_ll(self, P.bytes_control, "_bytes_control", -size) < 0) {
            Py_DECREF(packet);
            return NULL;
        }
        start = c_transmit(self, sim, packet, start, NULL);
        Py_DECREF(packet);
        if (start < 0 && PyErr_Occurred())
            return NULL;
    }
    else {
        PyObject *qd = slot_get(self, P.q_data, "_q_data");
        Py_ssize_t dlen;
        if (qd == NULL)
            return NULL;
        dlen = PyObject_Length(qd);
        if (dlen < 0)
            return NULL;
        if (dlen > 0) {
            packet = PyObject_CallMethodNoArgs(qd, s_popleft);
            if (packet == NULL)
                return NULL;
            size = slot_ll(packet, K.size_bytes, "size_bytes", &err);
            if (err ||
                slot_add_ll(self, P.bytes_data, "_bytes_data", -size) < 0) {
                Py_DECREF(packet);
                return NULL;
            }
            start = c_transmit(self, sim, packet, start, NULL);
            Py_DECREF(packet);
            if (start < 0 && PyErr_Occurred())
                return NULL;
        }
        else {
            PyObject *qb = slot_get(self, P.q_bulk, "_q_bulk");
            Py_ssize_t blen;
            if (qb == NULL)
                return NULL;
            blen = PyObject_Length(qb);
            if (blen < 0)
                return NULL;
            if (blen == 0)
                Py_RETURN_NONE; /* kick only scheduled with work queued */
            packet = PyObject_CallMethodNoArgs(qb, s_popleft);
            if (packet == NULL)
                return NULL;
            size = slot_ll(packet, K.size_bytes, "size_bytes", &err);
            if (err ||
                slot_add_ll(self, P.bytes_bulk, "_bytes_bulk", -size) < 0) {
                Py_DECREF(packet);
                return NULL;
            }
            start = c_transmit(self, sim, packet, start, NULL);
            Py_DECREF(packet);
            if (start < 0 && PyErr_Occurred())
                return NULL;
        }
    }
    /* More work queued: schedule the next kick at the line-free time. */
    {
        Py_ssize_t c = PyObject_Length(slot_get(self, P.q_control,
                                                "_q_control"));
        Py_ssize_t d = PyObject_Length(slot_get(self, P.q_data, "_q_data"));
        Py_ssize_t b = PyObject_Length(slot_get(self, P.q_bulk, "_q_bulk"));
        if (c < 0 || d < 0 || b < 0)
            return NULL;
        if (c > 0 || d > 0 || b > 0) {
            long long busy = slot_ll(self, P.busy_until, "_busy_until", &err);
            PyObject *kick_cb;
            if (err)
                return NULL;
            slot_set(self, P.kick_pending, Py_True);
            kick_cb = slot_get(self, P.kick_cb, "_kick_cb");
            if (kick_cb == NULL)
                return NULL;
            if (schedule_heap(sim, busy, kick_cb, g_empty) < 0)
                return NULL;
        }
    }
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------- Host */

/* packet.release(), inlined: idempotent free-list return. */
static int
release_packet(PyObject *packet)
{
    if (SLOT(packet, K.pooled) == Py_True)
        return 0;
    slot_set(packet, K.pooled, Py_True);
    if (PyList_GET_SIZE(g_pool) < g_pool_max)
        return PyList_Append(g_pool, packet);
    return 0;
}

static PyObject *
c_host_receive(PyObject *Py_UNUSED(mod), PyObject *const *args,
               Py_ssize_t nargs)
{
    PyObject *self, *packet, *kind, *table, *endpoint, *fid;

    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "receive() takes (self, packet)");
        return NULL;
    }
    self = args[0];
    packet = args[1];
    if (!g_ready || Py_TYPE(self) != t_ckhost || Py_TYPE(packet) != t_packet)
        return PyObject_Vectorcall(g_py_host_receive, args, nargs, NULL);
    kind = SLOT(packet, K.kind);
    if (kind == g_kind_data || kind == g_kind_header)
        table = SLOT(self, H.sinks);
    else
        table = SLOT(self, H.sources);
    if (table == NULL || !PyDict_CheckExact(table))
        return PyObject_Vectorcall(g_py_host_receive, args, nargs, NULL);
    fid = slot_get(packet, K.flow_id, "flow_id");
    if (fid == NULL)
        return NULL;
    endpoint = PyDict_GetItemWithError(table, fid);
    if (endpoint == NULL) {
        if (PyErr_Occurred())
            return NULL;
        if (slot_add_ll(self, H.dropped, "dropped", 1) < 0)
            return NULL;
    }
    else {
        PyObject *r = PyObject_CallMethodOneArg(endpoint, s_on_packet, packet);
        if (r == NULL)
            return NULL;
        Py_DECREF(r);
    }
    if (release_packet(packet) < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* --------------------------------------------------------------- dispatch */

/* Fused switch delivery: TTL guard, route, egress enqueue. Bound context
 * is (switch, route, py_dispatch); py_dispatch is the pure-Python fused
 * closure, used verbatim for anything off the fast path. */
static PyObject *
c_dispatch(PyObject *ctx, PyObject *packet)
{
    PyObject *sw = PyTuple_GET_ITEM(ctx, 0);
    PyObject *route = PyTuple_GET_ITEM(ctx, 1);
    PyObject *port;
    long long hops;
    int err = 0;

    if (!g_ready || Py_TYPE(sw) != t_ckswitch || Py_TYPE(packet) != t_packet)
        return PyObject_CallOneArg(PyTuple_GET_ITEM(ctx, 2), packet);
    hops = slot_ll(packet, K.hops, "hops", &err);
    if (err)
        return NULL;
    if (hops > g_max_hops) {
        if (slot_add_ll(sw, W.drops, "drops", 1) < 0)
            return NULL;
        if (release_packet(packet) < 0)
            return NULL;
        Py_RETURN_NONE;
    }
    port = PyObject_CallFunctionObjArgs(route, sw, packet, NULL);
    if (port == NULL)
        return NULL;
    if (port == g_consumed) {
        Py_DECREF(port);
        Py_RETURN_NONE;
    }
    if (port == Py_None) {
        Py_DECREF(port);
        if (slot_add_ll(sw, W.drops, "drops", 1) < 0)
            return NULL;
        if (release_packet(packet) < 0)
            return NULL;
        Py_RETURN_NONE;
    }
    if (Py_TYPE(port) == t_ckport) {
        PyObject *r = c_port_enqueue_impl(port, packet);
        Py_DECREF(port);
        if (r == NULL)
            return NULL;
        Py_DECREF(r);
    }
    else {
        PyObject *r = PyObject_CallMethodOneArg(port, s_enqueue, packet);
        Py_DECREF(port);
        if (r == NULL)
            return NULL;
        Py_DECREF(r);
    }
    Py_RETURN_NONE;
}

static PyMethodDef dispatch_def = {
    "dispatch", (PyCFunction)c_dispatch, METH_O,
    "Fused switch delivery (compiled kernel)."};

static PyObject *
c_make_dispatch(PyObject *Py_UNUSED(mod), PyObject *args)
{
    PyObject *sw, *route, *fallback, *ctx, *fn;
    if (!PyArg_ParseTuple(args, "OOO:make_dispatch", &sw, &route, &fallback))
        return NULL;
    ctx = PyTuple_Pack(3, sw, route, fallback);
    if (ctx == NULL)
        return NULL;
    fn = PyCFunction_New(&dispatch_def, ctx);
    Py_DECREF(ctx);
    return fn;
}

/* -------------------------------------------------------------------- NDP
 *
 * The protocol endpoints (NdpSource / NdpSink / PullPacer) are the last
 * pure-Python bodies on the per-packet path: every delivered data packet
 * runs sink.on_packet (ACK acquire + send + stats), most also run
 * source.on_packet (PULL release) and the pacer tick. The functions below
 * transcribe ndp.py exactly, sharing the same deques/sets/records.
 */

/* hash((a, b, c)) & 0x7FFFFFFF, as ndp.py computes packet salts. Built as
 * a real tuple and hashed through the interpreter so the result is
 * bit-identical by construction. Returns a new ref or NULL. */
static PyObject *
salt_hash(PyObject *a, PyObject *b, PyObject *c)
{
    PyObject *tup = PyTuple_Pack(3, a, b, c);
    Py_hash_t h;
    if (tup == NULL)
        return NULL;
    h = PyObject_Hash(tup);
    Py_DECREF(tup);
    if (h == -1 && PyErr_Occurred())
        return NULL;
    return PyLong_FromLongLong(
        (long long)((unsigned long long)h & 0x7FFFFFFFULL));
}

/* packet.acquire(...), inlined for the free-list path. All args borrowed;
 * returns a new Packet ref. Python's pool path re-assigns every field, so
 * the transcription does too (slice_stamp/next_rack/relay_to default to
 * None, hops/enqueued_ps to 0 — the NDP endpoints never pass them). */
static PyObject *
c_acquire(PyObject *fid, PyObject *kind, PyObject *src, PyObject *dst,
          PyObject *seq, PyObject *size_obj, PyObject *prio,
          PyObject *salt_obj)
{
    Py_ssize_t n = PyList_GET_SIZE(g_pool);
    PyObject *packet;

    if (n > 0) {
        packet = PyList_GET_ITEM(g_pool, n - 1);
        Py_INCREF(packet);
        if (PyList_SetSlice(g_pool, n - 1, n, NULL) < 0) {
            Py_DECREF(packet);
            return NULL;
        }
        if (Py_TYPE(packet) != t_packet) {
            /* Foreign object in the pool: put it back and let Python's
             * acquire (which pops the same element) deal with it. */
            int err = PyList_Append(g_pool, packet);
            Py_DECREF(packet);
            if (err < 0)
                return NULL;
        }
        else {
            slot_set(packet, K.pooled, Py_False);
            slot_set(packet, K.flow_id, fid);
            slot_set(packet, K.kind, kind);
            slot_set(packet, K.src_host, src);
            slot_set(packet, K.dst_host, dst);
            slot_set(packet, K.seq, seq);
            slot_set(packet, K.size_bytes, size_obj);
            slot_set(packet, K.priority, prio);
            slot_set(packet, K.slice_stamp, Py_None);
            slot_set(packet, K.salt, salt_obj);
            slot_set(packet, K.hops, g_zero);
            slot_set(packet, K.next_rack, Py_None);
            slot_set(packet, K.relay_to, Py_None);
            slot_set(packet, K.enqueued_ps, g_zero);
            return packet;
        }
    }
    {
        PyObject *args[9] = {fid, kind, src, dst, seq,
                             size_obj, prio, Py_None, salt_obj};
        return PyObject_Vectorcall(g_py_acquire, args, 9, NULL);
    }
}

/* endpoint._send(packet). The bound send callable is Host.send or
 * nic.enqueue; when it is a compiled port's enqueue, skip the method
 * object and call the C implementation directly. */
static int
do_send(PyObject *send, PyObject *packet)
{
    PyObject *r;
    if (PyMethod_Check(send) && PyMethod_GET_FUNCTION(send) == g_cf_enqueue &&
        Py_TYPE(PyMethod_GET_SELF(send)) == t_ckport)
        r = c_port_enqueue_impl(PyMethod_GET_SELF(send), packet);
    else
        r = PyObject_CallOneArg(send, packet);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

/* NdpSource._emit(seq): acquire a data packet and send it. */
static int
src_emit(PyObject *self, PyObject *seq_obj)
{
    PyObject *record, *fid = NULL, *src = NULL, *dst = NULL, *size_obj = NULL,
             *salt_obj = NULL, *packet = NULL, *send;
    long long mtu, payload, size_ll, seq_ll, remaining, b;
    int err = 0, rc = -1;

    record = slot_get(self, NS.record, "record");
    if (record == NULL)
        return -1;
    fid = PyObject_GetAttr(record, s_flow_id);
    if (fid == NULL)
        return -1;
    mtu = slot_ll(self, NS.mtu, "mtu", &err);
    if (err)
        goto done;
    payload = mtu - g_header_ll;
    {
        PyObject *sz = PyObject_GetAttr(record, s_size_bytes);
        if (sz == NULL)
            goto done;
        size_ll = PyLong_AsLongLong(sz);
        Py_DECREF(sz);
        if (size_ll == -1 && PyErr_Occurred())
            goto done;
    }
    seq_ll = PyLong_AsLongLong(seq_obj);
    if (seq_ll == -1 && PyErr_Occurred())
        goto done;
    remaining = size_ll - seq_ll * payload;
    b = payload < remaining ? payload : remaining;
    if (b < 1)
        b = 1;
    size_obj = PyLong_FromLongLong(g_header_ll + b);
    if (size_obj == NULL)
        goto done;
    salt_obj = salt_hash(fid, seq_obj, g_src_salt);
    if (salt_obj == NULL)
        goto done;
    src = PyObject_GetAttr(record, s_src_host);
    dst = src ? PyObject_GetAttr(record, s_dst_host) : NULL;
    if (dst == NULL)
        goto done;
    {
        PyObject *prio = slot_get(self, NS.priority, "priority");
        if (prio == NULL)
            goto done;
        packet = c_acquire(fid, g_kind_data, src, dst, seq_obj, size_obj,
                           prio, salt_obj);
    }
    if (packet == NULL)
        goto done;
    send = slot_get(self, NS.send, "_send");
    if (send == NULL)
        goto done;
    rc = do_send(send, packet);
done:
    Py_XDECREF(fid);
    Py_XDECREF(src);
    Py_XDECREF(dst);
    Py_XDECREF(size_obj);
    Py_XDECREF(salt_obj);
    Py_XDECREF(packet);
    return rc;
}

/* NdpSource._send_next(): 1 = sent, 0 = nothing to send, -1 = error. */
static int
src_send_next(PyObject *self)
{
    PyObject *rtx = slot_get(self, NS.rtx, "_rtx");
    Py_ssize_t n;
    long long next_new, n_packets;
    int err = 0;

    if (rtx == NULL)
        return -1;
    n = PyObject_Length(rtx);
    if (n < 0)
        return -1;
    if (n > 0) {
        PyObject *seq_obj = PyObject_CallMethodNoArgs(rtx, s_popleft);
        int rc;
        if (seq_obj == NULL)
            return -1;
        rc = src_emit(self, seq_obj);
        Py_DECREF(seq_obj);
        return rc < 0 ? -1 : 1;
    }
    next_new = slot_ll(self, NS.next_new, "_next_new", &err);
    n_packets = slot_ll(self, NS.n_packets, "n_packets", &err);
    if (err)
        return -1;
    if (next_new < n_packets) {
        PyObject *seq_obj = PyLong_FromLongLong(next_new);
        int rc;
        if (seq_obj == NULL)
            return -1;
        rc = src_emit(self, seq_obj);
        Py_DECREF(seq_obj);
        if (rc < 0)
            return -1;
        if (slot_set_ll(self, NS.next_new, next_new + 1) < 0)
            return -1;
        return 1;
    }
    return 0;
}

static PyObject *
c_src_on_packet(PyObject *Py_UNUSED(mod), PyObject *const *args,
                Py_ssize_t nargs)
{
    PyObject *self, *packet, *kind, *seq_obj, *acked;

    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "on_packet() takes (self, packet)");
        return NULL;
    }
    self = args[0];
    packet = args[1];
    if (!g_ready || Py_TYPE(self) != t_cksrc || Py_TYPE(packet) != t_packet)
        return PyObject_Vectorcall(g_py_src_on_packet, args, nargs, NULL);
    kind = SLOT(packet, K.kind);
    seq_obj = slot_get(packet, K.seq, "seq");
    if (seq_obj == NULL)
        return NULL;
    if (kind == g_kind_ack) {
        acked = slot_get(self, NS.acked, "_acked");
        if (acked == NULL)
            return NULL;
        if (PySet_CheckExact(acked)) {
            if (PySet_Add(acked, seq_obj) < 0)
                return NULL;
        }
        else {
            PyObject *r = PyObject_CallMethodOneArg(acked, s_add, seq_obj);
            if (r == NULL)
                return NULL;
            Py_DECREF(r);
        }
    }
    else if (kind == g_kind_nack) {
        int has;
        acked = slot_get(self, NS.acked, "_acked");
        if (acked == NULL)
            return NULL;
        has = PySet_CheckExact(acked) ? PySet_Contains(acked, seq_obj)
                                      : PySequence_Contains(acked, seq_obj);
        if (has < 0)
            return NULL;
        if (!has) {
            PyObject *rtx = slot_get(self, NS.rtx, "_rtx");
            PyObject *record, *retr, *bumped, *r;
            long long banked;
            int err = 0;
            if (rtx == NULL)
                return NULL;
            r = PyObject_CallMethodOneArg(rtx, s_append, seq_obj);
            if (r == NULL)
                return NULL;
            Py_DECREF(r);
            record = slot_get(self, NS.record, "record");
            if (record == NULL)
                return NULL;
            retr = PyObject_GetAttr(record, s_retransmissions);
            if (retr == NULL)
                return NULL;
            bumped = PyNumber_Add(retr, g_one);
            Py_DECREF(retr);
            if (bumped == NULL)
                return NULL;
            err = PyObject_SetAttr(record, s_retransmissions, bumped);
            Py_DECREF(bumped);
            if (err < 0)
                return NULL;
            banked = slot_ll(self, NS.pulls_banked, "_pulls_banked", &err);
            if (err)
                return NULL;
            if (banked > 0) {
                if (slot_set_ll(self, NS.pulls_banked, banked - 1) < 0)
                    return NULL;
                if (src_send_next(self) < 0)
                    return NULL;
            }
        }
    }
    else if (kind == g_kind_pull) {
        int sent = src_send_next(self);
        if (sent < 0)
            return NULL;
        if (!sent &&
            slot_add_ll(self, NS.pulls_banked, "_pulls_banked", 1) < 0)
            return NULL;
    }
    Py_RETURN_NONE;
}

/* NdpSink._control(kind, seq): acquire a control packet (reverse path). */
static PyObject *
sink_control(PyObject *self, PyObject *kind, PyObject *kind_val,
             PyObject *seq_obj)
{
    PyObject *record, *fid = NULL, *src = NULL, *dst = NULL, *salt_obj = NULL,
             *packet = NULL;

    record = slot_get(self, NK.record, "record");
    if (record == NULL)
        return NULL;
    fid = PyObject_GetAttr(record, s_flow_id);
    if (fid == NULL)
        return NULL;
    salt_obj = salt_hash(fid, seq_obj, kind_val);
    if (salt_obj == NULL)
        goto done;
    /* Control flows sink -> source: src/dst swapped vs the record. */
    src = PyObject_GetAttr(record, s_dst_host);
    dst = src ? PyObject_GetAttr(record, s_src_host) : NULL;
    if (dst == NULL)
        goto done;
    packet = c_acquire(fid, kind, src, dst, seq_obj, g_header_bytes,
                       g_prio_control, salt_obj);
done:
    Py_XDECREF(fid);
    Py_XDECREF(src);
    Py_XDECREF(dst);
    Py_XDECREF(salt_obj);
    return packet;
}

/* record.complete, i.e. record.end_ps is not None. -1 on error. */
static int
sink_finished(PyObject *self, Py_ssize_t record_off)
{
    PyObject *record = slot_get(self, record_off, "record");
    PyObject *end;
    int fin;
    if (record == NULL)
        return -1;
    end = PyObject_GetAttr(record, s_end_ps);
    if (end == NULL)
        return -1;
    fin = end != Py_None;
    Py_DECREF(end);
    return fin;
}

/* NdpSink.emit_pull() body (self already validated as fast-path). */
static int
sink_emit_pull_impl(PyObject *self)
{
    long long pull_seq;
    int err = 0, rc;
    PyObject *seq_obj, *packet, *send;

    pull_seq = slot_ll(self, NK.pull_seq, "_pull_seq", &err) + 1;
    if (err)
        return -1;
    if (slot_set_ll(self, NK.pull_seq, pull_seq) < 0)
        return -1;
    seq_obj = PyLong_FromLongLong(pull_seq);
    if (seq_obj == NULL)
        return -1;
    packet = sink_control(self, g_kind_pull, g_pull_val, seq_obj);
    Py_DECREF(seq_obj);
    if (packet == NULL)
        return -1;
    send = slot_get(self, NK.send, "_send");
    if (send == NULL) {
        Py_DECREF(packet);
        return -1;
    }
    rc = do_send(send, packet);
    Py_DECREF(packet);
    return rc;
}

static PyObject *
c_sink_emit_pull(PyObject *Py_UNUSED(mod), PyObject *const *args,
                 Py_ssize_t nargs)
{
    if (nargs != 1) {
        PyErr_SetString(PyExc_TypeError, "emit_pull() takes (self)");
        return NULL;
    }
    if (!g_ready || Py_TYPE(args[0]) != t_cksink)
        return PyObject_Vectorcall(g_py_emit_pull, args, nargs, NULL);
    if (sink_emit_pull_impl(args[0]) < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* pacer.request(sink), inlined for known pacer layouts. */
static int
pacer_request(PyObject *pacer, PyObject *sink)
{
    if (g_ready &&
        (Py_TYPE(pacer) == t_ckpacer || Py_TYPE(pacer) == t_pacer)) {
        PyObject *tokens = slot_get(pacer, PP.tokens, "_tokens");
        PyObject *r;
        int truth;
        if (tokens == NULL)
            return -1;
        r = PyObject_CallMethodOneArg(tokens, s_append, sink);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
        truth = PyObject_IsTrue(SLOT(pacer, PP.running));
        if (truth < 0)
            return -1;
        if (!truth) {
            PyObject *sim, *tick;
            slot_set(pacer, PP.running, Py_True);
            sim = slot_get(pacer, PP.sim, "sim");
            tick = sim ? slot_get(pacer, PP.tick_cb, "_tick_cb") : NULL;
            if (tick == NULL)
                return -1;
            if (sim_fast(sim)) {
                int err = 0;
                long long now = slot_ll(sim, S.now, "now", &err);
                if (err)
                    return -1;
                return schedule_heap(sim, now, tick, g_empty);
            }
            r = PyObject_CallMethodObjArgs(sim, s_after, g_zero, tick, NULL);
            if (r == NULL)
                return -1;
            Py_DECREF(r);
        }
        return 0;
    }
    {
        PyObject *r = PyObject_CallMethodObjArgs(pacer, s_request, sink, NULL);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
        return 0;
    }
}

static PyObject *
c_sink_on_packet(PyObject *Py_UNUSED(mod), PyObject *const *args,
                 Py_ssize_t nargs)
{
    PyObject *self, *packet, *kind, *seq_obj, *send, *ctl;
    int fin;

    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "on_packet() takes (self, packet)");
        return NULL;
    }
    self = args[0];
    packet = args[1];
    if (!g_ready || Py_TYPE(self) != t_cksink || Py_TYPE(packet) != t_packet)
        return PyObject_Vectorcall(g_py_sink_on_packet, args, nargs, NULL);
    kind = SLOT(packet, K.kind);
    if (kind != g_kind_data && kind != g_kind_header)
        Py_RETURN_NONE;
    seq_obj = slot_get(packet, K.seq, "seq");
    send = seq_obj ? slot_get(self, NK.send, "_send") : NULL;
    if (send == NULL)
        return NULL;
    if (kind == g_kind_data) {
        PyObject *received;
        int has;
        ctl = sink_control(self, g_kind_ack, g_ack_val, seq_obj);
        if (ctl == NULL)
            return NULL;
        if (do_send(send, ctl) < 0) {
            Py_DECREF(ctl);
            return NULL;
        }
        Py_DECREF(ctl);
        received = slot_get(self, NK.received, "_received");
        if (received == NULL)
            return NULL;
        has = PySet_CheckExact(received)
                  ? PySet_Contains(received, seq_obj)
                  : PySequence_Contains(received, seq_obj);
        if (has < 0)
            return NULL;
        if (!has) {
            PyObject *source, *payload_obj, *collector, *record, *fid,
                *now_obj, *sim, *r;
            if (PySet_CheckExact(received)) {
                if (PySet_Add(received, seq_obj) < 0)
                    return NULL;
            }
            else {
                r = PyObject_CallMethodOneArg(received, s_add, seq_obj);
                if (r == NULL)
                    return NULL;
                Py_DECREF(r);
            }
            source = slot_get(self, NK.source, "source");
            if (source == NULL)
                return NULL;
            if (Py_TYPE(source) == t_cksrc || Py_TYPE(source) == t_src) {
                /* source.payload_bytes(seq), inlined. */
                long long mtu, payload, size_ll, seq_ll, remaining, b;
                int err = 0;
                PyObject *srecord = slot_get(source, NS.record, "record");
                PyObject *sz;
                if (srecord == NULL)
                    return NULL;
                mtu = slot_ll(source, NS.mtu, "mtu", &err);
                if (err)
                    return NULL;
                payload = mtu - g_header_ll;
                sz = PyObject_GetAttr(srecord, s_size_bytes);
                if (sz == NULL)
                    return NULL;
                size_ll = PyLong_AsLongLong(sz);
                Py_DECREF(sz);
                if (size_ll == -1 && PyErr_Occurred())
                    return NULL;
                seq_ll = PyLong_AsLongLong(seq_obj);
                if (seq_ll == -1 && PyErr_Occurred())
                    return NULL;
                remaining = size_ll - seq_ll * payload;
                b = payload < remaining ? payload : remaining;
                if (b < 1)
                    b = 1;
                payload_obj = PyLong_FromLongLong(b);
            }
            else
                payload_obj =
                    PyObject_CallMethodOneArg(source, s_payload_bytes,
                                              seq_obj);
            if (payload_obj == NULL)
                return NULL;
            collector = slot_get(self, NK.stats, "stats");
            record = collector ? slot_get(self, NK.record, "record") : NULL;
            fid = record ? PyObject_GetAttr(record, s_flow_id) : NULL;
            if (fid == NULL) {
                Py_DECREF(payload_obj);
                return NULL;
            }
            sim = slot_get(self, NK.sim, "sim");
            if (sim == NULL) {
                Py_DECREF(payload_obj);
                Py_DECREF(fid);
                return NULL;
            }
            if (Py_TYPE(sim) == t_cksim || Py_TYPE(sim) == t_sim) {
                now_obj = SLOT(sim, S.now);
                Py_XINCREF(now_obj);
            }
            else
                now_obj = PyObject_GetAttr(sim, s_now);
            if (now_obj == NULL) {
                Py_DECREF(payload_obj);
                Py_DECREF(fid);
                return NULL;
            }
            r = PyObject_CallMethodObjArgs(collector, s_delivered, fid,
                                           payload_obj, now_obj, NULL);
            Py_DECREF(payload_obj);
            Py_DECREF(fid);
            Py_DECREF(now_obj);
            if (r == NULL)
                return NULL;
            Py_DECREF(r);
        }
    }
    else {
        /* Trimmed header: NACK so the source requeues the payload. */
        ctl = sink_control(self, g_kind_nack, g_nack_val, seq_obj);
        if (ctl == NULL)
            return NULL;
        if (do_send(send, ctl) < 0) {
            Py_DECREF(ctl);
            return NULL;
        }
        Py_DECREF(ctl);
    }
    fin = sink_finished(self, NK.record);
    if (fin < 0)
        return NULL;
    if (!fin) {
        PyObject *pacer = slot_get(self, NK.pacer, "pacer");
        if (pacer == NULL)
            return NULL;
        if (pacer_request(pacer, self) < 0)
            return NULL;
    }
    Py_RETURN_NONE;
}

static PyObject *
c_pacer_tick(PyObject *Py_UNUSED(mod), PyObject *const *args,
             Py_ssize_t nargs)
{
    PyObject *self, *tokens;

    if (nargs != 1) {
        PyErr_SetString(PyExc_TypeError, "_tick() takes (self)");
        return NULL;
    }
    self = args[0];
    if (!g_ready || Py_TYPE(self) != t_ckpacer)
        return PyObject_Vectorcall(g_py_pacer_tick, args, nargs, NULL);
    tokens = slot_get(self, PP.tokens, "_tokens");
    if (tokens == NULL)
        return NULL;
    for (;;) {
        Py_ssize_t n = PyObject_Length(tokens);
        PyObject *sink;
        int fin;
        if (n < 0)
            return NULL;
        if (n == 0)
            break;
        sink = PyObject_CallMethodNoArgs(tokens, s_popleft);
        if (sink == NULL)
            return NULL;
        if (Py_TYPE(sink) == t_cksink || Py_TYPE(sink) == t_sink)
            fin = sink_finished(sink, NK.record);
        else {
            PyObject *f = PyObject_GetAttr(sink, s_finished);
            fin = (f == NULL) ? -1 : PyObject_IsTrue(f);
            Py_XDECREF(f);
        }
        if (fin < 0) {
            Py_DECREF(sink);
            return NULL;
        }
        if (fin) {
            Py_DECREF(sink);
            continue; /* completed flows relinquish their tokens */
        }
        if (Py_TYPE(sink) == t_cksink) {
            if (sink_emit_pull_impl(sink) < 0) {
                Py_DECREF(sink);
                return NULL;
            }
        }
        else {
            PyObject *r = PyObject_CallMethodNoArgs(sink, s_emit_pull);
            if (r == NULL) {
                Py_DECREF(sink);
                return NULL;
            }
            Py_DECREF(r);
        }
        Py_DECREF(sink);
        {
            PyObject *sim = slot_get(self, PP.sim, "sim");
            PyObject *tick = sim ? slot_get(self, PP.tick_cb, "_tick_cb")
                                 : NULL;
            int err = 0;
            if (tick == NULL)
                return NULL;
            if (sim_fast(sim)) {
                long long now = slot_ll(sim, S.now, "now", &err);
                long long interval =
                    slot_ll(self, PP.interval_ps, "interval_ps", &err);
                if (err)
                    return NULL;
                if (schedule_heap(sim, now + interval, tick, g_empty) < 0)
                    return NULL;
            }
            else {
                PyObject *interval_obj = SLOT(self, PP.interval_ps);
                PyObject *r = PyObject_CallMethodObjArgs(
                    sim, s_after, interval_obj, tick, NULL);
                if (r == NULL)
                    return NULL;
                Py_DECREF(r);
            }
        }
        Py_RETURN_NONE;
    }
    slot_set(self, PP.running, Py_False);
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------- init */

static int
get_offset(PyObject *cls, const char *name, Py_ssize_t *out)
{
    PyObject *d = PyObject_GetAttrString(cls, name);
    if (d == NULL)
        return -1;
    if (!PyObject_TypeCheck(d, &PyMemberDescr_Type)) {
        PyErr_Format(PyExc_TypeError,
                     "%.100s.%.100s is not a __slots__ member descriptor",
                     ((PyTypeObject *)cls)->tp_name, name);
        Py_DECREF(d);
        return -1;
    }
    *out = ((PyMemberDescrObject *)d)->d_member->offset;
    Py_DECREF(d);
    return 0;
}

static PyObject *
cfg_get(PyObject *cfg, const char *key)
{
    PyObject *v = PyDict_GetItemString(cfg, key); /* borrowed */
    if (v == NULL)
        PyErr_Format(PyExc_KeyError, "ckernel init: missing key %.100s", key);
    else
        Py_INCREF(v);
    return v;
}

#define CFG_OBJ(var, key)                                                     \
    do {                                                                      \
        Py_XDECREF(var);                                                      \
        var = cfg_get(cfg, key);                                              \
        if (var == NULL)                                                      \
            return NULL;                                                      \
    } while (0)

#define OFF(cls, field, dest)                                                 \
    do {                                                                      \
        if (get_offset(cls, field, &(dest)) < 0)                              \
            return NULL;                                                      \
    } while (0)

static PyObject *
c_init(PyObject *Py_UNUSED(mod), PyObject *cfg)
{
    PyObject *cls, *tmp = NULL;

    if (!PyDict_CheckExact(cfg)) {
        PyErr_SetString(PyExc_TypeError, "init() takes a config dict");
        return NULL;
    }

    /* Simulator offsets */
    CFG_OBJ(tmp, "Simulator");
    cls = tmp;
    Py_XDECREF((PyObject *)t_sim);
    t_sim = (PyTypeObject *)cls;
    Py_INCREF(cls);
    OFF(cls, "now", S.now);
    OFF(cls, "_wheel", S.wheel);
    OFF(cls, "_heap", S.heap);
    OFF(cls, "_seq", S.seq);
    OFF(cls, "_gap", S.gap);
    OFF(cls, "coalesce", S.coalesce);
    OFF(cls, "_train_extra", S.train_extra);
    OFF(cls, "events_processed", S.events_processed);
    OFF(cls, "trains_formed", S.trains_formed);
    OFF(cls, "train_events", S.train_events);
    OFF(cls, "train_repushes", S.train_repushes);

    /* Port offsets */
    CFG_OBJ(tmp, "Port");
    cls = tmp;
    Py_XDECREF((PyObject *)t_port);
    t_port = (PyTypeObject *)cls;
    Py_INCREF(cls);
    OFF(cls, "sim", P.sim);
    OFF(cls, "resolver", P.resolver);
    OFF(cls, "propagation_ps", P.propagation_ps);
    OFF(cls, "data_queue_bytes", P.data_queue_bytes);
    OFF(cls, "control_queue_bytes", P.control_queue_bytes);
    OFF(cls, "bulk_queue_bytes", P.bulk_queue_bytes);
    OFF(cls, "trimming", P.trimming);
    OFF(cls, "on_undeliverable", P.on_undeliverable);
    OFF(cls, "on_bulk_drop", P.on_bulk_drop);
    OFF(cls, "stats", P.stats);
    OFF(cls, "_q_control", P.q_control);
    OFF(cls, "_q_data", P.q_data);
    OFF(cls, "_q_bulk", P.q_bulk);
    OFF(cls, "_bytes_control", P.bytes_control);
    OFF(cls, "_bytes_data", P.bytes_data);
    OFF(cls, "_bytes_bulk", P.bytes_bulk);
    OFF(cls, "_busy_until", P.busy_until);
    OFF(cls, "_kick_pending", P.kick_pending);
    OFF(cls, "_ps_per_byte", P.ps_per_byte);
    OFF(cls, "_target", P.target);
    OFF(cls, "_committed_control", P.committed_control);
    OFF(cls, "_deliver", P.deliver);
    OFF(cls, "_kick_cb", P.kick_cb);
    OFF(cls, "_undeliv_cb", P.undeliv_cb);
    OFF(cls, "_burst", P.burst);

    /* Packet offsets */
    CFG_OBJ(tmp, "Packet");
    cls = tmp;
    Py_XDECREF((PyObject *)t_packet);
    t_packet = (PyTypeObject *)cls;
    Py_INCREF(cls);
    OFF(cls, "flow_id", K.flow_id);
    OFF(cls, "kind", K.kind);
    OFF(cls, "src_host", K.src_host);
    OFF(cls, "dst_host", K.dst_host);
    OFF(cls, "seq", K.seq);
    OFF(cls, "size_bytes", K.size_bytes);
    OFF(cls, "priority", K.priority);
    OFF(cls, "slice_stamp", K.slice_stamp);
    OFF(cls, "salt", K.salt);
    OFF(cls, "hops", K.hops);
    OFF(cls, "next_rack", K.next_rack);
    OFF(cls, "relay_to", K.relay_to);
    OFF(cls, "enqueued_ps", K.enqueued_ps);
    OFF(cls, "recv_args", K.recv_args);
    OFF(cls, "_pooled", K.pooled);

    /* Host offsets */
    CFG_OBJ(tmp, "Host");
    cls = tmp;
    Py_XDECREF((PyObject *)t_host);
    t_host = (PyTypeObject *)cls;
    Py_INCREF(cls);
    OFF(cls, "sources", H.sources);
    OFF(cls, "sinks", H.sinks);
    OFF(cls, "dropped", H.dropped);

    /* SwitchNode offsets */
    CFG_OBJ(tmp, "SwitchNode");
    cls = tmp;
    Py_XDECREF((PyObject *)t_switch);
    t_switch = (PyTypeObject *)cls;
    Py_INCREF(cls);
    OFF(cls, "drops", W.drops);

    /* PortStats offsets */
    CFG_OBJ(tmp, "PortStats");
    cls = tmp;
    OFF(cls, "sent_packets", ST.sent_packets);
    OFF(cls, "sent_bytes", ST.sent_bytes);
    OFF(cls, "trimmed", ST.trimmed);
    OFF(cls, "dropped_control", ST.dropped_control);
    OFF(cls, "dropped_bulk", ST.dropped_bulk);

    /* NdpSource offsets */
    CFG_OBJ(tmp, "NdpSource");
    cls = tmp;
    Py_XDECREF((PyObject *)t_src);
    t_src = (PyTypeObject *)cls;
    Py_INCREF(cls);
    OFF(cls, "record", NS.record);
    OFF(cls, "priority", NS.priority);
    OFF(cls, "mtu", NS.mtu);
    OFF(cls, "n_packets", NS.n_packets);
    OFF(cls, "_next_new", NS.next_new);
    OFF(cls, "_rtx", NS.rtx);
    OFF(cls, "_acked", NS.acked);
    OFF(cls, "_pulls_banked", NS.pulls_banked);
    OFF(cls, "_send", NS.send);

    /* NdpSink offsets */
    CFG_OBJ(tmp, "NdpSink");
    cls = tmp;
    Py_XDECREF((PyObject *)t_sink);
    t_sink = (PyTypeObject *)cls;
    Py_INCREF(cls);
    OFF(cls, "sim", NK.sim);
    OFF(cls, "record", NK.record);
    OFF(cls, "pacer", NK.pacer);
    OFF(cls, "stats", NK.stats);
    OFF(cls, "source", NK.source);
    OFF(cls, "_received", NK.received);
    OFF(cls, "_pull_seq", NK.pull_seq);
    OFF(cls, "_send", NK.send);

    /* PullPacer offsets */
    CFG_OBJ(tmp, "PullPacer");
    cls = tmp;
    Py_XDECREF((PyObject *)t_pacer);
    t_pacer = (PyTypeObject *)cls;
    Py_INCREF(cls);
    OFF(cls, "sim", PP.sim);
    OFF(cls, "interval_ps", PP.interval_ps);
    OFF(cls, "_tokens", PP.tokens);
    OFF(cls, "_running", PP.running);
    OFF(cls, "_tick_cb", PP.tick_cb);

    CFG_OBJ(g_train, "TRAIN");
    CFG_OBJ(g_lazy, "LAZY");
    CFG_OBJ(g_consumed, "CONSUMED");
    CFG_OBJ(g_prio_control, "PRIO_CONTROL");
    CFG_OBJ(g_prio_low, "PRIO_LOW_LATENCY");
    CFG_OBJ(g_prio_bulk, "PRIO_BULK");
    CFG_OBJ(g_kind_data, "KIND_DATA");
    CFG_OBJ(g_kind_header, "KIND_HEADER");
    CFG_OBJ(g_kind_ack, "KIND_ACK");
    CFG_OBJ(g_kind_nack, "KIND_NACK");
    CFG_OBJ(g_kind_pull, "KIND_PULL");
    Py_XDECREF(g_ack_val);
    g_ack_val = PyObject_GetAttr(g_kind_ack, s_value);
    Py_XDECREF(g_nack_val);
    g_nack_val = PyObject_GetAttr(g_kind_nack, s_value);
    Py_XDECREF(g_pull_val);
    g_pull_val = PyObject_GetAttr(g_kind_pull, s_value);
    if (g_ack_val == NULL || g_nack_val == NULL || g_pull_val == NULL)
        return NULL;
    CFG_OBJ(g_pool, "POOL");
    if (!PyList_CheckExact(g_pool)) {
        PyErr_SetString(PyExc_TypeError, "POOL must be the packet free list");
        return NULL;
    }
    CFG_OBJ(tmp, "POOL_MAX");
    g_pool_max = PyLong_AsLong(tmp);
    CFG_OBJ(tmp, "MAX_HOPS");
    g_max_hops = PyLong_AsLongLong(tmp);
    CFG_OBJ(g_header_bytes, "HEADER_BYTES");
    g_header_ll = PyLong_AsLongLong(g_header_bytes);
    if (g_header_ll == -1 && PyErr_Occurred())
        return NULL;
    CFG_OBJ(g_py_sim_at, "py_at");
    CFG_OBJ(g_py_sim_after, "py_after");
    CFG_OBJ(g_py_sim_at_many, "py_at_many");
    CFG_OBJ(g_py_sim_run, "py_run");
    CFG_OBJ(g_py_past_error, "py_past_error");
    CFG_OBJ(g_py_port_enqueue, "py_enqueue");
    CFG_OBJ(g_py_port_kick, "py_kick");
    CFG_OBJ(g_py_host_receive, "py_receive");
    CFG_OBJ(g_py_acquire, "py_acquire");
    CFG_OBJ(g_py_src_on_packet, "py_src_on_packet");
    CFG_OBJ(g_py_sink_on_packet, "py_sink_on_packet");
    CFG_OBJ(g_py_emit_pull, "py_emit_pull");
    CFG_OBJ(g_py_pacer_tick, "py_pacer_tick");
    CFG_OBJ(tmp, "SORT_KEY");
    Py_XDECREF(g_sort_kwargs);
    g_sort_kwargs = PyDict_New();
    if (g_sort_kwargs == NULL ||
        PyDict_SetItemString(g_sort_kwargs, "key", tmp) < 0)
        return NULL;
    Py_CLEAR(tmp);
    if (PyErr_Occurred())
        return NULL;
    g_ready = 1;
    Py_RETURN_NONE;
}

static PyObject *
c_register(PyObject *Py_UNUSED(mod), PyObject *args)
{
    PyObject *cksim, *ckport, *ckhost, *ckswitch, *cksrc, *cksink, *ckpacer;
    if (!PyArg_ParseTuple(args, "OOOOOOO:register", &cksim, &ckport, &ckhost,
                          &ckswitch, &cksrc, &cksink, &ckpacer))
        return NULL;
    Py_XDECREF((PyObject *)t_cksim);
    Py_XDECREF((PyObject *)t_ckport);
    Py_XDECREF((PyObject *)t_ckhost);
    Py_XDECREF((PyObject *)t_ckswitch);
    Py_XDECREF((PyObject *)t_cksrc);
    Py_XDECREF((PyObject *)t_cksink);
    Py_XDECREF((PyObject *)t_ckpacer);
    t_cksim = (PyTypeObject *)cksim;
    t_ckport = (PyTypeObject *)ckport;
    t_ckhost = (PyTypeObject *)ckhost;
    t_ckswitch = (PyTypeObject *)ckswitch;
    t_cksrc = (PyTypeObject *)cksrc;
    t_cksink = (PyTypeObject *)cksink;
    t_ckpacer = (PyTypeObject *)ckpacer;
    Py_INCREF(cksim);
    Py_INCREF(ckport);
    Py_INCREF(ckhost);
    Py_INCREF(ckswitch);
    Py_INCREF(cksrc);
    Py_INCREF(cksink);
    Py_INCREF(ckpacer);
    Py_RETURN_NONE;
}

/* ----------------------------------------------------------------- module */

static PyMethodDef module_fns[] = {
    {"init", (PyCFunction)c_init, METH_O,
     "Capture slot offsets, sentinels and Python fallbacks."},
    {"register", (PyCFunction)c_register, METH_VARARGS,
     "Register the CK* classes for exact-type fast paths."},
    {"make_dispatch", (PyCFunction)c_make_dispatch, METH_VARARGS,
     "Build the fused C dispatch callable for a switch."},
    {NULL, NULL, 0, NULL}};

/* Methods exported as instancemethod descriptors (class-dict rebinding). */
static PyMethodDef m_at = {"at", (PyCFunction)c_sim_at, METH_FASTCALL,
                           "Compiled Simulator.at."};
static PyMethodDef m_after = {"after", (PyCFunction)c_sim_after,
                              METH_FASTCALL, "Compiled Simulator.after."};
static PyMethodDef m_at_many = {"at_many", (PyCFunction)c_sim_at_many,
                                METH_FASTCALL, "Compiled Simulator.at_many."};
static PyMethodDef m_run = {"run", (PyCFunction)c_sim_run,
                            METH_VARARGS | METH_KEYWORDS,
                            "Compiled Simulator.run."};
static PyMethodDef m_enqueue = {"enqueue", (PyCFunction)c_port_enqueue,
                                METH_FASTCALL, "Compiled Port.enqueue."};
static PyMethodDef m_kick = {"_kick", (PyCFunction)c_port_kick, METH_FASTCALL,
                             "Compiled Port._kick."};
static PyMethodDef m_receive = {"receive", (PyCFunction)c_host_receive,
                                METH_FASTCALL, "Compiled Host.receive."};
static PyMethodDef m_src_on_packet = {
    "src_on_packet", (PyCFunction)c_src_on_packet, METH_FASTCALL,
    "Compiled NdpSource.on_packet."};
static PyMethodDef m_sink_on_packet = {
    "sink_on_packet", (PyCFunction)c_sink_on_packet, METH_FASTCALL,
    "Compiled NdpSink.on_packet."};
static PyMethodDef m_sink_emit_pull = {
    "sink_emit_pull", (PyCFunction)c_sink_emit_pull, METH_FASTCALL,
    "Compiled NdpSink.emit_pull."};
static PyMethodDef m_pacer_tick = {"pacer_tick", (PyCFunction)c_pacer_tick,
                                   METH_FASTCALL,
                                   "Compiled PullPacer._tick."};

/* Add def as an instancemethod module attribute; when `keep` is non-NULL
 * the underlying PyCFunction is also stored there (new reference) so hot
 * paths can recognise bound methods of it. */
static int
add_instancemethod(PyObject *m, PyMethodDef *def, PyObject **keep)
{
    PyObject *f = PyCFunction_New(def, NULL);
    PyObject *im;
    if (f == NULL)
        return -1;
    im = PyInstanceMethod_New(f);
    if (im == NULL) {
        Py_DECREF(f);
        return -1;
    }
    if (keep != NULL) {
        Py_XDECREF(*keep);
        *keep = f; /* transfer our ref */
    }
    else
        Py_DECREF(f);
    if (PyModule_AddObject(m, def->ml_name, im) < 0) {
        Py_DECREF(im);
        return -1;
    }
    return 0;
}

static struct PyModuleDef ckernel_module = {
    PyModuleDef_HEAD_INIT,
    "repro.net.kernel._ckernel",
    "Compiled engine kernel: enqueue/serialize/dispatch in C over the\n"
    "pure-Python engine's __slots__ layout. See repro.net.kernel.",
    -1,
    module_fns,
};

PyMODINIT_FUNC
PyInit__ckernel(void)
{
    PyObject *m, *builtins;

    m = PyModule_Create(&ckernel_module);
    if (m == NULL)
        return NULL;
    s_receive_cb = PyUnicode_InternFromString("receive_cb");
    s_receive = PyUnicode_InternFromString("receive");
    s_popleft = PyUnicode_InternFromString("popleft");
    s_append = PyUnicode_InternFromString("append");
    s_on_packet = PyUnicode_InternFromString("on_packet");
    s_enqueue = PyUnicode_InternFromString("enqueue");
    s_add = PyUnicode_InternFromString("add");
    s_after = PyUnicode_InternFromString("after");
    s_request = PyUnicode_InternFromString("request");
    s_emit_pull = PyUnicode_InternFromString("emit_pull");
    s_finished = PyUnicode_InternFromString("finished");
    s_payload_bytes = PyUnicode_InternFromString("payload_bytes");
    s_delivered = PyUnicode_InternFromString("delivered");
    s_now = PyUnicode_InternFromString("now");
    s_flow_id = PyUnicode_InternFromString("flow_id");
    s_src_host = PyUnicode_InternFromString("src_host");
    s_dst_host = PyUnicode_InternFromString("dst_host");
    s_size_bytes = PyUnicode_InternFromString("size_bytes");
    s_end_ps = PyUnicode_InternFromString("end_ps");
    s_retransmissions = PyUnicode_InternFromString("retransmissions");
    s_value = PyUnicode_InternFromString("value");
    if (s_receive_cb == NULL || s_receive == NULL || s_popleft == NULL ||
        s_append == NULL || s_on_packet == NULL || s_enqueue == NULL ||
        s_add == NULL || s_after == NULL || s_request == NULL ||
        s_emit_pull == NULL || s_finished == NULL ||
        s_payload_bytes == NULL || s_delivered == NULL || s_now == NULL ||
        s_flow_id == NULL || s_src_host == NULL || s_dst_host == NULL ||
        s_size_bytes == NULL || s_end_ps == NULL ||
        s_retransmissions == NULL || s_value == NULL)
        goto fail;
    g_empty = PyTuple_New(0);
    g_src_salt = PyLong_FromLongLong(0x9E3779B9LL);
    g_zero = PyLong_FromLong(0);
    g_one = PyLong_FromLong(1);
    if (g_empty == NULL || g_src_salt == NULL || g_zero == NULL ||
        g_one == NULL)
        goto fail;
    builtins = PyEval_GetBuiltins(); /* borrowed */
    g_sorted = PyMapping_GetItemString(builtins, "sorted");
    if (g_sorted == NULL)
        goto fail;
    if (add_instancemethod(m, &m_at, NULL) < 0 ||
        add_instancemethod(m, &m_after, NULL) < 0 ||
        add_instancemethod(m, &m_at_many, NULL) < 0 ||
        add_instancemethod(m, &m_run, NULL) < 0 ||
        add_instancemethod(m, &m_enqueue, &g_cf_enqueue) < 0 ||
        add_instancemethod(m, &m_kick, NULL) < 0 ||
        add_instancemethod(m, &m_receive, NULL) < 0 ||
        add_instancemethod(m, &m_src_on_packet, NULL) < 0 ||
        add_instancemethod(m, &m_sink_on_packet, NULL) < 0 ||
        add_instancemethod(m, &m_sink_emit_pull, NULL) < 0 ||
        add_instancemethod(m, &m_pacer_tick, NULL) < 0)
        goto fail;
    return m;
fail:
    Py_DECREF(m);
    return NULL;
}
