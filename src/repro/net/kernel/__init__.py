"""Engine-kernel seam: pure-Python oracle vs compiled fast path.

PR 5's profile evidence was unambiguous: after coalescing, batched slice
boundaries and allocation-free dispatch, the remaining per-event cost of
the packet engine lives in the *bodies* of the hot callbacks —
``Port.enqueue``, the serializer commit, endpoint dispatch — not in event
structure. This package provides a compiled kernel for exactly that inner
loop, selected with ``REPRO_KERNEL`` (mirroring ``REPRO_SCHEDULER`` /
``REPRO_COALESCE``):

* ``py``   — the pure-Python engine classes, unchanged. This path is the
  differential oracle: every observable of a ``c``-kernel run must be
  bit-identical to it (``tests/test_kernel.py``).
* ``c``    — compiled implementations of the hot methods. Falls back to
  ``py`` (with a one-time warning) when the compiled module is absent.
* ``auto`` (default) — ``c`` when the compiled module imports, else ``py``.

Design: **one data layout, two method implementations.** The compiled
kernel does not introduce parallel data structures — it is a set of C
functions that read and write the *existing* ``__slots__`` of
``Simulator`` / ``Port`` / ``Packet`` / ``Host`` / ``SwitchNode`` through
member-descriptor offsets, plus thin subclasses (:mod:`.engine`) that
rebind only the hot methods to those C implementations. The heap is the
same list of ``(time_ps, seq, callback, args)`` tuples, packets are the
same free-listed ``Packet`` objects, trains are the same
``(group, pos)`` entries. Mixing kernels is therefore safe by
construction (a pure-Python callback scheduled on a compiled simulator
dispatches identically), and bit-identity reduces to the C code
replicating the Python control flow — which the differential tests pin
per scheduler x coalesce x executor.

The compiled module is built by ``setup.py`` (``pip install -e .`` or
``python setup.py build_ext --inplace``) from the hand-written CPython
extension ``_ckernel.c`` (mypyc/Cython are not part of the pinned
toolchain, and hand-written C manipulates the ``__slots__`` layout and
heap entries with zero per-event allocation); the extension is declared
optional, so a missing compiler degrades to the pure-Python kernel
instead of failing the install.

**The failure seam.** Live failure injection (``repro.core.faults`` +
``OperaSimNetwork.install_failures``) adds *zero* kernel code. Two
deliberate properties of this seam make that possible:

* The compiled ``SwitchNode`` calls the *Python* route closure per
  packet (``_ckernel.c`` invokes ``route(switch, packet)`` exactly like
  the pure engine), so blackholing on failed hops, dead-rack checks and
  slice-parking live in one closure both kernels execute.
* ``Port.resolver`` is re-read on every transmit in both kernels, so
  the injector can swap a failure-aware uplink resolver in live.

Dynamic state reaches the closures through one-slot mutable cells
(actual failed sets mutated in place; the *detected* view swapped at
hello epochs), never by reinstalling routers. Consequently ``py`` and
``c`` runs stay byte-identical under active failures — CI's
``faults-smoke`` job and ``tests/test_faults_dynamic.py`` pin this —
and arming an empty schedule is bitwise invisible to either kernel.

**The telemetry seam.** Metrics (``repro.obs.metrics``) likewise add
*zero* kernel code. Every counter the snapshot reports already lives in
shared ``__slots__`` both kernels write — ``Simulator.events_processed``
and friends (via :meth:`~repro.net.sim.Simulator.counters`),
``PortStats``'s per-port tallies, ``StatsCollector``'s flow records —
and ``drain_network`` merely *reads* them into the registry after the
run's observables are computed. Because the compiled kernel updates the
same slots through member descriptors, a ``py`` and a ``c`` run of the
same cell produce byte-identical metric snapshots by construction (CI's
``telemetry-smoke`` job and ``tests/test_obs.py`` pin this), and an
armed run's simulated results stay bitwise identical to an off run:
observation happens strictly after simulation.
"""

from __future__ import annotations

import os
import warnings
from typing import NamedTuple

__all__ = [
    "KERNELS",
    "EngineClasses",
    "engine_classes",
    "kernel_default",
    "compiled_available",
]

#: Recognised kernel names (``auto`` additionally accepted in the env var).
KERNELS = ("py", "c")


class EngineClasses(NamedTuple):
    """The engine classes a network builder instantiates, per kernel."""

    name: str
    Simulator: type
    Port: type
    Host: type
    SwitchNode: type
    NdpSource: type
    NdpSink: type
    PullPacer: type


_PY: EngineClasses | None = None
#: ``None`` = not probed yet, ``False`` = probed and unavailable.
_COMPILED: EngineClasses | bool | None = None
_WARNED = False


def kernel_default() -> str:
    """Process-wide kernel selection: ``REPRO_KERNEL=py|c|auto``."""
    raw = os.environ.get("REPRO_KERNEL", "") or "auto"
    if raw not in (*KERNELS, "auto"):
        raise ValueError(
            f"unknown kernel {raw!r} in REPRO_KERNEL; known: py, c, auto"
        )
    return raw


def _python_classes() -> EngineClasses:
    global _PY
    if _PY is None:
        from ..link import Port
        from ..ndp import NdpSink, NdpSource, PullPacer
        from ..node import Host, SwitchNode
        from ..sim import Simulator

        _PY = EngineClasses(
            "py", Simulator, Port, Host, SwitchNode, NdpSource, NdpSink, PullPacer
        )
    return _PY


def _compiled_classes() -> EngineClasses | None:
    """The compiled class set, or ``None`` when the module is absent."""
    global _COMPILED
    if _COMPILED is None:
        try:
            from . import engine
        except ImportError:
            _COMPILED = False
        else:
            _COMPILED = EngineClasses(
                "c",
                engine.CKSimulator,
                engine.CKPort,
                engine.CKHost,
                engine.CKSwitchNode,
                engine.CKNdpSource,
                engine.CKNdpSink,
                engine.CKPullPacer,
            )
    return _COMPILED or None


def compiled_available() -> bool:
    """True when the compiled kernel imported successfully."""
    return _compiled_classes() is not None


def engine_classes(kernel: str | None = None) -> EngineClasses:
    """Resolve the engine class set for ``kernel`` (env default).

    ``c`` with no compiled module degrades to the pure-Python classes
    with a one-time :class:`RuntimeWarning` — a build problem must not
    make simulations *fail*, only run unaccelerated. ``auto`` degrades
    silently.
    """
    global _WARNED
    if kernel is None:
        kernel = kernel_default()
    elif kernel not in (*KERNELS, "auto"):
        raise ValueError(f"unknown kernel {kernel!r}; known: py, c, auto")
    if kernel == "py":
        return _python_classes()
    compiled = _compiled_classes()
    if compiled is not None:
        return compiled
    if kernel == "c" and not _WARNED:
        _WARNED = True
        warnings.warn(
            "REPRO_KERNEL=c requested but the compiled kernel module "
            "(repro.net.kernel._ckernel) is not importable; falling back "
            "to the pure-Python engine. Build it with "
            "`python setup.py build_ext --inplace`.",
            RuntimeWarning,
            stacklevel=2,
        )
    return _python_classes()
