"""NDP transport (Handley et al. [24]) — Opera's low-latency protocol.

The pieces the paper relies on (section 4.2.1) are implemented faithfully:

* **Zero-RTT start** — the source blasts an initial window immediately.
* **Packet trimming** — overloaded switch queues cut payloads; the header
  still reaches the receiver (at control priority), which NACKs so the
  source can requeue the payload for retransmission. On the fault-free
  fabric no timeouts are needed because metadata is never lost; a *failed
  component* blackholes whole packets, metadata included, so the dynamic
  failure layer (:mod:`repro.net.failures`) drives the cold-path timeout
  hooks below (:meth:`NdpSource.timeout_retransmit` /
  :meth:`NdpSource.replay_pull`) — armed only when a loss actually
  happened, so fault-free runs schedule zero extra events.
* **Receiver-driven pacing** — the receiver issues PULL packets clocked at
  its line rate (one MTU's serialization per PULL, shared across that
  host's active flows); each PULL releases one packet at the source,
  retransmissions first.
* **Priority queueing** — ACK/NACK/PULL/headers ride the control queue.

Sources and sinks attach to :class:`~repro.net.node.Host` objects; the
fabric between them is whatever topology the builder wired.
"""

from __future__ import annotations

from collections import deque

from .node import Host
from .packet import (
    HEADER_BYTES,
    MTU_BYTES,
    Packet,
    PacketKind,
    Priority,
    acquire,
)
from .sim import Simulator
from .stats import FlowRecord, StatsCollector

__all__ = ["NdpSource", "NdpSink", "PullPacer", "start_ndp_flow"]

#: Default initial window, in packets (~1 BDP for the networks simulated).
DEFAULT_INITIAL_WINDOW = 12


class PullPacer:
    """Per-host PULL clock: one PULL per MTU serialization time."""

    __slots__ = ("sim", "host", "interval_ps", "_tokens", "_running", "_tick_cb")

    def __init__(self, sim: Simulator, host: Host, rate_bps: int) -> None:
        self.sim = sim
        self.host = host
        self.interval_ps = (MTU_BYTES * 8 * 1_000_000_000_000) // rate_bps
        self._tokens: deque["NdpSink"] = deque()
        self._running = False
        # The tick reschedules itself once per PULL: bind it once.
        self._tick_cb = self._tick

    def request(self, sink: "NdpSink") -> None:
        self._tokens.append(sink)
        if not self._running:
            self._running = True
            self.sim.after(0, self._tick_cb)

    def _tick(self) -> None:
        while self._tokens:
            sink = self._tokens.popleft()
            if sink.finished:
                continue  # completed flows relinquish their tokens
            sink.emit_pull()
            self.sim.after(self.interval_ps, self._tick_cb)
            return
        self._running = False


class NdpSource:
    """Sender half of one NDP flow."""

    __slots__ = (
        "sim",
        "host",
        "record",
        "priority",
        "mtu",
        "n_packets",
        "initial_window",
        "_next_new",
        "_rtx",
        "_acked",
        "_pulls_banked",
        "_send",
    )

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        record: FlowRecord,
        priority: Priority = Priority.LOW_LATENCY,
        initial_window: int = DEFAULT_INITIAL_WINDOW,
        mtu: int = MTU_BYTES,
    ) -> None:
        self.sim = sim
        self.host = host
        self.record = record
        self.priority = priority
        self.mtu = mtu
        payload = mtu - HEADER_BYTES
        self.n_packets = max(1, -(-record.size_bytes // payload))
        self.initial_window = initial_window
        self._next_new = 0
        self._rtx: deque[int] = deque()
        self._acked: set[int] = set()
        self._pulls_banked = 0
        # Endpoints attach to built networks (NIC already wired), so the
        # per-packet send can skip the Host.send indirection.
        self._send = host.send if host.nic is None else host.nic.enqueue
        host.sources[record.flow_id] = self

    # ---------------------------------------------------------------- sizes

    def packet_bytes(self, seq: int) -> int:
        payload = self.mtu - HEADER_BYTES
        remaining = self.record.size_bytes - seq * payload
        return HEADER_BYTES + max(1, min(payload, remaining))

    def payload_bytes(self, seq: int) -> int:
        return self.packet_bytes(seq) - HEADER_BYTES

    # ----------------------------------------------------------------- wire

    def start(self) -> None:
        """Zero-RTT: transmit the initial window immediately."""
        for _ in range(min(self.initial_window, self.n_packets)):
            self._send_next()

    def _emit(self, seq: int) -> None:
        record = self.record
        packet = acquire(
            record.flow_id,
            PacketKind.DATA,
            record.src_host,
            record.dst_host,
            seq,
            self.packet_bytes(seq),
            self.priority,
            salt=hash((record.flow_id, seq, 0x9E3779B9)) & 0x7FFFFFFF,
        )
        self._send(packet)

    def _send_next(self) -> bool:
        if self._rtx:
            self._emit(self._rtx.popleft())
            return True
        if self._next_new < self.n_packets:
            self._emit(self._next_new)
            self._next_new += 1
            return True
        return False

    # -------------------------------------------------------------- receive

    def on_packet(self, packet: Packet) -> None:
        if packet.kind is PacketKind.ACK:
            self._acked.add(packet.seq)
        elif packet.kind is PacketKind.NACK:
            if packet.seq not in self._acked:
                self._rtx.append(packet.seq)
                self.record.retransmissions += 1
                # A banked pull (sent while we had nothing new) releases it.
                if self._pulls_banked > 0:
                    self._pulls_banked -= 1
                    self._send_next()
        elif packet.kind is PacketKind.PULL:
            if not self._send_next():
                self._pulls_banked += 1

    # ------------------------------------------------------- failure recovery
    #
    # Cold-path hooks driven by the blackhole timeout clock
    # (repro.net.failures.NdpRecovery). They are deliberately *not* part of
    # on_packet: the compiled kernel implements on_packet in C, and keeping
    # recovery in shared Python methods that only mutate the same __slots__
    # state is what keeps REPRO_KERNEL=py|c bit-identical under failures.

    def timeout_retransmit(self, seq: int) -> bool:
        """Re-emit a sequence whose packet was blackholed; False if acked.

        Emission is immediate (not banked behind a PULL): when a failure
        swallowed the whole initial window, the sink has never seen the
        flow and will never pull, so only a timeout-clocked send can
        un-wedge it.
        """
        if seq in self._acked:
            return False
        self.record.retransmissions += 1
        self._emit(seq)
        return True

    def replay_pull(self) -> None:
        """Stand in for a PULL that was blackholed in flight."""
        if not self._send_next():
            self._pulls_banked += 1


class NdpSink:
    """Receiver half of one NDP flow: ACK/NACK + paced PULLs."""

    __slots__ = (
        "sim",
        "host",
        "record",
        "pacer",
        "stats",
        "source",
        "_received",
        "_pull_seq",
        "_send",
    )

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        record: FlowRecord,
        source_host: Host,
        pacer: PullPacer,
        stats: StatsCollector,
        payload_of: "NdpSource",
    ) -> None:
        self.sim = sim
        self.host = host
        self.record = record
        self.pacer = pacer
        self.stats = stats
        self.source = payload_of
        self._received: set[int] = set()
        self._pull_seq = 0
        self._send = host.send if host.nic is None else host.nic.enqueue
        host.sinks[record.flow_id] = self

    @property
    def finished(self) -> bool:
        return self.record.complete

    def _control(self, kind: PacketKind, seq: int) -> Packet:
        record = self.record
        return acquire(
            record.flow_id,
            kind,
            record.dst_host,
            record.src_host,
            seq,
            HEADER_BYTES,
            Priority.CONTROL,
            salt=hash((record.flow_id, seq, kind.value)) & 0x7FFFFFFF,
        )

    def emit_pull(self) -> None:
        self._pull_seq += 1
        self._send(self._control(PacketKind.PULL, self._pull_seq))

    def on_packet(self, packet: Packet) -> None:
        if packet.kind is PacketKind.DATA:
            self._send(self._control(PacketKind.ACK, packet.seq))
            if packet.seq not in self._received:
                self._received.add(packet.seq)
                self.stats.delivered(
                    self.record.flow_id,
                    self.source.payload_bytes(packet.seq),
                    self.sim.now,
                )
            if not self.finished:
                self.pacer.request(self)
        elif packet.kind is PacketKind.HEADER:
            # Trimmed: payload lost; request retransmission and keep pulling.
            self._send(self._control(PacketKind.NACK, packet.seq))
            if not self.finished:
                self.pacer.request(self)


def start_ndp_flow(
    sim: Simulator,
    src: Host,
    dst: Host,
    record: FlowRecord,
    pacer: PullPacer,
    stats: StatsCollector,
    priority: Priority = Priority.LOW_LATENCY,
    initial_window: int = DEFAULT_INITIAL_WINDOW,
    start_delay_ps: int = 0,
    source_cls: type["NdpSource"] = None,  # type: ignore[assignment]
    sink_cls: type["NdpSink"] = None,  # type: ignore[assignment]
) -> NdpSource:
    """Wire up source+sink for one flow and schedule its start.

    ``source_cls``/``sink_cls`` let builders pass the kernel-resolved
    endpoint classes (:mod:`repro.net.kernel`); they default to the
    pure-Python endpoints.
    """
    source = (source_cls or NdpSource)(sim, src, record, priority, initial_window)
    (sink_cls or NdpSink)(sim, dst, record, src, pacer, stats, source)
    stats.flow_started(record)
    sim.after(start_delay_ps, source.start)
    return source
