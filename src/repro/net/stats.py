"""Flow bookkeeping: completion times and delivered-throughput series."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.timing import PS_PER_S

__all__ = ["FlowRecord", "StatsCollector"]


@dataclass
class FlowRecord:
    """Lifecycle of one flow."""

    flow_id: int
    src_host: int
    dst_host: int
    size_bytes: int
    traffic_class: str
    start_ps: int
    end_ps: int | None = None
    delivered_bytes: int = 0
    retransmissions: int = 0

    @property
    def complete(self) -> bool:
        return self.end_ps is not None

    @property
    def fct_ps(self) -> int | None:
        if self.end_ps is None:
            return None
        return self.end_ps - self.start_ps


class StatsCollector:
    """Tracks flows, a binned goodput time series, and failure drops.

    Queue-overflow drops stay where they always were — on the per-port
    counters (``PortStats.dropped_control``/``dropped_bulk``/``trimmed``).
    The *failure* counters here are a separate ledger: packets absorbed by
    a blackholed component (a failed fiber, switch or ToR; see
    :mod:`repro.net.failures`) are never queue pressure, and conflating
    the two would make a failed link look like congestion.
    """

    def __init__(self, throughput_bin_ps: int = 1_000_000_000) -> None:
        self.flows: dict[int, FlowRecord] = {}
        self.throughput_bin_ps = throughput_bin_ps
        self._bins: dict[int, int] = {}
        #: Packets/bytes absorbed by failed components, by packet kind
        #: bucket ("bulk" / "ll_data" / "control").
        self.blackholed_packets: dict[str, int] = {}
        self.blackholed_bytes = 0
        #: Flows that lost at least one packet to a blackhole.
        self.affected_flows: set[int] = set()
        #: Flows the recovery layer gave up on (an endpoint's ToR died).
        self.unrecoverable_flows: set[int] = set()

    # ----------------------------------------------------------------- flows

    def flow_started(self, record: FlowRecord) -> FlowRecord:
        if record.flow_id in self.flows:
            raise ValueError(f"duplicate flow id {record.flow_id}")
        self.flows[record.flow_id] = record
        return record

    def delivered(self, flow_id: int, n_bytes: int, now_ps: int) -> None:
        record = self.flows[flow_id]
        record.delivered_bytes += n_bytes
        self._bins[now_ps // self.throughput_bin_ps] = (
            self._bins.get(now_ps // self.throughput_bin_ps, 0) + n_bytes
        )
        if record.delivered_bytes >= record.size_bytes and record.end_ps is None:
            record.end_ps = now_ps

    # --------------------------------------------------------------- failures

    def blackholed(self, flow_id: int, bucket: str, n_bytes: int) -> None:
        """Count one packet absorbed by a failed component."""
        self.blackholed_packets[bucket] = (
            self.blackholed_packets.get(bucket, 0) + 1
        )
        self.blackholed_bytes += n_bytes
        if flow_id in self.flows:
            self.affected_flows.add(flow_id)

    def total_blackholed_packets(self) -> int:
        return sum(self.blackholed_packets.values())

    def drop_causes(self, ports) -> dict[str, int]:
        """Every dropped packet attributed to exactly one cause.

        ``failure_blackhole`` is this collector's ledger; queue overflow
        and dark-circuit discards come from the per-port counters of
        ``ports`` (an iterable of :class:`~repro.net.link.Port`). The
        ledgers are disjoint by design (see the class docstring), so
        ``total`` is their straight sum — the invariant
        ``tests/test_obs.py`` pins across scheduler x kernel.
        """
        queue_overflow = 0
        undeliverable = 0
        for port in ports:
            stats = port.stats
            queue_overflow += stats.dropped_control + stats.dropped_bulk
            undeliverable += stats.undeliverable
        blackholed = self.total_blackholed_packets()
        return {
            "failure_blackhole": blackholed,
            "queue_overflow": queue_overflow,
            "undeliverable": undeliverable,
            "total": blackholed + queue_overflow + undeliverable,
        }

    def recovery_time_ps(self, failure_ps: int) -> int | None:
        """Time from the failure until every affected, recoverable flow
        completed — the tentpole's per-row recovery metric.

        ``None`` while any affected flow (not written off as
        unrecoverable) is still incomplete; ``0`` when nothing was hit.
        """
        pending = self.affected_flows - self.unrecoverable_flows
        if not pending:
            return 0
        worst = 0
        for flow_id in pending:
            record = self.flows[flow_id]
            if record.end_ps is None:
                return None
            worst = max(worst, record.end_ps - failure_ps)
        return max(0, worst)

    # ------------------------------------------------------------------ FCTs

    def completed_flows(self) -> list[FlowRecord]:
        return [f for f in self.flows.values() if f.complete]

    def completion_fraction(self) -> float:
        if not self.flows:
            return 1.0
        return len(self.completed_flows()) / len(self.flows)

    def fct_percentile_us(
        self,
        percentile: float,
        size_range: tuple[int, int] | None = None,
        traffic_class: str | None = None,
    ) -> float | None:
        """FCT percentile in microseconds over completed flows."""
        fcts = sorted(
            f.fct_ps
            for f in self.completed_flows()
            if (size_range is None or size_range[0] <= f.size_bytes < size_range[1])
            and (traffic_class is None or f.traffic_class == traffic_class)
        )
        if not fcts:
            return None
        if not 0 <= percentile <= 100:
            raise ValueError("percentile must be in [0, 100]")
        idx = min(len(fcts) - 1, max(0, math.ceil(percentile / 100 * len(fcts)) - 1))
        return fcts[idx] / 1e6

    def mean_fct_us(self, size_range: tuple[int, int] | None = None) -> float | None:
        fcts = [
            f.fct_ps
            for f in self.completed_flows()
            if size_range is None or size_range[0] <= f.size_bytes < size_range[1]
        ]
        if not fcts:
            return None
        return sum(fcts) / len(fcts) / 1e6

    # ------------------------------------------------------------ throughput

    def throughput_series(
        self, n_hosts: int, link_rate_bps: int = 10_000_000_000
    ) -> list[tuple[float, float]]:
        """``(time_ms, normalized goodput)`` per bin (Figure 8's y-axis)."""
        if not self._bins:
            return []
        aggregate = n_hosts * link_rate_bps
        out = []
        for index in range(max(self._bins) + 1):
            delivered = self._bins.get(index, 0)
            bits_per_s = delivered * 8 * PS_PER_S / self.throughput_bin_ps
            out.append(
                (
                    index * self.throughput_bin_ps / 1e9,
                    bits_per_s / aggregate,
                )
            )
        return out

    def total_delivered_bytes(self) -> int:
        return sum(f.delivered_bytes for f in self.flows.values())

    def delivered_bytes_between(self, start_ps: int, end_ps: int) -> int:
        """Payload bytes delivered in ``[start_ps, end_ps)`` (bin sums).

        Windows are snapped to whole throughput bins, so callers should
        align measurement windows to ``throughput_bin_ps`` (the dynamic
        failure scenario uses this to measure the goodput dip around an
        injected failure).
        """
        if end_ps <= start_ps:
            return 0
        first = start_ps // self.throughput_bin_ps
        last = (end_ps - 1) // self.throughput_bin_ps
        return sum(self._bins.get(i, 0) for i in range(first, last + 1))
