"""Packet model for the event simulator.

NDP's wire format distinguishes full data packets from *trimmed* headers
(payload cut at an overloaded queue, header forwarded at control priority so
the receiver learns of the loss immediately) and the control packets (ACK,
NACK, PULL) that drive the receiver-paced protocol. RotorLB bulk packets
carry their intended next-rack so a ToR can detect a missed slice.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["PacketKind", "Priority", "Packet", "HEADER_BYTES", "MTU_BYTES"]

HEADER_BYTES = 64
MTU_BYTES = 1500


class PacketKind(enum.Enum):
    DATA = "data"  # full payload (NDP or RotorLB)
    HEADER = "header"  # trimmed NDP data packet
    ACK = "ack"
    NACK = "nack"
    PULL = "pull"
    HELLO = "hello"  # failure-detection protocol (section 3.6.2)


class Priority(enum.IntEnum):
    """Queue service classes: lower value served first."""

    CONTROL = 0  # trimmed headers, ACK/NACK/PULL, hellos
    LOW_LATENCY = 1  # NDP data of latency-sensitive flows
    BULK = 2  # RotorLB data


@dataclass
class Packet:
    """One simulated packet. Mutable: hops/stamps update in flight."""

    flow_id: int
    kind: PacketKind
    src_host: int
    dst_host: int
    seq: int
    size_bytes: int
    priority: Priority
    #: Topology slice stamped at the first ToR (Opera low-latency routing).
    slice_stamp: int | None = None
    #: Per-packet salt for equal-cost path spraying.
    salt: int = 0
    #: ToR-to-ToR hops taken so far (TTL guard).
    hops: int = 0
    #: RotorLB: the rack this packet must reach on its next circuit hop.
    next_rack: int | None = None
    #: RotorLB: final destination rack when relaying via an intermediate.
    relay_to: int | None = None
    #: Filled by the sink for FCT accounting.
    enqueued_ps: int = 0

    def trim(self) -> None:
        """Cut the payload: the packet becomes a control-priority header."""
        if self.kind is not PacketKind.DATA:
            raise ValueError("only data packets can be trimmed")
        self.kind = PacketKind.HEADER
        self.size_bytes = HEADER_BYTES
        self.priority = Priority.CONTROL

    @property
    def is_control(self) -> bool:
        return self.priority is Priority.CONTROL
