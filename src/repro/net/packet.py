"""Packet model for the event simulator.

NDP's wire format distinguishes full data packets from *trimmed* headers
(payload cut at an overloaded queue, header forwarded at control priority so
the receiver learns of the loss immediately) and the control packets (ACK,
NACK, PULL) that drive the receiver-paced protocol. RotorLB bulk packets
carry their intended next-rack so a ToR can detect a missed slice.

Hot-path notes: a simulation allocates one :class:`Packet` per data MTU and
several control packets per delivery, so the class is ``__slots__``-only
(no per-instance dict) and both :class:`PacketKind` and :class:`Priority`
are ``IntEnum``\\ s — their members are ints on the wire-format hot path and
singletons, so the protocol code compares them with ``is``. Dead packets
are recycled through a free list (:func:`acquire` / :func:`release`) instead
of being re-allocated; endpoints must therefore not retain a packet object
after ``on_packet`` returns (see :class:`~repro.net.node.FlowEndpoint`).
"""

from __future__ import annotations

import enum

__all__ = [
    "PacketKind",
    "Priority",
    "Packet",
    "HEADER_BYTES",
    "MTU_BYTES",
    "acquire",
    "release",
]

HEADER_BYTES = 64
MTU_BYTES = 1500


class PacketKind(enum.IntEnum):
    DATA = 0  # full payload (NDP or RotorLB)
    HEADER = 1  # trimmed NDP data packet
    ACK = 2
    NACK = 3
    PULL = 4
    HELLO = 5  # failure-detection protocol (section 3.6.2)


class Priority(enum.IntEnum):
    """Queue service classes: lower value served first."""

    CONTROL = 0  # trimmed headers, ACK/NACK/PULL, hellos
    LOW_LATENCY = 1  # NDP data of latency-sensitive flows
    BULK = 2  # RotorLB data


_KIND_DATA = PacketKind.DATA
_KIND_HEADER = PacketKind.HEADER
_PRIO_CONTROL = Priority.CONTROL


class Packet:
    """One simulated packet. Mutable: hops/stamps update in flight."""

    __slots__ = (
        "flow_id",
        "kind",
        "src_host",
        "dst_host",
        "seq",
        "size_bytes",
        "priority",
        "slice_stamp",
        "salt",
        "hops",
        "next_rack",
        "relay_to",
        "enqueued_ps",
        "recv_args",
        "_pooled",
    )

    def __init__(
        self,
        flow_id: int,
        kind: PacketKind,
        src_host: int,
        dst_host: int,
        seq: int,
        size_bytes: int,
        priority: Priority,
        slice_stamp: int | None = None,
        salt: int = 0,
        hops: int = 0,
        next_rack: int | None = None,
        relay_to: int | None = None,
        enqueued_ps: int = 0,
    ) -> None:
        self.flow_id = flow_id
        self.kind = kind
        self.src_host = src_host
        self.dst_host = dst_host
        self.seq = seq
        self.size_bytes = size_bytes
        self.priority = priority
        #: Topology slice stamped at the first ToR (Opera low-latency routing).
        self.slice_stamp = slice_stamp
        #: Per-packet salt for equal-cost path spraying.
        self.salt = salt
        #: ToR-to-ToR hops taken so far (TTL guard).
        self.hops = hops
        #: RotorLB: the rack this packet must reach on its next circuit hop.
        self.next_rack = next_rack
        #: RotorLB: final destination rack when relaying via an intermediate.
        self.relay_to = relay_to
        #: Filled by the sink for FCT accounting.
        self.enqueued_ps = enqueued_ps
        #: Preconstructed ``(self,)`` args tuple for delivery events — the
        #: engine's zero-allocation dispatch path schedules
        #: ``(deliver, packet.recv_args)`` without packing a fresh tuple
        #: per hop. Identity-stable across free-list recycling.
        self.recv_args = (self,)
        self._pooled = False

    def trim(self) -> None:
        """Cut the payload: the packet becomes a control-priority header."""
        if self.kind is not _KIND_DATA:
            raise ValueError("only data packets can be trimmed")
        self.kind = _KIND_HEADER
        self.size_bytes = HEADER_BYTES
        self.priority = _PRIO_CONTROL

    @property
    def is_control(self) -> bool:
        return self.priority is _PRIO_CONTROL

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Packet(flow={self.flow_id}, kind={self.kind.name}, "
            f"seq={self.seq}, {self.src_host}->{self.dst_host}, "
            f"{self.size_bytes}B, prio={self.priority.name})"
        )


# ----------------------------------------------------------------- free list
#
# ACK/NACK/PULL/header churn dominates allocation in NDP-heavy runs: every
# delivered data packet spawns at least one control packet that dies at the
# far host one RTT later. The pool recycles those objects. All fields are
# reassigned on acquire, so a recycled packet carries no state over; the
# `_pooled` flag makes a double release a no-op rather than a corruption.

_POOL: list[Packet] = []
_POOL_MAX = 8192


def acquire(
    flow_id: int,
    kind: PacketKind,
    src_host: int,
    dst_host: int,
    seq: int,
    size_bytes: int,
    priority: Priority,
    slice_stamp: int | None = None,
    salt: int = 0,
    next_rack: int | None = None,
    relay_to: int | None = None,
) -> Packet:
    """A packet from the free list (or a fresh one), fully re-initialised."""
    pool = _POOL
    if pool:
        packet = pool.pop()
        packet._pooled = False
        packet.flow_id = flow_id
        packet.kind = kind
        packet.src_host = src_host
        packet.dst_host = dst_host
        packet.seq = seq
        packet.size_bytes = size_bytes
        packet.priority = priority
        packet.slice_stamp = slice_stamp
        packet.salt = salt
        packet.hops = 0
        packet.next_rack = next_rack
        packet.relay_to = relay_to
        packet.enqueued_ps = 0
        return packet
    return Packet(
        flow_id,
        kind,
        src_host,
        dst_host,
        seq,
        size_bytes,
        priority,
        slice_stamp=slice_stamp,
        salt=salt,
        next_rack=next_rack,
        relay_to=relay_to,
    )


def release(packet: Packet) -> None:
    """Return a dead packet to the free list (idempotent)."""
    if packet._pooled:
        return
    packet._pooled = True
    if len(_POOL) < _POOL_MAX:
        _POOL.append(packet)
