"""Live failure injection for the packet engine: fail, detect, reroute,
recover (paper sections 3.6.2 and 5.5, made dynamic).

The static fig11/fig18 analyses compute connectivity over a frozen
:class:`~repro.core.faults.FailureSet`; this module executes a
:class:`~repro.core.faults.FailureSchedule` *inside* a running
:class:`~repro.net.builders.OperaSimNetwork`, as ordinary simulator
events, through four mechanisms:

**Fail (blackholing).** A failed fiber/switch/ToR does not "drop" packets
at a queue — light simply stops arriving. Uplink resolvers consult the
*actual* (physical) failure state at wire-entry time and resolve dead
circuits to a per-rack :class:`~repro.net.node.Blackhole`; a dead ToR's
route closure absorbs its hosts' traffic the same way. Both engine
kernels call the same Python resolver/route closures per packet
(``REPRO_KERNEL=c`` reads ``Port.resolver`` per call and invokes the
route closure from its fused dispatch), so failure state needs no
kernel-specific plumbing and py/c stay bit-identical.

**Detect (hello propagation).** Routing reacts on a *detected* view that
lags the physical truth by the hello-protocol propagation delay, derived
per event from :func:`repro.core.hello.detection_delay_slices` and capped
at the paper's two-cycle bound. Until detection completes, stale routes
keep feeding the blackhole — exactly the paper's vulnerability window.

**Reroute.** At a detection epoch the injector swaps in an
:class:`~repro.core.routing.OperaRouting` built with the detected set,
clears every router's memoized next-hop options, and hands
``RotorLBAgent.failure_view`` the detected set so bulk stops offloading
onto known-dead circuits.

**Recover.** Blackholed RotorLB data is parked and re-queued at its
sending ToR one retry period later (the paper's NACK-and-retransmit at
ToR granularity); blackholed NDP packets feed :class:`NdpRecovery`, a
timeout clock that re-emits lost sequences (and replays lost PULLs) until
the sink has everything. Recovery events exist only when a loss actually
happened — an installed-but-empty schedule runs bitwise identically to an
uninstalled network (priced as ``faults_overhead`` in
``BENCH_engine.json``).
"""

from __future__ import annotations

import logging
from collections import deque
from typing import TYPE_CHECKING

from ..core.faults import FailureEvent, FailureSchedule, FailureSet
from ..core.hello import detection_delay_slices
from ..core.routing import OperaRouting
from .node import Blackhole
from .packet import Packet, PacketKind, Priority, release

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .builders import OperaSimNetwork

__all__ = ["FaultContext", "NdpRecovery", "FailureInjector"]

logger = logging.getLogger(__name__)

_DATA = PacketKind.DATA
_HEADER = PacketKind.HEADER
_PULL = PacketKind.PULL
_NACK = PacketKind.NACK
_BULK = Priority.BULK


def _event_delta(event: FailureEvent) -> FailureSet:
    """A single event's target as a one-element :class:`FailureSet`."""
    if event.component == "link":
        return FailureSet(links=frozenset([event.target]))  # type: ignore[list-item]
    if event.component == "rack":
        return FailureSet(racks=frozenset([event.target]))  # type: ignore[list-item]
    return FailureSet(switches=frozenset([event.target]))  # type: ignore[list-item]


def _apply_to_set(current: FailureSet, event: FailureEvent) -> FailureSet:
    """Fold one fail/repair event into a cumulative :class:`FailureSet`."""
    delta = _event_delta(event)
    if event.action == "fail":
        return current.union(delta)
    return FailureSet(
        links=current.links - delta.links,
        racks=current.racks - delta.racks,
        switches=current.switches - delta.switches,
    )


class FaultContext:
    """Mutable live failure state the hot-path closures consult.

    Two views, one object: the ``*_down`` sets are the *actual* physical
    truth (mutated in place at event time, so resolver closures can
    capture them as locals), ``detected``/``routing`` are what the
    network believes after hello propagation. ``any_down`` is the
    armed-but-empty fast-path guard: a single attribute read decides
    whether any per-packet failure checks run at all.
    """

    __slots__ = (
        "links_down",
        "racks_down",
        "switches_down",
        "any_down",
        "detected",
        "routing",
        "base_routing",
        "blackholes",
        "epoch",
        "slice_parks",
    )

    def __init__(self, base_routing: OperaRouting) -> None:
        self.links_down: set[tuple[int, int]] = set()
        self.racks_down: set[int] = set()
        self.switches_down: set[int] = set()
        self.any_down = False
        #: Detected failure set; None while nothing is known failed (the
        #: sentinel RotorLB agents use to skip filtering entirely).
        self.detected: FailureSet | None = None
        self.base_routing = base_routing
        self.routing = base_routing
        #: Per-rack blackhole nodes (filled by the injector before the
        #: failure-aware resolvers are built).
        self.blackholes: list[Blackhole] = []
        #: Bumped at every detection epoch (routing swap).
        self.epoch = 0
        #: Packets held at a ToR for one slice because the *detected*
        #: routing had no surviving path in the current slice (but does
        #: in another) — deferrals, not losses.
        self.slice_parks = 0

    def usable(self, rack_a: int, rack_b: int, switch: int) -> bool:
        """Physical liveness of the full a—switch—b circuit."""
        return not (
            switch in self.switches_down
            or rack_a in self.racks_down
            or rack_b in self.racks_down
            or (rack_a, switch) in self.links_down
            or (rack_b, switch) in self.links_down
        )

    def actual_set(self) -> FailureSet:
        """Frozen snapshot of the physical failure state."""
        return FailureSet(
            links=frozenset(self.links_down),
            racks=frozenset(self.racks_down),
            switches=frozenset(self.switches_down),
        )


class NdpRecovery:
    """Timeout clock for NDP packets swallowed by blackholes.

    Pure-timeout semantics: a loss noted at ``t`` is re-examined at
    ``t + timeout_ps``; if the sequence is still unacked the source
    re-emits it immediately (a retransmission blackholed again re-enters
    the clock, so sources keep probing until detection reroutes them).
    Lost PULLs are replayed at the source so receiver pacing cannot
    wedge. The clock holds at most one pending simulator event, and none
    at all while no losses are outstanding — which is what keeps
    armed-but-empty runs bitwise identical to uninstalled ones.
    """

    def __init__(self, net: "OperaSimNetwork", ctx: FaultContext, timeout_ps: int) -> None:
        self.sim = net.sim
        self.hosts = net.hosts
        self.stats = net.stats
        self.ctx = ctx
        self.timeout_ps = timeout_ps
        #: (due_ps, action, flow_id, seq, source_host) — append-only at a
        #: fixed timeout, so the deque stays time-ordered.
        self._pending: deque[tuple[int, str, int, int, int]] = deque()
        self._armed = False
        self._fire_cb = self._fire
        self.timeout_retransmits = 0
        self.replayed_pulls = 0

    def note_loss(self, packet: Packet) -> None:
        """Record a blackholed NDP packet (fields copied; caller releases)."""
        kind = packet.kind
        if kind is _DATA or kind is _HEADER:
            # Sink-bound payload/metadata: the source must re-emit seq.
            action, source_host = "rtx", packet.src_host
        elif kind is _PULL:
            # Source-bound pacing: replay the pull at the source.
            action, source_host = "pull", packet.dst_host
        elif kind is _NACK:
            # The sink asked for a retransmission that never arrived.
            action, source_host = "rtx", packet.dst_host
        else:
            # A lost ACK costs nothing: the sink's dedup set absorbs any
            # duplicate a later timeout might cause, and completion is
            # measured sink-side.
            return
        due = self.sim.now + self.timeout_ps
        self._pending.append((due, action, packet.flow_id, packet.seq, source_host))
        if not self._armed:
            self._armed = True
            self.sim.at(due, self._fire_cb)

    def _fire(self) -> None:
        now = self.sim.now
        pending = self._pending
        racks_down = self.ctx.racks_down
        while pending and pending[0][0] <= now:
            _due, action, flow_id, seq, source_host = pending.popleft()
            source = self.hosts[source_host].sources.get(flow_id)
            if source is None or source.record.complete:
                continue
            if flow_id in self.stats.unrecoverable_flows:
                # Already written off (dead endpoint ToR or an all-slice
                # partition): retrying would feed the blackhole and
                # re-enter this clock forever.
                continue
            record = source.record
            src_rack = self.hosts[record.src_host].rack
            dst_rack = self.hosts[record.dst_host].rack
            if src_rack in racks_down or dst_rack in racks_down:
                # An endpoint's ToR is physically dead: retrying would
                # only feed the blackhole. Written off (until a repair
                # event triggers fresh losses and a fresh attempt).
                self.stats.unrecoverable_flows.add(flow_id)
                continue
            if action == "pull":
                source.replay_pull()
                self.replayed_pulls += 1
            elif source.timeout_retransmit(seq):
                self.timeout_retransmits += 1
        if pending:
            self.sim.at(pending[0][0], self._fire_cb)
        else:
            self._armed = False


class FailureInjector:
    """Executes a :class:`FailureSchedule` against one Opera network.

    Built by :meth:`OperaSimNetwork.install_failures`; schedules two
    simulator events per failure event — the physical application at
    ``time_ps`` and the detection epoch after the hello propagation
    delay — plus recovery events on demand.
    """

    def __init__(
        self,
        net: "OperaSimNetwork",
        ctx: FaultContext,
        schedule: FailureSchedule,
        rtx_timeout_ps: int,
        bulk_retry_ps: int,
        detection_cap_cycles: int = 2,
    ) -> None:
        self.net = net
        self.ctx = ctx
        self.schedule = schedule
        self.bulk_retry_ps = bulk_retry_ps
        self.detection_cap_cycles = detection_cap_cycles
        self.ndp = NdpRecovery(net, ctx, rtx_timeout_ps)
        sim = net.sim
        ctx.blackholes = [
            Blackhole(sim, f"blackhole-rack{rack}", self._make_absorber(rack))
            for rack in range(net.network.n_racks)
        ]
        #: Flows whose payload was physically destroyed (relay queues of a
        #: dead ToR, parks at a dead ToR): unrecoverable forever, even if
        #: every component is later repaired — the bytes cannot be
        #: regenerated. The rest of ``stats.unrecoverable_flows`` is a
        #: *classification* rebuilt at every detection epoch.
        self._lost_data_flows: set[int] = set()
        #: Parked bulk packets awaiting ToR-granularity retransmission,
        #: as (parked_at_rack, packet).
        self._parked_bulk: list[tuple[int, Packet]] = []
        self._bulk_drain_armed = False
        #: (applied_at_ps, detected_at_ps, event) audit log.
        self.log: list[tuple[int, int, FailureEvent]] = []
        self._detect_ps: dict[FailureEvent, int] = {}
        self._install_host_overflow_retry()
        self._schedule_events()

    def _install_host_overflow_retry(self) -> None:
        """Retry bulk that overflows a ToR-to-host port queue.

        Fault-free RotorLB never overflows these ports (per-slice circuit
        budgets are sized to the host line rate), so they ship with no
        bulk-drop handler and an overflowed packet would simply be
        abandoned. Post-failure re-VLB convergence *can* burst several
        racks' stranded relay queues into one destination rack in the
        same slice; re-offering the packet to the ToR a slice later (the
        port has drained by then) is the ToR-granularity retransmission
        the paper's recovery story assumes. Installed only on armed
        networks, and the handler only runs on an overflow, so
        armed-but-empty runs schedule zero extra events.
        """
        net = self.net
        sim = net.sim
        slice_ps = net.slice_ps
        for host_id, port in net.host_ports.items():
            tor = net.tors[net.hosts[host_id].rack]

            def retry(packet: Packet, _deliver=tor.receive_cb) -> None:
                sim.after(slice_ps, _deliver, packet)

            port.on_bulk_drop = retry

    # ------------------------------------------------------------ scheduling

    def _schedule_events(self) -> None:
        """One actual-apply plus one detection event per schedule entry.

        Detection times are computed at install time by replaying the
        cumulative failure set through the hello protocol: the delay for
        an event is how long full knowledge of the *post-event* set takes
        to spread (clamped so detection lands within two cycles of the
        physical event, the paper's bound).
        """
        sim = self.net.sim
        sched = self.net.network.schedule
        slice_ps = self.net.slice_ps
        cap_slices = self.detection_cap_cycles * sched.cycle_slices
        cumulative = FailureSet.none()
        for event in self.schedule.events:
            cumulative = _apply_to_set(cumulative, event)
            delay = detection_delay_slices(
                sched, cumulative, cap_cycles=self.detection_cap_cycles
            )
            # >= 1 hello step, and landing no later than two full cycles
            # after the physical event (boundary alignment included).
            delay = max(1, min(delay, cap_slices - 1))
            boundary = (event.time_ps // slice_ps + 1) * slice_ps
            detect_ps = boundary + delay * slice_ps
            self._detect_ps[event] = detect_ps
            sim.at(event.time_ps, self._apply_actual, event)
            sim.at(detect_ps, self._apply_detected, event)
        logger.info(
            "installed %d failure event(s) (detection cap %d cycle(s))",
            len(self.schedule.events),
            self.detection_cap_cycles,
        )

    def detection_time_ps(self, event: FailureEvent) -> int:
        return self._detect_ps[event]

    # ---------------------------------------------------------- event phases

    def _apply_actual(self, event: FailureEvent) -> None:
        """The physical change: components die (or revive) *now*."""
        ctx = self.ctx
        target = event.target
        if event.component == "link":
            pool: set = ctx.links_down
        elif event.component == "rack":
            pool = ctx.racks_down
            agent = self.net.agents[target]  # type: ignore[index]
            agent.disabled = event.action == "fail"
            if event.action == "fail":
                self._lose_agent_relay_queues(agent)
        else:
            pool = ctx.switches_down
        if event.action == "fail":
            pool.add(target)
        else:
            pool.discard(target)
        ctx.any_down = bool(
            ctx.links_down or ctx.racks_down or ctx.switches_down
        )
        self.log.append((self.net.sim.now, self._detect_ps[event], event))
        logger.debug(
            "t=%dps %s %s %r (detection at t=%dps)",
            self.net.sim.now,
            event.action,
            event.component,
            event.target,
            self._detect_ps[event],
        )

    def _lose_agent_relay_queues(self, agent) -> None:
        """A ToR died with relayed bulk in its buffers: that data is gone.

        RotorLB as modelled has no end-to-end retransmission (senders
        materialize packets once), so bulk that had already been VLB'd
        *into* the now-dead ToR cannot be regenerated — the flows are
        classified unrecoverable rather than left wedged and unexplained.
        """
        stats = self.net.stats
        for queue in agent.relay_q.values():
            while queue:
                packet = queue.popleft()
                stats.blackholed(packet.flow_id, "bulk", packet.size_bytes)
                stats.unrecoverable_flows.add(packet.flow_id)
                self._lost_data_flows.add(packet.flow_id)
                release(packet)
        agent.relay_bytes.clear()

    def _apply_detected(self, event: FailureEvent) -> None:
        """Hello propagation completed: reroute on the detected view."""
        ctx = self.ctx
        detected = _apply_to_set(ctx.detected or FailureSet.none(), event)
        ctx.detected = None if detected.empty else detected
        ctx.routing = (
            ctx.base_routing
            if ctx.detected is None
            else OperaRouting(self.net.network.schedule, ctx.detected)
        )
        ctx.epoch += 1
        logger.debug(
            "t=%dps detected %s %s %r; routing epoch -> %d",
            self.net.sim.now,
            event.action,
            event.component,
            event.target,
            ctx.epoch,
        )
        for cache in self.net._hop_caches:
            cache.clear()
        self._refresh_agent_views()
        self._reclassify_unrecoverable()
        self._drain_parked_bulk()

    def _refresh_agent_views(self) -> None:
        """Push the detected view (and VLB forcing) to every ToR agent.

        A destination with no surviving direct circuit from some rack
        would strand that rack's relay queue forever; the forced set
        tells the agent's VLB phase to re-offload that traffic through a
        live peer instead. Detected-dead racks are excluded — traffic to
        them is unrecoverable, not misrouted.
        """
        view = self.ctx.detected
        n_racks = self.net.network.n_racks
        for agent in self.net.agents:
            agent.failure_view = view
            if view is None:
                agent.relay_vlb_dsts = frozenset()
                continue
            live: set[int] = set()
            for row in agent.active_by_slice or ():
                for switch, _port, peer in row:
                    if view.circuit_ok(agent.rack, peer, switch):
                        live.add(peer)
            agent.relay_vlb_dsts = (
                frozenset(range(n_racks)) - live - {agent.rack} - view.racks
            )

    def _reclassify_unrecoverable(self) -> None:
        """Rebuild the write-off classification on the epoch's knowledge.

        Two kinds of hopeless flow: an endpoint behind a detected-dead
        ToR, and a pair the detected routing cannot connect in *any*
        slice (e.g. a rack with every uplink failed — isolated but
        alive). Their queued bulk strands and their NDP retries would
        only feed the blackhole forever, so no timeout would ever
        classify them — do it here, at the epoch that learned why.

        The classification is rebuilt from scratch each epoch on top of
        the permanent data-loss core, so a repair event that restores
        reachability un-writes-off the survivors (their next loss or
        queued retry resumes the attempt); flows whose payload was
        physically destroyed stay unrecoverable.
        """
        stats = self.net.stats
        unrec = stats.unrecoverable_flows
        unrec.intersection_update(self._lost_data_flows)
        detected = self.ctx.detected
        if detected is None:
            return
        hpr = self.net.network.hosts_per_rack
        routing = self.ctx.routing
        reachable: dict[tuple[int, int], bool] = {}
        for record in stats.flows.values():
            if record.complete:
                continue
            src_rack = record.src_host // hpr
            dst_rack = record.dst_host // hpr
            if src_rack in detected.racks or dst_rack in detected.racks:
                unrec.add(record.flow_id)
                continue
            key = (src_rack, dst_rack)
            ok = reachable.get(key)
            if ok is None:
                ok = reachable[key] = routing.any_slice_reachable(
                    src_rack, dst_rack
                )
            if not ok:
                unrec.add(record.flow_id)

    # -------------------------------------------------------------- blackhole

    def _make_absorber(self, rack: int):
        stats = self.net.stats
        ndp = self.ndp

        def absorb(packet: Packet) -> None:
            if packet.priority is _BULK and packet.kind is _DATA:
                stats.blackholed(packet.flow_id, "bulk", packet.size_bytes)
                self._park_bulk(rack, packet)
                return  # parked: the packet object survives for requeue
            kind = packet.kind
            bucket = "ll_data" if (kind is _DATA or kind is _HEADER) else "control"
            stats.blackholed(packet.flow_id, bucket, packet.size_bytes)
            ndp.note_loss(packet)
            release(packet)

        return absorb

    def _park_bulk(self, rack: int, packet: Packet) -> None:
        self._parked_bulk.append((rack, packet))
        if not self._bulk_drain_armed:
            self._bulk_drain_armed = True
            self.net.sim.at(
                self.net.sim.now + self.bulk_retry_ps, self._drain_parked_bulk
            )

    def _drain_parked_bulk(self) -> None:
        """ToR-granularity bulk retransmission: requeue parked packets.

        Runs at every detection epoch and ``bulk_retry_ps`` after a park.
        A packet parked at a now-dead ToR is genuinely gone — its flow is
        written off as unrecoverable instead of resurrected.
        """
        self._bulk_drain_armed = False
        if not self._parked_bulk:
            return
        parked, self._parked_bulk = self._parked_bulk, []
        agents = self.net.agents
        racks_down = self.ctx.racks_down
        stats = self.net.stats
        for rack, packet in parked:
            if rack in racks_down:
                stats.unrecoverable_flows.add(packet.flow_id)
                self._lost_data_flows.add(packet.flow_id)
                release(packet)
                continue
            agents[rack].requeue(packet)
