"""RotorLB bulk transport (RotorNet [34], extended per paper section 4.2.2).

Bulk traffic is buffered at the edge until a direct circuit to the
destination rack appears. Each ToR runs a :class:`RotorLBAgent` that, at
every topology slice:

1. serves queued *relay* traffic for the racks now directly connected
   (second VLB hops have priority, as in RotorNet);
2. serves *local* flows destined to those racks, polling its hosts subject
   to per-host NIC budgets ("end hosts transmit when polled by their
   attached ToR", section 3.5);
3. with leftover circuit capacity, offers spare bandwidth for two-hop
   Valiant load balancing: local traffic for *other* racks is handed to the
   connected peer (if the peer has relay-queue headroom — the offer/accept
   handshake collapsed to an admission check), which later delivers it
   direct.

Bulk packets that miss their slice (e.g. delayed behind a burst of
priority-queued low-latency traffic) are either requeued by the agent or
— when they reach the wrong rack — absorbed as relay traffic there, which
models the paper's NACK-and-retransmit recovery at ToR granularity.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from .link import Port
from .node import Host
from .packet import HEADER_BYTES, MTU_BYTES, Packet, PacketKind, Priority, acquire
from .sim import Simulator
from .stats import FlowRecord, StatsCollector

__all__ = ["BulkFlow", "BulkSink", "RotorLBAgent"]


class BulkFlow:
    """Sender-side state of one bulk flow (packets materialize on poll)."""

    def __init__(self, record: FlowRecord, mtu: int = MTU_BYTES) -> None:
        self.record = record
        self.mtu = mtu
        self.payload_per_packet = mtu - HEADER_BYTES
        self.unsent_bytes = record.size_bytes
        self.next_seq = 0

    @property
    def exhausted(self) -> bool:
        return self.unsent_bytes <= 0

    def make_packet(self, next_rack: int, relay_to: int | None) -> Packet:
        payload = min(self.payload_per_packet, self.unsent_bytes)
        self.unsent_bytes -= payload
        seq = self.next_seq
        self.next_seq += 1
        return acquire(
            self.record.flow_id,
            PacketKind.DATA,
            self.record.src_host,
            self.record.dst_host,
            seq,
            HEADER_BYTES + payload,
            Priority.BULK,
            next_rack=next_rack,
            relay_to=relay_to,
        )


class BulkSink:
    """Receiver side: counts payload bytes into the stats collector."""

    def __init__(
        self, sim: Simulator, host: Host, record: FlowRecord, stats: StatsCollector
    ) -> None:
        self.sim = sim
        self.record = record
        self.stats = stats
        self._received: set[int] = set()
        host.sinks[record.flow_id] = self

    def on_packet(self, packet: Packet) -> None:
        if packet.kind is not PacketKind.DATA:
            return
        if packet.seq in self._received:
            return
        self._received.add(packet.seq)
        self.stats.delivered(
            self.record.flow_id, packet.size_bytes - HEADER_BYTES, self.sim.now
        )


class RotorLBAgent:
    """Per-ToR RotorLB state machine.

    Parameters
    ----------
    rack:
        This ToR's rack index.
    rack_of:
        Maps host id -> rack (to resolve packet destinations).
    uplink_peer:
        ``uplink_peer(switch, slice)`` gives the rack this uplink connects
        to during a slice, or ``None`` when the switch is down. Only the
        fallback when no ``active_by_slice`` table is supplied (the
        builders always supply one, so they omit this).
    uplinks:
        ``switch -> Port`` for this ToR's rotor-facing ports.
    slice_payload_bytes:
        Usable bytes per uplink per slice (duty cycle and guard applied by
        the builder).
    host_budget_bytes:
        Per-host NIC budget per slice (polled transmission).
    relay_cap_bytes:
        Per-destination relay queue cap: the admission bound of the VLB
        offer/accept exchange.
    hosts:
        This rack's host ids. When given, per-slice NIC budgets come from
        a precomputed template instead of a fresh comprehension per slice
        (and ``on_slice`` may be called without a hosts list).
    active_by_slice:
        Slice-boundary batching table: one row per cycle slice listing
        this ToR's live ``(switch, port, peer)`` circuits (builders derive
        it from :func:`repro.core.schedule.slice_activations`). With it,
        a slice boundary rotates every uplink's matching with plain list
        lookups — no schedule queries per port per slice.
    """

    def __init__(
        self,
        sim: Simulator,
        rack: int,
        rack_of: Callable[[int], int],
        uplinks: dict[int, Port],
        slice_payload_bytes: int,
        host_budget_bytes: int,
        relay_cap_bytes: int = 512_000,
        enable_vlb: bool = True,
        hosts: "list[int] | None" = None,
        active_by_slice: "list[list[tuple[int, Port, int]]] | None" = None,
        uplink_peer: "Callable[[int, int], int | None] | None" = None,
    ) -> None:
        self.sim = sim
        self.rack = rack
        self.rack_of = rack_of
        self.uplink_peer = uplink_peer
        self.uplinks = uplinks
        self.slice_payload_bytes = slice_payload_bytes
        self.host_budget_bytes = host_budget_bytes
        self.relay_cap_bytes = relay_cap_bytes
        self.enable_vlb = enable_vlb
        self.hosts = hosts
        self.active_by_slice = active_by_slice
        self._budget_template: dict[int, int] | None = (
            None if hosts is None else {h: host_budget_bytes for h in hosts}
        )
        #: dst rack -> sender flows with bytes left (FIFO round-robin).
        self.local_flows: dict[int, deque[BulkFlow]] = {}
        self.local_backlog: dict[int, int] = {}
        #: dst rack -> materialized packets awaiting a direct circuit.
        self.relay_q: dict[int, deque[Packet]] = {}
        self.relay_bytes: dict[int, int] = {}
        self._host_budget: dict[int, int] = {}
        self.peers: dict[int, "RotorLBAgent"] = {}  # rack -> agent (builder)
        self.requeues = 0
        self.vlb_bytes_sent = 0
        self.direct_bytes_sent = 0
        #: Set by the failure injector when this ToR itself dies: a dead
        #: ToR stops polling hosts and filling circuits immediately.
        self.disabled = False
        #: The *detected* failure set (None until detection completes or
        #: when nothing is known failed): once set, on_slice skips circuits
        #: the hello protocol has marked dead, so the agent stops
        #: offloading bulk onto blackholed links. Kept None for the empty
        #: set so the fault-free slice loop is untouched byte for byte.
        self.failure_view = None  # FailureSet | None
        #: Destination racks this ToR has *no* surviving direct circuit to
        #: (per the detected view; recomputed at every detection epoch by
        #: the failure injector). Relay traffic for these racks would
        #: strand forever waiting for a circuit that never comes, so the
        #: VLB phase re-offloads it through a live peer instead. Empty
        #: fault-free, so the normal VLB loop never looks at it.
        self.relay_vlb_dsts: frozenset = frozenset()

    # -------------------------------------------------------------- ingress

    def submit(self, flow: BulkFlow) -> None:
        """Register a local bulk flow (called at flow start time)."""
        dst_rack = self.rack_of(flow.record.dst_host)
        if dst_rack == self.rack:
            raise ValueError("rack-local bulk traffic never enters RotorLB")
        self.local_flows.setdefault(dst_rack, deque()).append(flow)
        self.local_backlog[dst_rack] = (
            self.local_backlog.get(dst_rack, 0) + flow.unsent_bytes
        )

    def accept_relay(self, packet: Packet) -> None:
        """Queue a VLB packet (or a mis-slotted direct one) for delivery."""
        dst_rack = self.rack_of(packet.dst_host)
        packet.relay_to = None
        packet.next_rack = None
        self.relay_q.setdefault(dst_rack, deque()).append(packet)
        self.relay_bytes[dst_rack] = (
            self.relay_bytes.get(dst_rack, 0) + packet.size_bytes
        )

    def relay_headroom(self, dst_rack: int) -> int:
        return self.relay_cap_bytes - self.relay_bytes.get(dst_rack, 0)

    def requeue(self, packet: Packet) -> None:
        """A packet that missed its circuit returns to the agent."""
        self.requeues += 1
        self.accept_relay(packet)

    # ------------------------------------------------------------- per slice

    def _pull_local_packet(
        self, dst_rack: int, next_rack: int, relay_to: int | None
    ) -> Packet | None:
        flows = self.local_flows.get(dst_rack)
        while flows:
            flow = flows[0]
            if flow.exhausted:
                flows.popleft()
                continue
            src = flow.record.src_host
            if self._host_budget.get(src, 0) <= 0:
                # This host's NIC is out of budget this slice; try the next
                # flow (round-robin across senders).
                flows.rotate(-1)
                if all(
                    self._host_budget.get(f.record.src_host, 0) <= 0
                    for f in flows
                ):
                    return None
                continue
            packet = flow.make_packet(next_rack, relay_to)
            payload = packet.size_bytes - HEADER_BYTES
            self._host_budget[src] = self._host_budget.get(src, 0) - payload
            self.local_backlog[dst_rack] -= payload
            if flow.exhausted:
                flows.popleft()
            else:
                flows.rotate(-1)  # round-robin across this rack's senders
            return packet
        return None

    def on_slice(self, slice_index: int, hosts: "list[int] | None" = None) -> None:
        """Fill this slice's circuits: relay, then local, then VLB.

        ``hosts`` may be omitted when the agent was built with its host
        list (the batched slice-boundary path); passing one overrides the
        precomputed budget template, preserving the legacy call shape.
        """
        if self.disabled:
            return  # a dead ToR polls nobody and fills nothing
        if hosts is not None:
            self._host_budget = {h: self.host_budget_bytes for h in hosts}
        else:
            template = self._budget_template
            assert template is not None, "agent built without hosts"
            self._host_budget = dict(template)
        active = self.active_by_slice
        if active is not None:
            pairs = active[slice_index % len(active)]
        else:
            peer_of = self.uplink_peer
            assert peer_of is not None, (
                "agent needs either active_by_slice or uplink_peer"
            )
            pairs = []
            for switch, port in self.uplinks.items():
                peer = peer_of(switch, slice_index)
                if peer is None or peer == self.rack:
                    continue
                pairs.append((switch, port, peer))
        view = self.failure_view
        if view is not None:
            # Known-failed circuits are skipped — the detected view, not
            # ground truth, so a just-failed link keeps eating traffic
            # until the hello protocol has propagated (<= 2 cycles).
            pairs = [
                (switch, port, peer)
                for switch, port, peer in pairs
                if view.circuit_ok(self.rack, peer, switch)
            ]
        spare: list[tuple[int, int, int]] = []  # (switch, peer, budget)
        for switch, port, peer in pairs:
            budget = self.slice_payload_bytes - port.queued_bytes(Priority.BULK)
            # Phase 1: relay traffic now one hop from its destination.
            queue = self.relay_q.get(peer)
            while budget > 0 and queue:
                packet = queue.popleft()
                self.relay_bytes[peer] -= packet.size_bytes
                packet.next_rack = peer
                budget -= packet.size_bytes
                self.direct_bytes_sent += packet.size_bytes
                port.enqueue(packet)
            # Phase 2: local direct traffic.
            while budget > 0:
                packet = self._pull_local_packet(peer, peer, None)
                if packet is None:
                    break
                budget -= packet.size_bytes
                self.direct_bytes_sent += packet.size_bytes
                port.enqueue(packet)
            if budget > 0:
                spare.append((switch, peer, budget))
        if self.enable_vlb:
            self._fill_vlb(spare)

    def _fill_vlb(self, spare: list[tuple[int, int, int]]) -> None:
        """Phase 3: ship skewed backlog two-hop through connected peers."""
        if self.relay_vlb_dsts:
            # Failure re-VLB: relay traffic whose every direct circuit is
            # dead takes a fresh intermediate hop through a live peer (the
            # peer absorbs it as relay and delivers — or re-offloads — from
            # there). This pass runs over EVERY spare circuit before the
            # local-backlog loop below, which early-returns the moment no
            # offloadable backlog remains — stranded relay must not depend
            # on which spare entry that happens at.
            for i, (_switch, peer, budget) in enumerate(spare):
                agent = self.peers.get(peer)
                if agent is None or agent.disabled:
                    continue
                budget = self._ship_forced_relay(
                    agent, self.uplinks[_switch], peer, budget
                )
                spare[i] = (_switch, peer, budget)
        for _switch, peer, budget in spare:
            agent = self.peers.get(peer)
            if agent is None or agent.disabled:
                continue
            port = self.uplinks[_switch]
            while budget > 0:
                backlogged = [
                    (dst, b)
                    for dst, b in self.local_backlog.items()
                    # Never offload toward a peer that itself has no live
                    # direct circuit to dst (empty fault-free): a chain of
                    # incapable intermediates ping-pongs the packet until
                    # the TTL guard silently eats it.
                    if b > 0 and dst != peer and dst not in agent.relay_vlb_dsts
                ]
                if not backlogged:
                    return
                dst = max(backlogged, key=lambda item: item[1])[0]
                if agent.relay_headroom(dst) < MTU_BYTES:
                    break
                packet = self._pull_local_packet(dst, peer, dst)
                if packet is None:
                    return
                budget -= packet.size_bytes
                self.vlb_bytes_sent += packet.size_bytes
                port.enqueue(packet)

    def _ship_forced_relay(
        self, agent: "RotorLBAgent", port: Port, peer: int, budget: int
    ) -> int:
        """Move stranded relay traffic one VLB hop toward a live peer."""
        for dst in sorted(self.relay_vlb_dsts):
            if dst == peer or dst in agent.relay_vlb_dsts:
                # Phase 1 handles peer-bound relay; and a peer that cannot
                # itself reach dst directly would just bounce the packet
                # back (until the TTL guard eats it) — hold for a capable
                # peer instead.
                continue
            queue = self.relay_q.get(dst)
            while budget > 0 and queue:
                if agent.relay_headroom(dst) < queue[0].size_bytes:
                    break
                packet = queue.popleft()
                self.relay_bytes[dst] -= packet.size_bytes
                packet.next_rack = peer
                budget -= packet.size_bytes
                self.vlb_bytes_sent += packet.size_bytes
                port.enqueue(packet)
            if budget <= 0:
                break
        return budget

    # ---------------------------------------------------------------- state

    def pending_bytes(self) -> int:
        return sum(self.local_backlog.values()) + sum(self.relay_bytes.values())
