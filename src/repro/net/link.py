"""Output-queued port model with priority queues and NDP trimming.

Each directed link is represented by its sender-side :class:`Port`:
per-priority FIFO queues, a serializer (one packet at a time at line rate)
and fixed propagation delay. The receive side is a *resolver* callback so
dynamic topologies (Opera's rotor circuits) can pick the far end at the
moment photons enter the fiber; static links resolve to a fixed node.

NDP's switch behaviour (Handley et al. [24]) is implemented here: when a
low-latency data packet arrives to a full data queue, its payload is
*trimmed* — the 64-byte header continues at control priority so the
receiver learns of the loss in well under an RTT. Control packets are
served with strict priority; bulk sits below low-latency data (section 4.2:
"NICs and ToRs each perform priority queuing").
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from ..core.timing import PS_PER_S
from .packet import HEADER_BYTES, Packet, PacketKind, Priority
from .sim import Simulator

__all__ = ["Port", "PortStats"]


class PortStats:
    """Counters for one port."""

    __slots__ = (
        "sent_packets",
        "sent_bytes",
        "trimmed",
        "dropped_control",
        "dropped_bulk",
        "undeliverable",
    )

    def __init__(self) -> None:
        self.sent_packets = 0
        self.sent_bytes = 0
        self.trimmed = 0
        self.dropped_control = 0
        self.dropped_bulk = 0
        self.undeliverable = 0


class Port:
    """Sender side of one directed link.

    Parameters
    ----------
    sim, name:
        Engine and a debug label.
    rate_bps, propagation_ps:
        Line rate and one-way fiber delay.
    resolver:
        ``resolver(packet, now_ps)`` returns the receiving node (anything
        with ``receive(packet)``) or ``None`` when the circuit is dark /
        mismatched; ``None`` routes the packet to ``on_undeliverable``.
    data_queue_bytes:
        NDP trim threshold for the low-latency data queue (12 KB in §4.2.1;
        an equal-sized header queue backs it).
    control_queue_bytes, bulk_queue_bytes:
        Capacities of the control/header and bulk queues.
    trimming:
        Disable to model plain drop-tail (non-NDP baselines).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        resolver: Callable[[Packet, int], object | None],
        rate_bps: int = 10_000_000_000,
        propagation_ps: int = 500_000,
        data_queue_bytes: int = 12_000,
        control_queue_bytes: int = 12_000,
        bulk_queue_bytes: int = 256_000,
        trimming: bool = True,
        on_undeliverable: Callable[[Packet], None] | None = None,
        on_bulk_drop: Callable[[Packet], None] | None = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.resolver = resolver
        self.rate_bps = rate_bps
        self.propagation_ps = propagation_ps
        self.data_queue_bytes = data_queue_bytes
        self.control_queue_bytes = control_queue_bytes
        self.bulk_queue_bytes = bulk_queue_bytes
        self.trimming = trimming
        self.on_undeliverable = on_undeliverable
        self.on_bulk_drop = on_bulk_drop
        self._queues: dict[Priority, deque[Packet]] = {
            Priority.CONTROL: deque(),
            Priority.LOW_LATENCY: deque(),
            Priority.BULK: deque(),
        }
        self._bytes = {p: 0 for p in Priority}
        self.busy = False
        self.stats = PortStats()

    # ----------------------------------------------------------------- queue

    def serialization_ps(self, size_bytes: int) -> int:
        return (size_bytes * 8 * PS_PER_S) // self.rate_bps

    def queued_bytes(self, priority: Priority | None = None) -> int:
        if priority is None:
            return sum(self._bytes.values())
        return self._bytes[priority]

    def enqueue(self, packet: Packet) -> bool:
        """Queue a packet for transmission; returns False if dropped."""
        if packet.priority is Priority.LOW_LATENCY and packet.kind is PacketKind.DATA:
            if self._bytes[Priority.LOW_LATENCY] + packet.size_bytes > self.data_queue_bytes:
                if not self.trimming:
                    return False  # drop-tail
                packet.trim()
                self.stats.trimmed += 1
        if packet.priority is Priority.CONTROL:
            if self._bytes[Priority.CONTROL] + packet.size_bytes > self.control_queue_bytes:
                self.stats.dropped_control += 1
                return False
        elif packet.priority is Priority.BULK:
            if self._bytes[Priority.BULK] + packet.size_bytes > self.bulk_queue_bytes:
                self.stats.dropped_bulk += 1
                if self.on_bulk_drop is not None:
                    self.on_bulk_drop(packet)
                return False
        packet.enqueued_ps = self.sim.now
        self._queues[packet.priority].append(packet)
        self._bytes[packet.priority] += packet.size_bytes
        if not self.busy:
            self._start_transmission()
        return True

    # ------------------------------------------------------------ serializer

    def _pop(self) -> Packet | None:
        for priority in Priority:
            queue = self._queues[priority]
            if queue:
                packet = queue.popleft()
                self._bytes[priority] -= packet.size_bytes
                return packet
        return None

    def _start_transmission(self) -> None:
        packet = self._pop()
        if packet is None:
            self.busy = False
            return
        self.busy = True
        # The far end is fixed the moment the first bit enters the fiber.
        target = self.resolver(packet, self.sim.now)
        self.sim.after(
            self.serialization_ps(packet.size_bytes),
            self._transmission_done,
            packet,
            target,
        )

    def _transmission_done(self, packet: Packet, target: object | None) -> None:
        self.stats.sent_packets += 1
        self.stats.sent_bytes += packet.size_bytes
        if target is None:
            self.stats.undeliverable += 1
            if self.on_undeliverable is not None:
                self.on_undeliverable(packet)
        else:
            self.sim.after(self.propagation_ps, target.receive, packet)  # type: ignore[attr-defined]
        self._start_transmission()
