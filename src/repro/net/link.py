"""Output-queued port model with priority queues and NDP trimming.

Each directed link is represented by its sender-side :class:`Port`:
per-priority FIFO queues, a serializer (one packet at a time at line rate)
and fixed propagation delay. The receive side is a *resolver* callback so
dynamic topologies (Opera's rotor circuits) can pick the far end at the
moment photons enter the fiber; static links resolve to a fixed node.

NDP's switch behaviour (Handley et al. [24]) is implemented here: when a
low-latency data packet arrives to a full data queue, its payload is
*trimmed* — the 64-byte header continues at control priority so the
receiver learns of the loss in well under an RTT. Control packets are
served with strict priority; bulk sits below low-latency data (section 4.2:
"NICs and ToRs each perform priority queuing").

Hot-path design (the engine's fast path — see README "Engine internals"):

* The three priority queues are three direct deque attributes with three
  byte counters — no ``dict[Priority, deque]`` hashing, no enum iteration.
* Serialization time is ``size * ps_per_byte`` with a precomputed
  picoseconds-per-byte constant whenever the line rate divides 8 bits/ps
  exactly (all power-of-ten rates do); the exact big-integer division is
  kept as a fallback.
* The serializer is clocked by ``_busy_until`` instead of one
  completion event per packet: a packet enqueued on an idle line starts
  (and schedules its *delivery*) immediately, with no intermediate
  transmission-done event; queued packets are started by a single pending
  *kick* event at the line-free time. Consecutive control packets are
  serialized back-to-back inside one kick — nothing can preempt the
  strict-priority control queue, so committing the whole burst at once is
  timing-identical to one event per packet
  (``tests/test_link_serializer.py`` pins this equivalence).
* Scheduling is allocation-free and coalescing-aware: deliveries are
  emitted as preconstructed ``(deliver, packet.recv_args)`` pairs (the
  receive callback is prebound per node, the args tuple lives on the
  packet), and a kick that commits a back-to-back burst collects the
  burst's deliveries (plus its own follow-up kick) into one reusable
  list handed to :meth:`Simulator.at_many
  <repro.net.sim.Simulator.at_many>` — with coalescing enabled
  (``Simulator(coalesce=True)``, the default) the burst becomes **one
  packet-train entry** in the scheduler instead of one entry per packet.
  With coalescing off the same call degenerates to the legacy
  one-push-per-event behaviour, bit-identically.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Callable

from ..core.timing import PS_PER_S
from .packet import HEADER_BYTES, Packet, PacketKind, Priority
from .sim import Simulator

__all__ = ["Port", "PortStats"]

_CONTROL = Priority.CONTROL
_LOW_LATENCY = Priority.LOW_LATENCY
_BULK = Priority.BULK
_DATA = PacketKind.DATA

#: Sentinel: a static target whose delivery callback is bound on first
#: use — builders install routers (and their fused dispatch closures)
#: after wiring ports, so binding at construction would capture the
#: unfused fallback.
_LAZY = object()


class PortStats:
    """Counters for one port."""

    __slots__ = (
        "sent_packets",
        "sent_bytes",
        "trimmed",
        "dropped_control",
        "dropped_bulk",
        "undeliverable",
    )

    def __init__(self) -> None:
        self.sent_packets = 0
        self.sent_bytes = 0
        self.trimmed = 0
        self.dropped_control = 0
        self.dropped_bulk = 0
        self.undeliverable = 0

    def counters(self) -> dict[str, int]:
        """All six counters as plain data (telemetry drain / summaries)."""
        return {
            "sent_packets": self.sent_packets,
            "sent_bytes": self.sent_bytes,
            "trimmed": self.trimmed,
            "dropped_control": self.dropped_control,
            "dropped_bulk": self.dropped_bulk,
            "undeliverable": self.undeliverable,
        }


class Port:
    """Sender side of one directed link.

    Parameters
    ----------
    sim, name:
        Engine and a debug label.
    rate_bps, propagation_ps:
        Line rate and one-way fiber delay.
    resolver:
        ``resolver(packet, now_ps)`` returns the receiving node (anything
        with ``receive(packet)``) or ``None`` when the circuit is dark /
        mismatched; ``None`` routes the packet to ``on_undeliverable``.
        A *static* link may instead pass ``target=<node>`` (and no
        resolver): the far end is then fixed for the port's lifetime and
        the per-packet resolver call is skipped entirely.
    data_queue_bytes:
        NDP trim threshold for the low-latency data queue (12 KB in §4.2.1;
        an equal-sized header queue backs it).
    control_queue_bytes, bulk_queue_bytes:
        Capacities of the control/header and bulk queues.
    trimming:
        Disable to model plain drop-tail (non-NDP baselines).
    """

    __slots__ = (
        "sim",
        "name",
        "resolver",
        "rate_bps",
        "propagation_ps",
        "data_queue_bytes",
        "control_queue_bytes",
        "bulk_queue_bytes",
        "trimming",
        "on_undeliverable",
        "on_bulk_drop",
        "stats",
        "_q_control",
        "_q_data",
        "_q_bulk",
        "_bytes_control",
        "_bytes_data",
        "_bytes_bulk",
        "_busy_until",
        "_kick_pending",
        "_ps_per_byte",
        "_target",
        "_committed_control",
        "_deliver",
        "_kick_cb",
        "_undeliv_cb",
        "_burst",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        resolver: Callable[[Packet, int], object | None] | None = None,
        rate_bps: int = 10_000_000_000,
        propagation_ps: int = 500_000,
        data_queue_bytes: int = 12_000,
        control_queue_bytes: int = 12_000,
        bulk_queue_bytes: int = 256_000,
        trimming: bool = True,
        on_undeliverable: Callable[[Packet], None] | None = None,
        on_bulk_drop: Callable[[Packet], None] | None = None,
        target: object | None = None,
    ) -> None:
        if (resolver is None) == (target is None):
            raise ValueError("exactly one of resolver/target must be given")
        self.sim = sim
        self.name = name
        self.resolver = resolver
        self._target = target
        self.rate_bps = rate_bps
        self.propagation_ps = propagation_ps
        self.data_queue_bytes = data_queue_bytes
        self.control_queue_bytes = control_queue_bytes
        self.bulk_queue_bytes = bulk_queue_bytes
        self.trimming = trimming
        self.on_undeliverable = on_undeliverable
        self.on_bulk_drop = on_bulk_drop
        self._q_control: deque[Packet] = deque()
        self._q_data: deque[Packet] = deque()
        self._q_bulk: deque[Packet] = deque()
        self._bytes_control = 0
        self._bytes_data = 0
        self._bytes_bulk = 0
        self._busy_until = 0
        self._kick_pending = False
        #: (start_ps, size) of control packets committed back-to-back but
        #: not yet on the wire: still *queued* for admission accounting.
        self._committed_control: deque[tuple[int, int]] = deque()
        # ps per byte, exact whenever the rate divides 8 bits per ps.
        per_byte, rem = divmod(8 * PS_PER_S, rate_bps)
        self._ps_per_byte = per_byte if rem == 0 else 0
        # Zero-allocation dispatch: the delivery callback for a static
        # target is bound exactly once, on first use (resolver ports bind
        # per packet, preferring the node's prebound ``receive_cb``), and
        # the port's own kick/undeliverable callbacks are prebound so
        # rescheduling never re-creates a bound method.
        self._deliver = None if target is None else _LAZY
        self._kick_cb = self._kick
        self._undeliv_cb = self._undeliverable
        #: Reusable buffer for back-to-back burst commits (``at_many``
        #: copies what it keeps, so the buffer never escapes).
        self._burst: list[tuple[int, Callable[..., None], tuple]] = []
        self.stats = PortStats()

    # ----------------------------------------------------------------- queue

    def serialization_ps(self, size_bytes: int) -> int:
        per_byte = self._ps_per_byte
        if per_byte:
            return size_bytes * per_byte
        return (size_bytes * 8 * PS_PER_S) // self.rate_bps

    def queued_bytes(self, priority: Priority | None = None) -> int:
        if self._committed_control:
            self._expire_committed(self.sim.now)
        if priority is None:
            return self._bytes_control + self._bytes_data + self._bytes_bulk
        if priority is _CONTROL:
            return self._bytes_control
        if priority is _LOW_LATENCY:
            return self._bytes_data
        return self._bytes_bulk

    def _expire_committed(self, now: int) -> None:
        """Release committed control bytes whose transmission has started.

        The back-to-back kick commits the whole control queue in one event
        but each packet only *leaves the queue* (stops occupying
        ``control_queue_bytes``) when its first bit enters the wire — the
        same instant the one-event-per-packet engine popped it. The ledger
        is settled lazily at every observation point, so admission checks
        and ``queued_bytes`` always see the occupancy an event-per-packet
        serializer would report.
        """
        committed = self._committed_control
        while committed and committed[0][0] <= now:
            self._bytes_control -= committed.popleft()[1]

    @property
    def busy(self) -> bool:
        """True while a packet is on the wire (serializer occupied)."""
        return self.sim.now < self._busy_until or self._kick_pending

    def enqueue(self, packet: Packet) -> bool:
        """Queue a packet for transmission; returns False if dropped."""
        priority = packet.priority
        size = packet.size_bytes
        if priority is _LOW_LATENCY and packet.kind is _DATA:
            if self._bytes_data + size > self.data_queue_bytes:
                if not self.trimming:
                    return False  # drop-tail
                packet.trim()
                self.stats.trimmed += 1
                priority = _CONTROL
                size = packet.size_bytes
        if priority is _CONTROL:
            if self._committed_control:
                self._expire_committed(self.sim.now)
            if self._bytes_control + size > self.control_queue_bytes:
                self.stats.dropped_control += 1
                return False
        elif priority is _BULK:
            if self._bytes_bulk + size > self.bulk_queue_bytes:
                self.stats.dropped_bulk += 1
                if self.on_bulk_drop is not None:
                    self.on_bulk_drop(packet)
                return False
        sim = self.sim
        now = sim.now
        packet.enqueued_ps = now
        if not self._kick_pending and self._busy_until <= now:
            # Idle line, empty queues: transmit without touching a queue.
            # This is the single hottest path in the engine (most packets
            # meet an idle serializer), so _transmit is inlined here.
            per_byte = self._ps_per_byte
            if per_byte:
                done = now + size * per_byte
            else:
                done = now + (size * 8 * PS_PER_S) // self.rate_bps
            self._busy_until = done
            stats = self.stats
            stats.sent_packets += 1
            stats.sent_bytes += size
            deliver = self._deliver
            if deliver is None:
                target = self.resolver(packet, now)
                if target is None:
                    sim.at(done, self._undeliv_cb, packet)
                    return True
                deliver = getattr(target, "receive_cb", None) or target.receive  # type: ignore[attr-defined]
            elif deliver is _LAZY:
                target = self._target
                deliver = self._deliver = (
                    getattr(target, "receive_cb", None) or target.receive  # type: ignore[attr-defined]
                )
            if sim._wheel is None:
                # Inlined sim.at fast path; the past-time guard holds by
                # construction (asserted, as sim.at would).
                assert done + self.propagation_ps >= sim.now
                sim._seq = seq = sim._seq + 1
                heappush(
                    sim._heap,
                    (done + self.propagation_ps, seq, deliver, packet.recv_args),
                )
            else:
                sim.at(done + self.propagation_ps, deliver, packet)
            return True
        if priority is _CONTROL:
            self._q_control.append(packet)
            self._bytes_control += size
        elif priority is _LOW_LATENCY:
            self._q_data.append(packet)
            self._bytes_data += size
        else:
            self._q_bulk.append(packet)
            self._bytes_bulk += size
        if not self._kick_pending:
            self._kick_pending = True
            sim.at(self._busy_until, self._kick_cb)
        return True

    # ------------------------------------------------------------ serializer

    def _transmit(
        self,
        packet: Packet,
        start_ps: int,
        out: "list[tuple[int, Callable[..., None], tuple]] | None" = None,
    ) -> int:
        """Put ``packet`` on the wire at ``start_ps``; returns line-free time.

        With ``out`` given (a burst being committed back-to-back), the
        delivery entry is appended there instead of being pushed — the
        caller hands the whole burst to ``sim.at_many`` in one call.
        """
        size = packet.size_bytes
        per_byte = self._ps_per_byte
        if per_byte:
            done = start_ps + size * per_byte
        else:
            done = start_ps + (size * 8 * PS_PER_S) // self.rate_bps
        self._busy_until = done
        stats = self.stats
        stats.sent_packets += 1
        stats.sent_bytes += size
        # The far end is fixed the moment the first bit enters the fiber.
        deliver = self._deliver
        sim = self.sim
        if deliver is None:
            target = self.resolver(packet, start_ps)
            if target is None:
                # Dark circuit: the loss is observed when the last bit
                # leaves, exactly when the old one-event-per-packet engine
                # reported it.
                if out is not None:
                    out.append((done, self._undeliv_cb, packet.recv_args))
                else:
                    sim.at(done, self._undeliv_cb, packet)
                return done
            deliver = getattr(target, "receive_cb", None) or target.receive  # type: ignore[attr-defined]
        elif deliver is _LAZY:
            target = self._target
            deliver = self._deliver = (
                getattr(target, "receive_cb", None) or target.receive  # type: ignore[attr-defined]
            )
        if out is not None:
            out.append((done + self.propagation_ps, deliver, packet.recv_args))
        elif sim._wheel is None:
            # Delivery is the engine's single hottest schedule call: push
            # straight onto the heap (sim.at minus one frame; the time is
            # computed from now + positive delays, never in the past —
            # asserted below, mirroring sim.at's guard).
            assert done + self.propagation_ps >= sim.now
            sim._seq = seq = sim._seq + 1
            heappush(
                sim._heap,
                (done + self.propagation_ps, seq, deliver, packet.recv_args),
            )
        else:
            sim.at(done + self.propagation_ps, deliver, packet)
        return done

    def _kick(self) -> None:
        """Start queued packets now that the line is free.

        The whole control queue is committed back-to-back in one event:
        control has strict priority and is FIFO within itself, so a control
        packet arriving while the burst drains would have queued behind it
        anyway — the commitment changes no timestamps. A burst's delivery
        entries (and the follow-up kick, when lower queues remain) are
        scheduled with one ``at_many`` call, which the coalescing engine
        turns into a single packet-train entry. Lower priorities start one
        packet per kick, because a later control arrival *is* allowed to
        jump ahead of a not-yet-started data/bulk packet.
        """
        self._kick_pending = False
        start = self.sim.now
        queue = self._q_control
        if queue:
            committed = self._committed_control
            if len(queue) > 1:
                # Packet train: collect the burst, bulk-schedule it once.
                burst = self._burst
                first = True
                while queue:
                    packet = queue.popleft()
                    if first:
                        # On the wire right now: out of the queue at once.
                        self._bytes_control -= packet.size_bytes
                        first = False
                    else:
                        # Committed but not started: keep its bytes in the
                        # admission ledger until its wire-entry time.
                        committed.append((start, packet.size_bytes))
                    start = self._transmit(packet, start, burst)
                if self._q_data or self._q_bulk:
                    self._kick_pending = True
                    burst.append((self._busy_until, self._kick_cb, ()))
                self.sim.at_many(burst)
                burst.clear()
                return
            packet = queue.popleft()
            self._bytes_control -= packet.size_bytes
            self._transmit(packet, start)
        elif self._q_data:
            packet = self._q_data.popleft()
            self._bytes_data -= packet.size_bytes
            self._transmit(packet, start)
        elif self._q_bulk:
            packet = self._q_bulk.popleft()
            self._bytes_bulk -= packet.size_bytes
            self._transmit(packet, start)
        else:  # pragma: no cover - kick is only scheduled with work queued
            return
        if self._q_control or self._q_data or self._q_bulk:
            self._kick_pending = True
            self.sim.at(self._busy_until, self._kick_cb)

    def _undeliverable(self, packet: Packet) -> None:
        self.stats.undeliverable += 1
        if self.on_undeliverable is not None:
            self.on_undeliverable(packet)
