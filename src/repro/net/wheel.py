"""Timing-wheel event scheduler (calendar queue with FIFO buckets).

An alternative to the binary heap inside :class:`~repro.net.sim.Simulator`,
selectable with ``Simulator(scheduler="wheel")``. The wheel hashes each
event's timestamp into a ring of fixed-width slots; events beyond the
current rotation wait in an overflow list and are redistributed when the
cursor wraps. Slots are plain FIFO lists that are sorted lazily — by
``(time_ps, sequence)`` — only when the cursor reaches them, so insertion
is O(1) and the dispatch order is *bit-identical* to the heap's
``(time_ps, sequence)`` order (``tests/test_schedulers.py`` pins this with
differential runs of full packet workloads).

Why keep both: the heap's push/pop is C-implemented and hard to beat from
pure Python at small pending-set sizes, but its cost grows O(log n) with
the pending-event count while the wheel's stays O(1); the engine
microbenchmark (``benchmarks/engine_microbench.py``) records both so the
crossover is measured, not guessed.

Invariants relied on (and guaranteed by the Simulator):

* pushes never go backwards in time — every ``push(t, ...)`` satisfies
  ``t >= floor`` where ``floor`` is the timestamp of the last popped event;
* sequence numbers are unique and monotonically increasing, so sorting a
  bucket never compares the (incomparable) callback elements of two
  entries.
"""

from __future__ import annotations

from bisect import insort
from operator import itemgetter
from typing import Any, Callable

__all__ = ["TimingWheel"]

#: Entry = (time_ps, sequence, callback, args) — identical to a heap entry.
_Entry = tuple[int, int, Callable[..., None], tuple[Any, ...]]

#: Ready-list insertions compare on the (time, seq) key only: a preempted
#: train re-pushed under its original sequence number can share (time,
#: seq) with its own already-consumed entry in the ready prefix, and a
#: full-tuple comparison would fall through to ordering the (unorderable)
#: callback objects.
_TIME_SEQ = itemgetter(0, 1)

#: Default slot width, ~1.05 us: comparable to one MTU serialization at
#: 10 Gb/s, so back-to-back packet events land in neighbouring slots.
DEFAULT_SLOT_PS = 1 << 20
#: Default ring size; with the default slot width one rotation spans
#: ~2.1 ms of simulated time.
DEFAULT_N_SLOTS = 1 << 11


class TimingWheel:
    """Single-level calendar queue with lazy-sorted FIFO buckets."""

    __slots__ = (
        "slot_ps",
        "n_slots",
        "horizon_ps",
        "_slots",
        "_overflow",
        "_base",
        "_cursor",
        "_ready",
        "_ready_pos",
        "_ready_active",
        "_count",
        "_floor",
    )

    def __init__(
        self, slot_ps: int = DEFAULT_SLOT_PS, n_slots: int = DEFAULT_N_SLOTS
    ) -> None:
        if slot_ps <= 0 or n_slots <= 0:
            raise ValueError("slot width and slot count must be positive")
        self.slot_ps = slot_ps
        self.n_slots = n_slots
        self.horizon_ps = slot_ps * n_slots
        self._slots: list[list[_Entry]] = [[] for _ in range(n_slots)]
        self._overflow: list[_Entry] = []
        self._base = 0  # absolute time of slot 0 in the current rotation
        self._cursor = 0  # slot currently being drained
        self._ready: list[_Entry] = []  # sorted front of the queue
        self._ready_pos = 0
        self._ready_active = False
        self._count = 0
        self._floor = 0  # time of the last popped entry

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------------ push

    def push(
        self, time_ps: int, seq: int, callback: Callable[..., None], args: tuple
    ) -> None:
        """Insert an entry; ``time_ps`` must be >= the last popped time."""
        entry = (time_ps, seq, callback, args)
        if self._count == 0:
            # Empty wheel: drop any fully-consumed ready list and re-anchor
            # the rotation at the dispatch floor so slot indices stay valid
            # for every future (>= floor) push.
            self._ready.clear()
            self._ready_pos = 0
            self._ready_active = False
            self._rebase_to(self._floor)
        self._count += 1
        base = self._base
        if time_ps >= base + self.horizon_ps:
            self._overflow.append(entry)
            return
        if self._ready_active and time_ps < base + (self._cursor + 1) * self.slot_ps:
            # Lands inside the slot currently being drained: merge into the
            # sorted ready list. The (time, seq) key of the new entry is >=
            # every consumed entry's (a re-pushed train ties its own
            # consumed entry at worst), so the insertion point is at or
            # after the consumed prefix.
            insort(self._ready, entry, key=_TIME_SEQ)
            return
        self._slots[(time_ps - base) // self.slot_ps].append(entry)

    def push_many(self, entries: "list[_Entry]") -> None:
        """Bulk insert full ``(time_ps, seq, callback, args)`` entries.

        Semantically a loop of :meth:`push`, but the rotation geometry and
        slot list are bound once, so bucketing a whole train of entries is
        one call instead of N — the bulk half of the engine's
        zero-allocation dispatch path (:meth:`Simulator.at_many
        <repro.net.sim.Simulator.at_many>`).
        """
        if not entries:
            return
        if self._count == 0:
            self._ready.clear()
            self._ready_pos = 0
            self._ready_active = False
            self._rebase_to(self._floor)
        self._count += len(entries)
        base = self._base
        slot_ps = self.slot_ps
        slots = self._slots
        overflow = self._overflow
        end = base + self.horizon_ps
        if self._ready_active:
            drain_end = base + (self._cursor + 1) * slot_ps
            ready = self._ready
            for entry in entries:
                time_ps = entry[0]
                if time_ps >= end:
                    overflow.append(entry)
                elif time_ps < drain_end:
                    insort(ready, entry, key=_TIME_SEQ)
                else:
                    slots[(time_ps - base) // slot_ps].append(entry)
        else:
            for entry in entries:
                time_ps = entry[0]
                if time_ps >= end:
                    overflow.append(entry)
                else:
                    slots[(time_ps - base) // slot_ps].append(entry)

    # ------------------------------------------------------------------- pop

    def peek_time(self) -> int | None:
        """Earliest pending timestamp, or ``None`` when empty."""
        entry = self._front()
        return None if entry is None else entry[0]

    def peek(self) -> _Entry | None:
        """The earliest pending entry itself, or ``None`` when empty."""
        return self._front()

    def pop(self) -> _Entry:
        """Remove and return the earliest entry (FIFO among equal times)."""
        entry = self._front()
        if entry is None:
            raise IndexError("pop from an empty TimingWheel")
        self._ready_pos += 1
        self._count -= 1
        self._floor = entry[0]
        return entry

    # -------------------------------------------------------------- internal

    def _front(self) -> _Entry | None:
        while True:
            if self._ready_pos < len(self._ready):
                return self._ready[self._ready_pos]
            if self._count == 0:
                return None
            if self._ready_active:
                # Finished draining the cursor slot; move past it.
                self._ready.clear()
                self._ready_pos = 0
                self._ready_active = False
                self._cursor += 1
            in_slots = self._count - len(self._overflow)
            if in_slots == 0:
                # Everything pending sits beyond this rotation: jump the
                # wheel to the rotation holding the earliest overflow entry.
                self._rebase_to(min(self._overflow)[0])
                continue
            slots = self._slots
            cursor = self._cursor
            n = self.n_slots
            while cursor < n and not slots[cursor]:
                cursor += 1
            if cursor == n:
                self._cursor = 0
                self._rebase(self._base + self.horizon_ps)
                continue
            self._cursor = cursor
            bucket = slots[cursor]
            bucket.sort()  # (time, seq) order; seq unique, so total
            self._ready = bucket
            slots[cursor] = []
            self._ready_pos = 0
            self._ready_active = True

    def _rebase_to(self, time_ps: int) -> None:
        """Re-anchor the rotation so that ``time_ps`` falls inside it."""
        self._cursor = 0
        self._rebase((time_ps // self.horizon_ps) * self.horizon_ps)

    def _rebase(self, new_base: int) -> None:
        """Advance the rotation window and pull matured overflow entries in."""
        self._base = new_base
        if not self._overflow:
            return
        end = new_base + self.horizon_ps
        slot_ps = self.slot_ps
        slots = self._slots
        keep: list[_Entry] = []
        for entry in self._overflow:
            if entry[0] < end:
                slots[(entry[0] - new_base) // slot_ps].append(entry)
            else:
                keep.append(entry)
        self._overflow = keep
