"""Discrete-event simulation engine (the htsim substitute's core).

Events are ``(time_ps, sequence, callback, args)`` entries dispatched in
``(time_ps, sequence)`` order. Time is integer picoseconds throughout —
1500 B at 10 Gb/s serializes in exactly 1,200,000 ps — so event ordering is
exact and runs are bit-for-bit reproducible. Ties break by scheduling
order.

Two interchangeable schedulers back the engine:

* ``"heap"`` (default) — a single binary heap (C-implemented ``heapq``);
* ``"wheel"`` — a :class:`~repro.net.wheel.TimingWheel` calendar queue with
  lazily-sorted FIFO buckets, O(1) insertion independent of the pending
  count.

Both produce bit-identical event order (``tests/test_schedulers.py`` runs
full packet workloads under each and compares every observable);
``benchmarks/engine_microbench.py`` measures their relative throughput.
Select per instance with ``Simulator(scheduler="wheel")`` or process-wide
with ``REPRO_SCHEDULER=wheel`` in the environment.

Event coalescing (packet trains)
--------------------------------

:meth:`Simulator.at_many` bulk-schedules a list of preconstructed
``(time_ps, callback, args)`` triples. With coalescing enabled (the
default; ``Simulator(coalesce=False)`` or ``REPRO_COALESCE=0`` disables),
runs of entries closer together than the coalescing gap are packed into a
single **train** entry in the scheduler instead of one entry each — the
serializer committing N back-to-back control packets schedules one
train-completion entry that delivers all N. When a train is popped its
elements dispatch from a tight inner loop, one ``self.now`` step per
element, until the train drains, the horizon or event budget cuts it, or
a pending entry *preempts* it (would dispatch before the next element
under the global ``(time, seq)`` order); a cut train is pushed back once
with its remaining elements.

Why this is invisible to the simulation (the coalescing invariant): the
entries of one ``at_many`` call occupy a *contiguous block* of sequence
numbers — the run loop is single-threaded, so nothing can interleave with
the block. Dispatch order is ``(time, seq)``; replacing a sub-block with
one train entry whose sequence number stands for the block preserves that
order exactly, because (a) within the block, elements dispatch in
(time, list-position) order — the stable sort in ``at_many`` makes that
identical to (time, seq) — and (b) every other entry's sequence number
lies entirely before or after the block, so each tie against a train
element resolves exactly as it would against the element's own sequence
number. The preemption check enforces (b) at dispatch time. Timestamps,
dispatch order, flow observables, ``events_processed`` and ``pending``
are all bit-identical to the uncoalesced path
(``tests/test_coalescing.py`` pins this differentially, per scheduler).

The gap threshold exists because a train only pays for itself when its
elements end up adjacent in the *global* dispatch order: with hundreds of
ports the event stream is dense, and elements separated by a propagation
delay almost always get preempted (the re-push then cancels the saving).
Back-to-back serializations — 51.2 ns per 64 B header at 10 Gb/s — are
the dense case worth coalescing; that is what the default gap captures.

``sched_pushes`` counts real scheduler insertions — the cost metric
``events_per_hop`` in ``BENCH_engine.json`` tracks — while
``events_processed`` keeps counting dispatched callbacks, identically
with coalescing on or off.
"""

from __future__ import annotations

import os
from heapq import heappop, heappush
from operator import itemgetter
from typing import Any, Callable

from .wheel import TimingWheel

__all__ = ["Simulator", "SCHEDULERS", "coalescing_default"]

#: Recognised scheduler names.
SCHEDULERS = ("heap", "wheel")

#: Sentinel callback marking a train entry; its ``args`` slot holds
#: ``(elements, pos)`` — a time-sorted list of ``(time_ps, callback,
#: args)`` triples and the index of the next element to dispatch.
_TRAIN = object()

_T0 = itemgetter(0)

#: Maximum gap between consecutive train elements, in ps: back-to-back
#: control-burst deliveries (51.2 ns apart) and same-timestamp groups
#: coalesce; entries separated by a propagation delay or more are pushed
#: singly. Override with ``REPRO_COALESCE_GAP_PS`` (0 = only exact ties
#: ride together; very large = coalesce whole bulk calls regardless of
#: spread).
DEFAULT_COALESCE_GAP_PS = 131_072


def coalescing_default() -> bool:
    """Process-wide coalescing default: ``REPRO_COALESCE=0`` disables."""
    return os.environ.get("REPRO_COALESCE", "") not in ("0", "false", "off")


def coalescing_gap_default() -> int:
    """Train gap-split threshold: ``REPRO_COALESCE_GAP_PS`` overrides."""
    raw = os.environ.get("REPRO_COALESCE_GAP_PS", "")
    if raw:
        return int(raw)
    return DEFAULT_COALESCE_GAP_PS


def _callback_name(callback: Callable[..., None]) -> str:
    name = getattr(callback, "__qualname__", None)
    if name is None:  # partials, odd callables
        name = repr(callback)
    return name


class Simulator:
    """Minimal deterministic event loop with a pluggable scheduler."""

    __slots__ = (
        "now",
        "scheduler",
        "coalesce",
        "_heap",
        "_wheel",
        "_seq",
        "_gap",
        "_train_extra",
        "events_processed",
        "trains_formed",
        "train_events",
        "train_repushes",
    )

    def __init__(
        self,
        scheduler: str | None = None,
        coalesce: bool | None = None,
        coalesce_gap_ps: int | None = None,
    ) -> None:
        if scheduler is None:
            scheduler = os.environ.get("REPRO_SCHEDULER", "") or "heap"
        if scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; known: {', '.join(SCHEDULERS)}"
            )
        if coalesce is None:
            coalesce = coalescing_default()
        self.now: int = 0
        self.scheduler = scheduler
        self.coalesce = bool(coalesce)
        self._heap: list[tuple[int, int, Callable[..., None], tuple[Any, ...]]] = []
        self._wheel: TimingWheel | None = (
            TimingWheel() if scheduler == "wheel" else None
        )
        self._seq = 0
        self._gap = (
            coalescing_gap_default() if coalesce_gap_ps is None else coalesce_gap_ps
        )
        # Pending train elements beyond each pending train entry's head
        # (keeps `pending` counting deliverable events, not entries).
        self._train_extra = 0
        #: Callbacks dispatched — identical with coalescing on or off.
        self.events_processed = 0
        self.trains_formed = 0
        self.train_events = 0
        self.train_repushes = 0

    @property
    def sched_pushes(self) -> int:
        """Scheduler insertions performed — the per-event-cost metric.

        Every sequence number allocated corresponds to exactly one pushed
        entry (a single event or a whole train); a preempted train is
        pushed again under its original number, so re-pushes are added on
        top. Derived, so the hot paths pay nothing to keep it.
        """
        return self._seq + self.train_repushes

    def counters(self) -> dict[str, int]:
        """Engine counters as plain data, for the telemetry drain.

        Every value is an integer the compiled kernel maintains through
        the same ``__slots__`` member descriptors the pure-Python engine
        writes, so ``REPRO_KERNEL=py`` and ``=c`` runs of the same
        workload report identical counters (``repro.obs.metrics`` relies
        on this for exact py/c snapshot agreement).
        """
        return {
            "events": self.events_processed,
            "sched_entries": self.sched_pushes,
            "trains": self.trains_formed,
            "train_events": self.train_events,
            "train_repushes": self.train_repushes,
            "pending": self.pending,
        }

    # ------------------------------------------------------------- scheduling

    def _past_error(self, time_ps: int, callback: Callable[..., None]) -> ValueError:
        return ValueError(
            f"cannot schedule {_callback_name(callback)} in the past "
            f"({time_ps} < now={self.now}; scheduler={self.scheduler!r})"
        )

    def at(self, time_ps: int, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` at absolute time ``time_ps``."""
        if time_ps < self.now:
            raise self._past_error(time_ps, callback)
        self._seq = seq = self._seq + 1
        if self._wheel is None:
            heappush(self._heap, (time_ps, seq, callback, args))
        else:
            self._wheel.push(time_ps, seq, callback, args)

    def after(self, delay_ps: int, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` after ``delay_ps``."""
        time_ps = self.now + delay_ps
        if time_ps < self.now:
            raise self._past_error(time_ps, callback)
        self._seq = seq = self._seq + 1
        if self._wheel is None:
            heappush(self._heap, (time_ps, seq, callback, args))
        else:
            self._wheel.push(time_ps, seq, callback, args)

    def at_many(
        self,
        entries: "list[tuple[int, Callable[..., None], tuple[Any, ...]]]",
    ) -> None:
        """Bulk-schedule preconstructed ``(time_ps, callback, args)`` triples.

        The zero-allocation dispatch path for hot callers: the caller
        builds (and may reuse) the triples and the list itself — nothing
        is re-packed per event here, and the engine copies what it keeps.
        Ties dispatch in list order, exactly as the equivalent sequence
        of :meth:`at` calls would. With coalescing enabled, runs of
        entries no further apart than the coalescing gap are packed into
        single train entries (see the module docstring); with it disabled
        this is exactly a loop of :meth:`at`.
        """
        n = len(entries)
        if n == 0:
            return
        now = self.now
        wheel = self._wheel
        if not self.coalesce or n == 1:
            if wheel is None:
                heap = self._heap
                seq = self._seq
                for entry in entries:
                    if entry[0] < now:
                        self._seq = seq
                        raise self._past_error(entry[0], entry[1])
                    seq += 1
                    heappush(heap, (entry[0], seq, entry[1], entry[2]))
                self._seq = seq
            else:
                seq = self._seq
                stamped = []
                for entry in entries:
                    if entry[0] < now:
                        raise self._past_error(entry[0], entry[1])
                    seq += 1
                    stamped.append((entry[0], seq, entry[1], entry[2]))
                wheel.push_many(stamped)
                self._seq = seq
            return
        # One pass validates and detects pre-sorted input (bursts mostly
        # are); only unsorted blocks pay for the stable sort.
        prev = entries[0][0]
        if prev < now:
            raise self._past_error(prev, entries[0][1])
        pre_sorted = True
        for entry in entries:
            t = entry[0]
            if t < now:
                raise self._past_error(t, entry[1])
            if t < prev:
                pre_sorted = False
            prev = t
        if pre_sorted:
            block = entries  # caller-owned; groups are sliced out below
            owned = False
        else:
            block = sorted(entries, key=_T0)  # stable: ties keep list order
            owned = True
        gap = self._gap
        heap = self._heap
        seq = self._seq
        start = 0
        prev_t = block[0][0]
        i = 1
        while True:
            if i < n:
                t = block[i][0]
                if t - prev_t <= gap:
                    prev_t = t
                    i += 1
                    continue
            seq += 1
            if i - start == 1:
                time_ps, callback, args = block[start]
                entry = (time_ps, seq, callback, args)
            else:
                if owned and (start, i) == (0, n):
                    group = block  # the sort already copied it
                else:
                    group = block[start:i]
                self._train_extra += i - start - 1
                self.trains_formed += 1
                entry = (group[0][0], seq, _TRAIN, (group, 0))
            if wheel is None:
                heappush(heap, entry)
            else:
                wheel.push(entry[0], entry[1], entry[2], entry[3])
            if i == n:
                break
            start = i
            prev_t = t
            i += 1
        self._seq = seq

    # ------------------------------------------------------------------- run

    def _run_train(
        self,
        seq: int,
        train: tuple,
        until_ps: int | None,
        budget: int | None,
    ) -> int:
        """Dispatch elements of a just-popped train; returns the count run.

        Runs elements in time order until the train drains, the horizon or
        ``budget`` (remaining ``max_events``) cuts it, or a pending entry
        preempts it — i.e. would dispatch before the next element under
        the global ``(time, seq)`` order. On a cut, the remainder is
        re-pushed once under the train's original sequence number, which
        preserves every tie-break exactly (see the module docstring).
        """
        elements, pos = train
        n = len(elements)
        heap = self._heap
        wheel = self._wheel
        count = 0
        while True:
            time_ps, callback, args = elements[pos]
            if count:
                # Settle the accounting per element, not per stint: the
                # popped entry already stopped counting (like any popped
                # event), and each further element leaves the "extra"
                # ledger as it dispatches — so a callback reading
                # `pending` mid-train sees exactly the uncoalesced count.
                self._train_extra -= 1
            self.now = time_ps
            callback(*args)
            pos += 1
            count += 1
            if pos == n:
                self.train_events += count
                return count
            t_next = elements[pos][0]
            if (until_ps is not None and t_next > until_ps) or (
                budget is not None and count >= budget
            ):
                break
            if wheel is None:
                if heap:
                    head = heap[0]
                    if head[0] < t_next or (head[0] == t_next and head[1] < seq):
                        break
            else:
                head = wheel.peek()
                if head is not None and (
                    head[0] < t_next or (head[0] == t_next and head[1] < seq)
                ):
                    break
        # Preempted or cut: the remainder rides the original entry again.
        # A single remaining element is downgraded to a plain entry — the
        # common case for short bursts, sparing the next pop the train
        # bookkeeping. (Same sequence number either way, so ordering is
        # untouched. Ledger: the per-element settlements above left
        # `remaining` on the books; the re-pushed entry accounts for
        # `remaining - 1` as a train or 0 as a single plain entry, and
        # its scheduler presence covers the difference — one more
        # settlement either way.)
        self._train_extra -= 1
        self.train_events += count
        self.train_repushes += 1
        if pos == n - 1:
            time_ps, callback, args = elements[pos]
            entry = (time_ps, seq, callback, args)
        else:
            entry = (elements[pos][0], seq, _TRAIN, (elements, pos))
        if wheel is None:
            heappush(heap, entry)
        else:
            wheel.push(entry[0], entry[1], entry[2], entry[3])
        return count

    def run(
        self, until_ps: int | None = None, max_events: int | None = None
    ) -> int:
        """Drain events until the horizon/queue is exhausted.

        Returns the number of events processed by this call. ``until_ps``
        is inclusive: events at exactly that time still run.

        Clock contract (relied on by pollers and the scenario runner; see
        ``tests/test_sim_engine.py``):

        * If the run goes idle before the horizon — the queue empties, or
          every remaining event lies beyond ``until_ps`` — the clock
          *advances to* ``until_ps`` even though no event ran there, so
          callers polling in fixed time chunks always make progress.
        * If ``max_events`` stops the run first, ``now`` deliberately stays
          at the last processed event's time, *behind* the horizon: the
          budget expiring says nothing about the interval up to
          ``until_ps`` being quiet, and jumping ahead would let a later
          ``at()`` target a time the clock had silently skipped. This
          includes the boundary case where the budget is exhausted on the
          very last pending event: ``now`` still does not advance, because
          the run cannot know the queue is quiet through ``until_ps``
          without spending another event's worth of budget to look.
          Both hold identically under both schedulers and with coalescing
          on or off (a budget can expire mid-train; the remainder resumes
          on the next call).
        """
        processed = 0
        wheel = self._wheel
        if wheel is None:
            heap = self._heap
            if max_events is None and until_ps is not None:
                # Hot path: drain to a horizon with no event budget.
                pop = heappop
                while heap and heap[0][0] <= until_ps:
                    time_ps, seq, callback, args = pop(heap)
                    if callback is _TRAIN:
                        processed += self._run_train(seq, args, until_ps, None)
                        continue
                    self.now = time_ps
                    callback(*args)
                    processed += 1
            else:
                while heap:
                    if until_ps is not None and heap[0][0] > until_ps:
                        break
                    if max_events is not None and processed >= max_events:
                        break
                    time_ps, seq, callback, args = heappop(heap)
                    if callback is _TRAIN:
                        processed += self._run_train(
                            seq,
                            args,
                            until_ps,
                            None if max_events is None else max_events - processed,
                        )
                        continue
                    self.now = time_ps
                    callback(*args)
                    processed += 1
            quiet = not heap or (until_ps is not None and heap[0][0] > until_ps)
        else:
            while True:
                head = wheel.peek_time()
                if head is None:
                    break
                if until_ps is not None and head > until_ps:
                    break
                if max_events is not None and processed >= max_events:
                    break
                time_ps, seq, callback, args = wheel.pop()
                if callback is _TRAIN:
                    processed += self._run_train(
                        seq,
                        args,
                        until_ps,
                        None if max_events is None else max_events - processed,
                    )
                    continue
                self.now = time_ps
                callback(*args)
                processed += 1
            head = wheel.peek_time()
            quiet = head is None or (until_ps is not None and head > until_ps)
        if (
            until_ps is not None
            and self.now < until_ps
            and quiet
            and (max_events is None or processed < max_events)
        ):
            # Idle until the horizon: advance the clock so callers polling
            # in fixed time chunks always make progress.
            self.now = until_ps
        self.events_processed += processed
        return processed

    @property
    def pending(self) -> int:
        """Deliverable events pending — counts every train element."""
        n = len(self._heap) if self._wheel is None else len(self._wheel)
        return n + self._train_extra
