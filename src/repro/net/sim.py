"""Discrete-event simulation engine (the htsim substitute's core).

A single binary heap of ``(time_ps, sequence, callback, args)`` entries.
Time is integer picoseconds throughout — 1500 B at 10 Gb/s serializes in
exactly 1,200,000 ps — so event ordering is exact and runs are bit-for-bit
reproducible. Ties break by scheduling order.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

__all__ = ["Simulator"]


class Simulator:
    """Minimal deterministic event loop."""

    __slots__ = ("now", "_heap", "_seq", "events_processed")

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[tuple[int, int, Callable[..., None], tuple[Any, ...]]] = []
        self._seq = 0
        self.events_processed = 0

    def at(self, time_ps: int, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` at absolute time ``time_ps``."""
        if time_ps < self.now:
            raise ValueError(
                f"cannot schedule in the past ({time_ps} < {self.now})"
            )
        self._seq += 1
        heapq.heappush(self._heap, (time_ps, self._seq, callback, args))

    def after(self, delay_ps: int, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` after ``delay_ps``."""
        self.at(self.now + delay_ps, callback, *args)

    def run(
        self, until_ps: int | None = None, max_events: int | None = None
    ) -> int:
        """Drain events until the horizon/heap is exhausted.

        Returns the number of events processed by this call. ``until_ps``
        is inclusive: events at exactly that time still run.

        Clock contract (relied on by pollers and the scenario runner; see
        ``tests/test_sim_engine.py``):

        * If the run goes idle before the horizon — the heap empties, or
          every remaining event lies beyond ``until_ps`` — the clock
          *advances to* ``until_ps`` even though no event ran there, so
          callers polling in fixed time chunks always make progress.
        * If ``max_events`` stops the run first, ``now`` deliberately stays
          at the last processed event's time, *behind* the horizon: the
          budget expiring says nothing about the interval up to
          ``until_ps`` being quiet, and jumping ahead would let a later
          ``at()`` target a time the clock had silently skipped. This
          includes the boundary case where the budget is exhausted on the
          very last pending event: ``now`` still does not advance, because
          the run cannot know the heap is quiet through ``until_ps``
          without spending another event's worth of budget to look.
        """
        processed = 0
        heap = self._heap
        while heap:
            if until_ps is not None and heap[0][0] > until_ps:
                break
            if max_events is not None and processed >= max_events:
                break
            time_ps, _seq, callback, args = heapq.heappop(heap)
            self.now = time_ps
            callback(*args)
            processed += 1
        if (
            until_ps is not None
            and self.now < until_ps
            and (not heap or heap[0][0] > until_ps)
            and (max_events is None or processed < max_events)
        ):
            # Idle until the horizon: advance the clock so callers polling
            # in fixed time chunks always make progress.
            self.now = until_ps
        self.events_processed += processed
        return processed

    @property
    def pending(self) -> int:
        return len(self._heap)
