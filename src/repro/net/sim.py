"""Discrete-event simulation engine (the htsim substitute's core).

Events are ``(time_ps, sequence, callback, args)`` entries dispatched in
``(time_ps, sequence)`` order. Time is integer picoseconds throughout —
1500 B at 10 Gb/s serializes in exactly 1,200,000 ps — so event ordering is
exact and runs are bit-for-bit reproducible. Ties break by scheduling
order.

Two interchangeable schedulers back the engine:

* ``"heap"`` (default) — a single binary heap (C-implemented ``heapq``);
* ``"wheel"`` — a :class:`~repro.net.wheel.TimingWheel` calendar queue with
  lazily-sorted FIFO buckets, O(1) insertion independent of the pending
  count.

Both produce bit-identical event order (``tests/test_schedulers.py`` runs
full packet workloads under each and compares every observable);
``benchmarks/engine_microbench.py`` measures their relative throughput.
Select per instance with ``Simulator(scheduler="wheel")`` or process-wide
with ``REPRO_SCHEDULER=wheel`` in the environment.
"""

from __future__ import annotations

import os
from heapq import heappop, heappush
from typing import Any, Callable

from .wheel import TimingWheel

__all__ = ["Simulator", "SCHEDULERS"]

#: Recognised scheduler names.
SCHEDULERS = ("heap", "wheel")


class Simulator:
    """Minimal deterministic event loop with a pluggable scheduler."""

    __slots__ = ("now", "scheduler", "_heap", "_wheel", "_seq", "events_processed")

    def __init__(self, scheduler: str | None = None) -> None:
        if scheduler is None:
            scheduler = os.environ.get("REPRO_SCHEDULER", "") or "heap"
        if scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; known: {', '.join(SCHEDULERS)}"
            )
        self.now: int = 0
        self.scheduler = scheduler
        self._heap: list[tuple[int, int, Callable[..., None], tuple[Any, ...]]] = []
        self._wheel: TimingWheel | None = (
            TimingWheel() if scheduler == "wheel" else None
        )
        self._seq = 0
        self.events_processed = 0

    def at(self, time_ps: int, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` at absolute time ``time_ps``."""
        if time_ps < self.now:
            raise ValueError(
                f"cannot schedule in the past ({time_ps} < {self.now})"
            )
        self._seq = seq = self._seq + 1
        if self._wheel is None:
            heappush(self._heap, (time_ps, seq, callback, args))
        else:
            self._wheel.push(time_ps, seq, callback, args)

    def after(self, delay_ps: int, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` after ``delay_ps``."""
        time_ps = self.now + delay_ps
        if time_ps < self.now:
            raise ValueError(
                f"cannot schedule in the past ({time_ps} < {self.now})"
            )
        self._seq = seq = self._seq + 1
        if self._wheel is None:
            heappush(self._heap, (time_ps, seq, callback, args))
        else:
            self._wheel.push(time_ps, seq, callback, args)

    def run(
        self, until_ps: int | None = None, max_events: int | None = None
    ) -> int:
        """Drain events until the horizon/queue is exhausted.

        Returns the number of events processed by this call. ``until_ps``
        is inclusive: events at exactly that time still run.

        Clock contract (relied on by pollers and the scenario runner; see
        ``tests/test_sim_engine.py``):

        * If the run goes idle before the horizon — the queue empties, or
          every remaining event lies beyond ``until_ps`` — the clock
          *advances to* ``until_ps`` even though no event ran there, so
          callers polling in fixed time chunks always make progress.
        * If ``max_events`` stops the run first, ``now`` deliberately stays
          at the last processed event's time, *behind* the horizon: the
          budget expiring says nothing about the interval up to
          ``until_ps`` being quiet, and jumping ahead would let a later
          ``at()`` target a time the clock had silently skipped. This
          includes the boundary case where the budget is exhausted on the
          very last pending event: ``now`` still does not advance, because
          the run cannot know the queue is quiet through ``until_ps``
          without spending another event's worth of budget to look.
        """
        processed = 0
        wheel = self._wheel
        if wheel is None:
            heap = self._heap
            if max_events is None and until_ps is not None:
                # Hot path: drain to a horizon with no event budget.
                pop = heappop
                while heap and heap[0][0] <= until_ps:
                    time_ps, _seq, callback, args = pop(heap)
                    self.now = time_ps
                    callback(*args)
                    processed += 1
            else:
                while heap:
                    if until_ps is not None and heap[0][0] > until_ps:
                        break
                    if max_events is not None and processed >= max_events:
                        break
                    time_ps, _seq, callback, args = heappop(heap)
                    self.now = time_ps
                    callback(*args)
                    processed += 1
            quiet = not heap or (until_ps is not None and heap[0][0] > until_ps)
        else:
            while True:
                head = wheel.peek_time()
                if head is None:
                    break
                if until_ps is not None and head > until_ps:
                    break
                if max_events is not None and processed >= max_events:
                    break
                time_ps, _seq, callback, args = wheel.pop()
                self.now = time_ps
                callback(*args)
                processed += 1
            head = wheel.peek_time()
            quiet = head is None or (until_ps is not None and head > until_ps)
        if (
            until_ps is not None
            and self.now < until_ps
            and quiet
            and (max_events is None or processed < max_events)
        ):
            # Idle until the horizon: advance the clock so callers polling
            # in fixed time chunks always make progress.
            self.now = until_ps
        self.events_processed += processed
        return processed

    @property
    def pending(self) -> int:
        if self._wheel is None:
            return len(self._heap)
        return len(self._wheel)
