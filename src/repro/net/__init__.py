"""Packet-level event simulator (htsim substitute) with NDP and RotorLB."""

from .builders import (
    ClosSimNetwork,
    ExpanderSimNetwork,
    OperaSimNetwork,
    RotorNetSimNetwork,
    SimNetwork,
)
from .link import Port
from .ndp import NdpSink, NdpSource, PullPacer, start_ndp_flow
from .node import CONSUMED, Host, SwitchNode
from .packet import HEADER_BYTES, MTU_BYTES, Packet, PacketKind, Priority
from .rotorlb import BulkFlow, BulkSink, RotorLBAgent
from .sim import Simulator
from .stats import FlowRecord, StatsCollector

__all__ = [
    "ClosSimNetwork",
    "ExpanderSimNetwork",
    "OperaSimNetwork",
    "RotorNetSimNetwork",
    "SimNetwork",
    "Port",
    "NdpSink",
    "NdpSource",
    "PullPacer",
    "start_ndp_flow",
    "CONSUMED",
    "Host",
    "SwitchNode",
    "HEADER_BYTES",
    "MTU_BYTES",
    "Packet",
    "PacketKind",
    "Priority",
    "BulkFlow",
    "BulkSink",
    "RotorLBAgent",
    "Simulator",
    "FlowRecord",
    "StatsCollector",
]
