"""Wire topologies into runnable packet-simulator networks.

Each builder produces a :class:`SimNetwork`: hosts with NICs and pull
pacers, switches with routers, and flow-starting helpers. The four networks
of the paper's evaluation are supported:

* :class:`OperaSimNetwork` — time-varying rotor circuits, slice-stamped
  expander routing for low-latency traffic, RotorLB for bulk;
* :class:`ExpanderSimNetwork` — static random-regular fabric, NDP sprayed
  over equal-cost shortest paths;
* :class:`ClosSimNetwork` — three-tier folded Clos, per-packet ECMP;
* :class:`RotorNetSimNetwork` — lockstep rotors with RotorLB; optionally
  *hybrid* with a separate packet fabric for low-latency traffic.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..core.forwarding import ForwardingPipeline, TrafficClass
from ..core.schedule import slice_activations
from ..core.timing import PS_PER_US
from ..core.topology import OperaNetwork
from ..topologies.expander import ExpanderTopology
from ..topologies.folded_clos import FoldedClos
from ..topologies.rotornet import RotorNetTopology
from .kernel import engine_classes
from .link import Port
from .ndp import PullPacer, start_ndp_flow
from .node import CONSUMED, Host, SwitchNode
from .packet import Packet, PacketKind, Priority, release
from .rotorlb import BulkFlow, BulkSink, RotorLBAgent
from .sim import Simulator
from .stats import FlowRecord, StatsCollector

__all__ = [
    "SimNetwork",
    "OperaSimNetwork",
    "ExpanderSimNetwork",
    "ClosSimNetwork",
    "RotorNetSimNetwork",
]

DEFAULT_RATE = 10_000_000_000
DEFAULT_PROP_PS = 500_000  # 500 ns =~ 100 m of fiber


class SimNetwork:
    """Common harness state: engine, hosts, stats, flow helpers.

    The engine classes (``Simulator``/``Port``/``Host``/``SwitchNode``)
    are resolved through the kernel seam at construction time
    (``REPRO_KERNEL``, see :mod:`repro.net.kernel`), the same way the
    scheduler and coalescing policies resolve per instance — so a
    network built under ``REPRO_KERNEL=c`` runs the compiled hot path
    while the pure-Python oracle stays one env var away.
    """

    def __init__(self, rate_bps: int = DEFAULT_RATE, prop_ps: int = DEFAULT_PROP_PS):
        self.kernel = engine_classes()
        self.sim = self.kernel.Simulator()
        self.stats = StatsCollector()
        self.rate_bps = rate_bps
        self.prop_ps = prop_ps
        self.hosts: list[Host] = []
        self.pacers: dict[int, PullPacer] = {}
        self._flow_id = 0

    # ------------------------------------------------------------- plumbing

    def _make_hosts(self, n_hosts: int, hosts_per_rack: int) -> None:
        for h in range(n_hosts):
            host = self.kernel.Host(self.sim, h, h // hosts_per_rack)
            self.hosts.append(host)
            self.pacers[h] = self.kernel.PullPacer(self.sim, host, self.rate_bps)

    def _wire_host(self, host: Host, tor: SwitchNode, **port_kwargs) -> None:
        host.nic = self.kernel.Port(
            self.sim,
            f"host{host.host_id}->tor{host.rack}",
            target=tor,
            rate_bps=self.rate_bps,
            propagation_ps=self.prop_ps,
            **port_kwargs,
        )

    def _host_port(self, tor_name: str, host: Host) -> Port:
        return self.kernel.Port(
            self.sim,
            f"{tor_name}->host{host.host_id}",
            target=host,
            rate_bps=self.rate_bps,
            propagation_ps=self.prop_ps,
        )

    def next_flow_id(self) -> int:
        self._flow_id += 1
        return self._flow_id

    # ----------------------------------------------------------------- flows

    def start_low_latency_flow(
        self, src: int, dst: int, size_bytes: int, start_ps: int = 0
    ) -> FlowRecord:
        record = FlowRecord(
            flow_id=self.next_flow_id(),
            src_host=src,
            dst_host=dst,
            size_bytes=size_bytes,
            traffic_class=TrafficClass.LOW_LATENCY.value,
            start_ps=start_ps,
        )
        start_ndp_flow(
            self.sim,
            self.hosts[src],
            self.hosts[dst],
            record,
            self.pacers[dst],
            self.stats,
            priority=Priority.LOW_LATENCY,
            start_delay_ps=max(0, start_ps - self.sim.now),
            source_cls=self.kernel.NdpSource,
            sink_cls=self.kernel.NdpSink,
        )
        return record

    def start_bulk_flow(
        self, src: int, dst: int, size_bytes: int, start_ps: int = 0
    ) -> FlowRecord:
        """Default: bulk rides NDP too (static networks have no circuits)."""
        record = FlowRecord(
            flow_id=self.next_flow_id(),
            src_host=src,
            dst_host=dst,
            size_bytes=size_bytes,
            traffic_class=TrafficClass.BULK.value,
            start_ps=start_ps,
        )
        start_ndp_flow(
            self.sim,
            self.hosts[src],
            self.hosts[dst],
            record,
            self.pacers[dst],
            self.stats,
            priority=Priority.LOW_LATENCY,
            start_delay_ps=max(0, start_ps - self.sim.now),
            source_cls=self.kernel.NdpSource,
            sink_cls=self.kernel.NdpSink,
        )
        return record

    def run(self, until_ps: int) -> None:
        self.sim.run(until_ps=until_ps)


# ---------------------------------------------------------------------------
# Opera
# ---------------------------------------------------------------------------


class OperaSimNetwork(SimNetwork):
    """Packet-level Opera: stamped expander routing + RotorLB circuits."""

    def __init__(
        self,
        network: OperaNetwork,
        rate_bps: int = DEFAULT_RATE,
        prop_ps: int = DEFAULT_PROP_PS,
        enable_vlb: bool = True,
    ) -> None:
        super().__init__(rate_bps, prop_ps)
        self.network = network
        self.pipeline = ForwardingPipeline.for_schedule(network.schedule)
        sched = network.schedule
        timing = network.timing
        self.slice_ps = timing.slice_ps
        self._cycle_slices = sched.cycle_slices
        #: Failure seam. ``_fault_cell`` is a one-slot box the install-once
        #: route closures capture: ``[None]`` fault-free, rebound to the
        #: live :class:`~repro.net.failures.FaultContext` by
        #: :meth:`install_failures` (state mutates; closures never do).
        self._fault_cell: list = [None]
        #: Every router's memoized next-hop table, so detection epochs can
        #: invalidate stale routes in one pass.
        self._hop_caches: list[dict] = []
        self.faults = None  # FailureInjector | None
        self._make_hosts(network.n_hosts, network.hosts_per_rack)

        self.tors: list[SwitchNode] = []
        self.host_ports: dict[int, Port] = {}
        self.uplink_ports: list[dict[int, Port]] = []
        self.agents: list[RotorLBAgent] = []

        slice_payload = (timing.slice_ps * rate_bps) // (8 * 1_000_000_000_000)
        slice_payload = int(slice_payload * timing.duty_cycle)
        host_budget = (timing.slice_ps * rate_bps) // (8 * 1_000_000_000_000)

        for rack in range(network.n_racks):
            tor = self.kernel.SwitchNode(self.sim, f"tor{rack}")
            self.tors.append(tor)
        for rack in range(network.n_racks):
            tor = self.tors[rack]
            for host_id in network.rack_hosts(rack):
                host = self.hosts[host_id]
                self._wire_host(host, tor)
                self.host_ports[host_id] = self._host_port(tor.name, host)
            uplinks: dict[int, Port] = {}
            for w in range(network.n_switches):
                uplinks[w] = self.kernel.Port(
                    self.sim,
                    f"tor{rack}-up{w}",
                    resolver=self._uplink_resolver(rack, w),
                    rate_bps=rate_bps,
                    propagation_ps=prop_ps,
                    on_undeliverable=self._make_dark_handler(rack),
                    on_bulk_drop=self._make_dark_handler(rack),
                )
            self.uplink_ports.append(uplinks)
            activations = slice_activations(sched, rack, network.n_switches)
            agent = RotorLBAgent(
                self.sim,
                rack,
                rack_of=lambda host, _d=network.hosts_per_rack: host // _d,
                uplinks=uplinks,
                slice_payload_bytes=slice_payload,
                host_budget_bytes=host_budget,
                enable_vlb=enable_vlb,
                hosts=list(network.rack_hosts(rack)),
                active_by_slice=[
                    [(w, uplinks[w], peer) for (w, peer) in row]
                    for row in activations
                ],
            )
            self.agents.append(agent)
            tor.router = self._make_router(rack, agent)
        for agent in self.agents:
            agent.peers = {r: self.agents[r] for r in range(network.n_racks)}
        self._schedule_slices()

    # ------------------------------------------------------------ time base

    def current_slice(self, now_ps: int | None = None) -> int:
        now = self.sim.now if now_ps is None else now_ps
        return (now // self.slice_ps) % self._cycle_slices

    def _in_reconfiguration_window(self, now_ps: int) -> bool:
        offset = now_ps % self.slice_ps
        return offset >= self.network.timing.epsilon_ps

    def _uplink_resolver(self, rack: int, switch: int, ctx=None):
        # Per-slice peer/down lookups are pure functions of the schedule;
        # precompute them once per port so the per-packet resolver is two
        # integer ops and a table index.
        sched = self.network.schedule
        cycle = sched.cycle_slices
        tors = self.tors
        peer_tor: list[SwitchNode | None] = []
        peer_rack: list[int] = []
        down: list[bool] = []
        for s in range(cycle):
            peer = sched.matching_of(switch, s)[rack]
            peer_tor.append(None if peer == rack else tors[peer])
            peer_rack.append(peer)
            down.append(sched.is_down(switch, s))
        slice_ps = self.slice_ps
        epsilon_ps = self.network.timing.epsilon_ps

        if ctx is None:

            def resolve(_packet: Packet, now_ps: int):
                s = (now_ps // slice_ps) % cycle
                if down[s] and now_ps % slice_ps >= epsilon_ps:
                    return None  # circuit dark while mirrors retarget
                return peer_tor[s]  # None on identity assignment: port idles

            return resolve

        # Failure-armed variant (swapped in by install_failures; ports read
        # ``resolver`` per packet in both kernels, so the swap is live).
        # The *actual* failure sets are captured as locals — the injector
        # mutates them in place — and a packet launched into a physically
        # dead circuit lands in this rack's blackhole: light simply stops
        # arriving, with none of the queue-drop recovery paths firing.
        links_down = ctx.links_down
        racks_down = ctx.racks_down
        switches_down = ctx.switches_down
        blackhole = ctx.blackholes[rack]

        def resolve_faulty(_packet: Packet, now_ps: int):
            s = (now_ps // slice_ps) % cycle
            if down[s] and now_ps % slice_ps >= epsilon_ps:
                return None
            peer = peer_tor[s]
            if peer is None:
                return None
            if ctx.any_down:
                pr = peer_rack[s]
                if (
                    switch in switches_down
                    or rack in racks_down
                    or pr in racks_down
                    or (rack, switch) in links_down
                    or (pr, switch) in links_down
                ):
                    return blackhole
            return peer

        return resolve_faulty

    def _make_dark_handler(self, rack: int):
        def handle(packet: Packet) -> None:
            if packet.priority is Priority.BULK and packet.kind is PacketKind.DATA:
                self.agents[rack].requeue(packet)
            elif packet.kind in (PacketKind.DATA, PacketKind.HEADER):
                # Low-latency packet caught by a reconfiguration: re-route
                # from this rack with a fresh stamp.
                packet.slice_stamp = None
                packet.hops += 1
                self.tors[rack].receive(packet)
            else:
                # Control packets caught mid-reconfiguration are simply
                # lost; NDP recovers via its pull clock.
                release(packet)

        return handle

    def _make_router(self, rack: int, agent: RotorLBAgent):
        routing = self.pipeline.routing
        hosts_per_rack = self.network.hosts_per_rack
        host_ports = self.host_ports
        slice_ps = self.slice_ps
        cycle = self._cycle_slices
        sim = self.sim
        _BULK = Priority.BULK
        _DATA = PacketKind.DATA
        # Failure seam: routers are install-once (ports cache the fused
        # dispatch closure), so dynamic failure state is read through this
        # one-slot box — [None] until install_failures arms it. Both
        # kernels invoke this same Python closure per packet.
        fault_cell = self._fault_cell
        # Equal-cost option lists are pure functions of (stamp, dst_rack);
        # memoize them per router so the per-packet cost is one dict hit.
        # Registered with the network: detection epochs clear it so the
        # next miss repopulates from the epoch's detected-failure routing.
        hop_cache: dict[tuple[int, int], list[tuple[int, int]]] = {}
        self._hop_caches.append(hop_cache)
        # dst_rack -> any-slice reachability under the epoch's detected
        # routing; cleared together with hop_cache at detection epochs.
        reach_cache: dict[int, bool] = {}
        self._hop_caches.append(reach_cache)

        def next_hop(dst_rack: int, stamp: int, salt: int):
            key = (stamp, dst_rack)
            options = hop_cache.get(key)
            if options is None:
                ctx = fault_cell[0]
                tables = routing if ctx is None else ctx.routing
                options = tables.routes(stamp).next_hops(rack, dst_rack)
                hop_cache[key] = options
            if not options:
                return None
            return options[salt % len(options)]

        def route(_switch: SwitchNode, packet: Packet):
            ctx = fault_cell[0]
            if ctx is not None and rack in ctx.racks_down:
                # This ToR is physically dead: everything it would have
                # switched — host-bound deliveries included — is lost.
                ctx.blackholes[rack].receive(packet)
                return CONSUMED
            dst_rack = packet.dst_host // hosts_per_rack
            if packet.priority is _BULK and packet.kind is _DATA:
                if dst_rack == rack:
                    return host_ports[packet.dst_host]
                # Bulk landing on a foreign rack: absorb as relay traffic
                # (a missed slice or an intentional VLB first hop).
                packet.hops += 1
                agent.accept_relay(packet)
                return CONSUMED
            if dst_rack == rack:
                return host_ports[packet.dst_host]
            stamp = packet.slice_stamp
            if stamp is None:
                stamp = packet.slice_stamp = (sim.now // slice_ps) % cycle
            hop = next_hop(dst_rack, stamp, packet.salt + packet.hops)
            if hop is None:
                # Stale stamp (e.g. rerouted packet): retry on current slice.
                stamp = packet.slice_stamp = (sim.now // slice_ps) % cycle
                hop = next_hop(dst_rack, stamp, packet.salt + packet.hops)
                if hop is None:
                    if ctx is not None and (
                        ctx.any_down or ctx.detected is not None
                    ):
                        if ctx.detected is not None:
                            reachable = reach_cache.get(dst_rack)
                            if reachable is None:
                                reachable = reach_cache[dst_rack] = (
                                    ctx.routing.any_slice_reachable(
                                        rack, dst_rack
                                    )
                                )
                            if reachable:
                                # The *updated* tables know this slice has
                                # no surviving path but a later one does:
                                # hold the packet at the ToR until the next
                                # slice boundary and re-route it there
                                # (hops unchanged — it waited in place).
                                # Bounded: within one cycle some slice
                                # offers a path.
                                ctx.slice_parks += 1
                                packet.slice_stamp = None
                                sim.at(
                                    (sim.now // slice_ps + 1) * slice_ps,
                                    _switch.receive,
                                    packet,
                                )
                                return CONSUMED
                        # Routeless because of failures with no surviving
                        # path in any slice (or not yet detected): the
                        # packet is failure-lost. Feed the blackhole so
                        # the recovery clock retries — its phase-shifted
                        # timeout lands the retransmission in a different
                        # slice, which may well have a path.
                        ctx.blackholes[rack].receive(packet)
                        return CONSUMED
                    return None
            packet.hops += 1
            return self.uplink_ports[rack][hop[1]]

        return route

    # -------------------------------------------------------------- RotorLB

    def _schedule_slices(self) -> None:
        # One reconfiguration event per (cycle, slice): a single
        # preconstructed callback rotates every rack's matchings through
        # the agents' precomputed activation tables — no per-port timers,
        # no per-slice allocations.
        agents = self.agents
        slice_ps = self.slice_ps
        cycle = self._cycle_slices
        sim = self.sim

        def on_slice_boundary() -> None:
            s = (sim.now // slice_ps) % cycle
            for agent in agents:
                agent.on_slice(s)
            sim.after(slice_ps, on_slice_boundary)

        sim.at(0, on_slice_boundary)

    # -------------------------------------------------------------- failures

    def install_failures(
        self,
        schedule,
        *,
        rtx_timeout_ps: int | None = None,
        bulk_retry_ps: int | None = None,
        detection_cap_cycles: int = 2,
    ):
        """Arm a :class:`~repro.core.faults.FailureSchedule` on this network.

        Must run before the first ``run()`` (routers are install-once and
        the injector replays hello-protocol detection delays from t=0).
        Swaps every uplink resolver for its failure-aware variant and arms
        the route closures through ``_fault_cell``; with an empty schedule
        the armed network is bitwise identical to an unarmed one (priced
        as ``faults_overhead`` in the engine microbench).

        ``rtx_timeout_ps`` is the NDP blackhole-timeout clock period; it
        defaults to one rotor cycle *plus one slice*: the cycle part
        upper-bounds any legitimate in-fabric delay (the clock never
        fires on a merely-slow packet), and the extra slice shifts each
        successive retry to a different slice phase — under failures some
        slices may have no surviving path to a destination, so a
        whole-cycle timeout would re-lose every retry in the same dead
        phase. ``bulk_retry_ps`` is the parked-bulk retry period
        (default one cycle: every direct circuit has rotated past by
        then).

        Returns the :class:`~repro.net.failures.FailureInjector`.
        """
        from .failures import FailureInjector, FaultContext

        if self.faults is not None:
            raise RuntimeError("failure schedule already installed")
        if self.sim.now != 0 or self.sim.events_processed != 0:
            raise RuntimeError(
                "install_failures must run on a pristine network: ports "
                "cache dispatch closures on first delivery, so arming "
                "mid-run would leave stale fault-free paths in place"
            )
        schedule.validate(self.network.n_racks, self.network.n_switches)
        cycle_ps = self._cycle_slices * self.slice_ps
        ctx = FaultContext(self.pipeline.routing)
        injector = FailureInjector(
            self,
            ctx,
            schedule,
            rtx_timeout_ps=(
                cycle_ps + self.slice_ps
                if rtx_timeout_ps is None
                else rtx_timeout_ps
            ),
            bulk_retry_ps=cycle_ps if bulk_retry_ps is None else bulk_retry_ps,
            detection_cap_cycles=detection_cap_cycles,
        )
        for rack, uplinks in enumerate(self.uplink_ports):
            for switch, port in uplinks.items():
                port.resolver = self._uplink_resolver(rack, switch, ctx)
        self._fault_cell[0] = ctx
        self.faults = injector
        return injector

    def start_bulk_flow(
        self, src: int, dst: int, size_bytes: int, start_ps: int = 0
    ) -> FlowRecord:
        record = FlowRecord(
            flow_id=self.next_flow_id(),
            src_host=src,
            dst_host=dst,
            size_bytes=size_bytes,
            traffic_class=TrafficClass.BULK.value,
            start_ps=start_ps,
        )
        self.stats.flow_started(record)
        BulkSink(self.sim, self.hosts[dst], record, self.stats)
        flow = BulkFlow(record)
        agent = self.agents[self.network.host_rack(src)]
        self.sim.at(max(start_ps, self.sim.now), lambda: agent.submit(flow))
        return record

# ---------------------------------------------------------------------------
# Static expander
# ---------------------------------------------------------------------------


class ExpanderSimNetwork(SimNetwork):
    """Static expander fabric: NDP over equal-cost shortest paths."""

    def __init__(
        self,
        topology: ExpanderTopology,
        rate_bps: int = DEFAULT_RATE,
        prop_ps: int = DEFAULT_PROP_PS,
    ) -> None:
        super().__init__(rate_bps, prop_ps)
        self.topology = topology
        self._make_hosts(topology.n_hosts, topology.hosts_per_rack)
        self.tors = [
            self.kernel.SwitchNode(self.sim, f"tor{r}") for r in range(topology.n_racks)
        ]
        self.host_ports: dict[int, Port] = {}
        self.uplink_ports: list[dict[int, Port]] = []
        for rack, tor in enumerate(self.tors):
            for host_id in range(
                rack * topology.hosts_per_rack, (rack + 1) * topology.hosts_per_rack
            ):
                host = self.hosts[host_id]
                self._wire_host(host, tor)
                self.host_ports[host_id] = self._host_port(tor.name, host)
            ports: dict[int, Port] = {}
            for peer, matching_idx in topology.adjacency[rack]:
                ports[matching_idx] = self.kernel.Port(
                    self.sim,
                    f"tor{rack}-m{matching_idx}",
                    target=self.tors[peer],
                    rate_bps=rate_bps,
                    propagation_ps=prop_ps,
                )
            self.uplink_ports.append(ports)
            tor.router = self._make_router(rack)

    def _make_router(self, rack: int):
        routes = self.topology.routes
        hosts_per_rack = self.topology.hosts_per_rack
        host_ports = self.host_ports
        uplinks = self.uplink_ports[rack]
        # Memoize the equal-cost option list per destination rack (the
        # static expander's tables never change).
        hop_cache: dict[int, list[tuple[int, int]]] = {}

        def route(_switch: SwitchNode, packet: Packet):
            dst_rack = packet.dst_host // hosts_per_rack
            if dst_rack == rack:
                return host_ports[packet.dst_host]
            options = hop_cache.get(dst_rack)
            if options is None:
                options = routes.next_hops(rack, dst_rack)
                hop_cache[dst_rack] = options
            if not options:
                return None
            hop = options[(packet.salt + packet.hops) % len(options)]
            packet.hops += 1
            return uplinks[hop[1]]

        return route


# ---------------------------------------------------------------------------
# Folded Clos
# ---------------------------------------------------------------------------


class ClosSimNetwork(SimNetwork):
    """Three-tier folded Clos with per-packet ECMP spraying."""

    def __init__(
        self,
        clos: FoldedClos,
        rate_bps: int = DEFAULT_RATE,
        prop_ps: int = DEFAULT_PROP_PS,
    ) -> None:
        super().__init__(rate_bps, prop_ps)
        self.clos = clos
        self._make_hosts(clos.n_hosts, clos.hosts_per_rack)
        self.tors = [
            self.kernel.SwitchNode(self.sim, f"tor{r}") for r in range(clos.n_racks)
        ]
        self.aggs = [
            self.kernel.SwitchNode(self.sim, f"agg{a}") for a in range(clos.n_aggs)
        ]
        self.cores = [
            self.kernel.SwitchNode(self.sim, f"core{c}") for c in range(clos.n_cores)
        ]
        self.host_ports: dict[int, Port] = {}

        def port_to(name: str, node: SwitchNode) -> Port:
            return self.kernel.Port(
                self.sim,
                name,
                target=node,
                rate_bps=rate_bps,
                propagation_ps=prop_ps,
            )

        self.tor_up: list[dict[int, Port]] = []
        self.agg_down: list[dict[int, Port]] = []
        self.agg_up: list[dict[int, Port]] = []
        self.core_down: list[dict[int, Port]] = []

        for rack, tor in enumerate(self.tors):
            for host_id in range(
                rack * clos.hosts_per_rack, (rack + 1) * clos.hosts_per_rack
            ):
                host = self.hosts[host_id]
                self._wire_host(host, tor)
                self.host_ports[host_id] = self._host_port(tor.name, host)
            self.tor_up.append(
                {
                    agg: port_to(f"tor{rack}->agg{agg}", self.aggs[agg])
                    for agg in clos.tor_agg_links(rack)
                }
            )
            tor.router = self._tor_router(rack)
        for agg_id, agg in enumerate(self.aggs):
            pod = agg_id // clos.aggs_per_pod
            self.agg_down.append(
                {
                    rack: port_to(f"agg{agg_id}->tor{rack}", self.tors[rack])
                    for rack in range(
                        pod * clos.tors_per_pod, (pod + 1) * clos.tors_per_pod
                    )
                }
            )
            self.agg_up.append(
                {
                    core: port_to(f"agg{agg_id}->core{core}", self.cores[core])
                    for core in clos.agg_core_links(agg_id)
                }
            )
            agg.router = self._agg_router(agg_id)
        for core_id, core in enumerate(self.cores):
            self.core_down.append(
                {
                    agg: port_to(f"core{core_id}->agg{agg}", self.aggs[agg])
                    for agg in clos.core_agg_links(core_id)
                }
            )
            core.router = self._core_router(core_id)

    def _tor_router(self, rack: int):
        clos = self.clos
        hosts_per_rack = clos.hosts_per_rack
        host_ports = self.host_ports
        tor_up = self.tor_up[rack]
        up_ports = [tor_up[agg] for agg in clos.tor_agg_links(rack)]
        n_up = len(up_ports)

        def route(_switch: SwitchNode, packet: Packet):
            dst_rack = packet.dst_host // hosts_per_rack
            if dst_rack == rack:
                return host_ports[packet.dst_host]
            port = up_ports[(packet.salt + packet.hops) % n_up]
            packet.hops += 1
            return port

        return route

    def _agg_router(self, agg_id: int):
        clos = self.clos
        pod = agg_id // clos.aggs_per_pod
        hosts_per_rack = clos.hosts_per_rack
        tors_per_pod = clos.tors_per_pod
        agg_down = self.agg_down[agg_id]
        agg_up = self.agg_up[agg_id]
        up_ports = [agg_up[core] for core in clos.agg_core_links(agg_id)]
        n_up = len(up_ports)

        def route(_switch: SwitchNode, packet: Packet):
            dst_rack = packet.dst_host // hosts_per_rack
            if dst_rack // tors_per_pod == pod:
                return agg_down[dst_rack]
            port = up_ports[(packet.salt + packet.hops) % n_up]
            packet.hops += 1
            return port

        return route

    def _core_router(self, core_id: int):
        clos = self.clos
        hosts_per_rack = clos.hosts_per_rack
        tors_per_pod = clos.tors_per_pod
        aggs_per_pod = clos.aggs_per_pod
        group = core_id // clos.cores_per_group
        core_down = self.core_down[core_id]

        def route(_switch: SwitchNode, packet: Packet):
            dst_pod = packet.dst_host // hosts_per_rack // tors_per_pod
            packet.hops += 1
            return core_down[dst_pod * aggs_per_pod + group]

        return route


# ---------------------------------------------------------------------------
# RotorNet
# ---------------------------------------------------------------------------


class RotorNetSimNetwork(SimNetwork):
    """Lockstep RotorNet with RotorLB; optional hybrid packet fabric."""

    def __init__(
        self,
        topology: RotorNetTopology,
        rate_bps: int = DEFAULT_RATE,
        prop_ps: int = DEFAULT_PROP_PS,
        slice_ps: int = 100 * PS_PER_US,
        reconfiguration_ps: int = 10 * PS_PER_US,
    ) -> None:
        super().__init__(rate_bps, prop_ps)
        self.topology = topology
        self.slice_ps = slice_ps
        self.reconfiguration_ps = reconfiguration_ps
        sched = topology.schedule
        self._make_hosts(topology.n_hosts, topology.hosts_per_rack)
        self.tors = [
            self.kernel.SwitchNode(self.sim, f"tor{r}") for r in range(topology.n_racks)
        ]
        self.host_ports: dict[int, Port] = {}
        self.uplink_ports: list[dict[int, Port]] = []
        self.agents: list[RotorLBAgent] = []
        self.fabric: SwitchNode | None = None
        self.fabric_up: list[Port] = []
        self.fabric_down: list[Port] = []

        usable = slice_ps - reconfiguration_ps
        slice_payload = (usable * rate_bps) // (8 * 1_000_000_000_000)
        host_budget = (slice_ps * rate_bps) // (8 * 1_000_000_000_000)

        if topology.hybrid:
            self.fabric = self.kernel.SwitchNode(self.sim, "pkt-fabric")
            self.fabric.router = self._fabric_router()

        for rack, tor in enumerate(self.tors):
            for host_id in range(
                rack * topology.hosts_per_rack,
                (rack + 1) * topology.hosts_per_rack,
            ):
                host = self.hosts[host_id]
                self._wire_host(host, tor)
                self.host_ports[host_id] = self._host_port(tor.name, host)
            ports: dict[int, Port] = {}
            for w in range(topology.n_rotor_switches):
                ports[w] = self.kernel.Port(
                    self.sim,
                    f"tor{rack}-rotor{w}",
                    resolver=self._rotor_resolver(rack, w),
                    rate_bps=rate_bps,
                    propagation_ps=prop_ps,
                    on_undeliverable=self._make_requeue(rack),
                    on_bulk_drop=self._make_requeue(rack),
                )
            self.uplink_ports.append(ports)
            if topology.hybrid:
                assert self.fabric is not None
                self.fabric_up.append(
                    self.kernel.Port(
                        self.sim,
                        f"tor{rack}->fabric",
                        target=self.fabric,
                        rate_bps=rate_bps,
                        propagation_ps=prop_ps,
                    )
                )
                self.fabric_down.append(
                    self.kernel.Port(
                        self.sim,
                        f"fabric->tor{rack}",
                        target=self.tors[rack],
                        rate_bps=rate_bps,
                        propagation_ps=prop_ps,
                    )
                )
            activations = slice_activations(sched, rack, topology.n_rotor_switches)
            agent = RotorLBAgent(
                self.sim,
                rack,
                rack_of=topology.host_rack,
                uplinks=ports,
                slice_payload_bytes=slice_payload,
                host_budget_bytes=host_budget,
                hosts=list(
                    range(
                        rack * topology.hosts_per_rack,
                        (rack + 1) * topology.hosts_per_rack,
                    )
                ),
                active_by_slice=[
                    [(w, ports[w], peer) for (w, peer) in row]
                    for row in activations
                ],
            )
            self.agents.append(agent)
            tor.router = self._make_router(rack, agent)
        for agent in self.agents:
            agent.peers = {r: self.agents[r] for r in range(topology.n_racks)}
        self._schedule_slices()

    def current_slice(self, now_ps: int | None = None) -> int:
        now = self.sim.now if now_ps is None else now_ps
        return (now // self.slice_ps) % self.topology.schedule.cycle_slices

    def _rotor_resolver(self, rack: int, switch: int):
        sched = self.topology.schedule
        cycle = sched.cycle_slices
        tors = self.tors
        peer_tor: list[SwitchNode | None] = []
        for s in range(cycle):
            peer = sched.matching_of(switch, s)[rack]
            peer_tor.append(None if peer == rack else tors[peer])
        slice_ps = self.slice_ps
        usable_ps = slice_ps - self.reconfiguration_ps

        def resolve(_packet: Packet, now_ps: int):
            # All rotors reconfigure in unison at each boundary: the fabric
            # is dark for the final r of every slice.
            if now_ps % slice_ps >= usable_ps:
                return None
            return peer_tor[(now_ps // slice_ps) % cycle]

        return resolve

    def _make_requeue(self, rack: int):
        def handle(packet: Packet) -> None:
            if packet.kind is PacketKind.DATA:
                self.agents[rack].requeue(packet)
            else:
                release(packet)

        return handle

    def _fabric_router(self):
        topology = self.topology

        def route(_switch: SwitchNode, packet: Packet):
            dst_rack = topology.host_rack(packet.dst_host)
            return self.fabric_down[dst_rack]

        return route

    def _make_router(self, rack: int, agent: RotorLBAgent):
        hosts_per_rack = self.topology.hosts_per_rack
        host_ports = self.host_ports
        hybrid = self.topology.hybrid
        fabric_up = self.fabric_up[rack] if hybrid else None
        _BULK = Priority.BULK
        _DATA = PacketKind.DATA

        def route(_switch: SwitchNode, packet: Packet):
            dst_rack = packet.dst_host // hosts_per_rack
            if packet.priority is _BULK and packet.kind is _DATA:
                if dst_rack == rack:
                    return host_ports[packet.dst_host]
                packet.hops += 1
                agent.accept_relay(packet)
                return CONSUMED
            if dst_rack == rack:
                return host_ports[packet.dst_host]
            if hybrid:
                packet.hops += 1
                return fabric_up
            # Non-hybrid RotorNet has no low-latency service: control and
            # "low-latency" data alike must wait in RotorLB queues, which is
            # exactly the paper's point (Figure 7c). They are treated as
            # bulk at the flow level; anything else is dropped here.
            return None

        return route

    def _schedule_slices(self) -> None:
        # Lockstep rotors: one reconfiguration event per slice rotates
        # every rack through its precomputed activation row (see the
        # Opera builder for the batching rationale).
        agents = self.agents
        slice_ps = self.slice_ps
        cycle = self.topology.schedule.cycle_slices
        sim = self.sim

        def on_slice_boundary() -> None:
            s = (sim.now // slice_ps) % cycle
            for agent in agents:
                agent.on_slice(s)
            sim.after(slice_ps, on_slice_boundary)

        sim.at(0, on_slice_boundary)

    def start_bulk_flow(
        self, src: int, dst: int, size_bytes: int, start_ps: int = 0
    ) -> FlowRecord:
        record = FlowRecord(
            flow_id=self.next_flow_id(),
            src_host=src,
            dst_host=dst,
            size_bytes=size_bytes,
            traffic_class=TrafficClass.BULK.value,
            start_ps=start_ps,
        )
        self.stats.flow_started(record)
        BulkSink(self.sim, self.hosts[dst], record, self.stats)
        flow = BulkFlow(record)
        agent = self.agents[self.topology.host_rack(src)]
        self.sim.at(max(start_ps, self.sim.now), lambda: agent.submit(flow))
        return record

    def start_low_latency_flow(
        self, src: int, dst: int, size_bytes: int, start_ps: int = 0
    ) -> FlowRecord:
        if self.topology.hybrid:
            return super().start_low_latency_flow(src, dst, size_bytes, start_ps)
        # Non-hybrid: low-latency flows ride the rotor fabric as bulk.
        return self.start_bulk_flow(src, dst, size_bytes, start_ps)
