"""Hosts and switches for the packet simulator."""

from __future__ import annotations

from typing import Callable, Protocol

from .link import Port
from .packet import Packet, PacketKind, release
from .sim import Simulator

__all__ = ["Host", "SwitchNode", "Blackhole", "FlowEndpoint", "MAX_HOPS", "CONSUMED"]

#: TTL guard: a packet bouncing more ToR hops than this is dropped.
MAX_HOPS = 32

#: Sentinel a router returns when it absorbed the packet itself (e.g. a
#: RotorLB agent queueing a relay packet) rather than forwarding it.
CONSUMED = object()

_DATA = PacketKind.DATA
_HEADER = PacketKind.HEADER


class FlowEndpoint(Protocol):
    """Transport endpoints attached to hosts implement this.

    ``on_packet`` must not retain (or re-send) the packet object after it
    returns: the host recycles delivered packets through the free list in
    :mod:`repro.net.packet`.
    """

    def on_packet(self, packet: Packet) -> None: ...


class Host:
    """An end host: one NIC port toward its ToR plus transport endpoints."""

    __slots__ = (
        "sim",
        "host_id",
        "rack",
        "nic",
        "sources",
        "sinks",
        "dropped",
        "receive_cb",
    )

    def __init__(self, sim: Simulator, host_id: int, rack: int) -> None:
        self.sim = sim
        self.host_id = host_id
        self.rack = rack
        self.nic: Port | None = None  # wired by the builder
        #: flow_id -> sender endpoint (receives ACK/NACK/PULL).
        self.sources: dict[int, FlowEndpoint] = {}
        #: flow_id -> receiver endpoint (receives DATA/HEADER).
        self.sinks: dict[int, FlowEndpoint] = {}
        self.dropped = 0
        #: ``self.receive`` bound once: ports schedule deliveries with this
        #: so the hot path never re-creates the bound method per packet.
        self.receive_cb = self.receive

    def send(self, packet: Packet) -> bool:
        assert self.nic is not None, "host NIC not wired"
        return self.nic.enqueue(packet)

    def receive(self, packet: Packet) -> None:
        kind = packet.kind
        if kind is _DATA or kind is _HEADER:
            endpoint = self.sinks.get(packet.flow_id)
        else:
            endpoint = self.sources.get(packet.flow_id)
        if endpoint is None:
            self.dropped += 1
        else:
            endpoint.on_packet(packet)
        # Packets die at hosts: recycle them for the next allocation.
        release(packet)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Host({self.host_id}, rack={self.rack})"


class SwitchNode:
    """A packet switch: routing is a pluggable callback.

    ``router(switch, packet)`` returns the egress :class:`Port`, or ``None``
    to drop (the drop is counted; transports recover via NDP trimming or
    RotorLB requeueing upstream).
    """

    __slots__ = ("sim", "name", "_router", "drops", "receive_cb")

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self._router: Callable[["SwitchNode", Packet], Port | None] | None = None
        self.drops = 0
        #: Prebound ``self.receive`` for zero-allocation delivery events;
        #: replaced by a fused dispatch closure when a router is installed.
        self.receive_cb = self.receive

    @property
    def router(self) -> Callable[["SwitchNode", Packet], Port | None] | None:
        return self._router

    @router.setter
    def router(self, route: Callable[["SwitchNode", Packet], Port | None]) -> None:
        # Installing a router also builds the fused delivery closure the
        # ports actually dispatch: the TTL guard, routing call and egress
        # enqueue in one flat function, with the router and switch bound
        # as locals — no attribute walk or assert per delivered packet.
        # ``receive`` keeps delegating to the same closure, so re-entrant
        # callers (e.g. reconfiguration handlers re-routing a caught
        # packet) observe identical semantics. Install-once: ports cache
        # the closure on first delivery (link.py's lazy ``_deliver``
        # bind), so swapping routers mid-run would leave already-used
        # ports routing through the stale closure — build a new network
        # to rewire instead. Anything that must *change* mid-run (live
        # failure state, routing epochs) therefore lives in mutable state
        # the installed closure consults per packet, never in a new
        # closure (see repro.net.failures; the compiled kernel calls the
        # same Python route closure, which is what keeps the kernels
        # bit-identical under dynamic failures).
        if self._router is not None:
            raise RuntimeError(
                f"{self.name}: router already installed; ports may have "
                "cached its dispatch closure — routers are install-once"
            )
        self._router = route
        switch = self

        def dispatch(packet: Packet, _route=route, _switch=switch) -> None:
            if packet.hops > MAX_HOPS:
                _switch.drops += 1
                release(packet)
                return
            port = _route(_switch, packet)
            if port is CONSUMED:
                return
            if port is None:
                _switch.drops += 1
                release(packet)
                return
            port.enqueue(packet)

        self.receive_cb = dispatch

    def receive(self, packet: Packet) -> None:
        receive_cb = self.receive_cb
        assert self._router is not None, f"{self.name}: no router installed"
        receive_cb(packet)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SwitchNode({self.name})"


class Blackhole:
    """A receive-only pseudo-node that absorbs every packet handed to it.

    Failed components resolve to one of these: a packet "delivered" into a
    blackhole is physically lost (the sender's resolver picked a dead fiber
    at wire-entry time, exactly like a dark-slice miss), and ``on_packet``
    decides its fate — count it, park it for ToR-granularity bulk
    retransmission, or feed the NDP timeout clock
    (:mod:`repro.net.failures`). Delivery dispatch is the same prebound
    ``receive_cb`` contract every node honours, so both engine kernels
    hand packets over identically.
    """

    __slots__ = ("sim", "name", "on_packet", "absorbed", "receive_cb")

    def __init__(
        self,
        sim: Simulator,
        name: str,
        on_packet: Callable[[Packet], None],
    ) -> None:
        self.sim = sim
        self.name = name
        self.on_packet = on_packet
        self.absorbed = 0
        self.receive_cb = self.receive

    def receive(self, packet: Packet) -> None:
        self.absorbed += 1
        self.on_packet(packet)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Blackhole({self.name})"
