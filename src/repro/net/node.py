"""Hosts and switches for the packet simulator."""

from __future__ import annotations

from typing import Callable, Protocol

from .link import Port
from .packet import Packet, PacketKind, release
from .sim import Simulator

__all__ = ["Host", "SwitchNode", "FlowEndpoint", "MAX_HOPS", "CONSUMED"]

#: TTL guard: a packet bouncing more ToR hops than this is dropped.
MAX_HOPS = 32

#: Sentinel a router returns when it absorbed the packet itself (e.g. a
#: RotorLB agent queueing a relay packet) rather than forwarding it.
CONSUMED = object()

_DATA = PacketKind.DATA
_HEADER = PacketKind.HEADER


class FlowEndpoint(Protocol):
    """Transport endpoints attached to hosts implement this.

    ``on_packet`` must not retain (or re-send) the packet object after it
    returns: the host recycles delivered packets through the free list in
    :mod:`repro.net.packet`.
    """

    def on_packet(self, packet: Packet) -> None: ...


class Host:
    """An end host: one NIC port toward its ToR plus transport endpoints."""

    __slots__ = ("sim", "host_id", "rack", "nic", "sources", "sinks", "dropped")

    def __init__(self, sim: Simulator, host_id: int, rack: int) -> None:
        self.sim = sim
        self.host_id = host_id
        self.rack = rack
        self.nic: Port | None = None  # wired by the builder
        #: flow_id -> sender endpoint (receives ACK/NACK/PULL).
        self.sources: dict[int, FlowEndpoint] = {}
        #: flow_id -> receiver endpoint (receives DATA/HEADER).
        self.sinks: dict[int, FlowEndpoint] = {}
        self.dropped = 0

    def send(self, packet: Packet) -> bool:
        assert self.nic is not None, "host NIC not wired"
        return self.nic.enqueue(packet)

    def receive(self, packet: Packet) -> None:
        kind = packet.kind
        if kind is _DATA or kind is _HEADER:
            endpoint = self.sinks.get(packet.flow_id)
        else:
            endpoint = self.sources.get(packet.flow_id)
        if endpoint is None:
            self.dropped += 1
        else:
            endpoint.on_packet(packet)
        # Packets die at hosts: recycle them for the next allocation.
        release(packet)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Host({self.host_id}, rack={self.rack})"


class SwitchNode:
    """A packet switch: routing is a pluggable callback.

    ``router(switch, packet)`` returns the egress :class:`Port`, or ``None``
    to drop (the drop is counted; transports recover via NDP trimming or
    RotorLB requeueing upstream).
    """

    __slots__ = ("sim", "name", "router", "drops")

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.router: Callable[["SwitchNode", Packet], Port | None] | None = None
        self.drops = 0

    def receive(self, packet: Packet) -> None:
        router = self.router
        assert router is not None, f"{self.name}: no router installed"
        if packet.hops > MAX_HOPS:
            self.drops += 1
            release(packet)
            return
        port = router(self, packet)
        if port is CONSUMED:
            return
        if port is None:
            self.drops += 1
            release(packet)
            return
        port.enqueue(packet)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SwitchNode({self.name})"
