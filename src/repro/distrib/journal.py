"""Write-ahead journal of a distributed run's lease grants/completions.

The cell cache already makes completed work durable — a restarted sweep
restores finished cells from disk. What the cache cannot record is the
*negative* space of a run: which units were granted and never completed
(a crashed coordinator's in-flight leases), which units were quarantined
as poison (their error documents are deliberately **not** cached), and
whether the previous coordinator died by injected crash. The journal is
an append-only JSONL file next to the cell cache capturing exactly that::

    <cache root>/_journal/<run key>.jsonl

one JSON object per line, ``{"ev": ...}``:

``start``       run begins: ``run`` key, ``units`` count.
``grant``       written *before* the lease frame is sent (write-ahead):
                ``jkey`` (the unit's cache key), ``uid``, ``worker``.
``complete``    a result document was accepted: ``jkey``, ``uid``, ``ok``.
``quarantine``  a unit was given up on: ``jkey``, ``label``, ``error``.
``crash``       the coordinator is going down on purpose
                (``crash_coordinator`` chaos); a resume run reads this
                and disarms the crash so the demo converges.
``end``         every unit accounted for; the journal is complete.

The run key hashes the ordered ``(scenario, canonical params)`` list of
the batch, so restarting the same command finds the same journal —
and a different sweep never reads another sweep's state. Loading
tolerates a torn final line (the coordinator may die mid-append; that is
the point) by skipping unparseable lines.
"""

from __future__ import annotations

import json
import logging
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = ["RunJournal", "JournalState", "journal_path", "load_journal"]

logger = logging.getLogger(__name__)

#: Subdirectory of the cache root holding journals. The leading underscore
#: keeps it out of the cache's per-scenario directory listing (stats, ls).
JOURNAL_DIR = "_journal"


def journal_path(cache_root: str | os.PathLike[str], run_key: str) -> Path:
    return Path(cache_root) / JOURNAL_DIR / f"{run_key}.jsonl"


@dataclass
class JournalState:
    """Decoded view of one journal file (see :func:`load_journal`)."""

    run_key: str | None = None
    units: int | None = None
    #: jkey -> worker that last held the lease (outstanding or completed).
    granted: dict[str, str] = field(default_factory=dict)
    #: jkeys whose result document was accepted (ok or error).
    completed: set[str] = field(default_factory=set)
    #: jkey -> {"label": ..., "error": ...} for units given up on.
    quarantined: dict[str, dict[str, str]] = field(default_factory=dict)
    crashed: bool = False
    ended: bool = False

    @property
    def outstanding(self) -> set[str]:
        """Granted but never completed nor quarantined — the in-flight
        leases a crash orphaned; the resume run re-executes these (or
        restores them from the cell cache if their results landed)."""
        return set(self.granted) - self.completed - set(self.quarantined)


def load_journal(path: str | os.PathLike[str]) -> JournalState | None:
    """Decode a journal, or ``None`` when absent/unreadable.

    Unparseable lines are skipped rather than fatal: the writer may have
    died mid-append (that is the scenario journals exist for), and a torn
    tail must not block the resume that needs the intact prefix.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
    except OSError:
        return None
    state = JournalState()
    seen_any = False
    torn = 0
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            torn += 1
            continue  # torn append
        if not isinstance(rec, dict):
            continue
        seen_any = True
        ev = rec.get("ev")
        if ev == "start":
            key = rec.get("run")
            if isinstance(key, str):
                state.run_key = key
            units = rec.get("units")
            if isinstance(units, int):
                state.units = units
        elif ev == "grant":
            jkey = rec.get("jkey")
            if isinstance(jkey, str):
                state.granted[jkey] = str(rec.get("worker", ""))
        elif ev == "complete":
            jkey = rec.get("jkey")
            if isinstance(jkey, str):
                state.completed.add(jkey)
        elif ev == "quarantine":
            jkey = rec.get("jkey")
            if isinstance(jkey, str):
                state.quarantined[jkey] = {
                    "label": str(rec.get("label", "")),
                    "error": str(rec.get("error", "")),
                }
        elif ev == "crash":
            state.crashed = True
        elif ev == "end":
            state.ended = True
        # Unknown events are ignored for forward compatibility.
    if torn:
        logger.debug("skipped %d torn line(s) in journal %s", torn, path)
    return state if seen_any else None


class RunJournal:
    """Append-only writer for one run's journal file.

    ``resume=False`` truncates any prior journal (a fresh run of the same
    batch starts a fresh history); ``resume=True`` appends, so the
    resumed run's grants/completions extend the crashed run's record.
    Records are flushed per append — a process crash loses at most the
    line being written, which :func:`load_journal` tolerates.
    """

    def __init__(self, path: str | os.PathLike[str], *, resume: bool = False) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a" if resume else "w", encoding="utf-8")
        self._warned = False

    def _record(self, ev: str, **fields: Any) -> None:
        if self._fh is None:
            return
        line = json.dumps({"ev": ev, **fields}, separators=(",", ":"))
        try:
            self._fh.write(line + "\n")
            self._fh.flush()
        except (OSError, ValueError):
            # A full disk must degrade journaling, not kill the sweep —
            # but say so once, or a crashed resume looks inexplicable.
            if not self._warned:
                self._warned = True
                logger.warning("journal write to %s failed; journaling disabled for this run", self.path)

    def start(self, run_key: str, units: int) -> None:
        self._record("start", run=run_key, units=units)

    def grant(self, jkey: str | None, uid: int, worker: str) -> None:
        if jkey:
            self._record("grant", jkey=jkey, uid=uid, worker=worker)

    def complete(self, jkey: str | None, uid: int, ok: bool) -> None:
        if jkey:
            self._record("complete", jkey=jkey, uid=uid, ok=ok)

    def quarantine(self, jkey: str | None, label: str, error: str) -> None:
        if jkey:
            self._record("quarantine", jkey=jkey, label=label, error=error)

    def crash(self, reason: str) -> None:
        self._record("crash", reason=reason)

    def end(self) -> None:
        self._record("end")

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
