"""Shared-secret authentication for the coordinator frame protocol.

Leaving trusted networks means the coordinator can no longer execute
whatever a TCP peer sends it. This module supplies the stdlib-only
challenge/response handshake both sides of protocol v2 speak:

1. The peer opens with ``hello`` (``proto`` >= 2, ``role``).
2. A coordinator holding a shared secret replies ``challenge`` with a
   fresh random ``nonce`` (one per connection, never reused).
3. The peer answers ``auth`` with ``mac = HMAC-SHA256(secret,
   nonce:role)`` (hex). The nonce binds the response to *this*
   connection — an eavesdropper replaying a captured ``auth`` frame on a
   new connection fails, because the new connection drew a new nonce —
   and the role binds it to worker-vs-client, so a sniffed client mac
   cannot be replayed to obtain leases.
4. The coordinator compares with :func:`hmac.compare_digest`
   (constant-time: a byte-wise early-exit compare would leak mac
   prefixes through timing) and replies ``welcome`` or ``error`` +
   disconnect.

Security model (documented in README "Running as a service"): the
handshake authenticates *connection establishment* against peers that do
not know the secret. It does **not** encrypt traffic, does not
authenticate individual frames after the handshake, and does not protect
against an active man-in-the-middle who can hijack an established TCP
stream — for those threats, run the frame protocol through a TLS tunnel
(stunnel, ssh -L, a service mesh). The secret travels through
``REPRO_SECRET`` or a ``--secret-file``; it is never written to journals,
traces, status snapshots or logs.
"""

from __future__ import annotations

import hmac
import hashlib
import os
import secrets
import socket
import threading
from pathlib import Path
from typing import Any

from . import chaos
from .protocol import ProtocolError, recv_msg, send_msg

__all__ = [
    "AuthError",
    "PROTO_VERSION",
    "load_secret",
    "new_nonce",
    "compute_mac",
    "verify_mac",
    "client_handshake",
]

# Re-exported so auth consumers need one import.
from .protocol import PROTO_VERSION

#: Environment variable holding the shared secret (text, stripped).
SECRET_ENV = "REPRO_SECRET"


class AuthError(RuntimeError):
    """Authentication required, failed, or refused by the peer.

    Deliberately *not* an ``OSError``: the worker's reconnect machinery
    retries transport failures, but a wrong secret will be wrong on the
    next dial too — retrying would be a reconnect storm against a
    coordinator that already said no.
    """


def load_secret(secret_file: str | os.PathLike[str] | None = None) -> bytes | None:
    """Resolve the shared secret: ``--secret-file`` wins over the env.

    The secret is text (one line, surrounding whitespace stripped so a
    trailing newline from ``echo`` or an editor does not silently change
    the key). Returns ``None`` when neither source is set — open mode,
    for loopback and trusted networks. An *empty* file or variable is an
    error, not open mode: an operator who provisioned a secret and got
    an empty string has a broken deployment, and failing open would be
    the worst possible response.
    """
    if secret_file is not None:
        try:
            text = Path(secret_file).read_text(encoding="utf-8")
        except OSError as exc:
            raise AuthError(f"cannot read secret file {secret_file!r}: {exc}") from None
        stripped = text.strip()
        if not stripped:
            raise AuthError(f"secret file {secret_file!r} is empty")
        return stripped.encode("utf-8")
    env = os.environ.get(SECRET_ENV)
    if env is None:
        return None
    stripped = env.strip()
    if not stripped:
        raise AuthError(f"{SECRET_ENV} is set but empty")
    return stripped.encode("utf-8")


def new_nonce() -> str:
    """A fresh per-connection challenge nonce (128 bits, hex)."""
    return secrets.token_hex(16)


def compute_mac(secret: bytes, nonce: str, role: str) -> str:
    """The challenge response: ``HMAC-SHA256(secret, nonce:role)`` hex."""
    return hmac.new(
        secret, f"{nonce}:{role}".encode("utf-8"), hashlib.sha256
    ).hexdigest()


def verify_mac(secret: bytes, nonce: str, role: str, mac: Any) -> bool:
    """Constant-time verification of a peer's ``auth`` response."""
    if not isinstance(mac, str):
        return False
    return hmac.compare_digest(compute_mac(secret, nonce, role), mac)


def client_handshake(
    sock: socket.socket,
    *,
    role: str,
    secret: bytes | None = None,
    worker: str | None = None,
    lock: threading.Lock | None = None,
) -> dict[str, Any]:
    """Perform the peer side of the v2 handshake; returns the ``welcome``.

    Sends ``hello`` and then converses until the coordinator says
    ``welcome`` (or refuses). A ``challenge`` is answered with the HMAC
    response — re-answered if the (chaos-replayable) challenge arrives
    twice — and requires ``secret``; a coordinator that challenges a
    secretless peer gets a clean :class:`AuthError` naming the fix.

    Failure shapes are deliberately distinct: an ``error`` frame from
    the coordinator (bad secret, version mismatch, admission refusal)
    raises :class:`AuthError` — final, do not retry — while a connection
    that tears mid-handshake raises ``OSError``/:class:`ProtocolError`,
    the transport failures the caller's reconnect loop already owns.

    The ``drop_auth`` chaos fault fires here: the ``auth`` frame is
    "lost" by tearing the connection down, exactly the mid-handshake
    failure a flaky network produces, so tests can pin that a fleet
    under auth-frame loss still converges by reconnecting.
    """
    hello: dict[str, Any] = {"type": "hello", "proto": PROTO_VERSION, "role": role}
    if worker is not None:
        hello["worker"] = worker
        hello["pid"] = os.getpid()
    send_msg(sock, hello, lock)
    # Bounded conversation: welcome/error ends it; anything else past a
    # few frames is a peer speaking some other protocol.
    for _ in range(4):
        reply = recv_msg(sock)
        if reply is None:
            raise OSError("connection closed during handshake")
        kind = reply.get("type")
        if kind == "welcome":
            return reply
        if kind == "error":
            raise AuthError(str(reply.get("error", "handshake refused")))
        if kind == "challenge":
            if secret is None:
                raise AuthError(
                    "coordinator requires a shared secret; provide one via "
                    f"{SECRET_ENV} or --secret-file"
                )
            nonce = reply.get("nonce")
            if not isinstance(nonce, str) or not nonce:
                raise ProtocolError(f"malformed challenge: {reply!r}")
            inj = chaos.injector()
            if inj is not None and inj.decide("drop_auth"):
                try:
                    sock.close()
                except OSError:
                    pass
                raise OSError("chaos: auth frame dropped (connection torn down)")
            send_msg(
                sock,
                {"type": "auth", "mac": compute_mac(secret, nonce, role)},
                lock,
            )
            continue
        raise ProtocolError(f"unexpected handshake reply: {reply!r}")
    raise ProtocolError("handshake did not converge (peer kept challenging)")
