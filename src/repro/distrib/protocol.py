"""Length-prefixed JSON framing for the coordinator/worker wire protocol.

Every message is one frame: a 4-byte big-endian length header followed by
that many bytes of ASCII-safe JSON (``ensure_ascii`` keeps lone
surrogates and other non-UTF-8-safe text representable as ``\\uXXXX``
escapes, so any string a scenario produces survives the wire). The
*values* inside messages reuse :mod:`repro.scenarios.encode`: lease
parameters travel as the portable encoding (tuples stay tuples on the
worker) and cell results carry the same portable documents the cell cache
stores — the wire format and the cache format are one vocabulary.

Protocol versioning: peers open with ``hello`` carrying ``proto``
(:data:`PROTO_VERSION`). Version 1 is the original unversioned protocol
(a ``hello`` without ``proto``); version 2 adds the handshake reply
(``welcome`` / ``challenge``, see :mod:`repro.distrib.auth`), the job
frames (``submit``/``jobs``/``cancel``/``result`` requests, see
:mod:`repro.distrib.jobs`) and worker drain (``bye``). A coordinator
answers a v2 ``hello``; it stays silent after a v1 ``hello`` so legacy
peers (which never read a handshake reply) keep working on trusted
networks — but a coordinator *with a shared secret armed* refuses v1
peers outright, because v1 cannot authenticate.

Core message types (``{"type": ...}``):

``hello``      peer -> coordinator, once: ``proto``, ``role``
               (``worker`` | ``client``), ``worker`` name, ``pid``.
``welcome``    coordinator -> peer (proto >= 2): handshake complete.
``challenge``  coordinator -> peer: authenticate (``nonce``); answered
               with ``auth`` (``mac``). See :mod:`repro.distrib.auth`.
``error``      coordinator -> peer: refusal (version mismatch, bad
               secret, admission control); the connection closes after.
``ready``      worker -> coordinator: give me a unit.
``lease``      coordinator -> worker: ``uid``, ``kind``, ``name``,
               ``cell_key``, ``params`` (portable-encoded).
``result``     worker -> coordinator: ``uid``, ``doc`` (the exact document
               the in-process executor would produce). A *client* sending
               ``result`` with a ``job`` field instead requests that
               job's retained results (service mode).
``heartbeat``  worker -> coordinator, periodic liveness while computing.
``bye``        worker -> coordinator: orderly drain departure (SIGTERM);
               the worker holds no lease and will not request more work.
``shutdown``   coordinator -> worker: no more work, exit.
``status``     poller -> coordinator: request the cached status snapshot;
               answered with ``{"type": "status", "status": {...}}`` from
               the coordinator's heartbeat-cadence cache (see
               :meth:`~repro.distrib.coordinator.Coordinator._refresh_status`).
               :func:`fetch_status` is the client side.
"""

from __future__ import annotations

import json
import os
import socket
import struct
import threading
from typing import Any, Iterator

from . import chaos

__all__ = [
    "ProtocolError",
    "ProtocolTimeout",
    "PROTO_VERSION",
    "MAX_FRAME_BYTES",
    "MAX_FRAME",
    "encode_frame",
    "send_msg",
    "recv_msg",
    "FrameReader",
    "parse_address",
    "fetch_status",
]


class ProtocolError(RuntimeError):
    """Malformed frame, oversized frame, or non-object message."""


class ProtocolTimeout(OSError):
    """A peer stopped mid-conversation (half-open socket, wedged remote).

    Raised instead of a bare ``socket.timeout`` wherever this package
    performs a *bounded* exchange — a status poll, a dial handshake — so
    callers (and the CLI) can name what actually happened instead of
    printing ``timed out``.
    """


#: Wire protocol version this build speaks. Version 1 is the original
#: unversioned protocol; version 2 adds handshake replies, authentication,
#: job frames and worker drain. A coordinator accepts both (v1 only on
#: unauthenticated listeners); a peer announcing a version *newer* than
#: this is refused with a clear error instead of misparsed.
PROTO_VERSION = 2

#: Upper bound on one frame's body, and therefore on what a single
#: length prefix can make :func:`recv_msg` allocate. A frame holds one
#: JSON document (a lease or one cell's result document); paper-scale FCT
#: cell documents are tens of kilobytes, so the default 64 MiB is generous
#: headroom, not a limit anyone should meet — meeting it indicates a
#: corrupt or hostile peer. Tunable via ``REPRO_MAX_FRAME_BYTES`` for
#: workloads with genuinely enormous documents.
MAX_FRAME_BYTES = int(os.environ.get("REPRO_MAX_FRAME_BYTES", 64 * 1024 * 1024))

#: Backward-compatible alias (pre-service name).
MAX_FRAME = MAX_FRAME_BYTES

#: Largest single ``recv`` request. ``socket.recv(n)`` allocates an
#: ``n``-byte buffer up front, so reading a frame body in bounded chunks
#: keeps even a maximum-length frame from demanding one huge allocation.
_RECV_CHUNK = 1 << 20

_HEADER = struct.Struct(">I")


def parse_address(text: str | tuple[str, int]) -> tuple[str, int]:
    """``"host:port"`` (or an already-split tuple) -> ``(host, port)``."""
    if isinstance(text, tuple):
        host, port = text
        return host, int(port)
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    return host, int(port)


def encode_frame(msg: dict[str, Any]) -> bytes:
    """One message -> header + ASCII JSON body."""
    body = json.dumps(
        msg, separators=(",", ":"), ensure_ascii=True
    ).encode("ascii")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    return _HEADER.pack(len(body)) + body


def send_msg(
    sock: socket.socket,
    msg: dict[str, Any],
    lock: threading.Lock | None = None,
) -> None:
    """Send one framed message (atomically w.r.t. ``lock`` if given).

    The worker's heartbeat thread and its main loop share one socket, so
    every worker-side send passes the same lock to keep frames whole.

    This is the chaos seam: when ``REPRO_CHAOS`` arms the process-wide
    injector, every outgoing frame — coordinator and worker alike — may
    be delayed, dropped (the connection is torn down and ``OSError``
    raised, exactly the failure shape both peers already recover from),
    corrupted in flight (the receiver hits :class:`ProtocolError`), or
    replayed (sent twice back-to-back; every receiver in this package
    treats duplicate frames idempotently).
    """
    frame = encode_frame(msg)
    inj = chaos.injector()
    if inj is not None:
        frame = chaos.mangle_frame(inj, frame, sock)
    if lock is None:
        sock.sendall(frame)
    else:
        with lock:
            sock.sendall(frame)


def _recv_exactly(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` only on EOF *at* the boundary.

    EOF after a partial read is a torn frame, never a clean close —
    reporting it as ``None`` would let a truncated length prefix
    impersonate an orderly shutdown, so it raises instead.

    ``n`` is bounded by :data:`MAX_FRAME_BYTES` (enforced by every
    caller before the body read) and each underlying ``recv`` asks for
    at most :data:`_RECV_CHUNK` bytes, so a corrupt or hostile length
    prefix can never demand one multi-gigabyte allocation: the read
    fails with EOF/:class:`ProtocolError` after at most one bounded
    chunk per loop turn.
    """
    if n > MAX_FRAME_BYTES + _HEADER.size:
        raise ProtocolError(
            f"refusing to read {n} bytes (> MAX_FRAME_BYTES {MAX_FRAME_BYTES})"
        )
    chunks: list[bytes] = []
    while n:
        chunk = sock.recv(min(n, _RECV_CHUNK))
        if not chunk:
            if chunks:
                raise ProtocolError("connection closed mid-frame")
            return None  # peer closed at a frame boundary
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def recv_msg(sock: socket.socket) -> dict[str, Any] | None:
    """Blocking read of one framed message; ``None`` on clean EOF."""
    header = _recv_exactly(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"incoming frame of {length} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    body = _recv_exactly(sock, length)
    if body is None:
        raise ProtocolError("connection closed mid-frame")
    return _decode_body(body)


def _decode_body(body: bytes) -> dict[str, Any]:
    try:
        msg = json.loads(body.decode("ascii"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None
    if not isinstance(msg, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(msg).__name__}"
        )
    return msg


def fetch_status(
    address: str | tuple[str, int],
    timeout: float = 5.0,
    secret: bytes | None = None,
) -> dict[str, Any]:
    """One-shot status poll of a live coordinator.

    Connects, sends a ``status`` frame and returns the snapshot dict.
    With ``secret`` the poll performs the v2 authenticated handshake
    first (role ``client``: no lease, excluded from worker counts);
    without one it stays on the legacy bare-``status`` exchange. Raises
    ``OSError`` when the coordinator is unreachable,
    :class:`ProtocolTimeout` when it accepts the connection but stops
    answering (half-open socket — the poll is bounded by ``timeout``,
    it can never hang ``repro status``), :class:`ProtocolError` on a
    malformed reply, and :class:`repro.distrib.auth.AuthError` when the
    coordinator rejects (or requires) authentication.
    """
    host, port = parse_address(address)
    try:
        with socket.create_connection((host, port), timeout=timeout) as sock:
            # create_connection's timeout persists as the per-op recv/send
            # timeout, which is exactly the bound we want on every frame.
            if secret is not None:
                from .auth import client_handshake

                client_handshake(sock, role="client", secret=secret)
            send_msg(sock, {"type": "status"})
            reply = recv_msg(sock)
    except socket.timeout as exc:
        raise ProtocolTimeout(
            f"coordinator at {host}:{port} accepted the connection but "
            f"did not answer within {timeout:g}s (half-open or wedged)"
        ) from exc
    if reply is not None and reply.get("type") == "error":
        from .auth import AuthError

        raise AuthError(str(reply.get("error", "request refused")))
    if (
        reply is None
        or reply.get("type") != "status"
        or not isinstance(reply.get("status"), dict)
    ):
        raise ProtocolError(f"unexpected status reply: {reply!r}")
    return reply["status"]


class FrameReader:
    """Incremental frame parser for the coordinator's non-blocking reads.

    Feed it whatever ``recv`` returned; it buffers partial frames across
    calls and yields every complete message, so a message split over
    arbitrary TCP segment boundaries decodes identically to one that
    arrived whole.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> Iterator[dict[str, Any]]:
        self._buffer.extend(data)
        while True:
            if len(self._buffer) < _HEADER.size:
                return
            (length,) = _HEADER.unpack(self._buffer[: _HEADER.size])
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"incoming frame of {length} bytes exceeds "
                    f"MAX_FRAME_BYTES ({MAX_FRAME_BYTES})"
                )
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return
            body = bytes(self._buffer[_HEADER.size:end])
            del self._buffer[:end]
            yield _decode_body(body)
