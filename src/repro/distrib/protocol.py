"""Length-prefixed JSON framing for the coordinator/worker wire protocol.

Every message is one frame: a 4-byte big-endian length header followed by
that many bytes of ASCII-safe JSON (``ensure_ascii`` keeps lone
surrogates and other non-UTF-8-safe text representable as ``\\uXXXX``
escapes, so any string a scenario produces survives the wire). The
*values* inside messages reuse :mod:`repro.scenarios.encode`: lease
parameters travel as the portable encoding (tuples stay tuples on the
worker) and cell results carry the same portable documents the cell cache
stores — the wire format and the cache format are one vocabulary.

Message types (``{"type": ...}``):

``hello``      worker -> coordinator, once: ``worker`` name, ``pid``.
``ready``      worker -> coordinator: give me a unit.
``lease``      coordinator -> worker: ``uid``, ``kind``, ``name``,
               ``cell_key``, ``params`` (portable-encoded).
``result``     worker -> coordinator: ``uid``, ``doc`` (the exact document
               the in-process executor would produce).
``heartbeat``  worker -> coordinator, periodic liveness while computing.
``shutdown``   coordinator -> worker: no more work, exit.
``status``     poller -> coordinator: request the cached status snapshot;
               answered with ``{"type": "status", "status": {...}}`` from
               the coordinator's heartbeat-cadence cache (see
               :meth:`~repro.distrib.coordinator.Coordinator._refresh_status`).
               Pollers never send ``hello``, so they are not workers and
               hold no lease. :func:`fetch_status` is the client side.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
from typing import Any, Iterator

from . import chaos

__all__ = [
    "ProtocolError",
    "MAX_FRAME",
    "encode_frame",
    "send_msg",
    "recv_msg",
    "FrameReader",
    "parse_address",
    "fetch_status",
]


class ProtocolError(RuntimeError):
    """Malformed frame, oversized frame, or non-object message."""


#: Upper bound on one frame's body. A frame holds one JSON document (a
#: lease or one cell's result document); paper-scale FCT cell documents
#: are tens of kilobytes, so this is generous headroom, not a limit anyone
#: should meet — meeting it indicates a corrupt or hostile peer.
MAX_FRAME = 256 * 1024 * 1024

_HEADER = struct.Struct(">I")


def parse_address(text: str | tuple[str, int]) -> tuple[str, int]:
    """``"host:port"`` (or an already-split tuple) -> ``(host, port)``."""
    if isinstance(text, tuple):
        host, port = text
        return host, int(port)
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    return host, int(port)


def encode_frame(msg: dict[str, Any]) -> bytes:
    """One message -> header + ASCII JSON body."""
    body = json.dumps(
        msg, separators=(",", ":"), ensure_ascii=True
    ).encode("ascii")
    if len(body) > MAX_FRAME:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds MAX_FRAME")
    return _HEADER.pack(len(body)) + body


def send_msg(
    sock: socket.socket,
    msg: dict[str, Any],
    lock: threading.Lock | None = None,
) -> None:
    """Send one framed message (atomically w.r.t. ``lock`` if given).

    The worker's heartbeat thread and its main loop share one socket, so
    every worker-side send passes the same lock to keep frames whole.

    This is the chaos seam: when ``REPRO_CHAOS`` arms the process-wide
    injector, every outgoing frame — coordinator and worker alike — may
    be delayed, dropped (the connection is torn down and ``OSError``
    raised, exactly the failure shape both peers already recover from) or
    corrupted in flight (the receiver hits :class:`ProtocolError`).
    """
    frame = encode_frame(msg)
    inj = chaos.injector()
    if inj is not None:
        frame = chaos.mangle_frame(inj, frame, sock)
    if lock is None:
        sock.sendall(frame)
    else:
        with lock:
            sock.sendall(frame)


def _recv_exactly(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` only on EOF *at* the boundary.

    EOF after a partial read is a torn frame, never a clean close —
    reporting it as ``None`` would let a truncated length prefix
    impersonate an orderly shutdown, so it raises instead.
    """
    chunks: list[bytes] = []
    while n:
        chunk = sock.recv(n)
        if not chunk:
            if chunks:
                raise ProtocolError("connection closed mid-frame")
            return None  # peer closed at a frame boundary
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def recv_msg(sock: socket.socket) -> dict[str, Any] | None:
    """Blocking read of one framed message; ``None`` on clean EOF."""
    header = _recv_exactly(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(f"incoming frame of {length} bytes exceeds MAX_FRAME")
    body = _recv_exactly(sock, length)
    if body is None:
        raise ProtocolError("connection closed mid-frame")
    return _decode_body(body)


def _decode_body(body: bytes) -> dict[str, Any]:
    try:
        msg = json.loads(body.decode("ascii"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None
    if not isinstance(msg, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(msg).__name__}"
        )
    return msg


def fetch_status(
    address: str | tuple[str, int], timeout: float = 5.0
) -> dict[str, Any]:
    """One-shot status poll of a live coordinator.

    Connects, sends a ``status`` frame and returns the snapshot dict.
    The connection never says ``hello``, so the coordinator treats it as
    a poller (no lease, excluded from worker counts). Raises ``OSError``
    when the coordinator is unreachable and :class:`ProtocolError` on a
    malformed reply.
    """
    host, port = parse_address(address)
    with socket.create_connection((host, port), timeout=timeout) as sock:
        send_msg(sock, {"type": "status"})
        reply = recv_msg(sock)
    if (
        reply is None
        or reply.get("type") != "status"
        or not isinstance(reply.get("status"), dict)
    ):
        raise ProtocolError(f"unexpected status reply: {reply!r}")
    return reply["status"]


class FrameReader:
    """Incremental frame parser for the coordinator's non-blocking reads.

    Feed it whatever ``recv`` returned; it buffers partial frames across
    calls and yields every complete message, so a message split over
    arbitrary TCP segment boundaries decodes identically to one that
    arrived whole.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> Iterator[dict[str, Any]]:
        self._buffer.extend(data)
        while True:
            if len(self._buffer) < _HEADER.size:
                return
            (length,) = _HEADER.unpack(self._buffer[: _HEADER.size])
            if length > MAX_FRAME:
                raise ProtocolError(
                    f"incoming frame of {length} bytes exceeds MAX_FRAME"
                )
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return
            body = bytes(self._buffer[_HEADER.size:end])
            del self._buffer[:end]
            yield _decode_body(body)
