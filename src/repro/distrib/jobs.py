"""Multi-sweep job queue and the client side of the coordinator service.

One-shot runs own their coordinator: the Runner builds one, streams one
sweep through it, and tears it down. A *service* coordinator
(``repro serve``) outlives any single sweep — many clients submit sweeps
concurrently, one shared worker fleet executes all of them, and finished
jobs stay queryable. This module is the bookkeeping for that mode, split
in two:

* :class:`Job` / :class:`JobQueue` — coordinator-side state. The queue
  owns admission control (bounded active jobs, drain mode), fair-share
  scheduling (round-robin across jobs, so one giant sweep cannot starve
  a small one — within a job, units keep their cost order), the
  global-lease-id indirection that keeps per-job unit ids from colliding
  on the wire, and retention of finished jobs for later ``result``
  fetches.
* :class:`ServiceClient` / :func:`fetch_jobs` / :func:`cancel_job` — the
  peer side: authenticated submit, a reconnecting result stream, and the
  one-shot ``jobs``/``cancel`` exchanges behind the matching CLI verbs.

The standing invariant does not bend in service mode: a job's result
documents are produced by the same executor functions as an in-process
run and merged client-side by the same Runner code, so service-mode sweep
rows are bitwise identical to local ones.
"""

from __future__ import annotations

import secrets as _secrets
import socket
import time
from collections import deque
from typing import Any, Callable, Iterator

from .auth import AuthError, client_handshake
from .chaos import backoff_delays
from .protocol import (
    ProtocolError,
    ProtocolTimeout,
    parse_address,
    recv_msg,
    send_msg,
)

__all__ = [
    "ServiceError",
    "JobCancelled",
    "Job",
    "JobQueue",
    "ServiceClient",
    "fetch_jobs",
    "cancel_job",
]


class ServiceError(RuntimeError):
    """The coordinator refused a request (admission, unknown job, ...)."""


class JobCancelled(RuntimeError):
    """The job whose results were being streamed was cancelled."""


class Job:
    """One submitted sweep: its units, their progress, and its identity.

    ``uid`` values are client-scoped (the submitting Runner numbers its
    units 0..n-1); on the wire every lease carries a *global* id instead
    (see :class:`JobQueue`), and results are mapped back before they
    reach the client — two concurrent jobs therefore never see each
    other's unit ids, and neither needs to know the other exists.
    """

    __slots__ = (
        "jid",
        "label",
        "run_key",
        "token",
        "source",
        "submitted_at",
        "finished_at",
        "total",
        "pending",
        "inflight",
        "completed",
        "cancelled",
        "journal",
        "subscribers",
    )

    def __init__(
        self,
        jid: str,
        payloads: list[dict[str, Any]],
        *,
        label: str = "",
        run_key: str | None = None,
        token: str | None = None,
        source: str = "remote",
        journal: Any | None = None,
    ) -> None:
        self.jid = jid
        self.label = label
        self.run_key = run_key
        self.token = token
        self.source = source
        self.submitted_at = time.time()
        self.finished_at: float | None = None
        self.total = len(payloads)
        #: Global lease ids awaiting a worker, in submission (cost) order.
        self.pending: deque[int] = deque()
        self.inflight = 0
        #: Client uid -> (document, worker name); the retained results.
        self.completed: dict[int, tuple[dict[str, Any], str]] = {}
        self.cancelled = False
        self.journal = journal
        #: Coordinator-managed: connections streaming this job's results.
        self.subscribers: list[Any] = []

    @property
    def finished(self) -> bool:
        if self.inflight:
            return False
        if self.cancelled:
            return not self.pending
        return not self.pending and len(self.completed) >= self.total

    @property
    def state(self) -> str:
        if self.cancelled:
            return "cancelled"
        if self.finished:
            return "done"
        if self.completed or self.inflight:
            return "running"
        return "queued"

    def summary(self, now: float | None = None) -> dict[str, Any]:
        """The ``jobs`` frame / status-snapshot row for this job."""
        now = time.time() if now is None else now
        end = self.finished_at if self.finished_at is not None else now
        return {
            "job": self.jid,
            "label": self.label,
            "state": self.state,
            "source": self.source,
            "units": self.total,
            "completed": len(self.completed),
            "pending": len(self.pending),
            "in_flight": self.inflight,
            "age_s": round(now - self.submitted_at, 3),
            "elapsed_s": round(end - self.submitted_at, 3),
            "run_key": self.run_key,
        }


class JobQueue:
    """Admission, fair-share scheduling and retention for many jobs.

    The queue deals in *global* lease ids (gids): each submitted unit is
    assigned one monotonically increasing gid, and the coordinator's
    lease/result/requeue machinery is keyed on gids alone. Fair share is
    round-robin across jobs that still have pending units — each
    ``next_lease`` call advances a cursor, so a fleet shared by a
    600-unit paper sweep and a 6-unit smoke test alternates between them
    instead of draining the big one first. Within one job, units stay in
    the order the client submitted them (its cost order).
    """

    def __init__(self, *, max_active: int = 8, history: int = 50) -> None:
        self.max_active = max_active
        self.draining = False
        self._jobs: dict[str, Job] = {}
        self._history: deque[Job] = deque(maxlen=max(history, 1))
        self._rotation: list[str] = []
        self._cursor = 0
        self._seq = 0
        self._next_gid = 0
        self._by_gid: dict[int, tuple[Job, int]] = {}
        self._payloads: dict[int, dict[str, Any]] = {}
        self._by_token: dict[str, Job] = {}

    # ---------------------------------------------------------------- intake

    def submit(
        self,
        payloads: list[dict[str, Any]],
        *,
        label: str = "",
        run_key: str | None = None,
        token: str | None = None,
        source: str = "remote",
        journal: Any | None = None,
    ) -> Job:
        """Admit one sweep; raises :class:`ServiceError` when refused.

        A repeated ``token`` returns the job already admitted under it —
        a client whose submit frame was replayed (or who resent after a
        torn reply) gets the same job back instead of a duplicate sweep.
        """
        if token:
            existing = self._by_token.get(token)
            if existing is not None:
                return existing
        if self.draining:
            raise ServiceError("coordinator is draining; not accepting new jobs")
        if len(self._jobs) >= self.max_active:
            raise ServiceError(
                f"job queue full ({len(self._jobs)} active, max {self.max_active})"
            )
        if not payloads:
            raise ServiceError("cannot submit a job with zero units")
        uids = [p.get("uid") for p in payloads]
        if any(not isinstance(u, int) for u in uids) or len(set(uids)) != len(uids):
            raise ServiceError("every unit needs a distinct integer uid")
        self._seq += 1
        jid = f"job-{self._seq:04d}"
        job = Job(
            jid,
            payloads,
            label=label,
            run_key=run_key,
            token=token,
            source=source,
            journal=journal,
        )
        for payload in payloads:
            gid = self._next_gid
            self._next_gid += 1
            self._by_gid[gid] = (job, payload["uid"])
            self._payloads[gid] = payload
            job.pending.append(gid)
        self._jobs[jid] = job
        self._rotation.append(jid)
        if token:
            self._by_token[token] = job
        return job

    # ------------------------------------------------------------ scheduling

    def next_lease(self) -> tuple[int, Job, dict[str, Any]] | None:
        """The next unit to lease, fair-share across jobs; ``None`` if idle."""
        n = len(self._rotation)
        for i in range(n):
            jid = self._rotation[(self._cursor + i) % n]
            job = self._jobs.get(jid)
            if job is None or not job.pending or job.cancelled:
                continue
            self._cursor = (self._cursor + i + 1) % n
            gid = job.pending.popleft()
            job.inflight += 1
            return gid, job, self._payloads[gid]
        return None

    def lookup(self, gid: int) -> tuple[Job, int] | None:
        return self._by_gid.get(gid)

    def requeue(self, gid: int) -> None:
        """A leased unit lost its worker: back to the front of its job."""
        entry = self._by_gid.get(gid)
        if entry is None:
            return
        job, _uid = entry
        job.inflight = max(job.inflight - 1, 0)
        if not job.cancelled:
            # Front of the queue: it was scheduled early for a reason
            # (cost order) and has already waited one worker lifetime.
            job.pending.appendleft(gid)
        self._maybe_finish(job)

    def complete(
        self, gid: int, doc: dict[str, Any], worker: str
    ) -> tuple[Job, int] | None:
        """Record one result; returns ``(job, client uid)`` or ``None``.

        Tolerates the re-lease race: a result for a gid that is back in
        its job's pending deque (its first worker was declared dead,
        then answered anyway) is accepted and the pending copy removed,
        so the unit is not executed twice.
        """
        entry = self._by_gid.get(gid)
        if entry is None:
            return None
        job, uid = entry
        try:
            job.pending.remove(gid)
        except ValueError:
            job.inflight = max(job.inflight - 1, 0)
        job.completed[uid] = (doc, worker)
        self._maybe_finish(job)
        return job, uid

    # ------------------------------------------------------------- lifecycle

    def cancel(self, jid: str) -> Job | None:
        """Cancel an active job: pending units are dropped, in-flight
        leases run to completion (their results are retained — discarding
        a computed document buys nothing), the job lands in history as
        ``cancelled``."""
        job = self._jobs.get(jid)
        if job is None:
            return None
        job.cancelled = True
        for gid in job.pending:
            self._forget_gid(gid)
        job.pending.clear()
        self._maybe_finish(job)
        return job

    def _maybe_finish(self, job: Job) -> None:
        if job.jid not in self._jobs or not job.finished:
            return
        job.finished_at = time.time()
        del self._jobs[job.jid]
        self._rotation.remove(job.jid)
        # Results stay on the job (history serves them); only the wire-id
        # maps are dropped, so a late duplicate result is simply unknown.
        for gid, entry in list(self._by_gid.items()):
            if entry[0] is job:
                self._forget_gid(gid)
        if job.journal is not None:
            try:
                job.journal.end()
            except Exception:
                pass
        self._history.append(job)

    def _forget_gid(self, gid: int) -> None:
        self._by_gid.pop(gid, None)
        self._payloads.pop(gid, None)

    # ---------------------------------------------------------- introspection

    def get(self, jid: str) -> Job | None:
        """Active or retained job by id (history serves ``result`` frames)."""
        job = self._jobs.get(jid)
        if job is not None:
            return job
        for past in self._history:
            if past.jid == jid:
                return past
        return None

    @property
    def active(self) -> list[Job]:
        return list(self._jobs.values())

    @property
    def idle(self) -> bool:
        return not self._jobs

    def pending_total(self) -> int:
        return sum(len(j.pending) for j in self._jobs.values())

    def units_total(self) -> int:
        return sum(j.total for j in self._jobs.values()) + sum(
            j.total for j in self._history
        )

    def summaries(self, now: float | None = None) -> list[dict[str, Any]]:
        """Active jobs first (submission order), then retained history."""
        now = time.time() if now is None else now
        rows = [self._jobs[jid].summary(now) for jid in self._rotation
                if jid in self._jobs]
        rows.extend(job.summary(now) for job in reversed(self._history))
        return rows


# --------------------------------------------------------------- client side


def _dial(
    address: tuple[str, int],
    *,
    secret: bytes | None,
    timeout: float,
) -> socket.socket:
    """Connect + v2 handshake as a ``client`` peer; bounded by ``timeout``."""
    sock = socket.create_connection(address, timeout=timeout)
    try:
        client_handshake(sock, role="client", secret=secret)
    except socket.timeout:
        sock.close()
        raise ProtocolTimeout(
            f"coordinator at {address[0]}:{address[1]} accepted the "
            f"connection but did not complete the handshake within "
            f"{timeout:g}s"
        ) from None
    except BaseException:
        sock.close()
        raise
    return sock


def _request(
    address: str | tuple[str, int],
    msg: dict[str, Any],
    *,
    secret: bytes | None = None,
    timeout: float = 10.0,
) -> dict[str, Any]:
    """One authenticated request/reply exchange; raises on refusal."""
    addr = parse_address(address)
    sock = _dial(addr, secret=secret, timeout=timeout)
    try:
        send_msg(sock, msg)
        try:
            reply = recv_msg(sock)
        except socket.timeout:
            raise ProtocolTimeout(
                f"coordinator at {addr[0]}:{addr[1]} did not answer a "
                f"{msg.get('type')!r} request within {timeout:g}s"
            ) from None
    finally:
        sock.close()
    if reply is None:
        raise ProtocolError("coordinator closed the connection mid-exchange")
    if reply.get("type") == "error":
        raise ServiceError(str(reply.get("error", "request refused")))
    return reply


class ServiceClient:
    """Submit sweeps to a ``repro serve`` coordinator and stream results.

    One instance serves one job lifecycle: :meth:`submit` admits the
    sweep (idempotently — the submit token makes a replayed or resent
    frame return the same job), then :meth:`stream_results` yields
    ``(uid, document, worker)`` exactly once per unit, *reconnecting*
    through coordinator restarts of the connection: results already
    accepted by the coordinator are retained per job, so a re-attach
    replays the snapshot and a seen-set deduplicates it.
    """

    def __init__(
        self,
        address: str | tuple[str, int],
        *,
        secret: bytes | None = None,
        timeout: float = 10.0,
        stream_timeout: float = 120.0,
    ) -> None:
        self.address = parse_address(address)
        self.secret = secret
        self.timeout = timeout
        #: recv bound while streaming: long enough for any real unit gap
        #: (the coordinator pushes results as they land), short enough
        #: that a wedged coordinator triggers a re-attach, which is
        #: idempotent, instead of a forever-hang.
        self.stream_timeout = stream_timeout
        self.job: str | None = None
        self._token = _secrets.token_hex(8)

    def submit(
        self,
        payloads: list[dict[str, Any]],
        *,
        label: str = "",
        run_key: str | None = None,
    ) -> str:
        """Admit the sweep; returns the job id (raises ``ServiceError``
        on admission refusal, ``AuthError`` on a bad/missing secret)."""
        reply = _request(
            self.address,
            {
                "type": "submit",
                "units": payloads,
                "label": label,
                "run_key": run_key,
                "token": self._token,
            },
            secret=self.secret,
            timeout=self.timeout,
        )
        jid = reply.get("job")
        if not isinstance(jid, str):
            raise ProtocolError(f"malformed submit reply: {reply!r}")
        self.job = jid
        return jid

    def stream_results(
        self, job: str | None = None
    ) -> Iterator[tuple[int, dict[str, Any], str]]:
        """Yield ``(uid, doc, worker)`` once per unit until the job ends.

        Raises :class:`JobCancelled` if the job is cancelled server-side,
        :class:`ServiceError`/``AuthError`` on refusals, and ``OSError``
        only after the reconnect budget is exhausted — a single torn
        connection or coordinator stall re-attaches transparently.
        """
        jid = job or self.job
        if jid is None:
            raise ValueError("no job submitted or named")
        seen: set[int] = set()
        while True:
            try:
                sock = _dial(self.address, secret=self.secret, timeout=self.timeout)
            except OSError as exc:
                if not self._retry_wait():
                    raise OSError(
                        f"lost the coordinator at {self.address[0]}:"
                        f"{self.address[1]} and could not re-attach: {exc}"
                    ) from exc
                continue
            try:
                sock.settimeout(self.stream_timeout)
                send_msg(sock, {"type": "result", "job": jid, "attach": True})
                for item in self._read_stream(sock, jid, seen):
                    if item is None:
                        return
                    yield item
            except AuthError:
                raise
            except (JobCancelled, ServiceError):
                raise
            except (OSError, ProtocolError):
                if not self._retry_wait():
                    raise
            finally:
                try:
                    sock.close()
                except OSError:
                    pass

    def _read_stream(
        self, sock: socket.socket, jid: str, seen: set[int]
    ) -> Iterator[tuple[int, dict[str, Any], str] | None]:
        """Decode one attached connection's frames; ``None`` = job over."""
        while True:
            msg = recv_msg(sock)
            if msg is None:
                raise OSError("coordinator closed the result stream")
            kind = msg.get("type")
            if kind == "error":
                raise ServiceError(str(msg.get("error", "stream refused")))
            if kind == "job-results":
                for uid, doc, worker in msg.get("results", ()):
                    if uid not in seen:
                        seen.add(uid)
                        yield uid, doc, worker
                if msg.get("state") == "done":
                    yield None
                    return
                if msg.get("state") == "cancelled":
                    raise JobCancelled(f"job {jid} was cancelled")
            elif kind == "unit-result":
                uid, doc, worker = msg.get("uid"), msg.get("doc"), msg.get("worker")
                if isinstance(uid, int) and uid not in seen:
                    seen.add(uid)
                    yield uid, doc, str(worker)
            elif kind == "job-state":
                state = msg.get("state")
                if state == "done":
                    yield None
                    return
                if state == "cancelled":
                    raise JobCancelled(f"job {jid} was cancelled")
            # anything else (a replayed welcome, say) is ignored

    def _retry_wait(self) -> bool:
        """One backoff step of the re-attach budget; False when spent."""
        delays = getattr(self, "_delays", None)
        if delays is None:
            delays = self._delays = backoff_delays(total=30.0)
        for delay in delays:
            time.sleep(delay)
            return True
        return False


def fetch_jobs(
    address: str | tuple[str, int],
    *,
    secret: bytes | None = None,
    timeout: float = 10.0,
) -> dict[str, Any]:
    """The coordinator's job table: ``{"jobs": [...], "draining": bool}``."""
    reply = _request(address, {"type": "jobs"}, secret=secret, timeout=timeout)
    if reply.get("type") != "jobs" or not isinstance(reply.get("jobs"), list):
        raise ProtocolError(f"unexpected jobs reply: {reply!r}")
    return {"jobs": reply["jobs"], "draining": bool(reply.get("draining"))}


def cancel_job(
    address: str | tuple[str, int],
    job: str | None = None,
    *,
    drain: bool = False,
    secret: bytes | None = None,
    timeout: float = 10.0,
) -> dict[str, Any]:
    """Cancel one job, or put the whole coordinator into drain mode.

    Drain: no new submissions are admitted, running jobs finish, and the
    serve loop exits (shutting workers down cleanly) once the last one
    does. Returns the coordinator's reply frame.
    """
    if not drain and job is None:
        raise ValueError("name a job id or pass drain=True")
    msg: dict[str, Any] = {"type": "cancel"}
    if drain:
        msg["drain"] = True
    else:
        msg["job"] = job
    return _request(address, msg, secret=secret, timeout=timeout)
