"""Deterministic fault injection for the distributed executor.

The chaos harness makes the failure modes the coordinator/worker stack
claims to survive — lost workers, torn connections, corrupted frames,
stalled heartbeats, a crashed coordinator — *injectable on purpose and
reproducible by seed*, so the recovery machinery is exercised by tests
and CI instead of trusted on faith. The house invariant holds throughout:
every unit is deterministic (hash-derived seeds), so a chaos run that
completes is bitwise-identical to the fault-free in-process run no matter
which faults fired along the way.

Grammar (``REPRO_CHAOS`` environment variable or ``repro run --chaos``)::

    seed=N,kill_worker=p,drop_frame=p,corrupt_frame=p,delay_ms=a:b,
    stall_heartbeat=p,crash_coordinator=after_k

* ``seed=N`` — base seed of the injected-fault stream (default 0).
* ``kill_worker=p`` — probability a worker dies abruptly (``os._exit``,
  holding its lease) when a lease arrives.
* ``drop_frame=p`` — probability a frame send instead tears the
  connection down (a dropped TCP segment surfaces as a broken link, not
  a silent gap; both peers observe the failure and recover).
* ``corrupt_frame=p`` — probability a frame's body is bit-flipped in
  flight; the receiver hits :class:`~.protocol.ProtocolError` and drops
  the connection.
* ``delay_ms=a:b`` — uniform extra latency, in milliseconds, added
  before every frame send.
* ``stall_heartbeat=p`` — probability a worker's heartbeat thread goes
  silent when a lease arrives (the worker keeps computing; the
  coordinator must declare it stalled and re-lease).
* ``drop_auth=p`` — probability the peer's ``auth`` handshake frame is
  lost (the connection is torn down mid-handshake; the worker must
  reconnect and re-authenticate against a fresh nonce).
* ``replay_frame=p`` — probability a frame is sent twice back-to-back
  (a retransmit-style duplicate; every receiver must treat repeated
  frames idempotently — duplicate results are dropped by the done-set,
  duplicate submits are deduplicated by client token, duplicate
  challenges are simply re-answered).
* ``crash_coordinator=after_k`` (``after_3`` or plain ``3``) — the
  coordinator raises :class:`ChaosCrash` once ``k`` units have
  completed; a restart with ``--resume-journal`` resumes from the
  write-ahead journal + cell cache (and disarms the crash, so the demo
  converges).

Determinism: every probabilistic decision consumes exactly one draw from
one seeded stream per process, so a given ``(seed, role)`` pair replays
the identical decision sequence (pinned by ``tests/test_chaos.py``). The
role — ``REPRO_CHAOS_ROLE``, set per auto-spawned worker by the Runner —
partitions streams so a two-worker fleet does not fail in lockstep.
"""

from __future__ import annotations

import hashlib
import os
import random
import socket
import time
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "ChaosError",
    "ChaosCrash",
    "ChaosConfig",
    "ChaosInjector",
    "parse_chaos",
    "injector",
    "backoff_delays",
    "mangle_frame",
]


class ChaosError(ValueError):
    """Malformed ``REPRO_CHAOS`` specification."""


class ChaosCrash(RuntimeError):
    """The injected coordinator crash (``crash_coordinator=after_k``).

    Deliberately *not* an ``OSError``: nothing in the recovery stack may
    accidentally swallow it — the crash must surface to the operator,
    who resumes with ``--resume-journal``.
    """


#: The probability-valued knobs, in the order their decisions consume
#: draws from the stream (documented so tests can pin the sequence).
_PROB_KEYS = (
    "kill_worker",
    "drop_frame",
    "corrupt_frame",
    "stall_heartbeat",
    "drop_auth",
    "replay_frame",
)


@dataclass(frozen=True)
class ChaosConfig:
    """Parsed fault-injection plan; all defaults are 'no fault'."""

    seed: int = 0
    kill_worker: float = 0.0
    drop_frame: float = 0.0
    corrupt_frame: float = 0.0
    stall_heartbeat: float = 0.0
    drop_auth: float = 0.0
    replay_frame: float = 0.0
    delay_ms: tuple[float, float] | None = None
    crash_coordinator: int | None = None

    def to_spec(self) -> str:
        """The canonical spec string (parse/format round-trips)."""
        parts = [f"seed={self.seed}"]
        for key in _PROB_KEYS:
            p = getattr(self, key)
            if p:
                parts.append(f"{key}={p:g}")
        if self.delay_ms is not None:
            parts.append(f"delay_ms={self.delay_ms[0]:g}:{self.delay_ms[1]:g}")
        if self.crash_coordinator is not None:
            parts.append(f"crash_coordinator=after_{self.crash_coordinator}")
        return ",".join(parts)


def _parse_probability(key: str, text: str) -> float:
    try:
        p = float(text)
    except ValueError:
        raise ChaosError(f"chaos key {key!r} expects a probability, got {text!r}")
    if not 0.0 <= p <= 1.0:
        raise ChaosError(f"chaos key {key!r} must be in [0, 1], got {p!r}")
    return p


def parse_chaos(spec: str) -> ChaosConfig:
    """``"seed=3,kill_worker=0.2,..."`` -> :class:`ChaosConfig`.

    Raises :class:`ChaosError` on unknown keys or out-of-range values —
    a typo in a chaos plan must fail the command, not silently run a
    different experiment.
    """
    fields: dict[str, object] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        key, value = key.strip(), value.strip()
        if not sep or not value:
            raise ChaosError(f"chaos spec expects key=value, got {part!r}")
        if key == "seed":
            try:
                fields["seed"] = int(value)
            except ValueError:
                raise ChaosError(f"chaos seed must be an integer, got {value!r}")
        elif key in _PROB_KEYS:
            fields[key] = _parse_probability(key, value)
        elif key == "delay_ms":
            lo, sep2, hi = value.partition(":")
            try:
                bounds = (float(lo), float(hi if sep2 else lo))
            except ValueError:
                raise ChaosError(f"delay_ms expects a:b milliseconds, got {value!r}")
            if bounds[0] < 0 or bounds[1] < bounds[0]:
                raise ChaosError(f"delay_ms range must be 0 <= a <= b, got {value!r}")
            fields["delay_ms"] = bounds
        elif key == "crash_coordinator":
            text = value[len("after_"):] if value.startswith("after_") else value
            try:
                k = int(text)
            except ValueError:
                raise ChaosError(
                    f"crash_coordinator expects after_K (or K), got {value!r}"
                )
            if k < 1:
                raise ChaosError(f"crash_coordinator must be >= 1, got {k}")
            fields["crash_coordinator"] = k
        else:
            known = ("seed", *_PROB_KEYS, "delay_ms", "crash_coordinator")
            raise ChaosError(
                f"unknown chaos key {key!r} (known: {', '.join(known)})"
            )
    return ChaosConfig(**fields)  # type: ignore[arg-type]


class ChaosInjector:
    """One process's seeded fault stream over a :class:`ChaosConfig`.

    Each probabilistic consult (:meth:`decide`) consumes exactly one draw
    from a ``random.Random`` seeded by ``(config.seed, role)``, so the
    decision sequence for a given seed/role is replayable — including
    when every probability is zero (the armed-but-quiet mode the
    microbenchmark prices). Decisions made from multiple threads (the
    worker's heartbeat thread shares the frame seam) still each consume
    one draw; only the single-threaded sequence is pinned.
    """

    def __init__(self, config: ChaosConfig, role: str = "main") -> None:
        self.config = config
        self.role = role
        digest = hashlib.sha256(f"{config.seed}:{role}".encode("utf-8")).digest()
        self._rng = random.Random(int.from_bytes(digest[:8], "big"))

    def decide(self, kind: str) -> bool:
        """Consume one draw; True when the ``kind`` fault fires now."""
        p = getattr(self.config, kind)
        return self._rng.random() < p

    def delay_s(self) -> float:
        """Injected pre-send latency in seconds (0.0 when not configured)."""
        bounds = self.config.delay_ms
        if bounds is None:
            return 0.0
        lo, hi = bounds
        return self._rng.uniform(lo, hi) / 1000.0

    def corrupt_index(self, body_len: int) -> int:
        """Which body byte a ``corrupt_frame`` fault flips."""
        return self._rng.randrange(body_len) if body_len else 0


#: Single-slot cache: ``(spec, role) -> injector``. The same injector
#: object must persist across consults (it owns the fault stream), but an
#: env change (tests, CLI --chaos) must take effect without a restart.
_CACHE: tuple[tuple[str, str], ChaosInjector] | None = None


def injector() -> ChaosInjector | None:
    """The process-wide injector from ``REPRO_CHAOS``, or ``None``.

    Reads ``REPRO_CHAOS`` / ``REPRO_CHAOS_ROLE`` on every call (two dict
    lookups — cheap enough for the frame seam) but keeps one injector
    alive per ``(spec, role)`` so the fault stream is continuous.
    """
    global _CACHE
    spec = os.environ.get("REPRO_CHAOS", "")
    if not spec:
        return None
    role = os.environ.get("REPRO_CHAOS_ROLE", "main")
    if _CACHE is not None and _CACHE[0] == (spec, role):
        return _CACHE[1]
    inj = ChaosInjector(parse_chaos(spec), role)
    _CACHE = ((spec, role), inj)
    return inj


def mangle_frame(inj: ChaosInjector, frame: bytes, sock: socket.socket) -> bytes:
    """Apply frame-seam chaos to one outgoing frame.

    Consumes draws in a fixed order (delay, drop, corrupt, replay). A
    *drop* tears the connection down and raises ``OSError`` — on a stream
    transport a lost frame is indistinguishable from a broken link, and
    tearing the link is what makes the fault recoverable (the coordinator
    re-leases on EOF, the worker reconnects with backoff). A *corrupt*
    flips one body byte past the length header, so the receiver reads a
    full-length frame that fails to decode (``ProtocolError``) rather
    than desynchronizing the stream. A *replay* returns the frame doubled
    — both copies are valid, so the receiver sees an exact duplicate and
    must handle it idempotently.
    """
    delay = inj.delay_s()
    if delay > 0.0:
        time.sleep(delay)
    if inj.decide("drop_frame"):
        try:
            sock.close()
        except OSError:
            pass
        raise OSError("chaos: frame dropped (connection torn down)")
    if inj.decide("corrupt_frame"):
        header = 4  # struct ">I" length prefix; keep it valid
        if len(frame) > header:
            index = header + inj.corrupt_index(len(frame) - header)
            frame = frame[:index] + bytes([frame[index] ^ 0x80]) + frame[index + 1:]
    if inj.decide("replay_frame"):
        frame = frame + frame
    return frame


def backoff_delays(
    *,
    base: float = 0.05,
    cap: float = 2.0,
    total: float = 30.0,
    rng: random.Random | None = None,
) -> Iterator[float]:
    """Jittered exponential backoff delays, bounded by a total budget.

    Yields sleep durations ``uniform(base/2, d)`` for ``d = base, 2*base,
    4*base, ... <= cap`` ("equal jitter": never less than half the step,
    so retries make progress, never synchronized across a fleet). The
    generator is exhausted once the *sum* of yielded delays would exceed
    ``total`` — the caller's retry loop is therefore time-bounded by
    construction. Pass a seeded ``rng`` for reproducible schedules.
    """
    if rng is None:
        rng = random.Random()
    spent = 0.0
    step = base
    while True:
        delay = rng.uniform(min(base, cap) / 2, min(step, cap))
        if spent + delay > total:
            return
        spent += delay
        yield delay
        step = min(step * 2, cap)
