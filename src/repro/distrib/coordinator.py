"""Coordinator: lease work units to connected workers over TCP.

The coordinator owns the plan. It accepts worker connections on a
listening socket, leases cost-ordered units to workers as they announce
``ready``, tracks liveness through heartbeats, and *re-leases* the units
of dead or stalled workers — a worker that disconnects (or goes silent
past the lease timeout) mid-unit loses its lease back to the front of the
queue, and because every unit is deterministic (hash-derived seeds, see
:mod:`repro.scenarios.sharding`), the re-run on another worker produces a
bit-identical document. Duplicate results from a worker that was declared
dead but later answers anyway are dropped; the first result for a unit
wins.

The coordinator is transport only: it never executes scenario code and
never touches the cache — :class:`repro.scenarios.Runner` consumes the
``(uid, document, worker)`` stream exactly as it consumes the local
multiprocessing pool's, so caching, merging and progress reporting are
shared with every other executor.
"""

from __future__ import annotations

import selectors
import socket
import time
from collections import deque
from typing import Any, Callable, Iterator

from .chaos import ChaosCrash
from .protocol import FrameReader, ProtocolError, send_msg

__all__ = ["Coordinator"]

#: How long a blocking ``sendall`` to one worker may take before the
#: worker is considered wedged and dropped (its lease is then re-queued).
_SEND_TIMEOUT_S = 30.0


class _Conn:
    """One connected peer: socket, frame buffer, lease and liveness.

    Workers identify themselves with ``hello``; a connection that never
    does (a ``repro status`` poller) stays ``is_worker=False`` and is
    excluded from worker counts and liveness reaping.
    """

    __slots__ = (
        "sock",
        "reader",
        "name",
        "lease_uid",
        "lease_at",
        "last_seen",
        "ready",
        "is_worker",
    )

    def __init__(self, sock: socket.socket, addr: Any, now: float) -> None:
        self.sock = sock
        self.reader = FrameReader()
        # The addr from accept(), never getpeername(): a peer that sent
        # RST right after connecting must cost us one dead conn, not the
        # whole coordinator.
        self.name = f"{addr[0]}:{addr[1]}" if isinstance(addr, tuple) else str(addr)
        self.lease_uid: int | None = None
        self.lease_at: float | None = None
        self.last_seen = now
        self.ready = False
        self.is_worker = False


class Coordinator:
    """Fan units out to TCP workers; re-lease on death; stream results.

    Parameters
    ----------
    host, port:
        Listen address. Port ``0`` binds an ephemeral port; the resolved
        address is :attr:`address` (the Runner reports it via
        ``on_listen`` so external workers can be pointed at it).
    lease_timeout:
        Seconds of *silence* (no result, no heartbeat) after which a
        worker holding a lease is declared stalled and its unit
        re-queued. Workers heartbeat every couple of seconds while
        computing, so this bounds failure detection, not unit duration.
    poll_s:
        Event-loop tick; also how often the watchdog callback runs.
    max_releases:
        How many times one unit may lose its worker before the
        coordinator gives up on it and completes it with an error
        document — a unit that reliably *crashes* workers must not chew
        through the entire fleet and then hang the run. The give-up
        document is marked ``"quarantined"`` and names the distinct
        workers the unit took down.
    journal:
        Optional :class:`repro.distrib.journal.RunJournal`: lease grants
        are recorded *before* the lease frame goes out and completions
        as results are accepted, so a coordinator killed mid-run leaves
        an accurate write-ahead record for ``--resume-journal``.
    crash_after:
        Fault injection (``crash_coordinator=after_k`` chaos): raise
        :class:`~.chaos.ChaosCrash` out of :meth:`run` once this many
        results have been *yielded* — after the caller consumed (and
        cached) them, exactly like a real coordinator death between
        completions.
    on_event:
        Optional ``on_event(kind, uid, worker)`` observer, invoked from
        the event loop when a unit is ``"leased"`` to a worker or
        ``"released"`` back to the queue (the Runner feeds these into the
        sweep trace). Observer exceptions are swallowed: telemetry must
        never take down the lease loop.
    status_extra, status_refresh_s:
        ``repro status`` serves a *cached* snapshot (the MDS2 lesson:
        recomputing per poller turns monitoring into load). The snapshot
        is rebuilt in the run loop at most every ``status_refresh_s``
        seconds — heartbeat cadence, not poll cadence — and a ``status``
        frame is answered straight from the cache without touching lease
        state. ``status_extra`` is caller-owned context (the Runner puts
        run identity and cache-hit counts there) included verbatim.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        lease_timeout: float = 60.0,
        poll_s: float = 0.2,
        max_releases: int = 3,
        journal: Any | None = None,
        crash_after: int | None = None,
        on_event: Callable[[str, int, str], None] | None = None,
        status_extra: dict[str, Any] | None = None,
        status_refresh_s: float = 2.0,
    ) -> None:
        self.lease_timeout = lease_timeout
        self.poll_s = poll_s
        self.max_releases = max_releases
        self.journal = journal
        self.crash_after = crash_after
        self.on_event = on_event
        self.status_extra = status_extra
        self.status_refresh_s = status_refresh_s
        self._listener = socket.create_server((host, port))
        self._listener.setblocking(False)
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self._sel = selectors.DefaultSelector()
        self._sel.register(self._listener, selectors.EVENT_READ, None)
        self._conns: dict[socket.socket, _Conn] = {}
        self._pending: deque[dict[str, Any]] = deque()
        self._in_flight: dict[int, tuple[_Conn, dict[str, Any]]] = {}
        self._done: set[int] = set()
        self._completed: list[tuple[int, dict[str, Any], str]] = []
        self._release_counts: dict[int, int] = {}
        self._release_workers: dict[int, set[str]] = {}
        self._closed = False
        #: Units re-queued after their worker died or stalled.
        self.releases = 0
        #: Distinct workers that ever said hello.
        self.workers_seen = 0
        #: Units given up on as poison (completed with an error doc).
        self.quarantined = 0
        self._total_units = 0
        self._run_started: float | None = None
        self._status: dict[str, Any] | None = None
        self._status_at = 0.0

    # ---------------------------------------------------------- introspection

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def in_flight_count(self) -> int:
        return len(self._in_flight)

    @property
    def connected_workers(self) -> int:
        return sum(1 for c in self._conns.values() if c.is_worker)

    @property
    def unfinished(self) -> bool:
        """True while any unit is neither completed nor streamed out."""
        return bool(self._pending or self._in_flight)

    def _emit(self, kind: str, uid: int, worker: str) -> None:
        if self.on_event is None:
            return
        try:
            self.on_event(kind, uid, worker)
        except Exception:
            pass  # observers must never take down the lease loop

    def _build_status(self, now: float) -> dict[str, Any]:
        elapsed = now - self._run_started if self._run_started is not None else 0.0
        workers = []
        for conn in self._conns.values():
            if not conn.is_worker:
                continue
            workers.append(
                {
                    "worker": conn.name,
                    "ready": conn.ready,
                    "lease_uid": conn.lease_uid,
                    "lease_age_s": (
                        round(now - conn.lease_at, 3)
                        if conn.lease_at is not None and conn.lease_uid is not None
                        else None
                    ),
                    "silent_s": round(now - conn.last_seen, 3),
                }
            )
        completed = len(self._done)
        status: dict[str, Any] = {
            "state": "running" if self.unfinished else "idle",
            "units_total": self._total_units,
            "pending": len(self._pending),
            "in_flight": len(self._in_flight),
            "completed": completed,
            "quarantined": self.quarantined,
            "releases": self.releases,
            "workers_seen": self.workers_seen,
            "workers": sorted(workers, key=lambda w: w["worker"]),
            "elapsed_s": round(elapsed, 3),
            "units_per_sec": round(completed / elapsed, 4) if elapsed > 0 else None,
        }
        if self.status_extra is not None:
            status["extra"] = self.status_extra
        return status

    def _refresh_status(self, now: float, serve_only: bool = False) -> dict[str, Any]:
        """The cached status snapshot, rebuilt at heartbeat cadence.

        ``serve_only`` (the poller path) never rebuilds a live snapshot —
        it only builds when none exists yet, so a poller that beats the
        first refresh tick still gets an answer while one hammering
        ``status`` frames costs a dict lookup per request, not a rebuild.
        """
        if self._status is None or (
            not serve_only and now - self._status_at >= self.status_refresh_s
        ):
            self._status = self._build_status(now)
            self._status_at = now
        return self._status

    # -------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Shut down every worker and release all sockets (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for conn in list(self._conns.values()):
            try:
                send_msg(conn.sock, {"type": "shutdown"})
            except OSError:
                pass
            self._drop(conn, requeue=False)
        self._sel.unregister(self._listener)
        self._listener.close()
        self._sel.close()

    # ------------------------------------------------------------------- run

    def run(
        self,
        units: list[dict[str, Any]],
        watchdog: Callable[["Coordinator"], None] | None = None,
    ) -> Iterator[tuple[int, dict[str, Any], str]]:
        """Drive the event loop until every unit has a result.

        ``units`` are lease descriptors (``uid``/``kind``/``name``/
        ``cell_key``/``params``) in scheduling order — highest cost first,
        exactly as the Runner ordered them. Yields ``(uid, document,
        worker name)`` as results stream back, in completion order.
        ``watchdog`` runs every loop tick (the Runner uses it to respawn
        auto-spawned local workers that died while work remains).
        """
        self._pending.extend(units)
        total = len(units)
        self._total_units = total
        self._run_started = time.monotonic()
        yielded = 0
        while yielded < total:
            for key, _mask in self._sel.select(self.poll_s):
                if key.data is None:
                    self._accept()
                else:
                    self._read(key.data)
            self._reap_stalled()
            self._assign()
            self._refresh_status(time.monotonic())
            if watchdog is not None:
                watchdog(self)
            while self._completed:
                yielded += 1
                yield self._completed.pop(0)
            if self.crash_after is not None and yielded >= self.crash_after:
                # After the drain: every result up to the crash point has
                # been yielded to (and cached by) the caller, exactly the
                # state a real coordinator death leaves behind.
                raise ChaosCrash(
                    f"chaos: coordinator crashed after {yielded} completed "
                    f"unit(s) (crash_coordinator=after_{self.crash_after})"
                )
        self.close()

    # ------------------------------------------------------------- event loop

    def _accept(self) -> None:
        while True:
            try:
                sock, addr = self._listener.accept()
                sock.settimeout(_SEND_TIMEOUT_S)
            except (BlockingIOError, OSError):
                return
            conn = _Conn(sock, addr, time.monotonic())
            self._conns[sock] = conn
            self._sel.register(sock, selectors.EVENT_READ, conn)

    def _read(self, conn: _Conn) -> None:
        try:
            data = conn.sock.recv(1 << 16)
        except (OSError, socket.timeout):
            self._drop(conn, requeue=True)
            return
        if not data:
            self._drop(conn, requeue=True)
            return
        conn.last_seen = time.monotonic()
        try:
            for msg in conn.reader.feed(data):
                self._handle(conn, msg)
        except ProtocolError:
            self._drop(conn, requeue=True)

    def _handle(self, conn: _Conn, msg: dict[str, Any]) -> None:
        kind = msg.get("type")
        if kind == "hello":
            worker = msg.get("worker")
            if isinstance(worker, str) and worker:
                conn.name = worker
            conn.is_worker = True
            self.workers_seen += 1
        elif kind == "status":
            # Served from the cached snapshot — a poller costs the lease
            # loop one frame write, never a status recompute.
            try:
                send_msg(
                    conn.sock,
                    {
                        "type": "status",
                        "status": self._refresh_status(
                            time.monotonic(), serve_only=True
                        ),
                    },
                )
            except OSError:
                self._drop(conn, requeue=True)
        elif kind == "ready":
            conn.ready = True
        elif kind == "result":
            uid = msg.get("uid")
            doc = msg.get("doc")
            if not isinstance(uid, int) or not isinstance(doc, dict):
                return
            if conn.lease_uid == uid:
                conn.lease_uid = None
            if uid in self._done:
                return  # late duplicate from a worker declared dead earlier
            leased = self._in_flight.pop(uid, None)
            if leased is not None and leased[0] is not conn:
                leased[0].lease_uid = None  # first result wins
            self._done.add(uid)
            if self.journal is not None and leased is not None:
                self.journal.complete(
                    leased[1].get("jkey"), uid, "error" not in doc
                )
            self._completed.append((uid, doc, conn.name))
        elif kind == "heartbeat":
            pass  # last_seen already refreshed by _read
        # Unknown types are ignored for forward compatibility.

    def _reap_stalled(self) -> None:
        now = time.monotonic()
        for conn in list(self._conns.values()):
            if (
                conn.lease_uid is not None
                and now - conn.last_seen > self.lease_timeout
            ):
                self._drop(conn, requeue=True)

    def _assign(self) -> None:
        while self._pending:
            conn = next(
                (c for c in self._conns.values() if c.ready and c.lease_uid is None),
                None,
            )
            if conn is None:
                return
            unit = self._pending.popleft()
            if self.journal is not None:
                # Write-ahead: the grant is on disk before the lease is on
                # the wire, so a crash between the two still knows the
                # unit may be running somewhere.
                self.journal.grant(unit.get("jkey"), unit["uid"], conn.name)
            try:
                send_msg(conn.sock, dict(unit, type="lease"))
            except OSError:
                self._pending.appendleft(unit)
                self._drop(conn, requeue=True)
                continue
            conn.ready = False
            conn.lease_uid = unit["uid"]
            conn.lease_at = time.monotonic()
            self._in_flight[unit["uid"]] = (conn, unit)
            self._emit("leased", unit["uid"], conn.name)

    def _drop(self, conn: _Conn, requeue: bool) -> None:
        """Disconnect a worker; optionally re-queue its in-flight unit."""
        self._conns.pop(conn.sock, None)
        try:
            self._sel.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass
        uid = conn.lease_uid
        conn.lease_uid = None
        if uid is None or not requeue or uid in self._done:
            return
        leased = self._in_flight.get(uid)
        if leased is None or leased[0] is not conn:
            # The unit was already re-leased elsewhere; leave that lease be.
            return
        del self._in_flight[uid]
        unit = {k: v for k, v in leased[1].items() if k != "type"}
        self.releases += 1
        self._emit("released", uid, conn.name)
        count = self._release_counts.get(uid, 0) + 1
        self._release_counts[uid] = count
        workers = self._release_workers.setdefault(uid, set())
        workers.add(conn.name)
        if count >= self.max_releases:
            # Every worker this unit touched died or stalled: treat the
            # unit as poison and fail *it*, with context, instead of
            # feeding it the rest of the fleet.
            label = (
                f"{unit.get('name')!r}"
                f"{'[' + unit['cell_key'] + ']' if unit.get('cell_key') else ''}"
            )
            doc: dict[str, Any] = {
                "scenario": unit.get("name"),
                "params": unit.get("params"),
                "error": (
                    f"unit {label} "
                    f"lost its worker {count} times (crashed or stalled "
                    f"executions); giving up on it"
                ),
                "quarantined": True,
                "workers": sorted(workers),
            }
            if unit.get("cell_key"):
                doc["cell"] = unit["cell_key"]
            self._done.add(uid)
            self.quarantined += 1
            if self.journal is not None:
                self.journal.quarantine(
                    unit.get("jkey"), label, doc["error"]
                )
            self._completed.append((uid, doc, conn.name))
            return
        # Front of the queue: it was scheduled early for a reason (cost
        # order), and it has already waited one worker lifetime.
        self._pending.appendleft(unit)
