"""Coordinator: lease work units to connected workers over TCP.

The coordinator owns the plan. It accepts worker connections on a
listening socket, leases cost-ordered units to workers as they announce
``ready``, tracks liveness through heartbeats, and *re-leases* the units
of dead or stalled workers — a worker that disconnects (or goes silent
past the lease timeout) mid-unit loses its lease back to the front of the
queue, and because every unit is deterministic (hash-derived seeds, see
:mod:`repro.scenarios.sharding`), the re-run on another worker produces a
bit-identical document. Duplicate results from a worker that was declared
dead but later answers anyway are dropped; the first result for a unit
wins.

Two modes share one event loop:

* :meth:`Coordinator.run` — the one-shot mode every executor path uses:
  one local job, results yielded to the caller, teardown at the end.
* :meth:`Coordinator.serve_forever` — the long-lived service behind
  ``repro serve``: a :class:`~repro.distrib.jobs.JobQueue` admits many
  concurrent sweep submissions over the wire, fair-share-interleaves
  their units across one shared worker fleet, pushes results to attached
  clients, and retains finished jobs for later fetches. The loop runs
  until drain mode (``repro cancel --drain``) meets an empty queue.

Hostile-network hardening (armed when a shared ``secret`` is set): the
HMAC challenge/response handshake of :mod:`repro.distrib.auth` gates
every frame — an unauthenticated peer gets exactly one frame's worth of
attention (an ``error`` reply) and is disconnected — and a
:class:`_PeerLedger` (armed via ``ban_after``) quarantines hosts that
accumulate protocol errors or dial in storms. Unauthenticated listeners
keep the legacy v1 behavior bit-for-bit: a bare ``hello`` (no ``proto``)
gets no reply, and a bare ``status`` frame is answered, so existing
workers and pollers on trusted networks are untouched.

The coordinator is transport only: it never executes scenario code and
never touches the cache — :class:`repro.scenarios.Runner` consumes the
``(uid, document, worker)`` stream exactly as it consumes the local
multiprocessing pool's, so caching, merging and progress reporting are
shared with every other executor.
"""

from __future__ import annotations

import selectors
import socket
import time
from collections import deque
from typing import Any, Callable, Iterator

from .auth import new_nonce, verify_mac
from .chaos import ChaosCrash
from .jobs import Job, JobQueue, ServiceError
from .protocol import PROTO_VERSION, FrameReader, ProtocolError, send_msg

__all__ = ["Coordinator"]

#: How long a blocking ``sendall`` to one worker may take before the
#: worker is considered wedged and dropped (its lease is then re-queued).
_SEND_TIMEOUT_S = 30.0


class _Conn:
    """One connected peer: socket, frame buffer, lease, liveness, auth.

    Workers identify themselves with ``hello``; a connection that never
    does (a ``repro status`` poller) stays ``is_worker=False`` and is
    excluded from worker counts and liveness reaping. On a secret-armed
    coordinator every connection starts unauthenticated and must pass
    the challenge/response before any frame is honored.
    """

    __slots__ = (
        "sock",
        "reader",
        "name",
        "host",
        "lease_uid",
        "lease_at",
        "last_seen",
        "opened",
        "ready",
        "is_worker",
        "authed",
        "nonce",
        "proto",
        "role",
        "subscribed",
    )

    def __init__(
        self, sock: socket.socket, addr: Any, now: float, *, authed: bool
    ) -> None:
        self.sock = sock
        self.reader = FrameReader()
        # The addr from accept(), never getpeername(): a peer that sent
        # RST right after connecting must cost us one dead conn, not the
        # whole coordinator.
        self.name = f"{addr[0]}:{addr[1]}" if isinstance(addr, tuple) else str(addr)
        self.host = addr[0] if isinstance(addr, tuple) else str(addr)
        self.lease_uid: int | None = None
        self.lease_at: float | None = None
        self.last_seen = now
        self.opened = now
        self.ready = False
        self.is_worker = False
        self.authed = authed
        self.nonce: str | None = None
        self.proto = 1
        self.role = "worker"
        self.subscribed: set[str] = set()


class _PeerLedger:
    """Per-host misbehavior accounting: error bans and dial-rate limits.

    A host that racks up ``ban_after`` protocol errors (garbage frames,
    failed authentications, refused hellos) is banned for ``ban_s``
    seconds — its connections are closed at ``accept`` without reading a
    byte. Independently, more than ``max_dials`` connections inside
    ``dial_window_s`` from one host (a reconnect storm — a worker stuck
    in a crash loop, or something hostile) are shed the same way. Both
    are per-host so one noisy peer cannot make the coordinator deaf to
    the rest of the fleet.
    """

    def __init__(
        self,
        *,
        ban_after: int,
        ban_s: float = 60.0,
        max_dials: int = 30,
        dial_window_s: float = 1.0,
    ) -> None:
        self.ban_after = ban_after
        self.ban_s = ban_s
        self.max_dials = max_dials
        self.dial_window_s = dial_window_s
        self._errors: dict[str, int] = {}
        self._banned_until: dict[str, float] = {}
        self._dials: dict[str, deque[float]] = {}
        #: Connections shed at accept (status surface).
        self.shed = 0

    def admit(self, host: str, now: float) -> bool:
        until = self._banned_until.get(host)
        if until is not None:
            if now < until:
                self.shed += 1
                return False
            del self._banned_until[host]
        dials = self._dials.setdefault(host, deque())
        dials.append(now)
        while dials and now - dials[0] > self.dial_window_s:
            dials.popleft()
        if len(dials) > self.max_dials:
            self.shed += 1
            return False
        return True

    def error(self, host: str, now: float) -> None:
        count = self._errors.get(host, 0) + 1
        if count >= self.ban_after:
            self._banned_until[host] = now + self.ban_s
            self._errors[host] = 0
        else:
            self._errors[host] = count

    def banned_hosts(self, now: float) -> list[str]:
        return sorted(h for h, t in self._banned_until.items() if now < t)


class Coordinator:
    """Fan units out to TCP workers; re-lease on death; stream results.

    Parameters
    ----------
    host, port:
        Listen address. Port ``0`` binds an ephemeral port; the resolved
        address is :attr:`address` (the Runner reports it via
        ``on_listen`` so external workers can be pointed at it).
    lease_timeout:
        Seconds of *silence* (no result, no heartbeat) after which a
        worker holding a lease is declared stalled and its unit
        re-queued. Workers heartbeat every couple of seconds while
        computing, so this bounds failure detection, not unit duration.
    poll_s:
        Event-loop tick; also how often the watchdog callback runs.
    max_releases:
        How many times one unit may lose its worker before the
        coordinator gives up on it and completes it with an error
        document — a unit that reliably *crashes* workers must not chew
        through the entire fleet and then hang the run. The give-up
        document is marked ``"quarantined"`` and names the distinct
        workers the unit took down.
    journal:
        Optional :class:`repro.distrib.journal.RunJournal` for the
        *local* job (:meth:`run`): lease grants are recorded *before*
        the lease frame goes out and completions as results are
        accepted, so a coordinator killed mid-run leaves an accurate
        write-ahead record for ``--resume-journal``.
    crash_after:
        Fault injection (``crash_coordinator=after_k`` chaos): raise
        :class:`~.chaos.ChaosCrash` out of :meth:`run` once this many
        results have been *yielded* — after the caller consumed (and
        cached) them, exactly like a real coordinator death between
        completions.
    on_event:
        Optional ``on_event(kind, uid, worker)`` observer, invoked from
        the event loop when a unit is ``"leased"`` to a worker or
        ``"released"`` back to the queue (the Runner feeds these into the
        sweep trace). Observer exceptions are swallowed: telemetry must
        never take down the lease loop.
    status_extra, status_refresh_s:
        ``repro status`` serves a *cached* snapshot (the MDS2 lesson:
        recomputing per poller turns monitoring into load). The snapshot
        is rebuilt in the run loop at most every ``status_refresh_s``
        seconds — heartbeat cadence, not poll cadence — and a ``status``
        frame is answered straight from the cache without touching lease
        state. ``status_extra`` is caller-owned context (the Runner puts
        run identity and cache-hit counts there) included verbatim.
    secret:
        Shared secret (bytes) arming the v2 challenge/response handshake
        (:mod:`repro.distrib.auth`). ``None`` keeps the open, legacy-
        compatible listener for loopback and trusted networks.
    max_jobs, history:
        Service-mode admission bound on concurrently active jobs, and
        how many finished jobs stay queryable.
    idle_timeout_s, auth_timeout_s:
        Idle reaping: a non-worker connection that is neither mid-
        handshake nor attached to a job is dropped after
        ``idle_timeout_s`` of silence; a connection that has not
        completed authentication within ``auth_timeout_s`` is dropped
        regardless (a byte-less socket must not hold a slot forever).
        Idle *workers* are never reaped — an idle fleet waiting for the
        next job is the normal service steady state.
    ban_after:
        Arm the :class:`_PeerLedger`: ban a host for ``ban_s`` seconds
        after this many protocol errors, and shed reconnect storms.
        ``None`` (the default) disarms it — chaos tests deliberately
        corrupt frames from localhost and must not ban themselves.
    journal_factory:
        Service mode: called with each admitted remote :class:`Job` to
        provide its write-ahead journal (or ``None``); ``repro serve``
        wires this to per-job journal files next to the cell cache.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        lease_timeout: float = 60.0,
        poll_s: float = 0.2,
        max_releases: int = 3,
        journal: Any | None = None,
        crash_after: int | None = None,
        on_event: Callable[[str, int, str], None] | None = None,
        status_extra: dict[str, Any] | None = None,
        status_refresh_s: float = 2.0,
        secret: bytes | None = None,
        max_jobs: int = 8,
        history: int = 50,
        idle_timeout_s: float = 300.0,
        auth_timeout_s: float = 10.0,
        ban_after: int | None = None,
        ban_s: float = 60.0,
        journal_factory: Callable[[Job], Any] | None = None,
    ) -> None:
        self.lease_timeout = lease_timeout
        self.poll_s = poll_s
        self.max_releases = max_releases
        self.journal = journal
        self.crash_after = crash_after
        self.on_event = on_event
        self.status_extra = status_extra
        self.status_refresh_s = status_refresh_s
        self.secret = secret
        self.idle_timeout_s = idle_timeout_s
        self.auth_timeout_s = auth_timeout_s
        self.journal_factory = journal_factory
        self._ledger = (
            _PeerLedger(ban_after=ban_after, ban_s=ban_s)
            if ban_after is not None
            else None
        )
        self._listener = socket.create_server((host, port))
        self._listener.setblocking(False)
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self._sel = selectors.DefaultSelector()
        self._sel.register(self._listener, selectors.EVENT_READ, None)
        self._conns: dict[socket.socket, _Conn] = {}
        self._queue = JobQueue(max_active=max_jobs, history=history)
        self._in_flight: dict[int, tuple[_Conn, dict[str, Any], Job]] = {}
        self._done: set[int] = set()
        self._completed: list[tuple[int, dict[str, Any], str]] = []
        self._release_counts: dict[int, int] = {}
        self._release_workers: dict[int, set[str]] = {}
        self._closed = False
        self.draining = False
        #: Units re-queued after their worker died or stalled.
        self.releases = 0
        #: Distinct workers that ever said hello.
        self.workers_seen = 0
        #: Workers that departed through an orderly SIGTERM drain (bye).
        self.workers_drained = 0
        #: Units given up on as poison (completed with an error doc).
        self.quarantined = 0
        self._run_started: float | None = None
        self._status: dict[str, Any] | None = None
        self._status_at = 0.0

    # ---------------------------------------------------------- introspection

    @property
    def pending_count(self) -> int:
        return self._queue.pending_total()

    @property
    def in_flight_count(self) -> int:
        return len(self._in_flight)

    @property
    def connected_workers(self) -> int:
        return sum(1 for c in self._conns.values() if c.is_worker)

    @property
    def unfinished(self) -> bool:
        """True while any unit is neither completed nor streamed out."""
        return bool(self._queue.pending_total() or self._in_flight)

    def _emit(self, kind: str, uid: int, worker: str) -> None:
        if self.on_event is None:
            return
        try:
            self.on_event(kind, uid, worker)
        except Exception:
            pass  # observers must never take down the lease loop

    def _build_status(self, now: float) -> dict[str, Any]:
        elapsed = now - self._run_started if self._run_started is not None else 0.0
        workers = []
        for conn in self._conns.values():
            if not conn.is_worker:
                continue
            workers.append(
                {
                    "worker": conn.name,
                    "ready": conn.ready,
                    "lease_uid": conn.lease_uid,
                    "lease_age_s": (
                        round(now - conn.lease_at, 3)
                        if conn.lease_at is not None and conn.lease_uid is not None
                        else None
                    ),
                    "silent_s": round(now - conn.last_seen, 3),
                }
            )
        completed = len(self._done)
        status: dict[str, Any] = {
            "state": "running" if self.unfinished else "idle",
            "units_total": self._queue.units_total(),
            "pending": self._queue.pending_total(),
            "in_flight": len(self._in_flight),
            "completed": completed,
            "quarantined": self.quarantined,
            "releases": self.releases,
            "workers_seen": self.workers_seen,
            "workers_drained": self.workers_drained,
            "workers": sorted(workers, key=lambda w: w["worker"]),
            "elapsed_s": round(elapsed, 3),
            "units_per_sec": round(completed / elapsed, 4) if elapsed > 0 else None,
            "jobs": self._queue.summaries(),
            "draining": self.draining,
            "auth": self.secret is not None,
            "proto": PROTO_VERSION,
        }
        if self._ledger is not None:
            status["shed_connections"] = self._ledger.shed
            status["banned_hosts"] = self._ledger.banned_hosts(now)
        if self.status_extra is not None:
            status["extra"] = self.status_extra
        return status

    def _refresh_status(self, now: float, serve_only: bool = False) -> dict[str, Any]:
        """The cached status snapshot, rebuilt at heartbeat cadence.

        ``serve_only`` (the poller path) never rebuilds a live snapshot —
        it only builds when none exists yet, so a poller that beats the
        first refresh tick still gets an answer while one hammering
        ``status`` frames costs a dict lookup per request, not a rebuild.
        """
        if self._status is None or (
            not serve_only and now - self._status_at >= self.status_refresh_s
        ):
            self._status = self._build_status(now)
            self._status_at = now
        return self._status

    # -------------------------------------------------------------- lifecycle

    def drain(self) -> None:
        """Stop admitting jobs; :meth:`serve_forever` exits when idle."""
        self.draining = True
        self._queue.draining = True

    def close(self) -> None:
        """Shut down every worker and release all sockets (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for conn in list(self._conns.values()):
            try:
                send_msg(conn.sock, {"type": "shutdown"})
            except OSError:
                pass
            self._drop(conn, requeue=False)
        self._sel.unregister(self._listener)
        self._listener.close()
        self._sel.close()

    # ------------------------------------------------------------------- run

    def run(
        self,
        units: list[dict[str, Any]],
        watchdog: Callable[["Coordinator"], None] | None = None,
    ) -> Iterator[tuple[int, dict[str, Any], str]]:
        """Drive the event loop until every unit has a result.

        ``units`` are lease descriptors (``uid``/``kind``/``name``/
        ``cell_key``/``params``) in scheduling order — highest cost first,
        exactly as the Runner ordered them. Yields ``(uid, document,
        worker name)`` as results stream back, in completion order.
        ``watchdog`` runs every loop tick (the Runner uses it to respawn
        auto-spawned local workers that died while work remains).
        """
        job = self._queue.submit(
            list(units), label="local", source="local", journal=self.journal
        )
        total = job.total
        self._run_started = time.monotonic()
        yielded = 0
        while yielded < total:
            self._tick(watchdog)
            while self._completed:
                yielded += 1
                yield self._completed.pop(0)
            if self.crash_after is not None and yielded >= self.crash_after:
                # After the drain: every result up to the crash point has
                # been yielded to (and cached by) the caller, exactly the
                # state a real coordinator death leaves behind.
                raise ChaosCrash(
                    f"chaos: coordinator crashed after {yielded} completed "
                    f"unit(s) (crash_coordinator=after_{self.crash_after})"
                )
            if job.cancelled and job.finished:
                raise RuntimeError(
                    f"local job {job.jid} was cancelled with "
                    f"{total - yielded} unit(s) outstanding"
                )
        self.close()

    def serve_forever(
        self, watchdog: Callable[["Coordinator"], None] | None = None
    ) -> None:
        """The long-lived service loop behind ``repro serve``.

        Runs until :meth:`drain` (a ``cancel``+``drain`` frame, or the
        serve CLI's SIGTERM handler) *and* the job queue going idle,
        then shuts the worker fleet down cleanly. Results are pushed to
        attached clients as they land; nothing is yielded here.
        """
        self._run_started = time.monotonic()
        try:
            while not (self.draining and self._queue.idle):
                self._tick(watchdog)
        finally:
            self.close()

    # ------------------------------------------------------------- event loop

    def _tick(self, watchdog: Callable[["Coordinator"], None] | None = None) -> None:
        for key, _mask in self._sel.select(self.poll_s):
            if key.data is None:
                self._accept()
            else:
                self._read(key.data)
        self._reap_stalled()
        self._assign()
        self._refresh_status(time.monotonic())
        if watchdog is not None:
            watchdog(self)

    def _accept(self) -> None:
        while True:
            try:
                sock, addr = self._listener.accept()
                sock.settimeout(_SEND_TIMEOUT_S)
            except (BlockingIOError, OSError):
                return
            now = time.monotonic()
            host = addr[0] if isinstance(addr, tuple) else str(addr)
            if self._ledger is not None and not self._ledger.admit(host, now):
                # Banned or storming: shed at accept, before reading a
                # byte — the cheapest possible path through a bad peer.
                try:
                    sock.close()
                except OSError:
                    pass
                continue
            conn = _Conn(sock, addr, now, authed=self.secret is None)
            self._conns[sock] = conn
            self._sel.register(sock, selectors.EVENT_READ, conn)

    def _read(self, conn: _Conn) -> None:
        try:
            data = conn.sock.recv(1 << 16)
        except (OSError, socket.timeout):
            self._drop(conn, requeue=True)
            return
        if not data:
            self._drop(conn, requeue=True)
            return
        conn.last_seen = time.monotonic()
        try:
            for msg in conn.reader.feed(data):
                self._handle(conn, msg)
        except ProtocolError:
            if self._ledger is not None:
                self._ledger.error(conn.host, time.monotonic())
            self._drop(conn, requeue=True)

    # ------------------------------------------------------------ frame logic

    def _refuse(self, conn: _Conn, reason: str) -> None:
        """One ``error`` frame, a ledger mark, and the door."""
        try:
            send_msg(conn.sock, {"type": "error", "error": reason})
        except OSError:
            pass
        if self._ledger is not None:
            self._ledger.error(conn.host, time.monotonic())
        self._drop(conn, requeue=False)

    def _register_peer(self, conn: _Conn, msg: dict[str, Any]) -> None:
        worker = msg.get("worker")
        if isinstance(worker, str) and worker:
            conn.name = worker
        conn.role = msg.get("role") or "worker"
        if conn.role == "worker" and not conn.is_worker:
            # The is_worker gate makes a chaos-replayed hello idempotent.
            conn.is_worker = True
            self.workers_seen += 1

    def _handle_preauth(self, conn: _Conn, msg: dict[str, Any]) -> None:
        """The secret-armed gate: hello -> challenge -> auth -> welcome.

        Any deviation — a non-hello opener (an unauthenticated status
        poll, say), a protocol version that cannot authenticate, a wrong
        or replayed mac — earns exactly one ``error`` frame and a
        disconnect, plus a ledger mark toward the host's ban.
        """
        kind = msg.get("type")
        if kind == "hello":
            proto = msg.get("proto")
            if not isinstance(proto, int) or proto < 2:
                self._refuse(
                    conn,
                    "this coordinator requires authentication; protocol v1 "
                    "peers cannot authenticate — upgrade the worker/client",
                )
                return
            if proto > PROTO_VERSION:
                self._refuse(
                    conn,
                    f"peer speaks protocol v{proto}; this coordinator "
                    f"speaks v{PROTO_VERSION}",
                )
                return
            conn.proto = proto
            conn.role = msg.get("role") or "worker"
            worker = msg.get("worker")
            if isinstance(worker, str) and worker:
                conn.name = worker
            conn.nonce = new_nonce()
            try:
                send_msg(conn.sock, {"type": "challenge", "nonce": conn.nonce})
            except OSError:
                self._drop(conn, requeue=False)
            return
        if kind == "auth":
            if conn.nonce is None:
                self._refuse(conn, "auth before hello/challenge")
                return
            assert self.secret is not None
            if not verify_mac(self.secret, conn.nonce, conn.role, msg.get("mac")):
                # A replayed mac fails here too: it was computed over a
                # *previous* connection's nonce, and this one is fresh.
                self._refuse(conn, "authentication failed (bad secret?)")
                return
            conn.authed = True
            conn.nonce = None
            # Worker bookkeeping only after auth: a failed handshake must
            # not inflate workers_seen.
            if conn.role == "worker" and not conn.is_worker:
                conn.is_worker = True
                self.workers_seen += 1
            try:
                send_msg(conn.sock, {"type": "welcome", "proto": PROTO_VERSION})
            except OSError:
                self._drop(conn, requeue=False)
            return
        self._refuse(conn, "authentication required")

    def _handle(self, conn: _Conn, msg: dict[str, Any]) -> None:
        if not conn.authed:
            self._handle_preauth(conn, msg)
            return
        kind = msg.get("type")
        if kind == "hello":
            proto = msg.get("proto")
            self._register_peer(conn, msg)
            if isinstance(proto, int) and proto >= 2:
                if proto > PROTO_VERSION:
                    self._refuse(
                        conn,
                        f"peer speaks protocol v{proto}; this coordinator "
                        f"speaks v{PROTO_VERSION}",
                    )
                    return
                conn.proto = proto
                try:
                    send_msg(conn.sock, {"type": "welcome", "proto": PROTO_VERSION})
                except OSError:
                    self._drop(conn, requeue=True)
            # v1 hello: no reply — legacy peers never read one.
        elif kind == "status":
            # Served from the cached snapshot — a poller costs the lease
            # loop one frame write, never a status recompute.
            try:
                send_msg(
                    conn.sock,
                    {
                        "type": "status",
                        "status": self._refresh_status(
                            time.monotonic(), serve_only=True
                        ),
                    },
                )
            except OSError:
                self._drop(conn, requeue=True)
        elif kind == "ready":
            conn.ready = True
        elif kind == "result":
            if "job" in msg:
                self._handle_result_request(conn, msg)
            else:
                self._handle_worker_result(conn, msg)
        elif kind == "heartbeat":
            pass  # last_seen already refreshed by _read
        elif kind == "submit":
            self._handle_submit(conn, msg)
        elif kind == "jobs":
            try:
                send_msg(
                    conn.sock,
                    {
                        "type": "jobs",
                        "jobs": self._queue.summaries(),
                        "draining": self.draining,
                    },
                )
            except OSError:
                self._drop(conn, requeue=True)
        elif kind == "cancel":
            self._handle_cancel(conn, msg)
        elif kind == "bye":
            # Orderly drain departure: the worker finished (or never
            # held) its lease and will not reconnect. Requeue=True is a
            # no-op in the normal case and covers the race where a lease
            # frame was in flight toward a worker already deciding to
            # leave.
            if conn.is_worker:
                self.workers_drained += 1
            self._drop(conn, requeue=True)
        # Unknown types are ignored for forward compatibility.

    def _handle_worker_result(self, conn: _Conn, msg: dict[str, Any]) -> None:
        gid = msg.get("uid")
        doc = msg.get("doc")
        if not isinstance(gid, int) or not isinstance(doc, dict):
            return
        if conn.lease_uid == gid:
            conn.lease_uid = None
        if gid in self._done:
            return  # late duplicate from a worker declared dead earlier
        leased = self._in_flight.pop(gid, None)
        if leased is not None and leased[0] is not conn:
            leased[0].lease_uid = None  # first result wins
        self._done.add(gid)
        entry = self._queue.complete(gid, doc, conn.name)
        if entry is None:
            return  # the job is gone (cancelled and already finalized)
        job, uid = entry
        if job.journal is not None and leased is not None:
            job.journal.complete(leased[1].get("jkey"), uid, "error" not in doc)
        self._deliver(job, uid, doc, conn.name)
        self._notify_job(job)

    def _handle_result_request(self, conn: _Conn, msg: dict[str, Any]) -> None:
        """A client fetching (and optionally attaching to) a job's results."""
        jid = str(msg.get("job"))
        job = self._queue.get(jid)
        if job is None:
            self._reply_error(conn, f"unknown job {jid!r}")
            return
        results = [
            [uid, doc, worker]
            for uid, (doc, worker) in sorted(job.completed.items())
        ]
        try:
            send_msg(
                conn.sock,
                {
                    "type": "job-results",
                    "job": job.jid,
                    "state": job.state,
                    "results": results,
                },
            )
        except OSError:
            self._drop(conn, requeue=True)
            return
        if msg.get("attach") and job.state in ("queued", "running"):
            if conn not in job.subscribers:
                job.subscribers.append(conn)
            conn.subscribed.add(job.jid)

    def _handle_submit(self, conn: _Conn, msg: dict[str, Any]) -> None:
        units = msg.get("units")
        if not isinstance(units, list) or not all(
            isinstance(u, dict) for u in units
        ):
            self._refuse(conn, "submit expects a list of unit objects")
            return
        try:
            job = self._queue.submit(
                units,
                label=str(msg.get("label") or ""),
                run_key=msg.get("run_key"),
                token=msg.get("token") or None,
                source="remote",
            )
        except ServiceError as exc:
            # Admission refusal is an answer, not a protocol violation:
            # the connection stays up so the client can poll `jobs`.
            self._reply_error(conn, str(exc))
            return
        if job.journal is None and self.journal_factory is not None:
            try:
                job.journal = self.journal_factory(job)
            except Exception:
                job.journal = None  # journaling must never refuse a job
        try:
            send_msg(
                conn.sock,
                {
                    "type": "job",
                    "job": job.jid,
                    "state": job.state,
                    "units": job.total,
                },
            )
        except OSError:
            self._drop(conn, requeue=True)

    def _handle_cancel(self, conn: _Conn, msg: dict[str, Any]) -> None:
        if msg.get("drain"):
            self.drain()
            try:
                send_msg(
                    conn.sock,
                    {
                        "type": "jobs",
                        "jobs": self._queue.summaries(),
                        "draining": True,
                    },
                )
            except OSError:
                self._drop(conn, requeue=True)
            return
        jid = str(msg.get("job"))
        job = self._queue.cancel(jid)
        if job is None:
            job = self._queue.get(jid)
            if job is None:
                self._reply_error(conn, f"unknown job {jid!r}")
                return
        else:
            self._notify_job(job)
        try:
            send_msg(conn.sock, {"type": "job", **job.summary()})
        except OSError:
            self._drop(conn, requeue=True)

    def _reply_error(self, conn: _Conn, reason: str) -> None:
        """An ``error`` answer that keeps the (authenticated) peer online."""
        try:
            send_msg(conn.sock, {"type": "error", "error": reason})
        except OSError:
            self._drop(conn, requeue=True)

    def _deliver(self, job: Job, uid: int, doc: dict[str, Any], worker: str) -> None:
        if job.source == "local":
            self._completed.append((uid, doc, worker))
            return
        for sub in list(job.subscribers):
            try:
                send_msg(
                    sub.sock,
                    {
                        "type": "unit-result",
                        "job": job.jid,
                        "uid": uid,
                        "doc": doc,
                        "worker": worker,
                    },
                )
            except OSError:
                # The client is gone; the job continues and its results
                # are retained for a re-attach.
                self._drop(sub, requeue=False)

    def _notify_job(self, job: Job) -> None:
        """Tell subscribers when a job reaches a terminal state."""
        if not (job.finished or job.cancelled) or not job.subscribers:
            return
        frame = {"type": "job-state", "job": job.jid, "state": job.state}
        for sub in list(job.subscribers):
            try:
                send_msg(sub.sock, frame)
            except OSError:
                self._drop(sub, requeue=False)
            else:
                sub.subscribed.discard(job.jid)
        job.subscribers.clear()

    # --------------------------------------------------------------- reaping

    def _reap_stalled(self) -> None:
        now = time.monotonic()
        for conn in list(self._conns.values()):
            if (
                conn.lease_uid is not None
                and now - conn.last_seen > self.lease_timeout
            ):
                self._drop(conn, requeue=True)
            elif not conn.authed and now - conn.opened > self.auth_timeout_s:
                # A socket that never finished the handshake must not
                # hold a slot forever (slowloris-shaped peers).
                self._drop(conn, requeue=False)
            elif (
                not conn.is_worker
                and not conn.subscribed
                and now - conn.last_seen > self.idle_timeout_s
            ):
                self._drop(conn, requeue=False)

    def _assign(self) -> None:
        while True:
            conn = next(
                (c for c in self._conns.values() if c.ready and c.lease_uid is None),
                None,
            )
            if conn is None:
                return
            lease = self._queue.next_lease()
            if lease is None:
                return
            gid, job, payload = lease
            if job.journal is not None:
                # Write-ahead: the grant is on disk before the lease is on
                # the wire, so a crash between the two still knows the
                # unit may be running somewhere.
                job.journal.grant(payload.get("jkey"), payload["uid"], conn.name)
            try:
                # The wire uid is the global lease id: two jobs' unit
                # numberings never collide on a shared fleet.
                send_msg(conn.sock, dict(payload, type="lease", uid=gid))
            except OSError:
                self._queue.requeue(gid)
                self._drop(conn, requeue=True)
                continue
            conn.ready = False
            conn.lease_uid = gid
            conn.lease_at = time.monotonic()
            self._in_flight[gid] = (conn, payload, job)
            self._emit("leased", payload["uid"], conn.name)

    def _drop(self, conn: _Conn, requeue: bool) -> None:
        """Disconnect a peer; optionally re-queue its in-flight unit."""
        self._conns.pop(conn.sock, None)
        try:
            self._sel.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass
        for jid in conn.subscribed:
            job = self._queue.get(jid)
            if job is not None and conn in job.subscribers:
                job.subscribers.remove(conn)
        conn.subscribed.clear()
        gid = conn.lease_uid
        conn.lease_uid = None
        if gid is None or not requeue or gid in self._done:
            return
        leased = self._in_flight.get(gid)
        if leased is None or leased[0] is not conn:
            # The unit was already re-leased elsewhere; leave that lease be.
            return
        del self._in_flight[gid]
        _conn, payload, job = leased
        self.releases += 1
        self._emit("released", payload["uid"], conn.name)
        count = self._release_counts.get(gid, 0) + 1
        self._release_counts[gid] = count
        workers = self._release_workers.setdefault(gid, set())
        workers.add(conn.name)
        if count >= self.max_releases:
            # Every worker this unit touched died or stalled: treat the
            # unit as poison and fail *it*, with context, instead of
            # feeding it the rest of the fleet.
            label = (
                f"{payload.get('name')!r}"
                f"{'[' + payload['cell_key'] + ']' if payload.get('cell_key') else ''}"
            )
            doc: dict[str, Any] = {
                "scenario": payload.get("name"),
                "params": payload.get("params"),
                "error": (
                    f"unit {label} "
                    f"lost its worker {count} times (crashed or stalled "
                    f"executions); giving up on it"
                ),
                "quarantined": True,
                "workers": sorted(workers),
            }
            if payload.get("cell_key"):
                doc["cell"] = payload["cell_key"]
            self._done.add(gid)
            self.quarantined += 1
            if job.journal is not None:
                job.journal.quarantine(payload.get("jkey"), label, doc["error"])
            entry = self._queue.complete(gid, doc, conn.name)
            if entry is not None:
                self._deliver(job, entry[1], doc, conn.name)
                self._notify_job(job)
            return
        # Front of its job's queue: it was scheduled early for a reason
        # (cost order), and it has already waited one worker lifetime.
        self._queue.requeue(gid)
