"""Worker: a thin lease-execute-report loop over one coordinator socket.

``python -m repro.distrib.worker HOST:PORT`` (or ``repro worker
HOST:PORT``) connects to a coordinator, announces itself, and then loops:
request a unit, run it through the *same* executor functions the
in-process and pool paths use (:func:`repro.scenarios.runner._execute` /
``_execute_cell``), and stream the resulting document back. A daemon
thread heartbeats every couple of seconds so the coordinator can tell a
long cell from a dead worker. The heavy ``repro.experiments`` import is
deferred to the first lease, so a worker is on the wire within
milliseconds of starting.

Connection lifecycle: dialing retries with jittered exponential backoff
(:func:`repro.distrib.chaos.backoff_delays`) until ``connect_timeout``
elapses — starting the worker terminal before the coordinator terminal
works — and a *lost* connection (EOF without ``shutdown``, a torn or
undecodable frame, a send error) sends the worker back to dialing rather
than killing it: the coordinator re-leases whatever the worker held, the
worker reconnects and says hello again, and the sweep continues. Only an
explicit ``shutdown`` (or a coordinator that stays unreachable past the
backoff budget) ends the worker.

Fault injection: ``REPRO_WORKER_MAX_UNITS=N`` makes the worker die
abruptly — holding its lease, without a word to the coordinator — when
lease ``N+1`` arrives, exiting with status :data:`KILLED_EXIT`. The
seeded chaos harness (``REPRO_CHAOS``, :mod:`repro.distrib.chaos`) adds
probabilistic faults at the same point: ``kill_worker`` dies the same
abrupt way, ``stall_heartbeat`` silences the heartbeat thread while the
unit computes (so the coordinator must reap the stall and drop the late
result as a duplicate), and the frame seam in ``protocol.send_msg``
injects drops/corruption/latency on everything this worker sends.
"""

from __future__ import annotations

import argparse
import logging
import os
import socket
import sys
import threading
import time
from typing import Any

from .chaos import backoff_delays, injector
from .protocol import ProtocolError, parse_address, recv_msg, send_msg

__all__ = ["serve", "main", "KILLED_EXIT", "HEARTBEAT_S"]

logger = logging.getLogger(__name__)

#: Seconds between heartbeats while the main loop is busy in a unit.
HEARTBEAT_S = 2.0

#: Exit status of a worker that died via ``REPRO_WORKER_MAX_UNITS``
#: or the ``kill_worker`` chaos fault.
KILLED_EXIT = 17


def _connect(address: tuple[str, int], timeout: float) -> socket.socket:
    """Dial the coordinator, retrying with jittered backoff until ``timeout``.

    The backoff schedule starts at tens of milliseconds (a coordinator
    restarting right now) and doubles to a 2s cap (one that needs a
    moment), with jitter so a reconnecting fleet does not dogpile the
    listen socket in lockstep. The delays generator's budget *is* the
    time bound; exhausting it raises ``OSError`` naming the address.
    """
    host, port = address
    last: OSError | None = None
    for delay in backoff_delays(total=timeout):
        try:
            sock = socket.create_connection(address, timeout=5.0)
            # create_connection's timeout would otherwise persist as a 5s
            # *recv* timeout — and an idle worker (queue drained, another
            # worker holding the long tail unit) must block on the next
            # lease indefinitely, not die of boredom. Liveness flows the
            # other way, via the heartbeat thread.
            sock.settimeout(None)
            return sock
        except OSError as exc:
            last = exc
            time.sleep(delay)
    raise OSError(
        f"could not reach coordinator at {host}:{port} within "
        f"{timeout:.0f}s (last error: {last})"
    )


def _execute_lease(msg: dict[str, Any]) -> dict[str, Any]:
    """Run one leased unit; always returns a result document.

    The executor functions trap scenario exceptions themselves, but a
    lease can also fail *before* execution — undecodable params, or a
    scenario the worker's checkout doesn't know (version skew across a
    fleet). Those must come back as error documents too: a crash here
    would kill the worker, the coordinator would re-lease the poison unit
    to the next worker, and the whole fleet would fall over serially.
    """
    try:
        # Deferred import: pulls in repro.experiments (the whole
        # simulator) only once real work arrives.
        from ..scenarios.encode import from_portable
        from ..scenarios.runner import _execute, _execute_cell

        params = from_portable(msg["params"])
        if msg["kind"] == "cell":
            doc, _value = _execute_cell(msg["name"], msg["cell_key"], params)
        else:
            doc, _value = _execute(msg["name"], params)
        return doc
    except Exception:
        import traceback

        # KeyboardInterrupt/SystemExit propagate (BaseException) and end
        # the worker; lease failures are reported to the coordinator AND
        # logged here with the unit label — the worker-side log is the
        # only record if the coordinator abandons the unit.
        logger.warning(
            "lease %r (cell=%r) failed before/at execution",
            msg.get("name"),
            msg.get("cell_key"),
            exc_info=True,
        )
        doc = {
            "scenario": msg.get("name"),
            "params": msg.get("params"),
            "error": traceback.format_exc(),
        }
        if msg.get("cell_key"):
            doc["cell"] = msg["cell_key"]
        return doc


def _session(
    sock: socket.socket,
    name: str,
    *,
    completed: int,
    max_units: int | None,
    heartbeat_s: float,
) -> tuple[str, int]:
    """One connected stint: hello, then lease/result until the link ends.

    Returns ``("shutdown", completed)`` on an orderly end and
    ``("lost", completed)`` when the connection tore (EOF without
    shutdown, protocol violation, send failure) — the caller reconnects.
    """
    lock = threading.Lock()
    stop = threading.Event()
    stalled = threading.Event()

    def _beat() -> None:
        while not stop.wait(heartbeat_s):
            if stalled.is_set():
                continue  # chaos: the worker computes on, silently
            try:
                send_msg(sock, {"type": "heartbeat"}, lock)
            except OSError:
                return

    threading.Thread(target=_beat, name="heartbeat", daemon=True).start()
    try:
        send_msg(sock, {"type": "hello", "worker": name, "pid": os.getpid()}, lock)
        send_msg(sock, {"type": "ready"}, lock)
        while True:
            try:
                msg = recv_msg(sock)
            except ProtocolError:
                return "lost", completed  # torn/corrupt frame: reconnect
            if msg is None:
                return "lost", completed  # EOF without shutdown
            if msg.get("type") == "shutdown":
                return "shutdown", completed
            if msg.get("type") != "lease":
                continue
            if max_units is not None and completed >= max_units:
                # Fault injection: die holding the lease, mid-sweep, the
                # way a powered-off machine would.
                os._exit(KILLED_EXIT)
            inj = injector()
            if inj is not None:
                # One draw each, kill before stall, so the decision
                # sequence per lease is fixed regardless of which fires.
                kill = inj.decide("kill_worker")
                if inj.decide("stall_heartbeat"):
                    stalled.set()
                if kill:
                    os._exit(KILLED_EXIT)
            doc = _execute_lease(msg)
            send_msg(sock, {"type": "result", "uid": msg["uid"], "doc": doc}, lock)
            completed += 1
            stalled.clear()
            send_msg(sock, {"type": "ready"}, lock)
    except OSError:
        return "lost", completed
    finally:
        stop.set()
        sock.close()


def serve(
    address: str | tuple[str, int],
    *,
    connect_timeout: float = 30.0,
    max_units: int | None = None,
    heartbeat_s: float = HEARTBEAT_S,
    log=print,
) -> int:
    """Attach to a coordinator and work until it says shutdown."""
    host, port = parse_address(address)
    name = f"{socket.gethostname()}-{os.getpid()}"
    completed = 0
    sock = _connect((host, port), connect_timeout)
    while True:
        log(
            f"[worker {name}] connected to {host}:{port}",
            file=sys.stderr,
            flush=True,
        )
        outcome, completed = _session(
            sock,
            name,
            completed=completed,
            max_units=max_units,
            heartbeat_s=heartbeat_s,
        )
        if outcome == "shutdown":
            break
        try:
            sock = _connect((host, port), connect_timeout)
        except OSError as exc:
            # A coordinator that finished (or died for good) while our
            # link was torn looks exactly like this; exiting cleanly
            # matches the pre-reconnect behavior for that common case,
            # and the log line carries the address for the genuine one.
            log(f"[worker {name}] {exc}; exiting", file=sys.stderr, flush=True)
            break
    log(f"[worker {name}] done ({completed} unit(s))", file=sys.stderr, flush=True)
    return 0


def max_units_from_env() -> int | None:
    """The ``REPRO_WORKER_MAX_UNITS`` fault-injection knob, if set.

    Shared by both worker spellings (``python -m repro.distrib.worker``
    and ``repro worker``) so they behave identically.
    """
    env_max = os.environ.get("REPRO_WORKER_MAX_UNITS")
    return int(env_max) if env_max else None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-worker", description="Opera-repro distributed worker"
    )
    parser.add_argument("address", metavar="HOST:PORT", help="coordinator address")
    parser.add_argument(
        "--connect-timeout",
        type=float,
        default=30.0,
        help="seconds to keep retrying the initial connection (default 30)",
    )
    args = parser.parse_args(argv)
    return serve(
        args.address,
        connect_timeout=args.connect_timeout,
        max_units=max_units_from_env(),
    )


if __name__ == "__main__":
    raise SystemExit(main())
