"""Worker: a thin lease-execute-report loop over one coordinator socket.

``python -m repro.distrib.worker HOST:PORT`` (or ``repro worker
HOST:PORT``) connects to a coordinator, announces itself, and then loops:
request a unit, run it through the *same* executor functions the
in-process and pool paths use (:func:`repro.scenarios.runner._execute` /
``_execute_cell``), and stream the resulting document back. A daemon
thread heartbeats every couple of seconds so the coordinator can tell a
long cell from a dead worker. The heavy ``repro.experiments`` import is
deferred to the first lease, so a worker is on the wire within
milliseconds of starting.

The worker retries its initial connection for a while — starting the
worker terminal before the coordinator terminal works — and exits when
the coordinator sends ``shutdown`` or disconnects.

Fault injection (used by the differential recovery tests and harmless
otherwise): ``REPRO_WORKER_MAX_UNITS=N`` makes the worker die abruptly —
holding its lease, without a word to the coordinator — when lease ``N+1``
arrives, exiting with status :data:`KILLED_EXIT`. This simulates a
machine lost mid-sweep.
"""

from __future__ import annotations

import argparse
import logging
import os
import socket
import sys
import threading
import time
from typing import Any

from .protocol import parse_address, recv_msg, send_msg

__all__ = ["serve", "main", "KILLED_EXIT", "HEARTBEAT_S"]

logger = logging.getLogger(__name__)

#: Seconds between heartbeats while the main loop is busy in a unit.
HEARTBEAT_S = 2.0

#: Exit status of a worker that died via ``REPRO_WORKER_MAX_UNITS``.
KILLED_EXIT = 17


def _connect(address: tuple[str, int], timeout: float) -> socket.socket:
    """Dial the coordinator, retrying until ``timeout`` elapses."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            sock = socket.create_connection(address, timeout=5.0)
            # create_connection's timeout would otherwise persist as a 5s
            # *recv* timeout — and an idle worker (queue drained, another
            # worker holding the long tail unit) must block on the next
            # lease indefinitely, not die of boredom. Liveness flows the
            # other way, via the heartbeat thread.
            sock.settimeout(None)
            return sock
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.2)


def _execute_lease(msg: dict[str, Any]) -> dict[str, Any]:
    """Run one leased unit; always returns a result document.

    The executor functions trap scenario exceptions themselves, but a
    lease can also fail *before* execution — undecodable params, or a
    scenario the worker's checkout doesn't know (version skew across a
    fleet). Those must come back as error documents too: a crash here
    would kill the worker, the coordinator would re-lease the poison unit
    to the next worker, and the whole fleet would fall over serially.
    """
    try:
        # Deferred import: pulls in repro.experiments (the whole
        # simulator) only once real work arrives.
        from ..scenarios.encode import from_portable
        from ..scenarios.runner import _execute, _execute_cell

        params = from_portable(msg["params"])
        if msg["kind"] == "cell":
            doc, _value = _execute_cell(msg["name"], msg["cell_key"], params)
        else:
            doc, _value = _execute(msg["name"], params)
        return doc
    except Exception:
        import traceback

        # KeyboardInterrupt/SystemExit propagate (BaseException) and end
        # the worker; lease failures are reported to the coordinator AND
        # logged here with the unit label — the worker-side log is the
        # only record if the coordinator abandons the unit.
        logger.warning(
            "lease %r (cell=%r) failed before/at execution",
            msg.get("name"),
            msg.get("cell_key"),
            exc_info=True,
        )
        doc = {
            "scenario": msg.get("name"),
            "params": msg.get("params"),
            "error": traceback.format_exc(),
        }
        if msg.get("cell_key"):
            doc["cell"] = msg["cell_key"]
        return doc


def serve(
    address: str | tuple[str, int],
    *,
    connect_timeout: float = 30.0,
    max_units: int | None = None,
    heartbeat_s: float = HEARTBEAT_S,
    log=print,
) -> int:
    """Attach to a coordinator and work until it says shutdown."""
    host, port = parse_address(address)
    name = f"{socket.gethostname()}-{os.getpid()}"
    sock = _connect((host, port), connect_timeout)
    lock = threading.Lock()
    stop = threading.Event()

    def _beat() -> None:
        while not stop.wait(heartbeat_s):
            try:
                send_msg(sock, {"type": "heartbeat"}, lock)
            except OSError:
                return

    threading.Thread(target=_beat, name="heartbeat", daemon=True).start()
    log(f"[worker {name}] connected to {host}:{port}", file=sys.stderr, flush=True)
    completed = 0
    try:
        send_msg(sock, {"type": "hello", "worker": name, "pid": os.getpid()}, lock)
        send_msg(sock, {"type": "ready"}, lock)
        while True:
            msg = recv_msg(sock)
            if msg is None or msg.get("type") == "shutdown":
                break
            if msg.get("type") != "lease":
                continue
            if max_units is not None and completed >= max_units:
                # Fault injection: die holding the lease, mid-sweep, the
                # way a powered-off machine would.
                os._exit(KILLED_EXIT)
            doc = _execute_lease(msg)
            send_msg(sock, {"type": "result", "uid": msg["uid"], "doc": doc}, lock)
            completed += 1
            send_msg(sock, {"type": "ready"}, lock)
    except OSError:
        pass  # coordinator went away; treat like shutdown
    finally:
        stop.set()
        sock.close()
    log(f"[worker {name}] done ({completed} unit(s))", file=sys.stderr, flush=True)
    return 0


def max_units_from_env() -> int | None:
    """The ``REPRO_WORKER_MAX_UNITS`` fault-injection knob, if set.

    Shared by both worker spellings (``python -m repro.distrib.worker``
    and ``repro worker``) so they behave identically.
    """
    env_max = os.environ.get("REPRO_WORKER_MAX_UNITS")
    return int(env_max) if env_max else None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-worker", description="Opera-repro distributed worker"
    )
    parser.add_argument("address", metavar="HOST:PORT", help="coordinator address")
    parser.add_argument(
        "--connect-timeout",
        type=float,
        default=30.0,
        help="seconds to keep retrying the initial connection (default 30)",
    )
    args = parser.parse_args(argv)
    return serve(
        args.address,
        connect_timeout=args.connect_timeout,
        max_units=max_units_from_env(),
    )


if __name__ == "__main__":
    raise SystemExit(main())
